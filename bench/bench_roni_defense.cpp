// Section 5.1: the Reject On Negative Impact (RONI) defense.
//
// Assesses 120 non-attack spam emails and 15 repetitions each of seven
// dictionary-attack variants with the paper's RONI configuration (T=20,
// V=50, 5 resamples). The paper reports: every dictionary-attack email
// causes an average decrease of at least 6.8 ham-as-ham messages, non-attack
// spam at most 4.4, so a simple threshold detects 100% of attack emails
// with no false positives.
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("RONI defense vs. dictionary attacks",
                           "Section 5.1 of Nelson et al. 2008");

  sbx::eval::RoniExperimentConfig config;
  config.threads = flags.threads;
  if (flags.seed != 0) config.seed = flags.seed;
  if (flags.quick) {
    config.nonattack_queries = 30;
    config.attack_repetitions = 5;
    config.pool_size = 400;
  }

  std::printf("RONI: |T|=%zu, |V|=%zu, %zu resamples, rejection threshold "
              "%.1f; %zu non-attack spam queries; %zu reps per attack "
              "variant\n\n",
              config.roni.train_size, config.roni.validation_size,
              config.roni.resamples, config.roni.rejection_threshold,
              config.nonattack_queries, config.attack_repetitions);

  const sbx::corpus::TrecLikeGenerator generator;
  const auto& lexicons = generator.lexicons();
  // Seven dictionary-attack variants, as in §5.1's "seven variants of the
  // dictionary attacks in Section 3.2".
  const std::vector<sbx::core::DictionaryAttack> attacks = {
      sbx::core::DictionaryAttack::optimal(generator),
      sbx::core::DictionaryAttack::aspell(lexicons),
      sbx::core::DictionaryAttack::aspell_truncated(lexicons, 50'000),
      sbx::core::DictionaryAttack::aspell_truncated(lexicons, 25'000),
      sbx::core::DictionaryAttack::usenet(lexicons, 90'000),
      sbx::core::DictionaryAttack::usenet(lexicons, 50'000),
      sbx::core::DictionaryAttack::usenet(lexicons, 25'000),
  };
  std::vector<const sbx::core::DictionaryAttack*> attack_ptrs;
  for (const auto& a : attacks) attack_ptrs.push_back(&a);

  const sbx::eval::RoniExperimentResult result =
      sbx::eval::run_roni_experiment(generator, attack_ptrs, config);

  sbx::util::Table table({"query class", "assessed", "mean impact",
                          "min impact", "max impact", "rejected %"});
  auto add = [&table](const sbx::eval::RoniVariantResult& v) {
    table.add_row({v.name, std::to_string(v.assessed),
                   sbx::util::Table::cell(v.impact.mean(), 2),
                   sbx::util::Table::cell(v.impact.min(), 2),
                   sbx::util::Table::cell(v.impact.max(), 2),
                   sbx::util::Table::cell(100.0 * v.rejection_rate(), 1)});
  };
  add(result.nonattack_spam);
  for (const auto& v : result.attack_variants) add(v);
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/roni_defense.csv");
  std::printf("CSV written to %s/roni_defense.csv\n", flags.csv_dir.c_str());

  // Separation summary (the paper's 6.8-vs-4.4 margin).
  double attack_min = 1e9;
  for (const auto& v : result.attack_variants) {
    attack_min = std::min(attack_min, v.impact.min());
  }
  std::printf(
      "\nseparation: non-attack spam impact max = %.2f; dictionary attack\n"
      "impact min = %.2f (paper: 4.4 vs 6.8). Detection should be 100%%\n"
      "of attack emails with 0%% false positives.\n",
      result.nonattack_spam.impact.max(), attack_min);
  return 0;
}
