// Section 5.1: the Reject On Negative Impact (RONI) defense.
//
// Thin presentation wrapper over the registry's "roni" experiment: 120
// non-attack spam emails and 15 repetitions each of seven dictionary-attack
// variants under the paper's RONI configuration (T=20, V=50, 5 resamples).
// The separation summary (the paper's 6.8-vs-4.4 margin) arrives as the
// document's report lines.
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("RONI defense vs. dictionary attacks",
                           "Section 5.1 of Nelson et al. 2008");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("roni");
  const sbx::eval::Config config = flags.resolve(experiment);

  std::printf("RONI: |T|=%zu, |V|=%zu, %zu resamples, rejection threshold "
              "%.1f; %zu non-attack spam queries; %zu reps per attack "
              "variant\n\n",
              static_cast<std::size_t>(config.get_uint("train_size")),
              static_cast<std::size_t>(config.get_uint("validation_size")),
              static_cast<std::size_t>(config.get_uint("resamples")),
              config.get_double("rejection_threshold"),
              static_cast<std::size_t>(config.get_uint("nonattack_queries")),
              static_cast<std::size_t>(config.get_uint("attack_repetitions")));

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  std::printf("%s\n", doc.table("assessments").to_text().c_str());
  doc.table("assessments").write_csv(flags.csv_dir + "/roni_defense.csv");
  std::printf("CSV written to %s/roni_defense.csv\n", flags.csv_dir.c_str());

  for (const auto& line : doc.report) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}
