// Table 1: "Parameters used in our experiments."
//
// Prints the experiment parameters exactly as configured in the eval
// drivers' default structs — the same structs every other bench binary
// runs with — so the reader can verify the reproduction uses the paper's
// settings.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  (void)sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Table 1: experiment parameters",
                           "Table 1 of Nelson et al. 2008");

  const sbx::eval::DictionaryCurveConfig dict;
  const sbx::eval::FocusedConfig focused;
  const sbx::eval::RoniExperimentConfig roni;
  const sbx::eval::ThresholdDefenseConfig threshold;

  sbx::util::Table table({"Parameter", "Dictionary Attack", "Focused Attack",
                          "RONI Defense", "Threshold Defense"});
  table.add_row({"Training set size", "2,000 / 10,000 (default 10,000)",
                 std::to_string(focused.inbox_size),
                 std::to_string(roni.roni.train_size),
                 std::to_string(threshold.base.training_set_size)});
  table.add_row({"Test set size",
                 "~" + std::to_string(dict.training_set_size / (dict.folds - 1)),
                 "N/A", std::to_string(roni.roni.validation_size),
                 "~" + std::to_string(threshold.base.training_set_size /
                                      (threshold.base.folds - 1))});
  table.add_row({"Spam prevalence",
                 sbx::util::Table::cell(dict.spam_fraction, 2),
                 sbx::util::Table::cell(focused.spam_fraction, 2),
                 sbx::util::Table::cell(roni.spam_fraction, 2),
                 sbx::util::Table::cell(threshold.base.spam_fraction, 2)});
  table.add_row({"Attack fraction",
                 "0.001,0.005,0.01,0.02,0.05,0.10",
                 "0.02 to 0.10 by 0.02 (Fig 3)", "0.05 (variants, Fig RONI)",
                 "0.001,0.01,0.05,0.10"});
  table.add_row({"Folds of validation", std::to_string(dict.folds),
                 std::to_string(focused.repetitions) + " repetitions",
                 std::to_string(roni.roni.resamples) + " repetitions",
                 std::to_string(threshold.base.folds)});
  table.add_row({"Target emails", "N/A",
                 std::to_string(focused.target_count), "N/A", "N/A"});

  std::printf("%s\n", table.to_text().c_str());

  std::printf("SpamBayes defaults: s=%.2f, x=%.2f, max_discriminators=%zu, "
              "band=[0.4,0.6], theta0=%.2f, theta1=%.2f\n",
              sbx::spambayes::ClassifierOptions{}.unknown_word_strength,
              sbx::spambayes::ClassifierOptions{}.unknown_word_prob,
              sbx::spambayes::ClassifierOptions{}.max_discriminators,
              sbx::spambayes::ClassifierOptions{}.ham_cutoff,
              sbx::spambayes::ClassifierOptions{}.spam_cutoff);
  return 0;
}
