// Table 1: "Parameters used in our experiments."
//
// Prints the experiment parameters exactly as configured in the registry
// experiments' default configs — the same defaults `sbx_experiments run`
// uses — so the reader can verify the reproduction uses the paper's
// settings. Each column is sourced from builtin_registry().get(name)
// .default_config(); editing a schema default changes this table and the
// actual runs in lockstep. The same four configs are saved as a sweep
// spec in tools/sweeps/table1_parameters.sh.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "eval/registry.h"
#include "spambayes/classifier.h"
#include "util/table.h"

namespace {

std::string uint_cell(const sbx::eval::Config& config, const char* key) {
  return std::to_string(config.get_uint(key));
}

}  // namespace

int main(int argc, char** argv) {
  (void)sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Table 1: experiment parameters",
                           "Table 1 of Nelson et al. 2008");

  const sbx::eval::Registry& registry = sbx::eval::builtin_registry();
  const sbx::eval::Config dict = registry.get("dictionary").default_config();
  const sbx::eval::Config focused =
      registry.get("focused-knowledge").default_config();
  const sbx::eval::Config roni = registry.get("roni").default_config();
  const sbx::eval::Config threshold =
      registry.get("threshold").default_config();

  sbx::util::Table table({"Parameter", "Dictionary Attack", "Focused Attack",
                          "RONI Defense", "Threshold Defense"});
  table.add_row({"Training set size", "2,000 / 10,000 (default 10,000)",
                 uint_cell(focused, "inbox_size"),
                 uint_cell(roni, "train_size"),
                 uint_cell(threshold, "training_set_size")});
  table.add_row(
      {"Test set size",
       "~" + std::to_string(dict.get_uint("training_set_size") /
                            (dict.get_uint("folds") - 1)),
       "N/A", uint_cell(roni, "validation_size"),
       "~" + std::to_string(threshold.get_uint("training_set_size") /
                            (threshold.get_uint("folds") - 1))});
  table.add_row({"Spam prevalence",
                 sbx::util::Table::cell(dict.get_double("spam_fraction"), 2),
                 sbx::util::Table::cell(focused.get_double("spam_fraction"), 2),
                 sbx::util::Table::cell(roni.get_double("spam_fraction"), 2),
                 sbx::util::Table::cell(
                     threshold.get_double("spam_fraction"), 2)});
  table.add_row({"Attack fraction",
                 "0.001,0.005,0.01,0.02,0.05,0.10",
                 "0.02 to 0.10 by 0.02 (Fig 3)", "0.05 (variants, Fig RONI)",
                 "0.001,0.01,0.05,0.10"});
  table.add_row({"Folds of validation", uint_cell(dict, "folds"),
                 uint_cell(focused, "repetitions") + " repetitions",
                 uint_cell(roni, "resamples") + " repetitions",
                 uint_cell(threshold, "folds")});
  table.add_row({"Target emails", "N/A", uint_cell(focused, "target_count"),
                 "N/A", "N/A"});

  std::printf("%s\n", table.to_text().c_str());

  std::printf("SpamBayes defaults: s=%.2f, x=%.2f, max_discriminators=%zu, "
              "band=[0.4,0.6], theta0=%.2f, theta1=%.2f\n",
              sbx::spambayes::ClassifierOptions{}.unknown_word_strength,
              sbx::spambayes::ClassifierOptions{}.unknown_word_prob,
              sbx::spambayes::ClassifierOptions{}.max_discriminators,
              sbx::spambayes::ClassifierOptions{}.ham_cutoff,
              sbx::spambayes::ClassifierOptions{}.spam_cutoff);
  return 0;
}
