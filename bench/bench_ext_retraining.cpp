// Extension: poison persistence across periodic retraining.
//
// §2.1 frames the whole paper around an organization that "retrains
// SpamBayes periodically (e.g., weekly)", but the experiments are
// one-shot. This bench runs an 8-week timeline with a 1%-scale Usenet
// dictionary attack landing in week 2 and compares four deployments:
//
//   cumulative          — retrain on all mail ever received (poison
//                         persists forever);
//   3-week window       — sliding-window retraining (poison ages out);
//   cumulative + RONI   — the §5.1 gate screens training mail;
//   window + defenses   — sliding window, RONI gate and §5.2 dynamic
//                         thresholds together.
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/retraining.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: attack persistence across weekly retraining",
      "Section 2.1 deployment scenario");

  using namespace sbx;
  corpus::TrecLikeGenerator generator;
  const core::DictionaryAttack attack =
      core::DictionaryAttack::usenet(generator.lexicons());
  const spambayes::Tokenizer tokenizer;
  const spambayes::TokenSet attack_tokens =
      spambayes::unique_tokens(tokenizer.tokenize(attack.attack_message()));

  eval::RetrainingConfig base;
  base.weeks = 8;
  base.messages_per_week = flags.quick ? 300 : 1'000;
  base.test_messages = flags.quick ? 200 : 400;
  if (flags.seed != 0) base.seed = flags.seed;
  // RONI's per-candidate assessment is the expensive step; two resamples
  // are plenty for the huge dictionary-vs-mail margin.
  base.roni.resamples = 2;

  const std::uint32_t attack_copies = static_cast<std::uint32_t>(
      base.messages_per_week / 50);  // ~2% of one week = ~0.25% of 8 weeks
  const std::vector<eval::AttackInjection> injections = {
      {2, attack_tokens, attack_copies}};
  std::printf("%zu weeks x %zu msgs; %u attack copies land in week 2\n\n",
              base.weeks, base.messages_per_week, attack_copies);

  struct Scenario {
    const char* name;
    bool cumulative;
    bool roni;
    bool dynamic;
  };
  const Scenario scenarios[] = {
      {"cumulative", true, false, false},
      {"3-week window", false, false, false},
      {"cumulative + RONI", true, true, false},
      {"window + RONI + thresholds", false, true, true},
  };

  sbx::util::Table table({"scenario", "week", "ham misc %", "spam misc %",
                          "attack admitted", "theta1"});
  for (const Scenario& s : scenarios) {
    eval::RetrainingConfig config = base;
    config.cumulative = s.cumulative;
    config.window_weeks = 3;
    config.roni_gate = s.roni;
    config.dynamic_thresholds = s.dynamic;
    const auto reports =
        eval::run_retraining_timeline(generator, injections, config);
    for (const auto& r : reports) {
      table.add_row(
          {s.name, sbx::util::Table::cell(r.week),
           sbx::util::Table::cell(100.0 * r.test.ham_misclassified_rate(), 1),
           sbx::util::Table::cell(100.0 * r.test.spam_misclassified_rate(),
                                  1),
           sbx::util::Table::cell(r.attack_admitted),
           sbx::util::Table::cell(r.thresholds.theta1, 3)});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ext_retraining.csv");
  std::printf("CSV written to %s/ext_retraining.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\nreading: under cumulative retraining the week-2 poison degrades\n"
      "every later week (diluting only slowly); a sliding window forgets it\n"
      "after the window passes; the RONI gate rejects the injection at\n"
      "arrival so no week is ever degraded.\n");
  return 0;
}
