// Extension: poison persistence across periodic retraining.
//
// Thin presentation wrapper over the registry's "retraining" experiment:
// one registry run per deployment scenario (cumulative, sliding window,
// RONI gate, full defenses), combined into one table. `sbx_experiments
// sweep retraining --axis cumulative=true,false --axis roni_gate=...`
// expresses the same grid declaratively.
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: attack persistence across weekly retraining",
      "Section 2.1 deployment scenario");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("retraining");
  const sbx::eval::Config base = flags.resolve(experiment);

  const std::size_t messages_per_week =
      static_cast<std::size_t>(base.get_uint("messages_per_week"));
  const std::uint32_t attack_copies =
      static_cast<std::uint32_t>(messages_per_week / 50);
  std::printf("%zu weeks x %zu msgs; %u attack copies land in week 2\n\n",
              static_cast<std::size_t>(base.get_uint("weeks")),
              messages_per_week, attack_copies);

  struct Scenario {
    const char* name;
    const char* cumulative;
    const char* roni;
    const char* dynamic;
  };
  const Scenario scenarios[] = {
      {"cumulative", "true", "false", "false"},
      {"3-week window", "false", "false", "false"},
      {"cumulative + RONI", "true", "true", "false"},
      {"window + RONI + thresholds", "false", "true", "true"},
  };

  sbx::util::Table table({"scenario", "week", "ham misc %", "spam misc %",
                          "attack admitted", "theta1"});
  for (const Scenario& s : scenarios) {
    sbx::eval::Config config = base;
    config.set("cumulative", s.cumulative);
    config.set("window_weeks", "3");
    config.set("roni_gate", s.roni);
    config.set("dynamic_thresholds", s.dynamic);
    const sbx::eval::ResultDoc doc =
        experiment.run(config, flags.run_context());
    for (const auto& row : doc.table("timeline").rows()) {
      std::vector<std::string> cells = {s.name};
      cells.insert(cells.end(), row.begin(), row.end());
      table.add_row(std::move(cells));
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ext_retraining.csv");
  std::printf("CSV written to %s/ext_retraining.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\nreading: under cumulative retraining the week-2 poison degrades\n"
      "every later week (diluting only slowly); a sliding window forgets it\n"
      "after the window passes; the RONI gate rejects the injection at\n"
      "arrival so no week is ever degraded.\n");
  return 0;
}
