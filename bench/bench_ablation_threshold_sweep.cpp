// Ablation: dynamic-threshold utility targets.
//
// §5.2 closes with "we are exploring this defense under other choices of
// the thresholds". This sweep evaluates utility-target pairs from very
// conservative (0.01, 0.99) to permissive (0.20, 0.80) under a fixed 5%
// Usenet dictionary attack, reporting the ham-protection / spam-certainty
// trade-off each pair buys.
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: dynamic-threshold utility targets (5% usenet attack)",
      "Section 5.2 closing remark");

  sbx::eval::ThresholdDefenseConfig config;
  config.base.attack_fractions = {0.05};
  config.base.threads = flags.threads;
  if (flags.seed) config.base.seed = *flags.seed;
  if (flags.quick) {
    config.base.training_set_size = 2'000;
    config.base.folds = 5;
  } else {
    config.base.training_set_size = 10'000;
    config.base.folds = 10;
  }
  config.variants = {{0.01, 0.99}, {0.05, 0.95}, {0.10, 0.90}, {0.20, 0.80}};

  const sbx::corpus::TrecLikeGenerator generator;
  const sbx::core::DictionaryAttack attack =
      sbx::core::DictionaryAttack::usenet(generator.lexicons());
  const auto points =
      sbx::eval::run_threshold_defense_curve(generator, attack, config);
  const auto& attacked = points.back();

  sbx::util::Table table({"utility targets", "theta0", "theta1",
                          "ham->spam %", "ham->spam|unsure %",
                          "spam->unsure %", "spam->ham %"});
  table.add_row({"static 0.15/0.90", "0.150", "0.900",
                 sbx::util::Table::cell(
                     100.0 * attacked.no_defense.ham_as_spam_rate(), 1),
                 sbx::util::Table::cell(
                     100.0 * attacked.no_defense.ham_misclassified_rate(), 1),
                 sbx::util::Table::cell(
                     100.0 * attacked.no_defense.spam_as_unsure_rate(), 1),
                 sbx::util::Table::cell(
                     100.0 * attacked.no_defense.spam_as_ham_rate(), 1)});
  for (std::size_t vi = 0; vi < config.variants.size(); ++vi) {
    const auto& m = attacked.defended[vi];
    char name[32];
    std::snprintf(name, sizeof(name), "g=(%.2f, %.2f)",
                  config.variants[vi].ham_target,
                  config.variants[vi].spam_target);
    table.add_row(
        {name, sbx::util::Table::cell(attacked.mean_thresholds[vi].theta0, 3),
         sbx::util::Table::cell(attacked.mean_thresholds[vi].theta1, 3),
         sbx::util::Table::cell(100.0 * m.ham_as_spam_rate(), 1),
         sbx::util::Table::cell(100.0 * m.ham_misclassified_rate(), 1),
         sbx::util::Table::cell(100.0 * m.spam_as_unsure_rate(), 1),
         sbx::util::Table::cell(100.0 * m.spam_as_ham_rate(), 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_threshold_sweep.csv");
  std::printf("CSV written to %s/ablation_threshold_sweep.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: tighter targets (0.01/0.99) push both cutoffs toward the\n"
      "extremes — maximal ham protection, most spam downgraded to unsure;\n"
      "looser targets trade some ham-as-unsure for crisper spam verdicts.\n");
  return 0;
}
