// Ablation: dynamic-threshold utility targets.
//
// §5.2 closes with "we are exploring this defense under other choices of
// the thresholds". This sweep evaluates utility-target pairs from very
// conservative (0.01, 0.99) to permissive (0.20, 0.80) under a fixed 5%
// Usenet dictionary attack, reporting the ham-protection / spam-certainty
// trade-off each pair buys.
//
// Thin presentation wrapper over the registry's "threshold" experiment
// (the grid used to be hand-rolled here): one config with
// utility_targets=0.01,0.05,0.1,0.2 and attack_fractions=0.05, re-rendered
// into the historical table layout byte-for-byte. The same grid is saved
// as a sweep spec in tools/sweeps/ablation_threshold_sweep.sh (one
// ResultDoc per target via `sbx_experiments sweep`).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: dynamic-threshold utility targets (5% usenet attack)",
      "Section 5.2 closing remark");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("threshold");
  const std::vector<std::string> overrides = {
      "attack_fractions=0.05",
      "utility_targets=0.01,0.05,0.1,0.2",
  };
  const sbx::eval::Config config =
      sbx::eval::resolve_config(experiment, flags.quick, overrides,
                                flags.seed);
  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  // The registry document carries one row per (fraction, variant) cell
  // with the same formatted values the hand-rolled grid printed; keep the
  // historical layout by re-rendering the attacked point's rows (the last
  // 1 + |targets| block — fractions ascend, the control point is first).
  const std::vector<double> targets =
      config.get_double_list("utility_targets");
  const auto& defense = doc.table("defense").rows();
  const std::size_t block = 1 + targets.size();
  const std::size_t attacked = defense.size() - block;

  sbx::util::Table table({"utility targets", "theta0", "theta1",
                          "ham->spam %", "ham->spam|unsure %",
                          "spam->unsure %", "spam->ham %"});
  for (std::size_t vi = 0; vi < block; ++vi) {
    const std::vector<std::string>& row = defense[attacked + vi];
    std::string name;
    if (vi == 0) {
      name = "static 0.15/0.90";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "g=(%.2f, %.2f)", targets[vi - 1],
                    1.0 - targets[vi - 1]);
      name = buf;
    }
    // defense columns: control %, attack msgs, variant, theta0, theta1,
    // ham->spam %, ham->spam|unsure %, spam->unsure %, spam->ham %.
    table.add_row({name, row[3], row[4], row[5], row[6], row[7], row[8]});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_threshold_sweep.csv");
  std::printf("CSV written to %s/ablation_threshold_sweep.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: tighter targets (0.01/0.99) push both cutoffs toward the\n"
      "extremes — maximal ham protection, most spam downgraded to unsure;\n"
      "looser targets trade some ham-as-unsure for crisper spam verdicts.\n");
  return 0;
}
