// Figure 1: "Three dictionary attacks on initial training set of 10,000
// messages (50% spam)."
//
// Thin presentation wrapper over the registry's "dictionary" experiment:
// one registry run per (training size, attack variant), combined into the
// paper's table and chart. `sbx_experiments run dictionary` executes the
// same driver one config at a time.
//
// Also prints the §4.2 token-ratio statistic (at 2% control the Aspell
// attack carries ~7x the tokens of the clean corpus, Usenet ~6.4x).
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/ascii_chart.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Figure 1: dictionary attacks vs. percent control of training set",
      "Figure 1 + Section 4.2 of Nelson et al. 2008");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("dictionary");

  // Table 1 lists both training-set sizes; --quick runs only the small one.
  std::vector<std::size_t> training_sizes = {2'000, 10'000};
  if (flags.quick) training_sizes = {2'000};
  const std::vector<std::string> attacks = {"optimal", "usenet", "aspell"};

  sbx::util::Table table({"training set", "attack", "dict words", "control %",
                          "attack msgs", "ham->spam %", "ham->spam|unsure %",
                          "fold stddev", "spam->misc %", "token ratio"});
  std::vector<sbx::util::ChartSeries> chart;  // solid lines, largest run
  const char kGlyphs[] = {'O', 'U', 'A'};
  for (std::size_t training_size : training_sizes) {
    sbx::eval::Config config = flags.resolve(experiment);
    config.set("training_set_size", std::to_string(training_size));
    std::printf("running: %zu-message training set (%.0f%% spam), "
                "%zu-fold CV...\n",
                training_size, 100.0 * config.get_double("spam_fraction"),
                static_cast<std::size_t>(config.get_uint("folds")));
    for (std::size_t ai = 0; ai < attacks.size(); ++ai) {
      config.set("attack", attacks[ai]);
      const sbx::eval::ResultDoc doc =
          experiment.run(config, flags.run_context());
      for (const auto& row : doc.table("curve").rows()) {
        table.add_row(row);
      }
      if (training_size == training_sizes.back()) {
        const sbx::eval::Series& misclassified = doc.series.front();
        sbx::util::ChartSeries s;
        s.label = misclassified.name;
        s.glyph = kGlyphs[ai % 3];
        s.x = misclassified.x;
        s.y = misclassified.y;
        chart.push_back(std::move(s));
      }
    }
  }
  std::printf("\n%s\n", table.to_text().c_str());

  sbx::util::ChartOptions chart_options;
  chart_options.y_min = 0.0;
  chart_options.y_max = 100.0;
  chart_options.x_label = "percent control of training set";
  chart_options.y_label = "percent of test ham misclassified";
  std::printf("%s\n", sbx::util::render_chart(chart, chart_options).c_str());
  table.write_csv(flags.csv_dir + "/fig1_dictionary.csv");
  std::printf("CSV written to %s/fig1_dictionary.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: optimal >> usenet > aspell; all curves rise\n"
      "steeply and the filter is unusable by ~1%% control (101 messages).\n"
      "The fold-stddev column verifies §4.1's 'variation on our tests was\n"
      "small' remark (no error bars in the paper's graphs).\n");
  return 0;
}
