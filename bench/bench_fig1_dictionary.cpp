// Figure 1: "Three dictionary attacks on initial training set of 10,000
// messages (50% spam)."
//
// Reproduces the paper's curves: percent of test ham classified as spam
// (the dashed lines) and as spam-or-unsure (the solid lines) against the
// attack's share of the training set, for the optimal, Usenet and Aspell
// dictionary attacks, averaged over 10-fold cross-validation.
//
// Also prints the §4.2 token-ratio statistic (at 2% control the Aspell
// attack carries ~7x the tokens of the clean corpus, Usenet ~6.4x).
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/experiments.h"
#include "util/ascii_chart.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Figure 1: dictionary attacks vs. percent control of training set",
      "Figure 1 + Section 4.2 of Nelson et al. 2008");

  // Table 1 lists both training-set sizes; --quick runs only the small one.
  std::vector<std::size_t> training_sizes = {2'000, 10'000};
  if (flags.quick) training_sizes = {2'000};

  const sbx::corpus::TrecLikeGenerator generator;
  const std::vector<sbx::core::DictionaryAttack> attacks = {
      sbx::core::DictionaryAttack::optimal(generator),
      sbx::core::DictionaryAttack::usenet(generator.lexicons()),
      sbx::core::DictionaryAttack::aspell(generator.lexicons()),
  };

  sbx::util::Table table({"training set", "attack", "dict words", "control %",
                          "attack msgs", "ham->spam %", "ham->spam|unsure %",
                          "fold stddev", "spam->misc %", "token ratio"});
  std::vector<sbx::util::ChartSeries> chart;  // solid lines, largest run
  const char kGlyphs[] = {'O', 'U', 'A'};
  for (std::size_t training_size : training_sizes) {
    sbx::eval::DictionaryCurveConfig config;
    config.training_set_size = training_size;
    config.threads = flags.threads;
    if (flags.seed != 0) config.seed = flags.seed;
    std::printf("running: %zu-message training set (%.0f%% spam), "
                "%zu-fold CV...\n",
                config.training_set_size, 100.0 * config.spam_fraction,
                config.folds);
    for (std::size_t ai = 0; ai < attacks.size(); ++ai) {
      const auto& attack = attacks[ai];
      const sbx::eval::DictionaryCurve curve =
          sbx::eval::run_dictionary_curve(generator, attack, config);
      if (training_size == training_sizes.back()) {
        sbx::util::ChartSeries s;
        s.label = curve.attack_name + " (ham as spam or unsure, %)";
        s.glyph = kGlyphs[ai % 3];
        for (const auto& p : curve.points) {
          s.x.push_back(100.0 * p.attack_fraction);
          s.y.push_back(100.0 * p.matrix.ham_misclassified_rate());
        }
        chart.push_back(std::move(s));
      }
      for (const auto& p : curve.points) {
        table.add_row(
            {std::to_string(training_size), curve.attack_name,
             std::to_string(curve.dictionary_size),
             sbx::util::Table::cell(100.0 * p.attack_fraction, 1),
             std::to_string(p.attack_messages),
             sbx::util::Table::cell(100.0 * p.matrix.ham_as_spam_rate(), 1),
             sbx::util::Table::cell(100.0 * p.matrix.ham_misclassified_rate(),
                                    1),
             sbx::util::Table::cell(
                 100.0 * p.ham_misclassified_by_fold.stddev(), 1),
             sbx::util::Table::cell(
                 100.0 * p.matrix.spam_misclassified_rate(), 1),
             sbx::util::Table::cell(p.attack_token_ratio, 2)});
      }
    }
  }
  std::printf("\n%s\n", table.to_text().c_str());

  sbx::util::ChartOptions chart_options;
  chart_options.y_min = 0.0;
  chart_options.y_max = 100.0;
  chart_options.x_label = "percent control of training set";
  chart_options.y_label = "percent of test ham misclassified";
  std::printf("%s\n", sbx::util::render_chart(chart, chart_options).c_str());
  table.write_csv(flags.csv_dir + "/fig1_dictionary.csv");
  std::printf("CSV written to %s/fig1_dictionary.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: optimal >> usenet > aspell; all curves rise\n"
      "steeply and the filter is unusable by ~1%% control (101 messages).\n"
      "The fold-stddev column verifies §4.1's 'variation on our tests was\n"
      "small' remark (no error bars in the paper's graphs).\n");
  return 0;
}
