// Figure 4: "Effect of the focused attack on three representative emails."
//
// Thin presentation wrapper over the registry's "token-shift" experiment:
// the per-example summaries and marginal histograms arrive as the
// document's report lines, the full per-token data as its table (CSV for
// plotting).
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Figure 4: token score shift under the focused attack",
      "Figure 4 of Nelson et al. 2008");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("token-shift");
  const sbx::eval::Config config = flags.resolve(experiment);

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  for (const auto& line : doc.report) {
    std::printf("%s\n", line.c_str());
  }
  doc.table("tokens").write_csv(flags.csv_dir + "/fig4_token_shift.csv");
  std::printf("per-token CSV written to %s/fig4_token_shift.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: tokens included in the attack jump toward 1.0\n"
      "while excluded tokens decrease slightly; the after-histogram mass\n"
      "piles up at the spammy end for misclassified targets.\n");
  return 0;
}
