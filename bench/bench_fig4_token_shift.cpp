// Figure 4: "Effect of the focused attack on three representative emails."
//
// For three targets whose post-attack verdicts are spam, unsure and ham,
// dumps every token's spam score before vs after the attack, split into
// tokens the attacker guessed (the paper's red x's, which jump toward 1)
// and tokens it missed (blue o's, which drift slightly down). Full
// per-token data lands in CSV for plotting; the console shows histogram
// summaries.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "util/table.h"

namespace {

void print_histogram(const sbx::eval::TokenShiftExample& ex) {
  // 10-bucket histograms of token scores before and after, as in the
  // figure's marginal histograms.
  int before[10] = {0};
  int after[10] = {0};
  for (const auto& t : ex.tokens) {
    auto bucket = [](double s) {
      int b = static_cast<int>(s * 10.0);
      return b < 0 ? 0 : (b > 9 ? 9 : b);
    };
    before[bucket(t.score_before)] += 1;
    after[bucket(t.score_after)] += 1;
  }
  std::printf("  score bucket:   ");
  for (int b = 0; b < 10; ++b) std::printf("%5.1f", b / 10.0);
  std::printf("\n  tokens before:  ");
  for (int b = 0; b < 10; ++b) std::printf("%5d", before[b]);
  std::printf("\n  tokens after :  ");
  for (int b = 0; b < 10; ++b) std::printf("%5d", after[b]);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Figure 4: token score shift under the focused attack",
      "Figure 4 of Nelson et al. 2008");

  sbx::eval::FocusedConfig config;
  config.threads = flags.threads;
  if (flags.seed != 0) config.seed = flags.seed;
  std::size_t attack_count = 300;
  if (flags.quick) {
    config.inbox_size = 1'000;
    attack_count = 60;
  }

  const sbx::corpus::TrecLikeGenerator generator;
  // p = 0.5, like Figure 3's operating point; scan targets until all three
  // outcome classes are represented.
  const auto examples =
      sbx::eval::run_token_shift(generator, 0.5, attack_count, config);

  sbx::util::Table csv({"example", "token", "score_before", "score_after",
                        "in_attack"});
  for (const auto& ex : examples) {
    std::size_t guessed = 0;
    std::size_t guessed_up = 0;
    std::size_t missed_down = 0;
    std::size_t missed = 0;
    for (const auto& t : ex.tokens) {
      if (t.in_attack) {
        ++guessed;
        guessed_up += t.score_after > t.score_before ? 1 : 0;
      } else {
        ++missed;
        missed_down += t.score_after < t.score_before ? 1 : 0;
      }
      csv.add_row({std::string(sbx::spambayes::to_string(ex.verdict_after)),
                   t.token, sbx::util::Table::cell(t.score_before, 4),
                   sbx::util::Table::cell(t.score_after, 4),
                   t.in_attack ? "1" : "0"});
    }
    std::printf(
        "target -> %s after attack   (message score %.3f -> %.3f)\n",
        std::string(sbx::spambayes::to_string(ex.verdict_after)).c_str(),
        ex.message_score_before, ex.message_score_after);
    std::printf(
        "  %zu/%zu guessed tokens increased; %zu/%zu missed tokens "
        "decreased\n",
        guessed_up, guessed, missed_down, missed);
    print_histogram(ex);
    std::printf("\n");
  }

  csv.write_csv(flags.csv_dir + "/fig4_token_shift.csv");
  std::printf("per-token CSV written to %s/fig4_token_shift.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: tokens included in the attack jump toward 1.0\n"
      "while excluded tokens decrease slightly; the after-histogram mass\n"
      "piles up at the spammy end for misclassified targets.\n");
  return 0;
}
