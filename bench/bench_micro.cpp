// Micro-benchmarks (google-benchmark) for the core operations every
// experiment leans on: tokenization, training, untraining, batched
// training, classification, chi-square evaluation, Zipf sampling and corpus
// generation. These quantify why the experiment harness is fast enough to
// run the paper's full parameter sweeps in seconds.
#include <benchmark/benchmark.h>

#include "core/dictionary_attack.h"
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "spambayes/score_engine.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

const sbx::corpus::TrecLikeGenerator& shared_generator() {
  static const sbx::corpus::TrecLikeGenerator gen;
  return gen;
}

void BM_TokenizeHamMessage(benchmark::State& state) {
  sbx::util::Rng rng(1);
  const auto msg = shared_generator().generate_ham(rng);
  const sbx::spambayes::Tokenizer tok;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.tokenize(msg));
  }
}
BENCHMARK(BM_TokenizeHamMessage);

void BM_TokenizeHamMessageToIds(benchmark::State& state) {
  sbx::util::Rng rng(1);
  const auto msg = shared_generator().generate_ham(rng);
  const sbx::spambayes::Tokenizer tok;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.tokenize_ids(msg));
  }
}
BENCHMARK(BM_TokenizeHamMessageToIds);

void BM_TrainHamMessage(benchmark::State& state) {
  sbx::util::Rng rng(2);
  const auto msg = shared_generator().generate_ham(rng);
  const sbx::spambayes::Tokenizer tok;
  const auto tokens = sbx::spambayes::unique_tokens(tok.tokenize(msg));
  sbx::spambayes::Filter filter;
  for (auto _ : state) {
    filter.train_ham_tokens(tokens);
  }
}
BENCHMARK(BM_TrainHamMessage);

void BM_TrainUntrainRoundTrip(benchmark::State& state) {
  sbx::util::Rng rng(3);
  const auto msg = shared_generator().generate_spam(rng);
  const sbx::spambayes::Tokenizer tok;
  const auto tokens = sbx::spambayes::unique_tokens(tok.tokenize(msg));
  sbx::spambayes::Filter filter;
  for (auto _ : state) {
    filter.train_spam_tokens(tokens);
    filter.untrain_spam_tokens(tokens);
  }
}
BENCHMARK(BM_TrainUntrainRoundTrip);

void BM_TrainHamMessageInterned(benchmark::State& state) {
  sbx::util::Rng rng(2);
  const auto msg = shared_generator().generate_ham(rng);
  const sbx::spambayes::Tokenizer tok;
  const auto ids = sbx::spambayes::unique_token_ids(tok.tokenize_ids(msg));
  sbx::spambayes::Filter filter;
  for (auto _ : state) {
    filter.train_ham_ids(ids);
  }
}
BENCHMARK(BM_TrainHamMessageInterned);

void BM_TrainUntrainRoundTripInterned(benchmark::State& state) {
  sbx::util::Rng rng(3);
  const auto msg = shared_generator().generate_spam(rng);
  const sbx::spambayes::Tokenizer tok;
  const auto ids = sbx::spambayes::unique_token_ids(tok.tokenize_ids(msg));
  sbx::spambayes::Filter filter;
  for (auto _ : state) {
    filter.train_spam_ids(ids);
    filter.untrain_spam_ids(ids);
  }
}
BENCHMARK(BM_TrainUntrainRoundTripInterned);

void BM_DictionaryBatchTrainInterned(benchmark::State& state) {
  const auto& gen = shared_generator();
  const sbx::core::DictionaryAttack attack =
      sbx::core::DictionaryAttack::aspell(gen.lexicons());
  const sbx::spambayes::Tokenizer tok;
  const auto ids = sbx::spambayes::unique_token_ids(
      tok.tokenize_ids(attack.attack_message()));
  for (auto _ : state) {
    sbx::spambayes::Filter filter;
    filter.train_spam_ids(ids, 101);  // 1% of a 10k inbox, one update
    benchmark::DoNotOptimize(filter.database().vocabulary_size());
  }
}
BENCHMARK(BM_DictionaryBatchTrainInterned);

void BM_DictionaryBatchTrain(benchmark::State& state) {
  const auto& gen = shared_generator();
  const sbx::core::DictionaryAttack attack =
      sbx::core::DictionaryAttack::aspell(gen.lexicons());
  const sbx::spambayes::Tokenizer tok;
  const auto tokens =
      sbx::spambayes::unique_tokens(tok.tokenize(attack.attack_message()));
  for (auto _ : state) {
    sbx::spambayes::Filter filter;
    filter.train_spam_tokens(tokens, 101);  // 1% of a 10k inbox, one update
    benchmark::DoNotOptimize(filter.database().vocabulary_size());
  }
}
BENCHMARK(BM_DictionaryBatchTrain);

void BM_ClassifyMessage(benchmark::State& state) {
  sbx::util::Rng rng(4);
  const auto& gen = shared_generator();
  sbx::spambayes::Filter filter;
  const sbx::spambayes::Tokenizer tok;
  for (int i = 0; i < 200; ++i) {
    filter.train_ham_tokens(sbx::spambayes::unique_tokens(
        tok.tokenize(gen.generate_ham(rng))));
    filter.train_spam_tokens(sbx::spambayes::unique_tokens(
        tok.tokenize(gen.generate_spam(rng))));
  }
  const auto probe = sbx::spambayes::unique_tokens(
      tok.tokenize(gen.generate_ham(rng)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.classify_tokens(probe).score);
  }
}
BENCHMARK(BM_ClassifyMessage);

void BM_ClassifyMessageInterned(benchmark::State& state) {
  sbx::util::Rng rng(4);
  const auto& gen = shared_generator();
  sbx::spambayes::Filter filter;
  const sbx::spambayes::Tokenizer tok;
  for (int i = 0; i < 200; ++i) {
    filter.train_ham_ids(sbx::spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_ham(rng))));
    filter.train_spam_ids(sbx::spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_spam(rng))));
  }
  const auto probe = sbx::spambayes::unique_token_ids(
      tok.tokenize_ids(gen.generate_ham(rng)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.classifier().score_ids(filter.database(), probe).score);
  }
}
BENCHMARK(BM_ClassifyMessageInterned);

void BM_ClassifyMessageEngine(benchmark::State& state) {
  sbx::util::Rng rng(4);
  const auto& gen = shared_generator();
  sbx::spambayes::Filter filter;
  const sbx::spambayes::Tokenizer tok;
  for (int i = 0; i < 200; ++i) {
    filter.train_ham_ids(sbx::spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_ham(rng))));
    filter.train_spam_ids(sbx::spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_spam(rng))));
  }
  const auto probe = sbx::spambayes::unique_token_ids(
      tok.tokenize_ids(gen.generate_ham(rng)));
  sbx::spambayes::ScoreEngine engine(filter.options().classifier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.score_ids(filter.database(), probe).score);
  }
}
BENCHMARK(BM_ClassifyMessageEngine);

void BM_ClassifyBatch64Engine(benchmark::State& state) {
  sbx::util::Rng rng(4);
  const auto& gen = shared_generator();
  sbx::spambayes::Filter filter;
  const sbx::spambayes::Tokenizer tok;
  for (int i = 0; i < 200; ++i) {
    filter.train_ham_ids(sbx::spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_ham(rng))));
    filter.train_spam_ids(sbx::spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_spam(rng))));
  }
  std::vector<sbx::spambayes::TokenIdSet> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(sbx::spambayes::unique_token_ids(tok.tokenize_ids(
        i % 2 == 0 ? gen.generate_ham(rng) : gen.generate_spam(rng))));
  }
  sbx::spambayes::ScoreEngine engine(filter.options().classifier);
  for (auto _ : state) {
    double acc = 0.0;
    engine.score_ids_batch(
        filter.database(), batch,
        [&](std::size_t, const sbx::spambayes::BatchScore& s) {
          acc += s.score;
        });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ClassifyBatch64Engine);

void BM_Chi2EvenDof(benchmark::State& state) {
  double x = 123.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sbx::util::chi2q_even_dof(x, 150));
  }
}
BENCHMARK(BM_Chi2EvenDof);

void BM_ZipfSample(benchmark::State& state) {
  sbx::util::Rng rng(5);
  sbx::util::ZipfSampler zipf(24'000, 1.08, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_GenerateHamEmail(benchmark::State& state) {
  sbx::util::Rng rng(6);
  const auto& gen = shared_generator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_ham(rng));
  }
}
BENCHMARK(BM_GenerateHamEmail);

void BM_GenerateSpamEmail(benchmark::State& state) {
  sbx::util::Rng rng(7);
  const auto& gen = shared_generator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_spam(rng));
  }
}
BENCHMARK(BM_GenerateSpamEmail);

}  // namespace

BENCHMARK_MAIN();
