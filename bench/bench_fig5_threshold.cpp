// Figure 5: "Effect of the threshold defense on the classification of ham
// messages with the dictionary based attacks."
//
// Thin presentation wrapper over the registry's "threshold" experiment:
// Usenet dictionary attack swept over 0-10% control, no defense vs. the
// dynamic threshold defense with utility targets (0.05, 0.95)
// ("Threshold-.05") and (0.10, 0.90) ("Threshold-.10").
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Figure 5: dynamic threshold defense",
                           "Figure 5 + Section 5.2 of Nelson et al. 2008");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("threshold");
  const sbx::eval::Config config = flags.resolve(experiment);

  std::printf("training set: %zu messages (%.0f%% spam), %zu-fold CV; "
              "Usenet dictionary attack\n\n",
              static_cast<std::size_t>(config.get_uint("training_set_size")),
              100.0 * config.get_double("spam_fraction"),
              static_cast<std::size_t>(config.get_uint("folds")));

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  std::printf("%s\n", doc.table("defense").to_text().c_str());

  std::vector<sbx::util::ChartSeries> chart;
  const char kGlyphs[] = {'N', '5', '1'};
  for (std::size_t i = 0; i < doc.series.size(); ++i) {
    chart.push_back({doc.series[i].name, kGlyphs[i % 3], doc.series[i].x,
                     doc.series[i].y});
  }
  sbx::util::ChartOptions chart_options;
  chart_options.y_min = 0.0;
  chart_options.y_max = 100.0;
  chart_options.x_label = "percent control of training set";
  chart_options.y_label = "percent of test ham misclassified";
  std::printf("%s\n", sbx::util::render_chart(chart, chart_options).c_str());
  doc.table("defense").write_csv(flags.csv_dir + "/fig5_threshold.csv");
  std::printf("CSV written to %s/fig5_threshold.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: with the defense, ham->spam stays ~0 and\n"
      "ham->unsure stays moderate even under attack, but spam->unsure\n"
      "explodes — the defense trades spam certainty for ham safety.\n");
  return 0;
}
