// Figure 5: "Effect of the threshold defense on the classification of ham
// messages with the dictionary based attacks."
//
// 10,000-message inbox (50% spam), Usenet dictionary attack swept over
// 0-10% control. Compares no defense against the dynamic threshold defense
// with utility targets (0.05, 0.95) ("Threshold-.05") and (0.10, 0.90)
// ("Threshold-.10"). The paper's findings: the defense keeps ham out of the
// spam folder (dashed ~0) with only moderate ham-as-unsure, but almost all
// *spam* becomes unsure — which we report as well.
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/experiments.h"
#include "util/ascii_chart.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Figure 5: dynamic threshold defense",
                           "Figure 5 + Section 5.2 of Nelson et al. 2008");

  sbx::eval::ThresholdDefenseConfig config;
  config.base.attack_fractions = {0.001, 0.01, 0.05, 0.10};  // Table 1
  config.base.threads = flags.threads;
  if (flags.seed != 0) config.base.seed = flags.seed;
  if (flags.quick) {
    config.base.training_set_size = 2'000;
    config.base.folds = 5;
  }

  std::printf("training set: %zu messages (%.0f%% spam), %zu-fold CV; "
              "Usenet dictionary attack\n\n",
              config.base.training_set_size,
              100.0 * config.base.spam_fraction, config.base.folds);

  const sbx::corpus::TrecLikeGenerator generator;
  const sbx::core::DictionaryAttack attack =
      sbx::core::DictionaryAttack::usenet(generator.lexicons());

  const auto points =
      sbx::eval::run_threshold_defense_curve(generator, attack, config);

  sbx::util::Table table(
      {"control %", "attack msgs", "variant", "theta0", "theta1",
       "ham->spam %", "ham->spam|unsure %", "spam->unsure %",
       "spam->ham %"});
  const char* names[] = {"Threshold-.05", "Threshold-.10"};
  for (const auto& p : points) {
    auto add = [&](const char* variant, const sbx::eval::ConfusionMatrix& m,
                   double t0, double t1) {
      table.add_row({sbx::util::Table::cell(100.0 * p.attack_fraction, 1),
                     std::to_string(p.attack_messages), variant,
                     sbx::util::Table::cell(t0, 3),
                     sbx::util::Table::cell(t1, 3),
                     sbx::util::Table::cell(100.0 * m.ham_as_spam_rate(), 1),
                     sbx::util::Table::cell(
                         100.0 * m.ham_misclassified_rate(), 1),
                     sbx::util::Table::cell(
                         100.0 * m.spam_as_unsure_rate(), 1),
                     sbx::util::Table::cell(100.0 * m.spam_as_ham_rate(), 1)});
    };
    add("No Defense", p.no_defense, 0.15, 0.90);
    for (std::size_t vi = 0; vi < p.defended.size(); ++vi) {
      add(names[vi % 2], p.defended[vi], p.mean_thresholds[vi].theta0,
          p.mean_thresholds[vi].theta1);
    }
  }
  std::printf("%s\n", table.to_text().c_str());

  sbx::util::ChartSeries none{"no defense (ham misclassified, %)", 'N', {}, {}};
  sbx::util::ChartSeries t05{"Threshold-.05 (ham misclassified, %)", '5', {}, {}};
  sbx::util::ChartSeries t10{"Threshold-.10 (ham misclassified, %)", '1', {}, {}};
  for (const auto& p : points) {
    const double x = 100.0 * p.attack_fraction;
    none.x.push_back(x);
    none.y.push_back(100.0 * p.no_defense.ham_misclassified_rate());
    if (p.defended.size() >= 2) {
      t05.x.push_back(x);
      t05.y.push_back(100.0 * p.defended[0].ham_misclassified_rate());
      t10.x.push_back(x);
      t10.y.push_back(100.0 * p.defended[1].ham_misclassified_rate());
    }
  }
  sbx::util::ChartOptions chart_options;
  chart_options.y_min = 0.0;
  chart_options.y_max = 100.0;
  chart_options.x_label = "percent control of training set";
  chart_options.y_label = "percent of test ham misclassified";
  std::printf("%s\n",
              sbx::util::render_chart({none, t05, t10}, chart_options).c_str());
  table.write_csv(flags.csv_dir + "/fig5_threshold.csv");
  std::printf("CSV written to %s/fig5_threshold.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: with the defense, ham->spam stays ~0 and\n"
      "ham->unsure stays moderate even under attack, but spam->unsure\n"
      "explodes — the defense trades spam certainty for ham safety.\n");
  return 0;
}
