// Figure 2: "Effect of the targeted attack as a function of the probability
// of guessing target tokens."
//
// 300 attack emails against a 5,000-message inbox (50% spam); the attacker
// guesses each target token with probability p in {0.1, 0.3, 0.5, 0.9}.
// Bars show the fraction of targets classified ham / unsure / spam after
// the attack, over 20 targets x 5 repetitions.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Figure 2: focused attack vs. attacker knowledge",
      "Figure 2 of Nelson et al. 2008");

  sbx::eval::FocusedConfig config;
  config.threads = flags.threads;
  if (flags.seed != 0) config.seed = flags.seed;
  std::size_t attack_count = 300;
  if (flags.quick) {
    config.inbox_size = 1'000;
    config.target_count = 10;
    config.repetitions = 2;
    attack_count = 60;
  }

  std::printf("inbox: %zu messages (%.0f%% spam); %zu attack emails; "
              "%zu targets x %zu repetitions\n\n",
              config.inbox_size, 100.0 * config.spam_fraction, attack_count,
              config.target_count, config.repetitions);

  const sbx::corpus::TrecLikeGenerator generator;
  const std::vector<double> ps = {0.1, 0.3, 0.5, 0.9};
  const auto points =
      sbx::eval::run_focused_knowledge(generator, ps, attack_count, config);

  sbx::util::Table table({"guess prob p", "targets", "ham %", "unsure %",
                          "spam %", "attack success %", "control ham %"});
  for (const auto& p : points) {
    const double n = static_cast<double>(p.targets);
    table.add_row(
        {sbx::util::Table::cell(p.guess_probability, 1),
         std::to_string(p.targets),
         sbx::util::Table::cell(100.0 * p.as_ham / n, 1),
         sbx::util::Table::cell(100.0 * p.as_unsure / n, 1),
         sbx::util::Table::cell(100.0 * p.as_spam / n, 1),
         sbx::util::Table::cell(100.0 * (p.as_unsure + p.as_spam) / n, 1),
         sbx::util::Table::cell(100.0 * p.control_as_ham / n, 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/fig2_focused_knowledge.csv");
  std::printf("CSV written to %s/fig2_focused_knowledge.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: attack success rises with p; at p=0.3 the\n"
      "paper reports classification changes on ~60%% of targets, and at\n"
      "p=0.9 nearly all targets leave the inbox.\n");
  return 0;
}
