// Figure 2: "Effect of the targeted attack as a function of the probability
// of guessing target tokens."
//
// Thin presentation wrapper over the registry's "focused-knowledge"
// experiment (same config surface as `sbx_experiments run
// focused-knowledge`).
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Figure 2: focused attack vs. attacker knowledge",
      "Figure 2 of Nelson et al. 2008");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("focused-knowledge");
  const sbx::eval::Config config = flags.resolve(experiment);

  std::printf("inbox: %zu messages (%.0f%% spam); %zu attack emails; "
              "%zu targets x %zu repetitions\n\n",
              static_cast<std::size_t>(config.get_uint("inbox_size")),
              100.0 * config.get_double("spam_fraction"),
              static_cast<std::size_t>(config.get_uint("attack_count")),
              static_cast<std::size_t>(config.get_uint("target_count")),
              static_cast<std::size_t>(config.get_uint("repetitions")));

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  std::printf("%s\n", doc.table("knowledge").to_text().c_str());
  doc.table("knowledge")
      .write_csv(flags.csv_dir + "/fig2_focused_knowledge.csv");
  std::printf("CSV written to %s/fig2_focused_knowledge.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: attack success rises with p; at p=0.3 the\n"
      "paper reports classification changes on ~60%% of targets, and at\n"
      "p=0.9 nearly all targets leave the inbox.\n");
  return 0;
}
