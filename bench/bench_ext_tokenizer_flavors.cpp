// Extension: attack effectiveness across tokenizer flavors.
//
// Footnote 1 of the paper: "The primary difference between the learning
// elements of these three filters [SpamBayes, BogoFilter, SpamAssassin's
// Bayes component] is in their tokenization methods", and §7 conjectures
// the attacks transfer. This bench runs the 1% Usenet dictionary attack
// against the same learner under the three tokenizer presets. The
// interesting mechanism: flavors that do NOT segregate header tokens by
// field prefix (BogoFilter-style) let the body-only attack poison header
// evidence too, removing ham's "safe" anchors.
//
// Thin presentation wrapper over the registry's "dictionary" experiment:
// the flavor is now the `tokenizer=` config key (eval/filter_axis.h), so
// this grid is equally expressible as `sbx_experiments sweep dictionary
// --axis tokenizer=spambayes,bogofilter,spamassassin` — saved as a sweep
// spec in tools/sweeps/ext_tokenizer_flavors.sh. Cells are re-rendered
// from the registry ResultDoc byte-for-byte in the historical layout.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: dictionary attack vs. tokenizer flavors (1% control)",
      "footnote 1 + Section 7 conjecture");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("dictionary");
  const char* kFlavors[] = {"spambayes", "bogofilter", "spamassassin"};

  sbx::util::Table table({"flavor", "control %", "baseline ham misc %",
                          "attacked ham->spam %",
                          "attacked ham->spam|unsure %"});
  for (const char* flavor : kFlavors) {
    // Historical grid shape: usenet at the 1% point only, 2,000 x 5-fold
    // under --quick (NOT the registry experiment's own quick overrides).
    const std::vector<std::string> overrides = {
        "attack=usenet",
        "attack_fractions=0.01",
        std::string("tokenizer=") + flavor,
        flags.quick ? "training_set_size=2000" : "training_set_size=10000",
        flags.quick ? "folds=5" : "folds=10",
    };
    const sbx::eval::Config config = sbx::eval::resolve_config(
        experiment, /*quick=*/false, overrides, flags.seed);
    const sbx::eval::ResultDoc doc =
        experiment.run(config, flags.run_context());

    // curve columns: training set, attack, dict words, control %,
    // attack msgs, ham->spam %, ham->spam|unsure %, fold stddev,
    // spam->misc %, token ratio. Row 0 is the control, the last row is
    // the 1% point; reusing the rendered cells keeps output byte-stable.
    const auto& rows = doc.table("curve").rows();
    const std::vector<std::string>& control = rows.front();
    const std::vector<std::string>& attacked = rows.back();
    table.add_row({flavor, "1.0", control[6], attacked[5], attacked[6]});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ext_tokenizer_flavors.csv");
  std::printf("CSV written to %s/ext_tokenizer_flavors.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: the attack transfers to every flavor (the learner, not\n"
      "the tokenizer, is the vulnerability); unprefixed header tokenization\n"
      "is strictly worse for the victim because body-only poison then also\n"
      "taints header evidence.\n");
  return 0;
}
