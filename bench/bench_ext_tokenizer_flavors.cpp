// Extension: attack effectiveness across tokenizer flavors.
//
// Footnote 1 of the paper: "The primary difference between the learning
// elements of these three filters [SpamBayes, BogoFilter, SpamAssassin's
// Bayes component] is in their tokenization methods", and §7 conjectures
// the attacks transfer. This bench runs the 1% Usenet dictionary attack
// against the same learner under the three tokenizer presets. The
// interesting mechanism: flavors that do NOT segregate header tokens by
// field prefix (BogoFilter-style) let the body-only attack poison header
// evidence too, removing ham's "safe" anchors.
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: dictionary attack vs. tokenizer flavors (1% control)",
      "footnote 1 + Section 7 conjecture");

  struct Flavor {
    const char* name;
    sbx::spambayes::TokenizerOptions options;
  };
  const Flavor flavors[] = {
      {"spambayes", sbx::spambayes::TokenizerFlavors::spambayes()},
      {"bogofilter", sbx::spambayes::TokenizerFlavors::bogofilter()},
      {"spamassassin", sbx::spambayes::TokenizerFlavors::spamassassin()},
  };

  const sbx::corpus::TrecLikeGenerator generator;
  const sbx::core::DictionaryAttack attack =
      sbx::core::DictionaryAttack::usenet(generator.lexicons());

  sbx::util::Table table({"flavor", "control %", "baseline ham misc %",
                          "attacked ham->spam %",
                          "attacked ham->spam|unsure %"});
  for (const Flavor& flavor : flavors) {
    sbx::eval::DictionaryCurveConfig config;
    config.attack_fractions = {0.01};
    config.filter.tokenizer = flavor.options;
    config.threads = flags.threads;
    if (flags.seed) config.seed = *flags.seed;
    if (flags.quick) {
      config.training_set_size = 2'000;
      config.folds = 5;
    } else {
      config.training_set_size = 10'000;
      config.folds = 10;
    }
    const auto curve =
        sbx::eval::run_dictionary_curve(generator, attack, config);
    const auto& control = curve.points.front();
    const auto& attacked = curve.points.back();
    table.add_row(
        {flavor.name, "1.0",
         sbx::util::Table::cell(100.0 * control.matrix.ham_misclassified_rate(),
                                1),
         sbx::util::Table::cell(100.0 * attacked.matrix.ham_as_spam_rate(), 1),
         sbx::util::Table::cell(
             100.0 * attacked.matrix.ham_misclassified_rate(), 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ext_tokenizer_flavors.csv");
  std::printf("CSV written to %s/ext_tokenizer_flavors.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: the attack transfers to every flavor (the learner, not\n"
      "the tokenizer, is the vulnerability); unprefixed header tokenization\n"
      "is strictly worse for the victim because body-only poison then also\n"
      "taints header evidence.\n");
  return 0;
}
