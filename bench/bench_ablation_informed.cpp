// Ablation: the optimal constrained attack (§3.4 future work).
//
// Compares, at equal word budgets and 1% control, three attackers with
// decreasing knowledge of the victim's word distribution:
//   informed-N — exact top-N of the victim's true ham distribution (the
//                optimal constrained attack derived in informed_attack.h);
//   usenet-N   — top-N of a ranked general-purpose corpus (§3.2's
//                practical approximation);
//   aspell-N   — the first N words of a formal dictionary (no ranking
//                information at all).
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "core/informed_attack.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: optimal constrained attack vs. approximations (1% control)",
      "Section 3.4 'optimal constrained attack' (future work)");

  sbx::eval::DictionaryCurveConfig config;
  config.attack_fractions = {0.01};
  config.threads = flags.threads;
  if (flags.seed) config.seed = *flags.seed;
  if (flags.quick) {
    config.training_set_size = 2'000;
    config.folds = 5;
  } else {
    config.training_set_size = 10'000;
    config.folds = 10;
  }

  const sbx::corpus::TrecLikeGenerator generator;
  const auto distribution = generator.ham_word_distribution();

  sbx::util::Table table({"budget", "attack", "ham->spam %",
                          "ham->spam|unsure %"});
  for (std::size_t budget : {5'000u, 10'000u, 25'000u, 44'000u}) {
    std::vector<sbx::core::DictionaryAttack> attacks;
    attacks.push_back(sbx::core::make_informed_attack(distribution, budget));
    attacks.push_back(
        sbx::core::DictionaryAttack::usenet(generator.lexicons(), budget));
    attacks.push_back(sbx::core::DictionaryAttack::aspell_truncated(
        generator.lexicons(), budget));
    for (const auto& attack : attacks) {
      const auto curve =
          sbx::eval::run_dictionary_curve(generator, attack, config);
      const auto& p = curve.points.back();
      table.add_row(
          {sbx::util::Table::cell(budget), curve.attack_name,
           sbx::util::Table::cell(100.0 * p.matrix.ham_as_spam_rate(), 1),
           sbx::util::Table::cell(100.0 * p.matrix.ham_misclassified_rate(),
                                  1)});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_informed.csv");
  std::printf("CSV written to %s/ablation_informed.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: at every budget the distribution-informed payload\n"
      "dominates the Usenet ranking, which dominates the unranked\n"
      "dictionary — knowledge of p buys attack efficiency, exactly the\n"
      "spectrum Section 3.4 describes between the dictionary and focused\n"
      "extremes.\n");
  return 0;
}
