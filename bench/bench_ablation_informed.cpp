// Ablation: the optimal constrained attack (§3.4 future work).
//
// Compares, at equal word budgets and 1% control, three attackers with
// decreasing knowledge of the victim's word distribution:
//   informed-N — exact top-N of the victim's true ham distribution (the
//                optimal constrained attack derived in informed_attack.h);
//   usenet-N   — top-N of a ranked general-purpose corpus (§3.2's
//                practical approximation);
//   aspell-N   — the first N words of a formal dictionary (no ranking
//                information at all).
//
// Thin presentation wrapper over the registry's "dictionary" experiment
// (the grid used to be hand-rolled here): one registry run per (budget,
// attack) cell, resolved through the attack registry — informed/usenet/
// aspell are all just attack= values now — and re-rendered into the
// historical table layout byte-for-byte. The same grid is saved as a sweep
// spec in tools/sweeps/ablation_informed.sh.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: optimal constrained attack vs. approximations (1% control)",
      "Section 3.4 'optimal constrained attack' (future work)");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("dictionary");

  sbx::util::Table table({"budget", "attack", "ham->spam %",
                          "ham->spam|unsure %"});
  for (std::size_t budget : {5'000u, 10'000u, 25'000u, 44'000u}) {
    for (const char* attack : {"informed", "usenet", "aspell"}) {
      const std::vector<std::string> overrides = {
          "attack_fractions=0.01",
          std::string("attack=") + attack,
          "dictionary_size=" + std::to_string(budget),
          flags.quick ? "training_set_size=2000" : "training_set_size=10000",
          flags.quick ? "folds=5" : "folds=10",
      };
      const sbx::eval::Config config = sbx::eval::resolve_config(
          experiment, /*quick=*/false, overrides, flags.seed);
      const sbx::eval::ResultDoc doc =
          experiment.run(config, flags.run_context());
      // curve columns: training set, attack, dict words, control %,
      // attack msgs, ham->spam %, ham->spam|unsure %, ...; the last row is
      // the 1% point.
      const std::vector<std::string>& row = doc.table("curve").rows().back();
      table.add_row({sbx::util::Table::cell(budget), row[1], row[5], row[6]});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_informed.csv");
  std::printf("CSV written to %s/ablation_informed.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: at every budget the distribution-informed payload\n"
      "dominates the Usenet ranking, which dominates the unranked\n"
      "dictionary — knowledge of p buys attack efficiency, exactly the\n"
      "spectrum Section 3.4 describes between the dictionary and focused\n"
      "extremes.\n");
  return 0;
}
