// Extension: the ham-labeled (Causative Integrity) attack.
//
// Thin presentation wrapper over the registry's "ham-labeled" experiment:
// the attacker whitens its future campaign vocabulary by getting emails
// carrying it trained as ham (§2.2's "more powerful attacks" remark), then
// sends the campaign — and RONI, which watches for damage to *ham*
// classification, is structurally blind to it. The payload/RONI preamble
// arrives as the document's report lines, the copies sweep as its table.
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: ham-labeled poisoning (Causative Integrity)",
      "Section 2.2 remark (more powerful attacks)");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("ham-labeled");
  const sbx::eval::Config config = flags.resolve(experiment);

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  for (const auto& line : doc.report) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("%s\n", doc.table("campaign").to_text().c_str());
  doc.table("campaign").write_csv(flags.csv_dir + "/ext_ham_labeled.csv");
  std::printf("CSV written to %s/ext_ham_labeled.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\nreading: a few percent of ham-labeled injection moves the campaign\n"
      "out of the spam folder (into the inbox or the unsure folder users\n"
      "end up reading, §2.1) while legitimate ham is untouched — and RONI\n"
      "never fires because the attack *improves* ham classification.\n"
      "Residual header evidence (which the attacker cannot whiten) is what\n"
      "keeps part of the campaign at unsure. Defending this channel needs\n"
      "a symmetric gate (e.g. impact on spam recall); the paper leaves it\n"
      "open.\n");
  return 0;
}
