// Extension: the ham-labeled (Causative Integrity) attack.
//
// §2.2 restricts the paper's attacks to spam-labeled training mail and
// notes that "using ham-labeled attack emails could enable more powerful
// attacks that place spam in a user's inbox." This bench measures exactly
// that: the attacker whitens its future campaign vocabulary by getting
// emails carrying it trained as ham, then sends the campaign. We sweep the
// number of ham-labeled copies and report how much campaign spam reaches
// the inbox — and show that RONI, which watches for damage to *ham*
// classification, is structurally blind to this attack.
#include <cstdio>

#include "bench_common.h"
#include "core/ham_labeled_attack.h"
#include "core/roni.h"
#include "corpus/generator.h"
#include "eval/metrics.h"
#include "spambayes/filter.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: ham-labeled poisoning (Causative Integrity)",
      "Section 2.2 remark (more powerful attacks)");

  using namespace sbx;
  corpus::TrecLikeGenerator generator;
  const std::size_t inbox_size = flags.quick ? 2'000 : 10'000;
  util::Rng rng(flags.seed != 0 ? flags.seed : 20080406);

  // Victim trains on a clean inbox.
  corpus::Dataset inbox = generator.sample_mailbox(inbox_size, 0.5, rng);
  spambayes::Tokenizer tokenizer;
  corpus::TokenizedDataset tokenized =
      corpus::tokenize_dataset(inbox, tokenizer);
  spambayes::Filter base;
  for (const auto& item : tokenized.items) {
    if (item.label == corpus::TrueLabel::spam) {
      base.train_spam_ids(item.ids);
    } else {
      base.train_ham_ids(item.ids);
    }
  }

  // The attacker's payload: its own campaign vocabulary (the generator's
  // spam word list plus the obfuscated junk tokens). Headers clone a real
  // ham message so the email passes as legitimate. What the attacker can
  // NOT whiten are the headers its future campaign will carry (the
  // victim's infrastructure records those), so some spam evidence always
  // survives — that is what caps the attack at "escapes the spam folder"
  // rather than "always lands as ham".
  std::vector<std::string> payload = generator.spam_vocab_words();
  const auto& junk = generator.spam_junk_words();
  payload.insert(payload.end(), junk.begin(), junk.end());
  email::Message ham_donor = generator.generate_ham(rng);
  core::HamLabeledAttack attack(payload, ham_donor.headers());
  const spambayes::TokenSet attack_tokens =
      spambayes::unique_tokens(tokenizer.tokenize(attack.attack_message()));
  std::printf("payload: %zu campaign words; attack taxonomy: %s\n\n",
              attack.payload_size(), attack.properties().description().c_str());

  // RONI's verdict on the attack email (assessed as if spam-labeled would
  // be, i.e. by its marginal impact on ham classification).
  core::RoniDefense roni({}, {});
  util::Rng roni_rng = rng.fork(1);
  auto assessment = roni.assess(attack_tokens, tokenized, roni_rng);
  std::printf("RONI-style impact of one attack email on ham-as-ham: %.2f "
              "(threshold %.1f) -> %s\n\n",
              assessment.mean_ham_as_ham_decrease,
              roni.config().rejection_threshold,
              assessment.rejected ? "rejected" : "NOT rejected");

  sbx::util::Table table({"ham-labeled copies", "% of inbox",
                          "campaign spam->ham %", "campaign spam->unsure %",
                          "fresh ham->ham %"});
  for (std::size_t copies : {0u, 20u, 50u, 101u, 204u, 526u}) {
    spambayes::Filter filter = base;
    filter.train_ham_tokens(attack_tokens,
                            static_cast<std::uint32_t>(copies));
    util::Rng probe_rng(991);  // identical probes per row
    std::size_t as_ham = 0, as_unsure = 0, ham_ok = 0;
    const int n = flags.quick ? 150 : 400;
    for (int i = 0; i < n; ++i) {
      auto v = filter.classify(generator.generate_spam(probe_rng)).verdict;
      as_ham += v == spambayes::Verdict::ham ? 1 : 0;
      as_unsure += v == spambayes::Verdict::unsure ? 1 : 0;
      ham_ok += filter.classify(generator.generate_ham(probe_rng)).verdict ==
                        spambayes::Verdict::ham
                    ? 1
                    : 0;
    }
    table.add_row({sbx::util::Table::cell(copies),
                   sbx::util::Table::cell(
                       100.0 * static_cast<double>(copies) /
                           static_cast<double>(inbox_size + copies),
                       1),
                   sbx::util::Table::cell(100.0 * as_ham / n, 1),
                   sbx::util::Table::cell(100.0 * as_unsure / n, 1),
                   sbx::util::Table::cell(100.0 * ham_ok / n, 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ext_ham_labeled.csv");
  std::printf("CSV written to %s/ext_ham_labeled.csv\n", flags.csv_dir.c_str());
  std::printf(
      "\nreading: a few percent of ham-labeled injection moves the campaign\n"
      "out of the spam folder (into the inbox or the unsure folder users\n"
      "end up reading, §2.1) while legitimate ham is untouched — and RONI\n"
      "never fires because the attack *improves* ham classification.\n"
      "Residual header evidence (which the attacker cannot whiten) is what\n"
      "keeps part of the campaign at unsure. Defending this channel needs\n"
      "a symmetric gate (e.g. impact on spam recall); the paper leaves it\n"
      "open.\n");
  return 0;
}
