// Ablation: informed dictionary attacks with truncated word lists.
//
// §3.2 observes that "using the most frequent words in such a corpus may
// allow the attacker to send smaller emails without losing much
// effectiveness". This sweep fixes the attack at 1% control and varies the
// dictionary: top-N Usenet-ranked words for N in {10k, 25k, 50k, 90k} plus
// the full Aspell list, reporting effectiveness per attack-email byte.
//
// Thin presentation wrapper over the registry's "dictionary" experiment
// (the grid used to be hand-rolled here): one registry run per variant,
// resolved through the attack registry (attack= / dictionary_size= keys)
// and re-rendered into the historical table layout byte-for-byte. The same
// grid is saved as a sweep spec in tools/sweeps/ablation_dictionary_size.sh
// (one ResultDoc per variant via `sbx_experiments sweep`).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: dictionary size vs. attack effectiveness (1% control)",
      "Section 3.2 remark (informed attacks, smaller emails)");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("dictionary");

  struct Variant {
    const char* attack;
    const char* dictionary_size;
  };
  const Variant variants[] = {{"usenet", "10000"},
                              {"usenet", "25000"},
                              {"usenet", "50000"},
                              {"usenet", "90000"},
                              {"aspell", "0"}};

  sbx::util::Table table({"attack", "dict words", "email bytes",
                          "ham->spam %", "ham->spam|unsure %",
                          "misclass per 10KB"});
  for (const Variant& v : variants) {
    // Historical grid shape: only the 1% point, 2,000 x 5-fold under
    // --quick (NOT the registry experiment's own quick overrides).
    const std::vector<std::string> overrides = {
        "attack_fractions=0.01",
        std::string("attack=") + v.attack,
        std::string("dictionary_size=") + v.dictionary_size,
        flags.quick ? "training_set_size=2000" : "training_set_size=10000",
        flags.quick ? "folds=5" : "folds=10",
    };
    const sbx::eval::Config config = sbx::eval::resolve_config(
        experiment, /*quick=*/false, overrides, flags.seed);
    const sbx::eval::ResultDoc doc =
        experiment.run(config, flags.run_context());

    auto metric = [&doc](const char* name) {
      for (const auto& [key, value] : doc.metrics) {
        if (key == name) return value;
      }
      return 0.0;
    };
    // curve columns: training set, attack, dict words, control %,
    // attack msgs, ham->spam %, ham->spam|unsure %, fold stddev,
    // spam->misc %, token ratio; the last row is the 1% point.
    const std::vector<std::string>& row = doc.table("curve").rows().back();
    const double bytes = metric("attack_email_bytes");
    const double effect = metric("final_ham_misclassified_pct");
    table.add_row({row[1], row[2],
                   sbx::util::Table::cell(static_cast<std::size_t>(bytes)),
                   row[5], row[6],
                   sbx::util::Table::cell(effect / (bytes / 10'240.0), 2)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_dictionary_size.csv");
  std::printf("CSV written to %s/ablation_dictionary_size.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: the top-ranked truncations keep most of the damage at a\n"
      "fraction of the bytes — the paper's 'smaller emails' remark — while\n"
      "coverage of the victim's rare-word tail is what the full lists buy.\n");
  return 0;
}
