// Ablation: informed dictionary attacks with truncated word lists.
//
// §3.2 observes that "using the most frequent words in such a corpus may
// allow the attacker to send smaller emails without losing much
// effectiveness". This sweep fixes the attack at 1% control and varies the
// dictionary: top-N Usenet-ranked words for N in {10k, 25k, 50k, 90k} plus
// the full Aspell list, reporting effectiveness per attack-email byte.
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: dictionary size vs. attack effectiveness (1% control)",
      "Section 3.2 remark (informed attacks, smaller emails)");

  sbx::eval::DictionaryCurveConfig config;
  config.attack_fractions = {0.01};
  config.threads = flags.threads;
  if (flags.seed) config.seed = *flags.seed;
  if (flags.quick) {
    config.training_set_size = 2'000;
    config.folds = 5;
  } else {
    config.training_set_size = 10'000;
    config.folds = 10;
  }

  const sbx::corpus::TrecLikeGenerator generator;
  const auto& lexicons = generator.lexicons();
  std::vector<sbx::core::DictionaryAttack> attacks;
  for (std::size_t n : {10'000u, 25'000u, 50'000u, 90'000u}) {
    attacks.push_back(sbx::core::DictionaryAttack::usenet(lexicons, n));
  }
  attacks.push_back(sbx::core::DictionaryAttack::aspell(lexicons));

  sbx::util::Table table({"attack", "dict words", "email bytes",
                          "ham->spam %", "ham->spam|unsure %",
                          "misclass per 10KB"});
  for (const auto& attack : attacks) {
    const auto curve =
        sbx::eval::run_dictionary_curve(generator, attack, config);
    const auto& p = curve.points.back();  // the 1% point
    const double bytes =
        static_cast<double>(attack.attack_message().body().size());
    const double effect = 100.0 * p.matrix.ham_misclassified_rate();
    table.add_row({curve.attack_name, std::to_string(curve.dictionary_size),
                   sbx::util::Table::cell(static_cast<std::size_t>(bytes)),
                   sbx::util::Table::cell(100.0 * p.matrix.ham_as_spam_rate(),
                                          1),
                   sbx::util::Table::cell(effect, 1),
                   sbx::util::Table::cell(effect / (bytes / 10'240.0), 2)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_dictionary_size.csv");
  std::printf("CSV written to %s/ablation_dictionary_size.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: the top-ranked truncations keep most of the damage at a\n"
      "fraction of the bytes — the paper's 'smaller emails' remark — while\n"
      "coverage of the victim's rare-word tail is what the full lists buy.\n");
  return 0;
}
