// Ablation: focused-attack knowledge models.
//
// DESIGN.md §5 documents an interpretation choice in §4.3: the attacker's
// guess set is drawn ONCE per attack (fixed knowledge), not independently
// per attack email. This ablation runs both models: with independent
// per-email guesses the union of payloads converges to the full target as
// the email count grows, erasing the p-dependence Figure 2 demonstrates —
// which is why the fixed-knowledge reading must be the paper's.
#include <cstdio>

#include "bench_common.h"
#include "core/focused_attack.h"
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: fixed vs. per-email guess sets in the focused attack",
      "Section 4.3 interpretation (DESIGN.md section 5)");

  using namespace sbx;
  corpus::TrecLikeGenerator generator;
  const std::size_t inbox_size = flags.quick ? 1'000 : 3'000;
  const std::size_t attack_count = flags.quick ? 100 : 300;
  const std::size_t targets = flags.quick ? 10 : 20;

  std::printf("inbox %zu (50%% spam), %zu attack emails, %zu targets\n\n",
              inbox_size, attack_count, targets);

  util::Rng rng(flags.seed_or(20080404));
  corpus::Dataset inbox = generator.sample_mailbox(inbox_size, 0.5, rng);
  spambayes::Tokenizer tokenizer;
  spambayes::Filter base;
  std::vector<const email::Message*> spam_headers;
  for (const auto& item : inbox.items) {
    if (item.label == corpus::TrueLabel::spam) {
      base.train_spam(item.message);
      spam_headers.push_back(&item.message);
    } else {
      base.train_ham(item.message);
    }
  }

  sbx::util::Table table({"guess model", "p", "target->ham %",
                          "target->unsure %", "target->spam %"});
  for (bool fresh : {false, true}) {
    for (double p : {0.1, 0.3, 0.5, 0.9}) {
      std::size_t as[3] = {0, 0, 0};
      for (std::size_t t = 0; t < targets; ++t) {
        util::Rng run_rng = rng.fork(1000 * (fresh ? 2 : 1) + 10 * t +
                                     static_cast<std::uint64_t>(p * 10));
        email::Message target = generator.generate_ham(run_rng);
        core::FocusedAttackConfig config;
        config.guess_probability = p;
        config.fresh_guess_per_email = fresh;
        core::FocusedAttack attack(
            config, core::attackable_body_words(target, tokenizer), run_rng);
        spambayes::Filter filter = base;
        for (const auto& m :
             attack.generate(spam_headers, attack_count, run_rng)) {
          filter.train_spam(m);
        }
        as[static_cast<int>(filter.classify(target).verdict)] += 1;
      }
      table.add_row({fresh ? "per-email (independent)" : "fixed (paper)",
                     sbx::util::Table::cell(p, 1),
                     sbx::util::Table::cell(100.0 * as[0] / targets, 1),
                     sbx::util::Table::cell(100.0 * as[1] / targets, 1),
                     sbx::util::Table::cell(100.0 * as[2] / targets, 1)});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_focused_guessing.csv");
  std::printf("CSV written to %s/ablation_focused_guessing.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: under per-email guessing even p=0.1 behaves like near-full\n"
      "knowledge (every target token lands in some payload, and each email\n"
      "adds spam evidence), so the Figure-2 p-dependence only exists under\n"
      "the fixed-knowledge model.\n");
  return 0;
}
