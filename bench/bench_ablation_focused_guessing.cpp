// Ablation: focused-attack knowledge models.
//
// DESIGN.md §5 documents an interpretation choice in §4.3: the attacker's
// guess set is drawn ONCE per attack (fixed knowledge), not independently
// per attack email. This ablation runs both models: with independent
// per-email guesses the union of payloads converges to the full target as
// the email count grows, erasing the p-dependence Figure 2 demonstrates —
// which is why the fixed-knowledge reading must be the paper's.
//
// Thin presentation wrapper over the registry's "focused-guessing"
// experiment (the grid used to be hand-rolled here): one registry run
// crafts the per-target poison through the attack registry's "focused"
// adapter under both guess models, re-rendered into the historical table
// layout byte-for-byte. The same grid is saved as a run spec in
// tools/sweeps/ablation_focused_guessing.sh.
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Ablation: fixed vs. per-email guess sets in the focused attack",
      "Section 4.3 interpretation (DESIGN.md section 5)");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("focused-guessing");
  const sbx::eval::Config config = flags.resolve(experiment);

  std::printf("inbox %zu (50%% spam), %zu attack emails, %zu targets\n\n",
              static_cast<std::size_t>(config.get_uint("inbox_size")),
              static_cast<std::size_t>(config.get_uint("attack_count")),
              static_cast<std::size_t>(config.get_uint("target_count")));

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  sbx::util::Table table({"guess model", "p", "target->ham %",
                          "target->unsure %", "target->spam %"});
  for (const auto& row : doc.table("models").rows()) {
    table.add_row(row);
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_focused_guessing.csv");
  std::printf("CSV written to %s/ablation_focused_guessing.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: under per-email guessing even p=0.1 behaves like near-full\n"
      "knowledge (every target token lands in some payload, and each email\n"
      "adds spam evidence), so the Figure-2 p-dependence only exists under\n"
      "the fixed-knowledge model.\n");
  return 0;
}
