// Shared helpers for the bench binaries: flag parsing (--quick, --threads,
// --seed, --csv-dir) and output conventions.
//
// Parsing goes through eval::parse_uint, so malformed values fail loudly
// ("--threads=abc" used to std::atoll to 0 = hardware concurrency).
// --seed is tri-state: absent keeps the experiment default, present —
// including an explicit --seed=0 — overrides it (the old `seed == 0`
// sentinel conflated the two).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "eval/experiment.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace sbx::bench {

/// Common bench flags. Every experiment binary defaults to the paper-scale
/// configuration; --quick shrinks it for smoke runs.
struct BenchFlags {
  bool quick = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::optional<std::uint64_t> seed;  // unset = keep the experiment default
  std::string csv_dir = "results";

  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed.value_or(fallback);
  }

  /// Same resolution policy as `sbx_experiments run` (eval::resolve_config
  /// is the single implementation both go through).
  eval::Config resolve(const eval::Experiment& experiment) const {
    return eval::resolve_config(experiment, quick, /*overrides=*/{}, seed);
  }

  eval::RunContext run_context() const {
    eval::RunContext ctx;
    ctx.threads = threads;
    return ctx;
  }
};

inline BenchFlags parse_flags(int argc, char** argv) {
  BenchFlags flags;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--quick") {
        flags.quick = true;
      } else if (arg.rfind("--threads=", 0) == 0) {
        flags.threads = static_cast<std::size_t>(
            eval::parse_uint(arg.substr(10), "--threads"));
      } else if (arg.rfind("--seed=", 0) == 0) {
        flags.seed = eval::parse_uint(arg.substr(7), "--seed");
      } else if (arg.rfind("--csv-dir=", 0) == 0) {
        flags.csv_dir = std::string(arg.substr(10));
      } else if (arg == "--help") {
        std::printf(
            "usage: %s [--quick] [--threads=N] [--seed=S] [--csv-dir=DIR]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown flag '%s' (see --help)\n", argv[0],
                     argv[i]);
        std::exit(2);
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    std::exit(2);
  }
  // Size the shared pool up front; every Runner in the process borrows it.
  if (flags.threads != 0) {
    util::ThreadPool::configure_shared(flags.threads);
  }
  return flags;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

}  // namespace sbx::bench
