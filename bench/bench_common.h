// Shared helpers for the bench binaries: flag parsing (--quick, --threads,
// --seed, --csv-dir) and output conventions.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sbx::bench {

/// Common bench flags. Every experiment binary defaults to the paper-scale
/// configuration; --quick shrinks it for smoke runs.
struct BenchFlags {
  bool quick = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 0;   // 0 = keep the experiment default
  std::string csv_dir = "results";
};

inline BenchFlags parse_flags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      flags.quick = true;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      flags.threads = static_cast<std::size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--csv-dir=", 10) == 0) {
      flags.csv_dir = arg + 10;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--quick] [--threads=N] [--seed=S] [--csv-dir=DIR]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return flags;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

}  // namespace sbx::bench
