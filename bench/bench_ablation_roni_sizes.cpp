// Ablation: RONI measurement-set sizes.
//
// §5.1 plans "to extend our initial experiments for the RONI defense with
// larger test sets". This sweep scales (|T|, |V|) from the paper's (20, 50)
// up 4x and down 2x, measuring how the attack/non-attack separation margin
// and the detection rates respond.
//
// Thin presentation wrapper over the registry's "roni" experiment: |T|,
// |V|, resamples and the rejection threshold are ordinary config keys, and
// the two-attack workload is the comma-list form `attack=usenet,aspell` —
// the same grid is saved as a sweep spec in
// tools/sweeps/ablation_roni_sizes.sh. Cells come from the registry
// metrics (nonattack_max_impact / attack_min_impact / attack_rejected_pct
// / nonattack_rejected_pct) re-rendered in the historical layout.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/attack_axis.h"
#include "eval/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Ablation: RONI (|T|, |V|) scaling",
                           "Section 5.1 future-work remark");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("roni");

  struct Sizing {
    std::size_t train;
    std::size_t validation;
  };
  const std::vector<Sizing> sizings = {{10, 25}, {20, 50}, {40, 100},
                                       {80, 200}};

  sbx::util::Table table({"|T|", "|V|", "nonattack max", "attack min",
                          "margin", "attack rejected %", "false pos %"});
  for (const Sizing& s : sizings) {
    // Scale the rejection threshold with |V|'s ham share so the decision
    // rule stays comparable across sizes (the paper's 5.5 was tuned for
    // 25 ham in V). round_trip_string keeps the double bit-exact across
    // the config's string boundary.
    const std::vector<std::string> overrides = {
        "attack=usenet,aspell",
        "train_size=" + std::to_string(s.train),
        "validation_size=" + std::to_string(s.validation),
        "rejection_threshold=" +
            sbx::eval::round_trip_string(
                5.5 * static_cast<double>(s.validation) / 50.0),
        flags.quick ? "nonattack_queries=20" : "nonattack_queries=60",
        flags.quick ? "attack_repetitions=4" : "attack_repetitions=10",
        flags.quick ? "pool_size=400" : "pool_size=1000",
    };
    const sbx::eval::Config config = sbx::eval::resolve_config(
        experiment, /*quick=*/false, overrides, flags.seed);
    const sbx::eval::ResultDoc doc =
        experiment.run(config, flags.run_context());

    auto metric = [&doc](const char* name) {
      for (const auto& [key, value] : doc.metrics) {
        if (key == name) return value;
      }
      return 0.0;
    };
    const double nonattack_max = metric("nonattack_max_impact");
    const double attack_min = metric("attack_min_impact");
    table.add_row(
        {sbx::util::Table::cell(s.train), sbx::util::Table::cell(s.validation),
         sbx::util::Table::cell(nonattack_max, 2),
         sbx::util::Table::cell(attack_min, 2),
         sbx::util::Table::cell(attack_min - nonattack_max, 2),
         sbx::util::Table::cell(metric("attack_rejected_pct"), 1),
         sbx::util::Table::cell(metric("nonattack_rejected_pct"), 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_roni_sizes.csv");
  std::printf("CSV written to %s/ablation_roni_sizes.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: the separation margin grows with |V| (more ham to knock\n"
      "over) and detection stays at 100%% across the sweep, confirming the\n"
      "paper's expectation that larger test sets only help.\n");
  return 0;
}
