// Ablation: RONI measurement-set sizes.
//
// §5.1 plans "to extend our initial experiments for the RONI defense with
// larger test sets". This sweep scales (|T|, |V|) from the paper's (20, 50)
// up 4x and down 2x, measuring how the attack/non-attack separation margin
// and the detection rates respond.
#include <cstdio>

#include "bench_common.h"
#include "core/dictionary_attack.h"
#include "eval/experiments.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Ablation: RONI (|T|, |V|) scaling",
                           "Section 5.1 future-work remark");

  const sbx::corpus::TrecLikeGenerator generator;
  const sbx::core::DictionaryAttack usenet =
      sbx::core::DictionaryAttack::usenet(generator.lexicons());
  const sbx::core::DictionaryAttack aspell =
      sbx::core::DictionaryAttack::aspell(generator.lexicons());

  struct Sizing {
    std::size_t train;
    std::size_t validation;
  };
  const std::vector<Sizing> sizings = {{10, 25}, {20, 50}, {40, 100},
                                       {80, 200}};

  sbx::util::Table table({"|T|", "|V|", "nonattack max", "attack min",
                          "margin", "attack rejected %", "false pos %"});
  for (const Sizing& s : sizings) {
    sbx::eval::RoniExperimentConfig config;
    config.roni.train_size = s.train;
    config.roni.validation_size = s.validation;
    // Scale the rejection threshold with |V|'s ham share so the decision
    // rule stays comparable across sizes (the paper's 5.5 was tuned for
    // 25 ham in V).
    config.roni.rejection_threshold =
        5.5 * static_cast<double>(s.validation) / 50.0;
    config.threads = flags.threads;
    if (flags.seed) config.seed = *flags.seed;
    config.nonattack_queries = flags.quick ? 20 : 60;
    config.attack_repetitions = flags.quick ? 4 : 10;
    config.pool_size = flags.quick ? 400 : 1'000;

    const auto result = sbx::eval::run_roni_experiment(
        generator, {&usenet, &aspell}, config);
    double attack_min = 1e18;
    double rejected = 0, assessed = 0;
    for (const auto& v : result.attack_variants) {
      attack_min = std::min(attack_min, v.impact.min());
      rejected += static_cast<double>(v.rejected);
      assessed += static_cast<double>(v.assessed);
    }
    table.add_row(
        {sbx::util::Table::cell(s.train), sbx::util::Table::cell(s.validation),
         sbx::util::Table::cell(result.nonattack_spam.impact.max(), 2),
         sbx::util::Table::cell(attack_min, 2),
         sbx::util::Table::cell(attack_min -
                                    result.nonattack_spam.impact.max(),
                                2),
         sbx::util::Table::cell(100.0 * rejected / assessed, 1),
         sbx::util::Table::cell(
             100.0 * result.nonattack_spam.rejection_rate(), 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  table.write_csv(flags.csv_dir + "/ablation_roni_sizes.csv");
  std::printf("CSV written to %s/ablation_roni_sizes.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: the separation margin grows with |V| (more ham to knock\n"
      "over) and detection stays at 100%% across the sweep, confirming the\n"
      "paper's expectation that larger test sets only help.\n");
  return 0;
}
