// bench_hotpath: machine-readable perf baselines for the hot paths the
// interning + score-engine refactors target — classification (msgs/sec)
// through the legacy string-set path, the interned id path and the
// generation-cached ScoreEngine (single-message and zero-alloc batch),
// train/untrain round trips (ops/sec) and tokenization (MB/s).
//
// Unlike bench_micro (google-benchmark, optional dependency), this binary
// always builds and emits JSON for the tracked BENCH_baseline.json
// regression gate (tools/check_bench.py compares a fresh run against the
// committed baseline and fails CI on >25% throughput regression).
//
//   $ ./bench_hotpath [--quick] [--min-seconds=S] [--json=PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "email/rfc2822.h"
#include "spambayes/filter.h"
#include "spambayes/score_engine.h"
#include "util/random.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Runs `op` in growing batches until at least `min_seconds` of wall clock
/// has been spent, returning operations per second.
template <typename Op>
double ops_per_sec(double min_seconds, Op&& op) {
  // Warm-up: touch caches/pages, and give the optimizer-visible state its
  // steady shape.
  for (int i = 0; i < 3; ++i) op();
  std::size_t batch = 8;
  std::size_t total_ops = 0;
  double total_sec = 0.0;
  while (total_sec < min_seconds) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) op();
    total_sec += std::chrono::duration<double>(Clock::now() - start).count();
    total_ops += batch;
    if (batch < (std::size_t{1} << 20)) batch *= 2;
  }
  return static_cast<double>(total_ops) / total_sec;
}

volatile double g_sink = 0.0;  // keeps scores observable

struct Metric {
  std::string name;
  double value = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  double min_seconds = 0.4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      min_seconds = 0.08;
    } else if (std::strncmp(arg, "--min-seconds=", 14) == 0) {
      min_seconds = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: %s [--quick] [--min-seconds=S] [--json=PATH]\n",
                  argv[0]);
      return 0;
    }
  }

  using namespace sbx;
  const corpus::TrecLikeGenerator gen;
  const spambayes::Tokenizer tok;

  // --- classification: 400-message filter, fresh ham probe ---------------
  // (the same workload bench_micro's BM_ClassifyMessage uses)
  util::Rng rng(4);
  spambayes::Filter filter;
  for (int i = 0; i < 200; ++i) {
    filter.train_ham_ids(spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_ham(rng))));
    filter.train_spam_ids(spambayes::unique_token_ids(
        tok.tokenize_ids(gen.generate_spam(rng))));
  }
  const email::Message probe_msg = gen.generate_ham(rng);
  const spambayes::TokenSet probe_tokens =
      spambayes::unique_tokens(tok.tokenize(probe_msg));
  const spambayes::TokenIdSet probe_ids =
      spambayes::unique_token_ids(tok.tokenize_ids(probe_msg));

  const double classify_string = ops_per_sec(min_seconds, [&] {
    g_sink = filter.classify_tokens(probe_tokens).score;
  });
  const double classify_interned = ops_per_sec(min_seconds, [&] {
    g_sink = filter.classifier().score_ids(filter.database(), probe_ids).score;
  });

  // Engine path: same probe against the same static database; the memoized
  // per-token probabilities/log-terms stay warm across calls, which is
  // exactly the experiment-loop shape (thousands of classifies between
  // training events).
  spambayes::ScoreEngine engine(filter.options().classifier);
  const double classify_engine = ops_per_sec(min_seconds, [&] {
    g_sink = engine.score_ids(filter.database(), probe_ids).score;
  });

  // Batch path: 64 distinct fresh messages per op through the zero-alloc
  // sink API (per-message evidence buffers reused across the batch).
  std::vector<spambayes::TokenIdSet> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(spambayes::unique_token_ids(tok.tokenize_ids(
        i % 2 == 0 ? gen.generate_ham(rng) : gen.generate_spam(rng))));
  }
  const double classify_engine_batch =
      ops_per_sec(min_seconds,
                  [&] {
                    double acc = 0.0;
                    engine.score_ids_batch(
                        filter.database(), batch,
                        [&](std::size_t, const spambayes::BatchScore& s) {
                          acc += s.score;
                        });
                    g_sink = acc;
                  }) *
      static_cast<double>(batch.size());

  // --- train/untrain round trip (RONI's inner loop shape) ----------------
  util::Rng train_rng(3);
  const email::Message spam_msg = gen.generate_spam(train_rng);
  const spambayes::TokenSet spam_tokens =
      spambayes::unique_tokens(tok.tokenize(spam_msg));
  const spambayes::TokenIdSet spam_ids =
      spambayes::unique_token_ids(tok.tokenize_ids(spam_msg));

  const double train_string = ops_per_sec(min_seconds, [&] {
    filter.train_spam_tokens(spam_tokens);
    filter.untrain_spam_tokens(spam_tokens);
  });
  const double train_interned = ops_per_sec(min_seconds, [&] {
    filter.train_spam_ids(spam_ids);
    filter.untrain_spam_ids(spam_ids);
  });

  // --- tokenization (message -> deduplicated token set, the unit every
  // consumer uses: Filter::message_tokens vs message_token_ids) -----------
  util::Rng tok_rng(1);
  const email::Message ham_msg = gen.generate_ham(tok_rng);
  const double msg_mb =
      static_cast<double>(email::render_message(ham_msg).size()) / 1.0e6;

  const double tokenize_string =
      ops_per_sec(min_seconds,
                  [&] {
                    g_sink = spambayes::unique_tokens(tok.tokenize(ham_msg))
                                 .size();
                  }) *
      msg_mb;
  const double tokenize_ids =
      ops_per_sec(min_seconds,
                  [&] {
                    g_sink = spambayes::unique_token_ids(
                                 tok.tokenize_ids(ham_msg))
                                 .size();
                  }) *
      msg_mb;

  // "metrics" is what tools/check_bench.py gates; the speedup ratios are
  // informational only (a future improvement to the legacy string path
  // would legitimately shrink them).
  const std::vector<Metric> metrics = {
      {"classify_string_msgs_per_sec", classify_string},
      {"classify_interned_msgs_per_sec", classify_interned},
      {"classify_engine_msgs_per_sec", classify_engine},
      {"classify_engine_batch_msgs_per_sec", classify_engine_batch},
      {"train_untrain_string_ops_per_sec", train_string},
      {"train_untrain_interned_ops_per_sec", train_interned},
      {"tokenize_to_set_string_mb_per_sec", tokenize_string},
      {"tokenize_to_ids_mb_per_sec", tokenize_ids},
  };
  const std::vector<Metric> info = {
      {"classify_interned_speedup", classify_interned / classify_string},
      {"classify_engine_speedup", classify_engine / classify_string},
      {"classify_engine_vs_interned_speedup",
       classify_engine / classify_interned},
      {"train_untrain_interned_speedup", train_interned / train_string},
      {"tokenize_to_ids_speedup", tokenize_ids / tokenize_string},
  };

  auto emit_block = [](const std::vector<Metric>& block) {
    std::string out;
    for (std::size_t i = 0; i < block.size(); ++i) {
      char line[160];
      std::snprintf(line, sizeof line, "    \"%s\": %.4f%s\n",
                    block[i].name.c_str(), block[i].value,
                    i + 1 < block.size() ? "," : "");
      out += line;
    }
    return out;
  };
  std::string json = "{\n  \"schema\": 1,\n  \"metrics\": {\n";
  json += emit_block(metrics);
  json += "  },\n  \"info\": {\n";
  json += emit_block(info);
  json += "  }\n}\n";

  std::printf("%s", json.c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "bench_hotpath: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
  }
  return 0;
}
