// Figure 3: "Effect of the focused attack as a function of the number of
// attack emails with a fixed probability (p=0.5) that the attacker guesses
// each token."
//
// Sweeps the attack size from 0 to 10% of the training set; reports the
// percent of target ham misclassified as spam (dashed line) and as unsure
// or spam (solid line).
#include <cstdio>

#include "bench_common.h"
#include "eval/experiments.h"
#include "util/ascii_chart.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Figure 3: focused attack vs. attack size",
                           "Figure 3 of Nelson et al. 2008");

  sbx::eval::FocusedConfig config;
  config.threads = flags.threads;
  if (flags.seed != 0) config.seed = flags.seed;
  std::vector<double> fractions = {0.005, 0.01, 0.02, 0.04,
                                   0.06,  0.08, 0.10};
  if (flags.quick) {
    config.inbox_size = 1'000;
    config.target_count = 10;
    config.repetitions = 2;
    fractions = {0.01, 0.02, 0.05, 0.10};
  }

  std::printf("inbox: %zu messages (%.0f%% spam); guess probability 0.5; "
              "%zu targets x %zu repetitions\n\n",
              config.inbox_size, 100.0 * config.spam_fraction,
              config.target_count, config.repetitions);

  const sbx::corpus::TrecLikeGenerator generator;
  const auto points =
      sbx::eval::run_focused_size(generator, 0.5, fractions, config);

  sbx::util::Table table({"control %", "attack msgs", "targets",
                          "target->spam %", "target->spam|unsure %"});
  for (const auto& p : points) {
    const double n = static_cast<double>(p.targets);
    table.add_row(
        {sbx::util::Table::cell(100.0 * p.attack_fraction, 1),
         std::to_string(p.attack_messages), std::to_string(p.targets),
         sbx::util::Table::cell(100.0 * p.as_spam / n, 1),
         sbx::util::Table::cell(100.0 * p.as_unsure_or_spam / n, 1)});
  }
  std::printf("%s\n", table.to_text().c_str());

  sbx::util::ChartSeries solid{"target as unsure or spam (%)", 'S', {}, {}};
  sbx::util::ChartSeries dashed{"target as spam (%)", 's', {}, {}};
  for (const auto& p : points) {
    const double n = static_cast<double>(p.targets);
    solid.x.push_back(100.0 * p.attack_fraction);
    solid.y.push_back(100.0 * p.as_unsure_or_spam / n);
    dashed.x.push_back(100.0 * p.attack_fraction);
    dashed.y.push_back(100.0 * p.as_spam / n);
  }
  sbx::util::ChartOptions chart_options;
  chart_options.y_min = 0.0;
  chart_options.y_max = 100.0;
  chart_options.x_label = "percent control of training set";
  chart_options.y_label = "percent of target ham misclassified";
  std::printf("%s\n",
              sbx::util::render_chart({solid, dashed}, chart_options).c_str());
  table.write_csv(flags.csv_dir + "/fig3_focused_size.csv");
  std::printf("CSV written to %s/fig3_focused_size.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: both lines rise with attack size; the paper\n"
      "reports ~32%% target->spam at 100 attack emails (2%% of 5,000).\n");
  return 0;
}
