// Figure 3: "Effect of the focused attack as a function of the number of
// attack emails with a fixed probability (p=0.5) that the attacker guesses
// each token."
//
// Thin presentation wrapper over the registry's "focused-size" experiment;
// the chart renders the document's full-precision series.
#include <cstdio>

#include "bench_common.h"
#include "eval/registry.h"
#include "util/ascii_chart.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header("Figure 3: focused attack vs. attack size",
                           "Figure 3 of Nelson et al. 2008");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("focused-size");
  const sbx::eval::Config config = flags.resolve(experiment);

  std::printf("inbox: %zu messages (%.0f%% spam); guess probability 0.5; "
              "%zu targets x %zu repetitions\n\n",
              static_cast<std::size_t>(config.get_uint("inbox_size")),
              100.0 * config.get_double("spam_fraction"),
              static_cast<std::size_t>(config.get_uint("target_count")),
              static_cast<std::size_t>(config.get_uint("repetitions")));

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  std::printf("%s\n", doc.table("size").to_text().c_str());

  sbx::util::ChartSeries solid{doc.series[0].name, 'S', doc.series[0].x,
                               doc.series[0].y};
  sbx::util::ChartSeries dashed{doc.series[1].name, 's', doc.series[1].x,
                                doc.series[1].y};
  sbx::util::ChartOptions chart_options;
  chart_options.y_min = 0.0;
  chart_options.y_max = 100.0;
  chart_options.x_label = "percent control of training set";
  chart_options.y_label = "percent of target ham misclassified";
  std::printf("%s\n",
              sbx::util::render_chart({solid, dashed}, chart_options).c_str());
  doc.table("size").write_csv(flags.csv_dir + "/fig3_focused_size.csv");
  std::printf("CSV written to %s/fig3_focused_size.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\npaper shape check: both lines rise with attack size; the paper\n"
      "reports ~32%% target->spam at 100 attack emails (2%% of 5,000).\n");
  return 0;
}
