// Extension: Exploratory (good-word) evasion vs. Causative poisoning.
//
// The paper positions its Causative attacks against the Exploratory
// attacks of prior work (§3.1, §6: Lowd & Meek; Wittel & Wu). This bench
// runs both against the same victim and makes the contrast quantitative:
//
//   * good-word evasion gets ONE spam past the fixed filter, needs
//     per-message work, and leaves the filter intact for everyone else;
//   * a 1% dictionary poisoning breaks ham delivery for the whole
//     organization with a handful of emails and no query access at all.
#include <cstdio>

#include "bench_common.h"
#include "core/attack_math.h"
#include "core/dictionary_attack.h"
#include "core/good_word_attack.h"
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: good-word evasion (Exploratory) vs. poisoning (Causative)",
      "Sections 3.1 + 6 (Lowd-Meek / Wittel-Wu contrast)");

  using namespace sbx;
  corpus::TrecLikeGenerator generator;
  const std::size_t inbox_size = flags.quick ? 2'000 : 10'000;
  util::Rng rng(flags.seed != 0 ? flags.seed : 20080407);

  corpus::Dataset inbox = generator.sample_mailbox(inbox_size, 0.5, rng);
  spambayes::Filter filter;
  for (const auto& item : inbox.items) {
    if (item.label == corpus::TrueLabel::spam) {
      filter.train_spam(item.message);
    } else {
      filter.train_ham(item.message);
    }
  }
  std::printf("victim filter trained on %zu messages\n\n", inbox_size);

  // The evader pads with the most common words of the victim's language —
  // exactly Wittel & Wu's "common words" strategy (the attacker plausibly
  // knows high-frequency English, not the victim's mailbox).
  std::vector<std::string> common_words(
      generator.ham_core_words().begin(),
      generator.ham_core_words().begin() + 2'000);
  core::GoodWordAttack evader(common_words, /*batch_size=*/10);
  std::printf("good-word attack taxonomy: %s\n",
              core::GoodWordAttack::properties().description().c_str());

  sbx::util::Table table({"goal", "spam tried", "evaded %",
                          "median words added", "median queries"});
  for (auto goal : {spambayes::Verdict::unsure, spambayes::Verdict::ham}) {
    const int n = flags.quick ? 60 : 200;
    std::size_t evaded = 0;
    std::vector<double> words, queries;
    util::Rng probe_rng(7);
    for (int i = 0; i < n; ++i) {
      auto result = evader.evade(filter, generator.generate_spam(probe_rng),
                                 /*max_words=*/2'000, goal);
      if (result.evaded) {
        ++evaded;
        words.push_back(static_cast<double>(result.words_added));
        queries.push_back(static_cast<double>(result.queries));
      }
    }
    table.add_row(
        {std::string(spambayes::to_string(goal)), std::to_string(n),
         sbx::util::Table::cell(100.0 * evaded / n, 1),
         evaded ? sbx::util::Table::cell(util::quantile(words, 0.5), 0)
                : std::string("-"),
         evaded ? sbx::util::Table::cell(util::quantile(queries, 0.5), 0)
                : std::string("-")});
  }
  std::printf("%s\n", table.to_text().c_str());

  // The causative comparison: the same victim, 1% dictionary poisoning.
  core::DictionaryAttack poison =
      core::DictionaryAttack::usenet(generator.lexicons());
  std::size_t copies = core::attack_message_count(inbox_size, 0.01);
  filter.train_spam_copies(poison.attack_message(),
                           static_cast<std::uint32_t>(copies));
  util::Rng ham_rng(8);
  int ham_lost = 0;
  const int n = flags.quick ? 100 : 300;
  for (int i = 0; i < n; ++i) {
    ham_lost += filter.classify(generator.generate_ham(ham_rng)).verdict !=
                        spambayes::Verdict::ham
                    ? 1
                    : 0;
  }
  std::printf("causative comparison: %zu poison emails (1%%) -> %.1f%% of\n"
              "ALL ham misdelivered, zero filter queries needed.\n",
              copies, 100.0 * ham_lost / n);

  table.write_csv(flags.csv_dir + "/ext_good_words.csv");
  std::printf("\nCSV written to %s/ext_good_words.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: evasion into the unsure folder is cheap per message but\n"
      "helps only that message; reaching a ham verdict is much harder.\n"
      "Poisoning amortizes: one small causative injection degrades the\n"
      "victim's mail service wholesale — the paper's core point.\n");
  return 0;
}
