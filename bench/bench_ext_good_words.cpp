// Extension: Exploratory (good-word) evasion vs. Causative poisoning.
//
// Thin presentation wrapper over the registry's "good-word" experiment,
// which runs both attack classes against the same victim (§3.1, §6: Lowd &
// Meek; Wittel & Wu):
//
//   * good-word evasion gets ONE spam past the fixed filter, needs
//     per-message work, and leaves the filter intact for everyone else;
//   * a 1% dictionary poisoning breaks ham delivery for the whole
//     organization with a handful of emails and no query access at all.
#include <cstdio>

#include "bench_common.h"
#include "core/good_word_attack.h"
#include "eval/registry.h"

int main(int argc, char** argv) {
  const sbx::bench::BenchFlags flags = sbx::bench::parse_flags(argc, argv);
  sbx::bench::print_header(
      "Extension: good-word evasion (Exploratory) vs. poisoning (Causative)",
      "Sections 3.1 + 6 (Lowd-Meek / Wittel-Wu contrast)");

  const sbx::eval::Experiment& experiment =
      sbx::eval::builtin_registry().get("good-word");
  const sbx::eval::Config config = flags.resolve(experiment);

  std::printf("victim filter trained on %zu messages\n\n",
              static_cast<std::size_t>(config.get_uint("inbox_size")));
  std::printf("good-word attack taxonomy: %s\n",
              sbx::core::GoodWordAttack::properties().description().c_str());

  const sbx::eval::ResultDoc doc =
      experiment.run(config, flags.run_context());

  std::printf("%s\n", doc.table("evasion").to_text().c_str());
  for (const auto& line : doc.report) {
    std::printf("%s\n", line.c_str());
  }

  doc.table("evasion").write_csv(flags.csv_dir + "/ext_good_words.csv");
  std::printf("\nCSV written to %s/ext_good_words.csv\n",
              flags.csv_dir.c_str());
  std::printf(
      "\nreading: evasion into the unsure folder is cheap per message but\n"
      "helps only that message; reaching a ham verdict is much harder.\n"
      "Poisoning amortizes: one small causative injection degrades the\n"
      "victim's mail service wholesale — the paper's core point.\n");
  return 0;
}
