// sbx_serve — the multi-tenant SpamBayes serving daemon.
//
// Builds a deterministic shared base filter (TREC-like corpus, seeded),
// shards N user models over it as copy-on-write overlays, and serves the
// framed classify/train/untrain/stats protocol on a UNIX or loopback TCP
// socket until a shutdown request (or SIGTERM) arrives.
//
//   sbx_serve --listen=tcp:0 --users=64 --shards=4 --base-size=2000
//             --spam-fraction=0.5 --seed=42
//
// Crash safety: with --data-dir the daemon write-ahead-logs every
// train/untrain before it publishes (--fsync=none|batch|always picks the
// disk-durability point; --snapshot-every=N checkpoints shard overlays and
// truncates their logs). On startup it replays snapshot + log back to a
// state bit-identical to an uninterrupted run — kill -9 the daemon at any
// point and restart it from the same --data-dir to verify (tools/
// sbx_chaos.sh automates exactly that). A MANIFEST file pins the topology
// flags; restarting with different ones is refused instead of silently
// misrouting recovered users.
//
// The resolved endpoint (real port for tcp:0) is printed on stdout before
// serving starts, so scripts can wait for the line and connect:
//
//   sbx_serve: listening on tcp:127.0.0.1:40613 (64 users, 4 shards, ...)
//
// Replication (PR 9): --replicate-to=ENDPOINT makes this node a primary
// that ships every committed WAL record to a warm standby started with
// --standby (the standby applies them through the recovery replay path and
// stays bit-identical at every acked watermark). --repl-ack picks the ack
// policy (async = ship in background, quorum = client acks wait for the
// standby). SIGUSR1 (or a Promote frame) flips a standby to primary with
// no replay gap; --redirect-to=ENDPOINT is what a standby's kNotPrimary
// rejections point writers at until then.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight
// requests, fsync the logs, exit 0. SBX_FAULT=<spec> arms the fault
// injector (see serve/fault_injector.h) for chaos testing.
//
// Drive it with sbx_loadgen, which also knows how to mirror every request
// into an identical in-process frontend and verify score bits match.

#include <signal.h>

#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "serve/base_model.h"
#include "serve/fault_injector.h"
#include "serve/frontend.h"
#include "serve/recovery.h"
#include "serve/replication.h"
#include "serve/server.h"
#include "serve/wal.h"
#include "util/config.h"
#include "util/error.h"

namespace {

struct Flags {
  std::string listen = "tcp:0";
  sbx::serve::FrontendConfig frontend;
  sbx::serve::BaseModelConfig base;
  sbx::serve::ServerConfig server;
  std::string data_dir;  // empty = in-memory only
  sbx::serve::FsyncMode fsync = sbx::serve::FsyncMode::kBatch;
  std::uint64_t snapshot_every = 0;
  bool standby = false;
  std::string redirect_to;    // standby: where kNotPrimary bounces writers
  std::string replicate_to;   // primary: standby endpoint to ship WAL to
  sbx::serve::ReplAckPolicy repl_ack = sbx::serve::ReplAckPolicy::kAsync;
  long repl_timeout_ms = 10'000;
};

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: sbx_serve [--listen=unix:PATH|tcp:PORT] [--users=N]\n"
      "                 [--shards=N] [--base-size=N]\n"
      "                 [--spam-fraction=F] [--seed=N]\n"
      "                 [--data-dir=PATH] [--fsync=none|batch|always]\n"
      "                 [--snapshot-every=N]\n"
      "                 [--dedup-window=N] [--max-connections=N]\n"
      "                 [--read-timeout-ms=MS] [--idle-timeout-ms=MS]\n"
      "                 [--standby] [--redirect-to=ENDPOINT]\n"
      "                 [--replicate-to=ENDPOINT]\n"
      "                 [--repl-ack=none|async|quorum]\n"
      "                 [--repl-timeout-ms=MS]\n"
      "\n"
      "Serves the sbx classify/train/untrain/stats protocol until a\n"
      "shutdown request or SIGTERM arrives. tcp:0 picks a free loopback\n"
      "port and prints it. --data-dir enables the mutation WAL and\n"
      "crash recovery; restarting from the same directory replays the\n"
      "log back to the pre-crash state. --replicate-to ships committed\n"
      "WAL records to a standby (started with --standby and the same\n"
      "topology flags); SIGUSR1 promotes a standby to primary.\n");
  return to == stdout ? 0 : 2;
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  using sbx::util::parse_double;
  using sbx::util::parse_uint;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::exit(usage(stdout));
    } else if (arg.rfind("--listen=", 0) == 0) {
      flags.listen = arg.substr(9);
    } else if (arg.rfind("--users=", 0) == 0) {
      flags.frontend.user_count = parse_uint(arg.substr(8), "--users");
    } else if (arg.rfind("--shards=", 0) == 0) {
      flags.frontend.shard_count = parse_uint(arg.substr(9), "--shards");
    } else if (arg.rfind("--base-size=", 0) == 0) {
      flags.base.base_size = parse_uint(arg.substr(12), "--base-size");
    } else if (arg.rfind("--spam-fraction=", 0) == 0) {
      flags.base.spam_fraction =
          parse_double(arg.substr(16), "--spam-fraction");
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.base.seed = parse_uint(arg.substr(7), "--seed");
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      flags.data_dir = arg.substr(11);
    } else if (arg.rfind("--fsync=", 0) == 0) {
      flags.fsync = sbx::serve::fsync_mode_from_string(arg.substr(8));
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      flags.snapshot_every = parse_uint(arg.substr(17), "--snapshot-every");
    } else if (arg.rfind("--dedup-window=", 0) == 0) {
      flags.frontend.dedup_window =
          parse_uint(arg.substr(15), "--dedup-window");
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      flags.server.max_connections =
          parse_uint(arg.substr(18), "--max-connections");
    } else if (arg.rfind("--read-timeout-ms=", 0) == 0) {
      flags.server.read_timeout_ms = static_cast<long>(
          parse_uint(arg.substr(18), "--read-timeout-ms"));
    } else if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
      flags.server.idle_timeout_ms = static_cast<long>(
          parse_uint(arg.substr(18), "--idle-timeout-ms"));
    } else if (arg == "--standby") {
      flags.standby = true;
    } else if (arg.rfind("--redirect-to=", 0) == 0) {
      flags.redirect_to = arg.substr(14);
    } else if (arg.rfind("--replicate-to=", 0) == 0) {
      flags.replicate_to = arg.substr(15);
    } else if (arg.rfind("--repl-ack=", 0) == 0) {
      flags.repl_ack = sbx::serve::repl_ack_policy_from_string(arg.substr(11));
    } else if (arg.rfind("--repl-timeout-ms=", 0) == 0) {
      flags.repl_timeout_ms = static_cast<long>(
          parse_uint(arg.substr(18), "--repl-timeout-ms"));
    } else {
      std::fprintf(stderr, "sbx_serve: unknown flag '%s'\n\n", arg.c_str());
      return false;
    }
  }
  return true;
}

sbx::serve::Server* g_server = nullptr;

void handle_drain_signal(int) {
  // request_drain is async-signal-safe (one write to a self-pipe).
  if (g_server != nullptr) g_server->request_drain();
}

void handle_promote_signal(int) {
  // request_promote is async-signal-safe (same self-pipe, promote byte),
  // and so is the write(2) below — harnesses grep it to know the signal
  // landed (the role flip itself completes on the accept-loop thread).
  if (g_server != nullptr) {
    g_server->request_promote();
    const char msg[] = "sbx_serve: promote requested\n";
    (void)!::write(STDOUT_FILENO, msg, sizeof(msg) - 1);
  }
}

/// Refuses to recover into a differently-shaped process: routing and the
/// base filter derive from these five values, so a mismatch would misroute
/// every recovered overlay.
void check_or_write_manifest(const Flags& flags) {
  sbx::serve::Manifest expected;
  expected.users = flags.frontend.user_count;
  expected.shards = flags.frontend.shard_count;
  expected.base_size = flags.base.base_size;
  expected.spam_fraction = flags.base.spam_fraction;
  expected.base_seed = flags.base.seed;
  if (const auto found = sbx::serve::read_manifest(flags.data_dir)) {
    if (!(*found == expected)) {
      throw sbx::InvalidArgument(
          "sbx_serve: --data-dir " + flags.data_dir +
          " was created with a different topology (users/shards/base flags "
          "must match the manifest)");
    }
    return;
  }
  sbx::serve::write_manifest(flags.data_dir, expected);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return usage(stderr);
  try {
    sbx::serve::FaultInjector::instance().configure_from_env();

    if (flags.standby && !flags.replicate_to.empty()) {
      throw sbx::InvalidArgument(
          "sbx_serve: --standby and --replicate-to are mutually exclusive "
          "(a node is either the shipping primary or the applying standby)");
    }
    if (!flags.replicate_to.empty() && flags.data_dir.empty()) {
      throw sbx::InvalidArgument(
          "sbx_serve: --replicate-to ships WAL records and needs --data-dir");
    }

    std::unique_ptr<sbx::serve::Durability> durability;
    if (!flags.data_dir.empty()) {
      sbx::serve::DurabilityConfig dc;
      dc.data_dir = flags.data_dir;
      dc.fsync = flags.fsync;
      dc.snapshot_every = flags.snapshot_every;
      durability = std::make_unique<sbx::serve::Durability>(
          dc, flags.frontend.shard_count);
      check_or_write_manifest(flags);
    }

    sbx::serve::ServeFrontend frontend(
        sbx::serve::build_base_filter(flags.base), flags.frontend,
        std::move(durability));

    if (!flags.data_dir.empty()) {
      const sbx::serve::RecoveryStats rs = sbx::serve::recover(
          frontend, flags.data_dir, /*repair_torn_tail=*/true);
      frontend.durability()->note_recovered_seqno(rs.max_seqno);
      frontend.set_recovery_stats(rs);
      std::printf(
          "sbx_serve: recovered %llu snapshot users, replayed %llu wal "
          "records (%llu torn/corrupt dropped) in %llu ms\n",
          static_cast<unsigned long long>(rs.snapshot_users),
          static_cast<unsigned long long>(rs.replayed_records),
          static_cast<unsigned long long>(rs.torn_dropped),
          static_cast<unsigned long long>(rs.duration_ms));
    }

    if (flags.standby) {
      frontend.set_standby(flags.redirect_to);
    }

    if (!flags.replicate_to.empty() &&
        flags.repl_ack != sbx::serve::ReplAckPolicy::kNone) {
      sbx::serve::ReplicationConfig rc;
      rc.target = flags.replicate_to;
      rc.ack = flags.repl_ack;
      rc.connect_timeout_ms = flags.repl_timeout_ms;
      rc.op_timeout_ms = flags.repl_timeout_ms;
      frontend.attach_replicator(
          std::make_unique<sbx::serve::Replicator>(rc));
      // Ship the restart backlog: WAL records that survived in the logs
      // may postdate what the standby saw (it dedups anything it already
      // applied by seqno, so over-shipping is harmless; records already
      // folded into snapshots were acked before their checkpoint).
      std::uint64_t backlog = 0;
      for (std::size_t s = 0; s < frontend.shard_count(); ++s) {
        sbx::serve::read_wal(
            sbx::serve::wal_path_in(flags.data_dir, s),
            [&](const sbx::serve::WalRecord& record) {
              frontend.replicator()->enqueue(static_cast<std::uint32_t>(s),
                                             record);
              ++backlog;
            });
      }
      if (backlog > 0) {
        std::printf("sbx_serve: shipping %llu backlog wal records to %s\n",
                    static_cast<unsigned long long>(backlog),
                    flags.replicate_to.c_str());
      }
    }

    sbx::serve::Server server(frontend, flags.listen, flags.server);
    g_server = &server;
    struct sigaction sa {};
    sa.sa_handler = handle_drain_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    struct sigaction sp {};
    sp.sa_handler = handle_promote_signal;
    ::sigaction(SIGUSR1, &sp, nullptr);

    std::printf("sbx_serve: listening on %s (%zu users, %zu shards, base %zu "
                "msgs, seed %llu, role %s%s%s)\n",
                server.endpoint().c_str(), frontend.user_count(),
                frontend.shard_count(), flags.base.base_size,
                static_cast<unsigned long long>(flags.base.seed),
                flags.standby ? "standby" : "primary",
                flags.data_dir.empty() ? "" : ", wal fsync=",
                flags.data_dir.empty()
                    ? ""
                    : sbx::serve::to_string(flags.fsync).c_str());
    std::fflush(stdout);
    server.run();
    g_server = nullptr;
    std::printf("sbx_serve: shutdown\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbx_serve: %s\n", e.what());
    return 1;
  }
}
