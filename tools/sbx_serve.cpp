// sbx_serve — the multi-tenant SpamBayes serving daemon.
//
// Builds a deterministic shared base filter (TREC-like corpus, seeded),
// shards N user models over it as copy-on-write overlays, and serves the
// framed classify/train/untrain/stats protocol on a UNIX or loopback TCP
// socket until a shutdown request arrives.
//
//   sbx_serve --listen=tcp:0 --users=64 --shards=4 --base-size=2000
//             --spam-fraction=0.5 --seed=42
//
// The resolved endpoint (real port for tcp:0) is printed on stdout before
// serving starts, so scripts can wait for the line and connect:
//
//   sbx_serve: listening on tcp:127.0.0.1:40613 (64 users, 4 shards, ...)
//
// Drive it with sbx_loadgen, which also knows how to mirror every request
// into an identical in-process frontend and verify score bits match.

#include <cstdio>
#include <exception>
#include <string>

#include "serve/base_model.h"
#include "serve/frontend.h"
#include "serve/server.h"
#include "util/config.h"

namespace {

struct Flags {
  std::string listen = "tcp:0";
  sbx::serve::FrontendConfig frontend;
  sbx::serve::BaseModelConfig base;
};

int usage(std::FILE* to) {
  std::fprintf(to,
               "usage: sbx_serve [--listen=unix:PATH|tcp:PORT] [--users=N]\n"
               "                 [--shards=N] [--base-size=N]\n"
               "                 [--spam-fraction=F] [--seed=N]\n"
               "\n"
               "Serves the sbx classify/train/untrain/stats protocol until a\n"
               "shutdown request arrives. tcp:0 picks a free loopback port\n"
               "and prints it.\n");
  return to == stdout ? 0 : 2;
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  using sbx::util::parse_double;
  using sbx::util::parse_uint;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::exit(usage(stdout));
    } else if (arg.rfind("--listen=", 0) == 0) {
      flags.listen = arg.substr(9);
    } else if (arg.rfind("--users=", 0) == 0) {
      flags.frontend.user_count = parse_uint(arg.substr(8), "--users");
    } else if (arg.rfind("--shards=", 0) == 0) {
      flags.frontend.shard_count = parse_uint(arg.substr(9), "--shards");
    } else if (arg.rfind("--base-size=", 0) == 0) {
      flags.base.base_size = parse_uint(arg.substr(12), "--base-size");
    } else if (arg.rfind("--spam-fraction=", 0) == 0) {
      flags.base.spam_fraction =
          parse_double(arg.substr(16), "--spam-fraction");
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.base.seed = parse_uint(arg.substr(7), "--seed");
    } else {
      std::fprintf(stderr, "sbx_serve: unknown flag '%s'\n\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return usage(stderr);
  try {
    sbx::serve::ServeFrontend frontend(
        sbx::serve::build_base_filter(flags.base), flags.frontend);
    sbx::serve::Server server(frontend, flags.listen);
    std::printf("sbx_serve: listening on %s (%zu users, %zu shards, base %zu "
                "msgs, seed %llu)\n",
                server.endpoint().c_str(), frontend.user_count(),
                frontend.shard_count(), flags.base.base_size,
                static_cast<unsigned long long>(flags.base.seed));
    std::fflush(stdout);
    server.run();
    std::printf("sbx_serve: shutdown\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbx_serve: %s\n", e.what());
    return 1;
  }
}
