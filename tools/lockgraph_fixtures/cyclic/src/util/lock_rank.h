// Fixture hierarchy that FORGOT to declare the ranks these mutexes use:
// the extractor cannot rank-check them, so the acquisition cycle below
// must be caught by cycle detection alone.
#pragma once
namespace fix {
enum class LockRank : int {
  kUnrelated = 10,
};
}
