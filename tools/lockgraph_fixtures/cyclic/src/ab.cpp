#include "ab.h"

void A::step() {
  util::MutexLock lock(a_mutex_);
  other_.poke();  // A::a_mutex_ -> B::b_mutex_
}

void A::kick() {
  util::MutexLock lock(a_mutex_);
}

void B::poke() {
  util::MutexLock lock(b_mutex_);
  peer_->kick();  // B::b_mutex_ -> A::a_mutex_: closes the cycle
}
