// Fixture: A::step locks a_mutex_ then calls B::poke; B::poke locks
// b_mutex_ then calls A::kick — a classic two-lock deadlock cycle.
#pragma once
#include "util/lock_rank.h"

class B;

class A {
 public:
  void step() SBX_EXCLUDES(a_mutex_);
  void kick() SBX_EXCLUDES(a_mutex_);

 private:
  util::Mutex a_mutex_{util::LockRank::kGhostA, "A::a_mutex_"};
  B* other_;
};

class B {
 public:
  void poke() SBX_EXCLUDES(b_mutex_);

 private:
  util::Mutex b_mutex_{util::LockRank::kGhostB, "B::b_mutex_"};
  A* peer_;
};
