// Fixture: a well-ordered two-lock design. Db::put holds the outer
// database lock and appends to the (inner) log.
#pragma once
#include "util/lock_rank.h"

class Log {
 public:
  void append() SBX_EXCLUDES(io_mutex_);

 private:
  util::Mutex io_mutex_{util::LockRank::kLog, "Log::io_mutex_"};
};

class Db {
 public:
  void put() SBX_EXCLUDES(mutex_);

 private:
  void compact() SBX_REQUIRES(mutex_);
  util::Mutex mutex_{util::LockRank::kDb, "Db::mutex_"};
  Log log_;
};
