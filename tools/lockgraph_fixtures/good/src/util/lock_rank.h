// Fixture hierarchy: Db (outer) may acquire Log (inner), never the
// other way around.
#pragma once
namespace fix {
enum class LockRank : int {
  kDb = 10,
  kLog = 20,
};
}
