#include "db.h"

void Log::append() {
  util::MutexLock lock(io_mutex_);
}

void Db::put() {
  util::MutexLock lock(mutex_);
  log_.append();  // Db::mutex_ -> Log::io_mutex_: ascends, fine
  compact();      // REQUIRES method: nothing new acquired
}

void Db::compact() {
  log_.append();  // seeded held set: same edge, still ascending
}
