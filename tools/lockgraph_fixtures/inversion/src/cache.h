// Fixture: Index::rebuild acquires the Cache lock while holding the
// Index lock — backwards against the declared ranks.
#pragma once
#include "util/lock_rank.h"

class Cache {
 public:
  void evict() SBX_EXCLUDES(mutex_);

 private:
  util::Mutex mutex_{util::LockRank::kCache, "Cache::mutex_"};
};

class Index {
 public:
  void rebuild() SBX_EXCLUDES(index_mutex_);

 private:
  util::Mutex index_mutex_{util::LockRank::kIndex, "Index::index_mutex_"};
  Cache* cache_;
};
