#include "cache.h"

void Cache::evict() {
  util::MutexLock lock(mutex_);
}

void Index::rebuild() {
  util::MutexLock lock(index_mutex_);
  cache_->evict();  // kIndex=20 held while acquiring kCache=10: inverted
}
