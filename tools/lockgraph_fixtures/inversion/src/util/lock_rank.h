// Fixture hierarchy: Cache is declared OUTER (must be taken first),
// Index inner.
#pragma once
namespace fix {
enum class LockRank : int {
  kCache = 10,
  kIndex = 20,
};
}
