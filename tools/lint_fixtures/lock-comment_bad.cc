// Fixture: locking prose without the matching annotation must fire.
class Widget {
 public:
  /// Rebalances the tree (caller holds the write lock).
  void rebalance();

  // Only safe while the mutex is held by the calling thread.
  int unsafe_size() const;
};
