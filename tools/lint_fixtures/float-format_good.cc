// Fixture: integer formatting, mentions in comments, and an audited
// helper with an allow-marker stay quiet.
#include <cstdio>
#include <string>

// snprintf("%f") would be banned here — saying so in a comment is fine.
std::string good(int value) {
  char buf[32];
  // sbx-lint: allow(float-format): audited helper, delegates to %d only
  std::snprintf(buf, sizeof(buf), "%d", value);
  return buf;
}
