// Fixture: range-for over an unordered container must fire.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int bad() {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> ids = {1, 2, 3};
  int total = 0;
  for (const auto& entry : counts) {
    total += entry.second;
  }
  for (int id : ids) {
    total += id;
  }
  return total;
}
