// Fixture: raw standard-library sync primitives must fire — they are
// invisible to clang TSA, the lock-rank tracker, and sbx_lockgraph.
#include <condition_variable>
#include <mutex>

class Queue {
 public:
  void push(int v) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ = v;
    cv_.notify_one();
  }

  int pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock);
    return value_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int value_ = 0;
};

class Registry {
  std::shared_mutex table_mutex_;
  std::recursive_mutex legacy_mutex_;
};

void scoped() {
  static std::timed_mutex m;
  std::scoped_lock lock(m);
}
