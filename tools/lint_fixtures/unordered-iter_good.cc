// Fixture: point lookups, sorted-copy iteration, and an explicitly
// justified allow-marker stay quiet.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int good() {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> ids = {1, 2, 3};
  int total = counts.count("x") ? counts.at("x") : 0;

  // Iterating a sorted copy is the sanctioned pattern.
  std::vector<int> ordered(ids.begin(), ids.end());
  std::sort(ordered.begin(), ordered.end());
  for (int id : ordered) {
    total += id;
  }

  for (int id : ids) {  // sbx-lint: allow(unordered-iter): feeds a commutative sum, order-free
    total -= id;
  }
  return total;
}
