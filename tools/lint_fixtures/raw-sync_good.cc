// Fixture: the ranked util:: wrappers (and an explained allow-marker)
// stay quiet. Mentions of std::mutex in comments or strings do not
// count either — the rule reads code, not prose.
#include "util/thread_annotations.h"

class Queue {
 public:
  void push(int v) {
    const sbx::util::MutexLock lock(mutex_);
    value_ = v;
    cv_.notify_one();
  }

  int pop() {
    sbx::util::MutexLock lock(mutex_);
    cv_.wait(lock);  // wraps std::condition_variable under the hood
    return value_;
  }

 private:
  sbx::util::Mutex mutex_{sbx::util::LockRank::kLeaf, "Queue::mutex_"};
  sbx::util::CondVar cv_;
  int value_ SBX_GUARDED_BY(mutex_) = 0;
};

const char* kDocs = "never hand out a std::mutex from an API";

// sbx-lint: allow(raw-sync): interop shim for a third-party callback API
extern void register_callback(std::mutex* external);
