// Fixture: process spawns and unsafe temp names must fire.
#include <cstdio>
#include <cstdlib>

void bad() {
  std::system("ls /tmp");
  FILE* p = popen("date", "r");
  char name[L_tmpnam];
  tmpnam(name);
  char tpl[] = "/tmp/sbxXXXXXX";
  mktemp(tpl);
  (void)p;
}
