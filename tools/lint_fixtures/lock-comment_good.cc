// Fixture: locking prose backed by SBX_REQUIRES stays quiet.
#include "util/thread_annotations.h"

class Widget {
 public:
  /// Rebalances the tree (caller holds the write lock).
  void rebalance() SBX_REQUIRES(mutex_);

  // Only safe while the mutex is held by the calling thread; the
  // annotation on the declaration below is what enforces it.
  int size_locked() const SBX_REQUIRES(mutex_);

 private:
  sbx::util::Mutex mutex_;
};
