// Fixture: every banned entropy / wall-clock source must fire.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int bad() {
  std::srand(42);
  int a = std::rand();
  std::random_device rd;
  auto now = std::chrono::system_clock::now();
  auto hr = std::chrono::high_resolution_clock::now();
  timeval tv;
  gettimeofday(&tv, nullptr);
  std::time_t t = std::time(nullptr);
  std::tm* lt = std::localtime(&t);
  (void)now;
  (void)hr;
  (void)lt;
  return a + static_cast<int>(rd());
}

// A replication-style timer built on the wall clock: steps/slews in the
// system clock would stretch or collapse the ship deadline.
bool bad_replication_timer() {
  const auto deadline =
      std::chrono::system_clock::now() + std::chrono::milliseconds(100);
  return std::chrono::system_clock::now() < deadline;
}
