// Fixture: the sanctioned forms stay quiet — util::random streams,
// steady_clock durations, identifiers that merely contain "time" or
// "rand", and banned names appearing only in comments or strings.
#include <chrono>
#include <string>

#include "util/random.h"

// rand() and system_clock mentioned in a comment are fine.
int good(sbx::util::Rng& rng) {
  const auto t0 = std::chrono::steady_clock::now();
  int draw = static_cast<int>(rng.uniform_int(0, 6));
  int runtime_ms = 0;       // "time" inside an identifier
  int operand = draw;       // "rand" inside an identifier
  std::string msg = "never call rand() or time(nullptr) here";
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  (void)elapsed;
  int strand(int);          // declaration, not a call to srand
  double uptime(float);     // not time(...)
  return runtime_ms + operand + static_cast<int>(msg.size());
}

// The sanctioned replication-timer shape (replication.cpp's flush /
// backoff waits): a steady_clock deadline consumed in bounded slices, so
// the wait is immune to wall-clock steps and wakes early on stop().
bool good_replication_timer(bool (*wait_slice_ms)(long), long timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (wait_slice_ms(100)) return true;
  }
  return false;
}
