// Fixture: ad-hoc float formatting outside the round-trip helpers.
#include <charconv>
#include <cstdio>
#include <iomanip>
#include <sstream>

void bad(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  sprintf(buf, "%g", value);
  std::to_chars(buf, buf + sizeof(buf), value);
  std::ostringstream os;
  os << std::setprecision(17) << value;
}
