// Fixture: lookalike identifiers and sanctioned temp-file handling
// stay quiet.
#include <chrono>
#include <cstdlib>
#include <string>

struct Filesystem {
  int run(int);
};

int good(Filesystem& fs) {
  // system() in a comment is fine, as is tmpnam or popen.
  auto tick = std::chrono::steady_clock::now();
  int ecosystem(int);            // identifier merely containing "system"
  std::string subsystem = "io";  // ditto
  int made = mkstemp_like();     // not mktemp(
  (void)tick;
  return fs.run(made) + static_cast<int>(subsystem.size());
}
