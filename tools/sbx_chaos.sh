#!/usr/bin/env bash
# sbx_chaos.sh — kill -9 fault-injection harness for sbx_serve.
#
# Scenario "recovery" (default, the PR 7 contract):
#   Phase 1: start a WAL-enabled server, drive a train-heavy workload, and
#   kill -9 the server mid-run (no drain, no final fsync — the worst case).
#   Phase 2: restart the server from the same --data-dir and run a
#   verifying workload whose mirror replays the same snapshot+WAL. Zero
#   mismatches proves the recovered state is bit-identical to what the WAL
#   captured; the run fails if recovery replayed nothing.
#
# Scenario "failover" (the PR 9 contract):
#   Start a standby, then a primary shipping its WAL with --repl-ack=quorum
#   (every ack the loadgen sees implies the standby applied the record).
#   kill -9 the primary mid-run, promote the standby with SIGUSR1, and run
#   a verifying workload against the promoted standby whose mirror replays
#   the STANDBY's own data dir. Zero mismatches + a non-empty standby log
#   proves zero acked-mutation loss across the failover.
#
# Usage: sbx_chaos.sh [recovery|failover] BUILD_DIR [JSON_OUT]
#   BUILD_DIR  cmake build tree containing tools/sbx_serve + tools/sbx_loadgen
#   JSON_OUT   optional BENCH-shaped output from the verify phase
#              (metrics are prefixed wal_ for recovery, repl_ for failover,
#              keeping them distinct from the non-durable serve-smoke runs)
#
# The legacy spelling `sbx_chaos.sh BUILD_DIR [JSON_OUT]` still runs the
# recovery scenario.

set -u -o pipefail

SCENARIO=recovery
case "${1:-}" in
  recovery|failover) SCENARIO=$1; shift ;;
esac
BUILD_DIR=${1:?usage: sbx_chaos.sh [recovery|failover] BUILD_DIR [JSON_OUT]}
JSON_OUT=${2:-}
SERVE="$BUILD_DIR/tools/sbx_serve"
LOADGEN="$BUILD_DIR/tools/sbx_loadgen"

WORK=$(mktemp -d /tmp/sbx_chaos.XXXXXX)
DATA="$WORK/data"
SOCK="unix:$WORK/serve.sock"
SERVER_PID=
STANDBY_PID=
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null;
      [ -n "$STANDBY_PID" ] && kill -9 "$STANDBY_PID" 2>/dev/null;
      rm -rf "$WORK"' EXIT

fail() { echo "sbx_chaos: FAIL: $*" >&2; exit 1; }

# start_server LOG EXTRA_FLAGS... — starts sbx_serve on $SOCK, pid in
# SERVER_PID, waits for the listening line.
start_server() {
  local log=$1
  shift
  "$SERVE" --listen="$SOCK" --users=32 --shards=4 --base-size=600 \
           --data-dir="$DATA" --fsync=batch --snapshot-every=64 \
           "$@" >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$log" 2>/dev/null && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  cat "$log" >&2
  fail "server did not come up"
}

# run_verify ENDPOINT DATA_DIR PREFIX LOG — the bit-identity verification
# loadgen: replays DATA_DIR into a mirror and cross-checks every response.
run_verify() {
  local endpoint=$1 data_dir=$2 prefix=$3 log=$4
  local args=(--connect="$endpoint" --connections=4 --requests=200 --batch=4
              --train-every=3 --seed=23 --verify-data-dir="$data_dir"
              --attempts=3 --stats --shutdown)
  [ -n "$JSON_OUT" ] && args+=(--json="$JSON_OUT" --json-metric-prefix="$prefix")
  "$LOADGEN" "${args[@]}" | tee "$log"
  local rc=${PIPESTATUS[0]}
  [ "$rc" -eq 0 ] || fail "verify loadgen exited $rc"
  grep -q "verify: 0 mismatches" "$log" ||
    fail "recovered state is NOT bit-identical"
}

scenario_recovery() {
  echo "sbx_chaos: phase 1 — load, then kill -9 mid-run"
  start_server "$WORK/server1.log"

  # Train-heavy and single-attempt: the abrupt kill must surface as loadgen
  # errors, not hide behind retries.
  "$LOADGEN" --connect="$SOCK" --users=32 --connections=4 --requests=5000 \
             --batch=4 --train-every=2 --seed=11 --base-size=600 \
             --attempts=1 >"$WORK/loadgen1.log" 2>&1 &
  LOADGEN_PID=$!

  sleep 1
  kill -9 "$SERVER_PID" || fail "server already dead before the kill"
  echo "sbx_chaos: killed server pid $SERVER_PID (SIGKILL)"
  wait "$LOADGEN_PID" && fail "loadgen survived the server kill unscathed"
  wait "$SERVER_PID" 2>/dev/null
  SERVER_PID=

  [ -f "$DATA/MANIFEST" ] || fail "no manifest written"
  WAL_BYTES=$(cat "$DATA"/shard-*/wal.log 2>/dev/null | wc -c)
  [ "$WAL_BYTES" -gt 0 ] || fail "WAL is empty — nothing was logged before the kill"
  echo "sbx_chaos: $WAL_BYTES WAL bytes survive the crash"

  echo "sbx_chaos: phase 2 — restart from $DATA and verify bit-identity"
  start_server "$WORK/server2.log"
  grep "recovered" "$WORK/server2.log"
  grep -Eq "replayed [1-9][0-9]* wal records" "$WORK/server2.log" ||
    grep -Eq "recovered [1-9][0-9]* snapshot users" "$WORK/server2.log" ||
    fail "recovery replayed nothing — the crash window missed all mutations"

  run_verify "$SOCK" "$DATA" wal_ "$WORK/loadgen2.log"

  wait "$SERVER_PID" || fail "server did not drain cleanly after shutdown"
  SERVER_PID=
  echo "sbx_chaos: PASS — recovered state bit-identical after kill -9"
}

scenario_failover() {
  local standby_data="$WORK/standby_data"
  local standby_sock="unix:$WORK/standby.sock"

  echo "sbx_chaos: starting standby on $standby_sock"
  "$SERVE" --listen="$standby_sock" --users=32 --shards=4 --base-size=600 \
           --data-dir="$standby_data" --fsync=batch --snapshot-every=64 \
           --standby >"$WORK/standby.log" 2>&1 &
  STANDBY_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/standby.log" 2>/dev/null && break
    kill -0 "$STANDBY_PID" 2>/dev/null || { cat "$WORK/standby.log" >&2;
      fail "standby did not come up"; }
    sleep 0.1
  done
  grep -q "role standby" "$WORK/standby.log" || fail "standby not in standby role"

  echo "sbx_chaos: starting primary shipping to the standby (quorum acks)"
  start_server "$WORK/primary.log" \
               --replicate-to="$standby_sock" --repl-ack=quorum

  # Quorum acks make the loss contract checkable: every mutation the
  # loadgen saw acked was applied AND logged on the standby first.
  "$LOADGEN" --connect="$SOCK" --users=32 --connections=4 --requests=5000 \
             --batch=4 --train-every=2 --seed=11 --base-size=600 \
             --attempts=1 >"$WORK/loadgen1.log" 2>&1 &
  LOADGEN_PID=$!

  sleep 2
  kill -9 "$SERVER_PID" || fail "primary already dead before the kill"
  echo "sbx_chaos: killed primary pid $SERVER_PID (SIGKILL)"
  wait "$LOADGEN_PID" && fail "loadgen survived the primary kill unscathed"
  wait "$SERVER_PID" 2>/dev/null
  SERVER_PID=

  STANDBY_WAL=$(cat "$standby_data"/shard-*/wal.log "$standby_data"/shard-*/snap-*.inc \
                    "$standby_data"/shard-*/snapshot.db 2>/dev/null | wc -c)
  [ "$STANDBY_WAL" -gt 0 ] ||
    fail "standby durable state is empty — nothing was shipped before the kill"
  echo "sbx_chaos: $STANDBY_WAL standby durable bytes at the moment of failover"

  echo "sbx_chaos: promoting the standby (SIGUSR1)"
  kill -USR1 "$STANDBY_PID" || fail "standby died before promotion"
  for _ in $(seq 1 100); do
    grep -q "promote requested" "$WORK/standby.log" 2>/dev/null && break
    sleep 0.05
  done
  # The role flip completes on the standby's accept loop; probe with
  # classify-only traffic (refused until primary) until it answers.
  PROMOTED=
  for _ in $(seq 1 100); do
    if "$LOADGEN" --connect="$standby_sock" --users=32 --connections=1 \
                  --requests=2 --batch=1 --train-every=0 --seed=99 \
                  --base-size=600 --attempts=1 >/dev/null 2>&1; then
      PROMOTED=1
      break
    fi
    sleep 0.1
  done
  [ -n "$PROMOTED" ] || fail "standby never started serving after promotion"

  echo "sbx_chaos: re-pointing loadgen at the promoted standby, verifying"
  SERVER_PID=$STANDBY_PID
  STANDBY_PID=
  run_verify "$standby_sock" "$standby_data" repl_ "$WORK/loadgen2.log"
  grep -Eq "standby applied [1-9][0-9]*," "$WORK/loadgen2.log" ||
    fail "promoted standby reports zero applied records — nothing replicated"

  wait "$SERVER_PID" || fail "promoted standby did not drain cleanly"
  SERVER_PID=
  echo "sbx_chaos: PASS — zero acked-mutation loss across kill -9 failover"
}

scenario_$SCENARIO
