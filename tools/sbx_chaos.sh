#!/usr/bin/env bash
# sbx_chaos.sh — kill -9 crash-recovery harness for sbx_serve.
#
# Phase 1: start a WAL-enabled server, drive a train-heavy workload, and
# kill -9 the server mid-run (no drain, no final fsync — the worst case).
# Phase 2: restart the server from the same --data-dir and run a verifying
# workload whose mirror replays the same snapshot+WAL. Zero mismatches
# proves the recovered state is bit-identical to what the WAL captured;
# the run fails if recovery replayed nothing (the crash window missed).
#
# Usage: sbx_chaos.sh BUILD_DIR [JSON_OUT]
#   BUILD_DIR  cmake build tree containing tools/sbx_serve + tools/sbx_loadgen
#   JSON_OUT   optional BENCH-shaped output from the verify phase
#              (metrics are prefixed wal_ to keep them distinct from the
#              non-durable serve-smoke numbers)

set -u -o pipefail

BUILD_DIR=${1:?usage: sbx_chaos.sh BUILD_DIR [JSON_OUT]}
JSON_OUT=${2:-}
SERVE="$BUILD_DIR/tools/sbx_serve"
LOADGEN="$BUILD_DIR/tools/sbx_loadgen"

WORK=$(mktemp -d /tmp/sbx_chaos.XXXXXX)
DATA="$WORK/data"
SOCK="unix:$WORK/serve.sock"
SERVER_PID=
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "sbx_chaos: FAIL: $*" >&2; exit 1; }

start_server() {
  local log=$1
  "$SERVE" --listen="$SOCK" --users=32 --shards=4 --base-size=600 \
           --data-dir="$DATA" --fsync=batch --fsync-batch=16 \
           --snapshot-every=64 >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$log" 2>/dev/null && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  cat "$log" >&2
  fail "server did not come up"
}

echo "sbx_chaos: phase 1 — load, then kill -9 mid-run"
start_server "$WORK/server1.log"

# Train-heavy and single-attempt: the abrupt kill must surface as loadgen
# errors, not hide behind retries.
"$LOADGEN" --connect="$SOCK" --users=32 --connections=4 --requests=5000 \
           --batch=4 --train-every=2 --seed=11 --base-size=600 \
           --attempts=1 >"$WORK/loadgen1.log" 2>&1 &
LOADGEN_PID=$!

sleep 1
kill -9 "$SERVER_PID" || fail "server already dead before the kill"
echo "sbx_chaos: killed server pid $SERVER_PID (SIGKILL)"
wait "$LOADGEN_PID" && fail "loadgen survived the server kill unscathed"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=

[ -f "$DATA/MANIFEST" ] || fail "no manifest written"
WAL_BYTES=$(cat "$DATA"/shard-*/wal.log 2>/dev/null | wc -c)
[ "$WAL_BYTES" -gt 0 ] || fail "WAL is empty — nothing was logged before the kill"
echo "sbx_chaos: $WAL_BYTES WAL bytes survive the crash"

echo "sbx_chaos: phase 2 — restart from $DATA and verify bit-identity"
start_server "$WORK/server2.log"
grep "recovered" "$WORK/server2.log"
grep -Eq "replayed [1-9][0-9]* wal records" "$WORK/server2.log" ||
  grep -Eq "recovered [1-9][0-9]* snapshot users" "$WORK/server2.log" ||
  fail "recovery replayed nothing — the crash window missed all mutations"

VERIFY_ARGS=(--connect="$SOCK" --connections=4 --requests=200 --batch=4
             --train-every=3 --seed=23 --verify-data-dir="$DATA"
             --attempts=3 --stats --shutdown)
[ -n "$JSON_OUT" ] && VERIFY_ARGS+=(--json="$JSON_OUT" --json-metric-prefix=wal_)
"$LOADGEN" "${VERIFY_ARGS[@]}" | tee "$WORK/loadgen2.log"
RC=${PIPESTATUS[0]}
[ "$RC" -eq 0 ] || fail "verify loadgen exited $RC"
grep -q "verify: 0 mismatches" "$WORK/loadgen2.log" ||
  fail "recovered state is NOT bit-identical"

wait "$SERVER_PID" || fail "server did not drain cleanly after shutdown"
SERVER_PID=
echo "sbx_chaos: PASS — recovered state bit-identical after kill -9"
