#!/usr/bin/env bash
# Saved sweep spec for the §5.2 dynamic-threshold utility-target ablation —
# the registry form of bench/bench_ablation_threshold_sweep.cpp's grid.
#
# Sweeps the utility target t over {0.01, 0.05, 0.1, 0.2} (each config
# selects cutoffs with g(theta0) ~ t and g(theta1) ~ 1-t) under a fixed 5%
# Usenet dictionary attack, emitting one schema-validated ResultDoc JSON
# per target. The bench binary renders the same grid as a single table in
# the historical layout; this spec is the scriptable/CI form.
#
# Usage (from the repo root, after building):
#   tools/sweeps/ablation_threshold_sweep.sh [--quick] [--threads=N] \
#       [--out-dir=DIR] [extra key=value overrides...]
set -euo pipefail
cd "$(dirname "$0")/../.."

SBX_EXPERIMENTS="${SBX_EXPERIMENTS:-build/tools/sbx_experiments}"
if [[ ! -x "$SBX_EXPERIMENTS" ]]; then
  echo "error: $SBX_EXPERIMENTS not found (build first, or set SBX_EXPERIMENTS)" >&2
  exit 2
fi

exec "$SBX_EXPERIMENTS" sweep threshold \
  --axis 'utility_targets=0.01,0.05,0.1,0.2' \
  attack_fractions=0.05 \
  "$@"
