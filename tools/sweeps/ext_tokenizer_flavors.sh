#!/usr/bin/env bash
# Saved sweep spec for the footnote-1 tokenizer-flavor extension — the
# registry form of bench/bench_ext_tokenizer_flavors.cpp's grid.
#
# Runs the 1% Usenet dictionary attack against the same learner under the
# three tokenizer presets (SpamBayes, BogoFilter, SpamAssassin's Bayes
# component). The flavor is the ordinary `tokenizer=` config key added by
# eval/filter_axis.h, so the grid is a one-axis sweep; fine-grained
# TokenizerOptions overrides ride on `tokenizer_params='k=v;k=v'`. The
# bench binary re-renders the same three configs as one table in the
# historical layout; this spec is the scriptable/CI form.
#
# Usage (from the repo root, after building):
#   tools/sweeps/ext_tokenizer_flavors.sh [--quick] [--threads=N] \
#       [--out-dir=DIR] [extra key=value overrides...]
set -euo pipefail
cd "$(dirname "$0")/../.."

SBX_EXPERIMENTS="${SBX_EXPERIMENTS:-build/tools/sbx_experiments}"
if [[ ! -x "$SBX_EXPERIMENTS" ]]; then
  echo "error: $SBX_EXPERIMENTS not found (build first, or set SBX_EXPERIMENTS)" >&2
  exit 2
fi

exec "$SBX_EXPERIMENTS" sweep dictionary \
  --axis 'tokenizer=spambayes,bogofilter,spamassassin' \
  attack=usenet attack_fractions=0.01 \
  "$@"
