#!/usr/bin/env bash
# Saved sweep spec for the §3.4 optimal-constrained-attack ablation — the
# registry form of bench/bench_ablation_informed.cpp's grid, and the
# flagship attack-axis sweep: the attack is just another --axis.
#
# Crosses attacker knowledge (informed = the victim's true ham
# distribution, usenet = a ranked general-purpose corpus, aspell = an
# unranked formal dictionary) against equal word budgets at 1% control,
# one schema-validated ResultDoc JSON per (attack, budget) cell.
#
# Usage (from the repo root, after building):
#   tools/sweeps/ablation_informed.sh [--quick] [--threads=N] \
#       [--out-dir=DIR] [extra key=value overrides...]
set -euo pipefail
cd "$(dirname "$0")/../.."

SBX_EXPERIMENTS="${SBX_EXPERIMENTS:-build/tools/sbx_experiments}"
if [[ ! -x "$SBX_EXPERIMENTS" ]]; then
  echo "error: $SBX_EXPERIMENTS not found (build first, or set SBX_EXPERIMENTS)" >&2
  exit 2
fi

exec "$SBX_EXPERIMENTS" sweep dictionary \
  --axis 'attack=informed,usenet,aspell' \
  --axis 'dictionary_size=5000,10000,25000,44000' \
  attack_fractions=0.01 \
  "$@"
