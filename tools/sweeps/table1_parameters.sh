#!/usr/bin/env bash
# Saved spec for Table 1 ("Parameters used in our experiments") — the
# registry form of bench/bench_table1_parameters.cpp.
#
# Table 1 is pure configuration, so its registry form is `describe`: the
# four experiment columns are the default configs of the dictionary,
# focused-knowledge, roni and threshold experiments, printed with their
# schema docs. The bench binary renders the same defaults in the paper's
# table layout; editing a schema default changes both in lockstep.
#
# Usage (from the repo root, after building):
#   tools/sweeps/table1_parameters.sh
set -euo pipefail
cd "$(dirname "$0")/../.."

SBX_EXPERIMENTS="${SBX_EXPERIMENTS:-build/tools/sbx_experiments}"
if [[ ! -x "$SBX_EXPERIMENTS" ]]; then
  echo "error: $SBX_EXPERIMENTS not found (build first, or set SBX_EXPERIMENTS)" >&2
  exit 2
fi

for exp in dictionary focused-knowledge roni threshold; do
  "$SBX_EXPERIMENTS" describe "$exp"
done
