#!/usr/bin/env bash
# Saved sweep spec for the §5.1 RONI measurement-set sizing ablation — the
# registry form of bench/bench_ablation_roni_sizes.cpp's grid.
#
# Scales (|T|, |V|) from the paper's (20, 50) down 2x and up 4x while
# assessing the usenet and aspell dictionary attacks as a comma-list
# workload (`attack=usenet,aspell`). |T| and |V| move together, so the
# grid is four paired runs rather than an axis cross-product; the
# rejection threshold scales with |V| (the paper's 5.5 was tuned for 25
# ham in V). The bench binary re-renders the same four configs as one
# table in the historical layout; this spec is the scriptable/CI form.
#
# Usage (from the repo root, after building):
#   tools/sweeps/ablation_roni_sizes.sh [--quick] [--threads=N] \
#       [--out-dir=DIR] [extra key=value overrides...]
set -euo pipefail
cd "$(dirname "$0")/../.."

SBX_EXPERIMENTS="${SBX_EXPERIMENTS:-build/tools/sbx_experiments}"
if [[ ! -x "$SBX_EXPERIMENTS" ]]; then
  echo "error: $SBX_EXPERIMENTS not found (build first, or set SBX_EXPERIMENTS)" >&2
  exit 2
fi

"$SBX_EXPERIMENTS" run roni \
  attack=usenet,aspell train_size=10 validation_size=25 \
  rejection_threshold=2.75 \
  "$@"

"$SBX_EXPERIMENTS" run roni \
  attack=usenet,aspell train_size=20 validation_size=50 \
  rejection_threshold=5.5 \
  "$@"

"$SBX_EXPERIMENTS" run roni \
  attack=usenet,aspell train_size=40 validation_size=100 \
  rejection_threshold=11 \
  "$@"

exec "$SBX_EXPERIMENTS" run roni \
  attack=usenet,aspell train_size=80 validation_size=200 \
  rejection_threshold=22 \
  "$@"
