#!/usr/bin/env bash
# Saved spec for the §4.3 guess-model ablation — the registry form of
# bench/bench_ablation_focused_guessing.cpp.
#
# One registry config runs both guess models (fixed-per-attack vs.
# independent-per-email) across the Figure-2 probabilities, crafting every
# poison email through the attack registry's "focused" adapter, and emits
# one schema-validated ResultDoc JSON. The bench binary renders the same
# document in the historical layout; this spec is the scriptable/CI form.
#
# Usage (from the repo root, after building):
#   tools/sweeps/ablation_focused_guessing.sh [--quick] [--threads=N] \
#       [--out-dir=DIR] [extra key=value overrides...]
set -euo pipefail
cd "$(dirname "$0")/../.."

SBX_EXPERIMENTS="${SBX_EXPERIMENTS:-build/tools/sbx_experiments}"
if [[ ! -x "$SBX_EXPERIMENTS" ]]; then
  echo "error: $SBX_EXPERIMENTS not found (build first, or set SBX_EXPERIMENTS)" >&2
  exit 2
fi

exec "$SBX_EXPERIMENTS" run focused-guessing \
  "$@"
