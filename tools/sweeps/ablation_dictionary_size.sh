#!/usr/bin/env bash
# Saved sweep spec for the §3.2 dictionary-size ablation — the registry
# form of bench/bench_ablation_dictionary_size.cpp's grid.
#
# Fixes the attack at 1% control and varies the payload through the attack
# registry: top-N Usenet truncations for N in {10k, 25k, 50k, 90k}, then
# the full Aspell list, one schema-validated ResultDoc JSON per variant.
# The bench binary renders the same grid (plus the per-byte efficiency
# column) as a single table in the historical layout; this spec is the
# scriptable/CI form.
#
# Usage (from the repo root, after building):
#   tools/sweeps/ablation_dictionary_size.sh [--quick] [--threads=N] \
#       [--out-dir=DIR] [extra key=value overrides...]
set -euo pipefail
cd "$(dirname "$0")/../.."

SBX_EXPERIMENTS="${SBX_EXPERIMENTS:-build/tools/sbx_experiments}"
if [[ ! -x "$SBX_EXPERIMENTS" ]]; then
  echo "error: $SBX_EXPERIMENTS not found (build first, or set SBX_EXPERIMENTS)" >&2
  exit 2
fi

"$SBX_EXPERIMENTS" sweep dictionary \
  --axis 'dictionary_size=10000,25000,50000,90000' \
  attack=usenet attack_fractions=0.01 \
  "$@"

exec "$SBX_EXPERIMENTS" run dictionary \
  attack=aspell attack_fractions=0.01 \
  "$@"
