#!/usr/bin/env python3
"""Bench/experiment output checks.

Baseline mode (default) — compares a fresh bench_hotpath JSON run against
the tracked baseline:

    tools/check_bench.py BENCH_baseline.json bench-out/bench_hotpath.json \
        [--max-regression 0.25]

Every metric under "metrics" in the baseline must be present in the current
run and must not have regressed by more than --max-regression (fractional;
all bench_hotpath metrics are higher-is-better throughputs or speedup
ratios). Improvements are reported but never fail the check. Exits non-zero
on any regression beyond the threshold or any missing metric.

--metrics NAME[,NAME...] restricts the comparison to a subset of the
baseline's metrics. This lets one tracked baseline file (BENCH_serve.json)
serve several CI jobs that each produce only their slice of the metrics —
serve-smoke gates the plain-serving numbers, crash-recovery-smoke the
wal_-prefixed ones — without each job failing on the other's "missing"
metrics.

ResultDoc mode — validates the schema of eval::ResultDoc JSON files (as
written by `sbx_experiments run/sweep --out-dir`):

    tools/check_bench.py validate-resultdoc sweep-out/*.json

Checks the document structure the registry serializer promises: experiment
name, string-to-string config, numeric metrics, rectangular string tables,
equal-length numeric series, and a string report. Exits non-zero on the
first malformed file.
"""
import argparse
import json
import sys


def check_baseline(args) -> int:
    with open(args.baseline) as f:
        baseline = json.load(f)["metrics"]
    with open(args.current) as f:
        current = json.load(f)["metrics"]

    if args.metrics:
        wanted = [name.strip() for name in args.metrics.split(",")
                  if name.strip()]
        missing = [name for name in wanted if name not in baseline]
        if missing:
            print(f"--metrics names not in baseline: {', '.join(missing)}",
                  file=sys.stderr)
            return 1
        baseline = {name: baseline[name] for name in wanted}

    failures = []
    width = max(len(name) for name in baseline)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  change")
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            print(f"{name:<{width}}  {base_value:>14.2f}  {'MISSING':>14}")
            continue
        value = current[name]
        change = (value - base_value) / base_value if base_value else 0.0
        flag = ""
        if change < -args.max_regression:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: {base_value:.2f} -> {value:.2f} "
                f"({change:+.1%}, allowed -{args.max_regression:.0%})")
        print(f"{name:<{width}}  {base_value:>14.2f}  {value:>14.2f}  "
              f"{change:+7.1%}{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nOK: no metric regressed beyond {args.max_regression:.0%}")
    return 0


def _fail(path: str, message: str) -> None:
    raise ValueError(f"{path}: {message}")


def validate_resultdoc(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        _fail(path, "top level is not an object")

    for key in ("experiment", "attack", "config", "metrics", "tables",
                "series", "report"):
        if key not in doc:
            _fail(path, f"missing key '{key}'")

    if not isinstance(doc["experiment"], str) or not doc["experiment"]:
        _fail(path, "'experiment' is not a non-empty string")

    # Every document names the attack it exercised and its Barreno-Nelson
    # taxonomy coordinates (eval::tag_attack).
    attack = doc["attack"]
    if not isinstance(attack, dict):
        _fail(path, "'attack' is not an object")
    for key in ("name", "taxonomy"):
        if not isinstance(attack.get(key), str) or not attack[key]:
            _fail(path, f"attack['{key}'] is not a non-empty string")

    if not isinstance(doc["config"], dict):
        _fail(path, "'config' is not an object")
    for key, value in doc["config"].items():
        if not isinstance(value, str):
            _fail(path, f"config['{key}'] is not a string")

    if not isinstance(doc["metrics"], dict):
        _fail(path, "'metrics' is not an object")
    for key, value in doc["metrics"].items():
        # null is the serializer's spelling of a non-finite double.
        if not (value is None or isinstance(value, (int, float))):
            _fail(path, f"metrics['{key}'] is not a number or null")

    if not isinstance(doc["tables"], dict):
        _fail(path, "'tables' is not an object")
    for name, table in doc["tables"].items():
        if not isinstance(table, dict):
            _fail(path, f"tables['{name}'] is not an object")
        headers = table.get("headers")
        rows = table.get("rows")
        if (not isinstance(headers, list) or not headers
                or not all(isinstance(h, str) for h in headers)):
            _fail(path, f"tables['{name}'].headers is not a non-empty "
                        "string list")
        if not isinstance(rows, list):
            _fail(path, f"tables['{name}'].rows is not a list")
        for i, row in enumerate(rows):
            if (not isinstance(row, list) or len(row) != len(headers)
                    or not all(isinstance(c, str) for c in row)):
                _fail(path, f"tables['{name}'].rows[{i}] is not a "
                            f"{len(headers)}-cell string list")

    if not isinstance(doc["series"], list):
        _fail(path, "'series' is not a list")
    for i, series in enumerate(doc["series"]):
        if not isinstance(series, dict) or not isinstance(
                series.get("name"), str):
            _fail(path, f"series[{i}] has no string name")
        x, y = series.get("x"), series.get("y")
        for axis, values in (("x", x), ("y", y)):
            if not isinstance(values, list) or not all(
                    value is None or isinstance(value, (int, float))
                    for value in values):
                _fail(path, f"series[{i}].{axis} is not a number list")
        if len(x) != len(y):
            _fail(path, f"series[{i}] has mismatched x/y lengths")

    if not isinstance(doc["report"], list) or not all(
            isinstance(line, str) for line in doc["report"]):
        _fail(path, "'report' is not a string list")


def check_resultdocs(paths) -> int:
    if not paths:
        print("validate-resultdoc: no files given", file=sys.stderr)
        return 1
    for path in paths:
        try:
            validate_resultdoc(path)
        except ValueError as e:
            # _fail() messages already carry the path; json.JSONDecodeError
            # (a ValueError subclass) does not.
            message = str(e)
            if not message.startswith(path):
                message = f"{path}: {message}"
            print(f"FAIL: {message}", file=sys.stderr)
            return 1
        except (KeyError, OSError) as e:
            print(f"FAIL: {path}: {e}", file=sys.stderr)
            return 1
        print(f"OK: {path}")
    print(f"\nOK: {len(paths)} ResultDoc(s) valid")
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "validate-resultdoc":
        return check_resultdocs(sys.argv[2:])

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="tracked BENCH_baseline.json")
    parser.add_argument("current", help="fresh bench_hotpath --json output")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop per metric "
                             "(default 0.25)")
    parser.add_argument("--metrics", default="",
                        help="comma-separated subset of baseline metrics "
                             "to compare (default: all)")
    return check_baseline(parser.parse_args())


if __name__ == "__main__":
    sys.exit(main())
