#!/usr/bin/env python3
"""Compares a fresh bench_hotpath JSON run against the tracked baseline.

Usage:
    tools/check_bench.py BENCH_baseline.json bench-out/bench_hotpath.json \
        [--max-regression 0.25]

Every metric under "metrics" in the baseline must be present in the current
run and must not have regressed by more than --max-regression (fractional;
all bench_hotpath metrics are higher-is-better throughputs or speedup
ratios). Improvements are reported but never fail the check. Exits non-zero
on any regression beyond the threshold or any missing metric.
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="tracked BENCH_baseline.json")
    parser.add_argument("current", help="fresh bench_hotpath --json output")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop per metric "
                             "(default 0.25)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)["metrics"]
    with open(args.current) as f:
        current = json.load(f)["metrics"]

    failures = []
    width = max(len(name) for name in baseline)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  change")
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            print(f"{name:<{width}}  {base_value:>14.2f}  {'MISSING':>14}")
            continue
        value = current[name]
        change = (value - base_value) / base_value if base_value else 0.0
        flag = ""
        if change < -args.max_regression:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: {base_value:.2f} -> {value:.2f} "
                f"({change:+.1%}, allowed -{args.max_regression:.0%})")
        print(f"{name:<{width}}  {base_value:>14.2f}  {value:>14.2f}  "
              f"{change:+7.1%}{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nOK: no metric regressed beyond {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
