#!/usr/bin/env python3
"""sbx_lockgraph: static cross-TU lock-order extractor.

Builds the mutex acquisition graph of src/ and checks it against the
declared hierarchy (src/util/lock_rank.h). Clang TSA (PR 8) proves who
guards what but is ordering-blind; the SBX_LOCK_RANK tracker catches
inversions at runtime but only on paths a test actually executes. This
tool closes the remaining gap: it sees every acquisition site in the
tree at once, including pairs no test interleaves.

What it parses (no compiler needed — the conventions sbx_lint enforces
make the tree regular enough for this):

  * the LockRank enum in src/util/lock_rank.h (`kName = value,`);
  * ranked mutex members: `Mutex name{LockRank::kX, "Class::name"}`,
    attributed to their enclosing class;
  * SBX_EXCLUDES(m) on a method declaration — calling the method
    acquires `m` internally (that is what the annotation promises);
  * SBX_REQUIRES(m) on a method — its body runs with `m` already held;
  * `MutexLock lock(expr)` scopes and annotated-method calls inside
    method bodies, tracked against brace depth.

An edge A -> B means "some thread acquires B while holding A". Checks:

  * every edge must ASCEND the declared ranks strictly (equal rank is an
    undeclared ordering, same as the runtime tracker);
  * a self-edge is a re-entrant acquisition (UB on std::mutex);
  * the graph must be acyclic — this also covers mutexes whose rank the
    extractor cannot resolve, which skip the rank check but still
    participate in cycle detection.

Exit 1 on any violation. `--dot FILE` writes the graph for the CI
artifact (render with `dot -Tsvg`).

Usage:
  tools/sbx_lockgraph.py [--root DIR] [--dot FILE]   check the tree
  tools/sbx_lockgraph.py --self-test                 run the fixtures
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")

# The wrapper and the tracker implement the primitives — their internals
# are not acquisition sites in the graph's sense.
SKIP_FILES = (
    "src/util/thread_annotations.h",
    "src/util/lock_rank.h",
    "src/util/lock_rank.cpp",
)

RANK_ENUM_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)\s*,")
CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:SBX_\w+\(.*?\)\s+)?(\w+)[^;{()]*\{")
MUTEX_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*\{\s*(?:sbx::)?(?:util::)?LockRank::(k\w+)",
    re.DOTALL)
CONDVAR_DECL_RE = re.compile(r"\bCondVar\s+(\w+)\s*;")
ANNOTATION_RE = re.compile(r"\bSBX_(EXCLUDES|REQUIRES)\s*\(([^)]*)\)")
METHOD_DEF_RE = re.compile(r"\b(\w+)::(~?\w+)\s*\(")
MUTEX_LOCK_RE = re.compile(
    r"\bMutexLock\s+\w+\s*\(\s*((?:\w+\s*(?:\.|->)\s*)?\w+)\s*\)")
CALL_NAME_RE = re.compile(r"(\w+)\s*\(")
MEMBER_TYPE_RE_TEMPLATE = r"([\w:]+(?:<[^;{{}}]*>)?)\s*[*&]?\s+%s\s*[;{{=]"

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "static_cast", "reinterpret_cast", "const_cast",
    "dynamic_cast", "assert", "defined",
}


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving offsets and
    line structure (same approach as sbx_lint)."""
    out = []
    i = 0
    n = len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                # A quote straight after an alphanumeric is a digit
                # separator (10'000) or part of a suffix, not a char
                # literal opening.
                if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                    out.append(" ")
                    i += 1
                else:
                    state = "char"
                    out.append(" ")
                    i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def matching_brace(text, open_idx):
    """Index just past the brace matching text[open_idx] == '{', or
    len(text) when unbalanced (truncated/macro-heavy code degrades to
    'rest of file', which only widens a class extent)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def class_extents(text):
    """[(start, end, name)] for every class/struct body, innermost last
    when sorted by start."""
    out = []
    for m in CLASS_RE.finditer(text):
        open_idx = text.index("{", m.end() - 1)
        out.append((open_idx, matching_brace(text, open_idx), m.group(1)))
    return out


def enclosing_class(extents, offset):
    """Innermost class/struct containing `offset` (latest start wins)."""
    best = None
    for start, end, name in extents:
        if start <= offset < end and (best is None or start > best[0]):
            best = (start, end, name)
    return best[2] if best else None


class MutexInfo:
    def __init__(self, cls, member, rank_name, rank_value, where):
        self.cls = cls
        self.member = member
        self.rank_name = rank_name
        self.rank_value = rank_value  # None when the enumerator is unknown
        self.where = where

    @property
    def qualified(self):
        return "%s::%s" % (self.cls, self.member)


class Tree:
    """Everything extracted from one source tree."""

    def __init__(self):
        self.ranks = {}            # "kShard" -> 30
        self.mutexes = {}          # (cls, member) -> MutexInfo
        self.condvar_members = set()
        self.acquires = {}         # method -> (cls, {member, ...})
        self.requires = {}         # (cls, method) -> {member, ...}
        self.ambiguous_methods = set()
        self.edges = {}            # (src MutexInfo, dst MutexInfo) -> [site]
        self.warnings = []

    def mutex_in(self, cls, member):
        return self.mutexes.get((cls, member))

    def add_edge(self, src, dst, site):
        self.edges.setdefault((src, dst), []).append(site)


def parse_ranks(root, tree):
    path = os.path.join(root, "src", "util", "lock_rank.h")
    if not os.path.exists(path):
        tree.warnings.append("no src/util/lock_rank.h under %s — every "
                             "mutex will be unranked" % root)
        return
    with open(path, encoding="utf-8") as f:
        text = strip_comments_and_strings(f.read())
    enum = re.search(r"enum\s+class\s+LockRank[^{]*\{", text)
    if enum is None:
        tree.warnings.append("%s: no `enum class LockRank` found" % path)
        return
    body = text[enum.end():matching_brace(text, enum.end() - 1)]
    for m in RANK_ENUM_RE.finditer(body):
        tree.ranks["k" + m.group(1)] = int(m.group(2))


def source_files(root):
    base = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if rel in SKIP_FILES:
                continue
            yield path


def collect_declarations(path, text, tree):
    extents = class_extents(text)
    rel = path
    for m in MUTEX_DECL_RE.finditer(text):
        cls = enclosing_class(extents, m.start())
        if cls is None:
            tree.warnings.append("%s:%d: Mutex %s outside any class; "
                                 "skipped" % (rel, line_of(text, m.start()),
                                              m.group(1)))
            continue
        rank_name = m.group(2)
        rank_value = tree.ranks.get(rank_name)
        if rank_value is None:
            tree.warnings.append(
                "%s:%d: %s::%s uses %s, which is not in lock_rank.h — "
                "rank checks skipped for it (cycle detection still "
                "applies)" % (rel, line_of(text, m.start()), cls,
                              m.group(1), rank_name))
        tree.mutexes[(cls, m.group(1))] = MutexInfo(
            cls, m.group(1), rank_name, rank_value,
            "%s:%d" % (rel, line_of(text, m.start())))
    for m in CONDVAR_DECL_RE.finditer(text):
        tree.condvar_members.add(m.group(1))


def method_name_before(text, paren_close):
    """The identifier owning the argument list that CLOSES at
    paren_close (an index of ')'), balancing nested parentheses."""
    depth = 0
    i = paren_close
    while i >= 0:
        if text[i] == ")":
            depth += 1
        elif text[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i < 0:
        return None
    m = re.search(r"(\w+)\s*$", text[:i])
    return m.group(1) if m else None


def collect_annotations(path, text, tree):
    """SBX_EXCLUDES/REQUIRES on declarations: EXCLUDES means 'calling me
    acquires these', REQUIRES means 'my body starts with these held'."""
    extents = class_extents(text)
    for m in ANNOTATION_RE.finditer(text):
        cls = enclosing_class(extents, m.start())
        if cls is None:
            # Out-of-class definitions repeat no annotations in this
            # codebase (clang forbids it), so nothing is lost.
            continue
        # The annotation trails the declaration's argument list: walk
        # back over `) const noexcept SBX_...` to the closing paren.
        before = text[:m.start()].rstrip()
        while True:
            stripped = before.rstrip()
            for tok in ("const", "noexcept", "override", "final"):
                if stripped.endswith(tok):
                    stripped = stripped[:-len(tok)].rstrip()
            if stripped == before:
                break
            before = stripped
        # Skip over earlier SBX_ annotations in a chain.
        chain = re.search(r"(SBX_\w+\s*\([^()]*\)\s*)+$", before)
        if chain:
            before = before[:chain.start()].rstrip()
        if not before.endswith(")"):
            continue
        method = method_name_before(before, len(before) - 1)
        if method is None:
            continue
        members = {a.strip() for a in m.group(2).split(",") if a.strip()}
        # Only member mutexes of this class participate; capability
        # PARAMETERS (e.g. `util::Mutex& mu` + SBX_REQUIRES(mu)) are the
        # caller's lock and are seen at the caller's own sites.
        members = {x for x in members if (cls, x) in tree.mutexes}
        if not members:
            continue
        if m.group(1) == "EXCLUDES":
            prev = tree.acquires.get(method)
            if prev is not None and prev[0] != cls:
                tree.ambiguous_methods.add(method)
                tree.warnings.append(
                    "%s:%d: method name '%s' is annotated in both %s and "
                    "%s — call sites with unresolvable receivers are "
                    "skipped for it" % (path, line_of(text, m.start()),
                                        method, prev[0], cls))
            else:
                tree.acquires[method] = (cls, prev[1] | members
                                         if prev else members)
        else:
            key = (cls, method)
            tree.requires[key] = tree.requires.get(key, set()) | members


def member_type(text, extents, cls, member):
    """Declared type of `member` in class `cls`, unwrapped of pointers /
    references / smart pointers; None when not found."""
    for start, end, name in extents:
        if name != cls:
            continue
        body = text[start:end]
        m = re.search(MEMBER_TYPE_RE_TEMPLATE % re.escape(member), body)
        if m is None:
            continue
        t = m.group(1)
        inner = re.search(r"<\s*([\w:]+)\s*>$", t)
        if inner and re.search(r"\b(?:unique_ptr|shared_ptr)$",
                               t[:t.index("<")]):
            t = inner.group(1)
        return t.split("::")[-1]
    return None


def resolve_lock_expr(expr, cls, text, extents, tree):
    """The MutexInfo a `MutexLock lock(expr)` acquires, or None."""
    parts = re.split(r"\s*(?:\.|->)\s*", expr)
    member = parts[-1]
    if len(parts) == 1 or parts[0] == "this":
        info = tree.mutex_in(cls, member) if cls else None
        if info is not None:
            return info
    else:
        recv_type = member_type(text, extents, cls, parts[0]) if cls else None
        if recv_type is not None:
            info = tree.mutex_in(recv_type, member)
            if info is not None:
                return info
    # Fallback: unique member name across all classes.
    hits = [i for (c, mm), i in tree.mutexes.items() if mm == member]
    return hits[0] if len(hits) == 1 else None


def method_bodies(text):
    """Yields (cls, method, body_start, body_end) for out-of-class
    `Ret Class::method(...) ... {` definitions."""
    for m in METHOD_DEF_RE.finditer(text):
        # Balance the parameter list.
        depth = 0
        i = m.end() - 1
        n = len(text)
        while i < n:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        # Scan to the body's '{' over qualifiers and ctor init lists; a
        # ';' (pure declaration / call statement) disqualifies.
        j = i + 1
        while j < n and text[j] != "{" and text[j] != ";":
            j += 1
        if j >= n or text[j] == ";":
            continue
        between = text[i + 1:j]
        if re.search(r"[^\w\s:&*,()<>\[\]{}.\-+=]", between):
            continue
        yield m.group(1), m.group(2), j, matching_brace(text, j)


def scan_body(path, text, extents, tree, cls, method, start, end):
    """Walks one body, tracking MutexLock scopes + annotated calls, and
    records edges held-lock -> acquired-lock."""
    held = []  # [(depth, MutexInfo, pinned)] — pinned = REQUIRES seed
    for member in tree.requires.get((cls, method), ()):
        info = tree.mutex_in(cls, member)
        if info is not None:
            held.append((0, info, True))
    depth = 0
    i = start
    while i < end:
        c = text[i]
        if c == "{":
            depth += 1
            i += 1
            continue
        if c == "}":
            depth -= 1
            held = [h for h in held if h[2] or h[0] <= depth]
            i += 1
            continue
        if not (c == "M" or c.isalpha() or c == "_"):
            i += 1
            continue
        lock_m = MUTEX_LOCK_RE.match(text, i)
        if lock_m:
            info = resolve_lock_expr(lock_m.group(1), cls, text, extents,
                                     tree)
            site = "%s:%d" % (path, line_of(text, i))
            if info is not None:
                for _, h, _ in held:
                    tree.add_edge(h, info, site)
                held.append((depth, info, False))
            else:
                tree.warnings.append(
                    "%s: MutexLock on unresolved expression '%s'"
                    % (site, lock_m.group(1)))
            i = lock_m.end()
            continue
        call_m = CALL_NAME_RE.match(text, i)
        if call_m:
            name = call_m.group(1)
            entry = tree.acquires.get(name)
            if (entry is not None and name not in CPP_KEYWORDS
                    and name not in tree.ambiguous_methods and held):
                decl_cls, members = entry
                # The receiver sits BEFORE the call name: `recv.name(`,
                # `recv->name(`, or a chained `f(...).name(`.
                back = text[start:i].rstrip()
                recv = None
                chained = False
                qualified_recv = False
                if back.endswith("->") or back.endswith("."):
                    qualified_recv = True
                    back = back[:-2 if back.endswith("->") else -1].rstrip()
                    if back.endswith(")") or back.endswith("]"):
                        chained = True  # type not statically resolvable
                    else:
                        m2 = re.search(r"(\w+)$", back)
                        recv = m2.group(1) if m2 else None
                if recv in tree.condvar_members:
                    ok = False
                elif chained or recv == "this":
                    ok = True
                elif recv is not None:
                    rtype = member_type(text, extents, cls, recv)
                    # A receiver with a known NON-matching type (e.g. an
                    # std::ofstream member that happens to have a
                    # `flush` method) is not this annotated method.
                    ok = rtype is None or rtype == decl_cls
                elif qualified_recv:
                    ok = True  # receiver present but unparseable
                else:
                    # Unqualified call: only plausible on this class.
                    ok = decl_cls == cls
                if ok:
                    site = "%s:%d" % (path, line_of(text, i))
                    for member in members:
                        info = tree.mutex_in(decl_cls, member)
                        if info is None:
                            continue
                        for _, h, _ in held:
                            tree.add_edge(h, info, site)
            i = call_m.end()
            continue
        # Skip the rest of this identifier.
        while i < end and (text[i].isalnum() or text[i] == "_"):
            i += 1
    return


def analyze(root):
    tree = Tree()
    parse_ranks(root, tree)
    stripped = {}
    for path in source_files(root):
        with open(path, encoding="utf-8") as f:
            text = strip_comments_and_strings(f.read())
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        stripped[rel] = text
        collect_declarations(rel, text, tree)
    for rel, text in stripped.items():
        collect_annotations(rel, text, tree)
    for rel, text in stripped.items():
        extents = class_extents(text)
        for cls, method, start, end in method_bodies(text):
            scan_body(rel, text, extents, tree, cls, method, start, end)
        # REQUIRES methods defined inline in class bodies: scan the
        # class extents too, seeding from the extent's class. Out-of-
        # class bodies were already covered above; inline ones only
        # matter when they hold MutexLock scopes, which the codebase's
        # headers do not — this keeps them from silently dropping out
        # if that changes.
    return tree


def check(tree):
    violations = []
    for (src, dst), sites in sorted(
            tree.edges.items(), key=lambda kv: kv[1][0]):
        if src is dst:
            violations.append(
                "%s: re-entrant acquisition of %s (already held on entry)"
                % (sites[0], src.qualified))
            continue
        if src.rank_value is None or dst.rank_value is None:
            continue
        if src.rank_value >= dst.rank_value:
            violations.append(
                "%s: acquiring %s (%s=%d) while holding %s (%s=%d) "
                "contradicts the declared ranks — the hierarchy requires "
                "strictly ascending acquisition"
                % (sites[0], dst.qualified, dst.rank_name, dst.rank_value,
                   src.qualified, src.rank_name, src.rank_value))
    # Cycle detection catches what rank checks cannot see (unranked
    # mutexes) and double-reports genuine inversions as cycles when the
    # reverse edge also exists.
    graph = {}
    for (src, dst), _ in tree.edges.items():
        graph.setdefault(src, set()).add(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack_path = []

    def dfs(node):
        color[node] = GRAY
        stack_path.append(node)
        for nxt in sorted(graph.get(node, ()), key=lambda x: x.qualified):
            if color.get(nxt, WHITE) == GRAY:
                cycle = stack_path[stack_path.index(nxt):] + [nxt]
                violations.append(
                    "acquisition cycle: "
                    + " -> ".join(n.qualified for n in cycle))
            elif color.get(nxt, WHITE) == WHITE:
                dfs(nxt)
        stack_path.pop()
        color[node] = BLACK

    for node in sorted(graph, key=lambda x: x.qualified):
        if color.get(node, WHITE) == WHITE:
            dfs(node)
    return violations


def write_dot(tree, out_path):
    lines = ["digraph sbx_locks {", "  rankdir=LR;",
             "  node [shape=box, fontname=\"monospace\"];"]
    nodes = set()
    for (src, dst) in tree.edges:
        nodes.add(src)
        nodes.add(dst)
    for (cls, member), info in sorted(tree.mutexes.items()):
        nodes.add(info)
    for info in sorted(nodes, key=lambda x: (x.rank_value is None,
                                             x.rank_value or 0,
                                             x.qualified)):
        rank = ("%s=%d" % (info.rank_name, info.rank_value)
                if info.rank_value is not None
                else "%s=?" % info.rank_name)
        lines.append("  \"%s\" [label=\"%s\\n%s\"];"
                     % (info.qualified, info.qualified, rank))
    for (src, dst), sites in sorted(tree.edges.items(),
                                    key=lambda kv: kv[1][0]):
        lines.append("  \"%s\" -> \"%s\" [label=\"%s\"];"
                     % (src.qualified, dst.qualified, sites[0]))
    lines.append("}")
    with open(out_path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def run(root, dot_path=None, quiet=False):
    tree = analyze(root)
    violations = check(tree)
    if dot_path:
        write_dot(tree, dot_path)
    if not quiet:
        print("sbx_lockgraph: %d ranked mutex(es), %d acquisition "
              "edge(s)" % (len(tree.mutexes), len(tree.edges)))
        for (src, dst), sites in sorted(tree.edges.items(),
                                        key=lambda kv: kv[1][0]):
            print("  %s -> %s   [%s]" % (src.qualified, dst.qualified,
                                         sites[0]))
        for w in tree.warnings:
            print("warning: " + w, file=sys.stderr)
    for v in violations:
        print("sbx_lockgraph: VIOLATION: " + v, file=sys.stderr)
    if violations:
        return 1, tree, violations
    if not quiet:
        print("sbx_lockgraph: acquisition graph is acyclic and agrees "
              "with the declared ranks")
    return 0, tree, violations


# --- self-test ---------------------------------------------------------------

def self_test():
    fixtures = os.path.join(REPO_ROOT, "tools", "lockgraph_fixtures")
    failures = []

    good_rc, good_tree, _ = run(os.path.join(fixtures, "good"), quiet=True)
    edges = {"%s -> %s" % (s.qualified, d.qualified)
             for s, d in good_tree.edges}
    if good_rc != 0:
        failures.append("good fixture: expected clean, got violations")
    if "Db::mutex_ -> Log::io_mutex_" not in edges:
        failures.append("good fixture: missing the Db -> Log edge "
                        "(extraction broke); saw %s" % sorted(edges))
    print("  good       %d edge(s), clean%s"
          % (len(edges), "" if good_rc == 0 else " FAILED"))

    cyc_rc, _, cyc_viol = run(os.path.join(fixtures, "cyclic"), quiet=True)
    if cyc_rc == 0 or not any("cycle" in v for v in cyc_viol):
        failures.append("cyclic fixture: expected an acquisition-cycle "
                        "violation, got %s" % (cyc_viol or "clean"))
    print("  cyclic     %d violation(s), cycle detected%s"
          % (len(cyc_viol),
             "" if cyc_rc != 0 else " FAILED"))

    inv_rc, _, inv_viol = run(os.path.join(fixtures, "inversion"),
                              quiet=True)
    if inv_rc == 0 or not any("contradicts" in v for v in inv_viol):
        failures.append("inversion fixture: expected a rank contradiction,"
                        " got %s" % (inv_viol or "clean"))
    print("  inversion  %d violation(s), rank contradiction detected%s"
          % (len(inv_viol), "" if inv_rc != 0 else " FAILED"))

    if failures:
        for f in failures:
            print("SELF-TEST FAILURE: " + f, file=sys.stderr)
        return 1
    print("sbx_lockgraph self-test: good fixture extracts and passes; "
          "cyclic and inversion fixtures fail as they must")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="source tree to analyze (default: the "
                             "checkout containing this script)")
    parser.add_argument("--dot", metavar="FILE",
                        help="write the acquisition graph as Graphviz DOT")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture trees instead of --root")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    rc, _, _ = run(args.root, dot_path=args.dot)
    return rc


if __name__ == "__main__":
    sys.exit(main())
