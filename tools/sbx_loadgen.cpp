// sbx_loadgen — load driver for sbx_serve, tpccbench-style.
//
// Opens C connections against a running daemon and drives a deterministic
// mixed workload: classify batches with periodic train feedback, over a
// user population that acts as the scale factor (--users must match the
// server's). Reports sustained msgs/sec plus p50/p99 request latency, and
// can write them as a BENCH_serve.json-shaped document for
// tools/check_bench.py.
//
//   sbx_loadgen --connect=tcp:127.0.0.1:40613 --users=64 --connections=8
//               --requests=200 --batch=8 --train-every=10 --seed=7
//               --json=BENCH_serve.json --verify --shutdown
//
// Determinism + verification: connection c owns users {u : u % C == c},
// so every user's request stream is one connection's program order. Under
// --verify the driver builds the identical base filter in-process (same
// --base-size/--spam-fraction/--base-seed as the server), mirrors every
// request into a local ServeFrontend from the same thread, and compares
// response score bits — a single ULP of drift between the daemon path and
// the in-process path counts as a mismatch and fails the run.
//
// Crash-recovery verification: --verify-data-dir=DIR reads the server's
// manifest from DIR (so topology flags need not be repeated), replays its
// snapshot + WAL into the mirror before the run starts, and then verifies
// as usual. Combined with a fresh --seed this proves a restarted server
// recovered to the exact pre-crash state: any lost or double-applied
// mutation shifts the recovered counts and flips score bits.
//
// Robustness knobs: every request runs under --op-timeout-ms and is
// retried up to --attempts times with exponential backoff + jitter on
// connection failures and overloaded/shutting-down responses. Train
// requests carry deterministic request ids, so a retry that races a
// server-side apply is absorbed by the server's dedup window instead of
// double-training — bit-identity survives retries.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "email/rfc2822.h"
#include "serve/base_model.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/recovery.h"
#include "util/config.h"
#include "util/error.h"
#include "util/random.h"

namespace {

using sbx::serve::ClassifyBatchRequest;
using sbx::serve::ClassifyBatchResponse;
using sbx::serve::ErrorResponse;
using sbx::serve::Request;
using sbx::serve::Response;
using sbx::serve::StatsResponse;
using sbx::serve::TrainRequest;
using sbx::serve::TrainResponse;

struct Flags {
  std::string connect;
  std::size_t users = 64;
  std::size_t connections = 4;
  std::size_t requests = 100;  // per connection
  std::size_t batch = 8;
  std::size_t train_every = 10;  // every Nth request trains (0 = never)
  std::uint64_t seed = 7;
  std::string json_path;
  std::string json_metric_prefix;  // e.g. "wal_" for the chaos harness
  bool verify = false;
  bool shutdown = false;
  bool stats = false;
  std::string verify_data_dir;  // replay server WAL into the mirror first
  long op_timeout_ms = 10'000;
  int attempts = 3;
  sbx::serve::BaseModelConfig base;  // must match the server under --verify
};

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: sbx_loadgen --connect=ENDPOINT [--users=N] [--connections=C]\n"
      "                   [--requests=R] [--batch=B] [--train-every=K]\n"
      "                   [--seed=N] [--json=PATH] [--json-metric-prefix=S]\n"
      "                   [--verify] [--verify-data-dir=DIR] [--stats]\n"
      "                   [--shutdown] [--op-timeout-ms=MS] [--attempts=N]\n"
      "                   [--base-size=N] [--spam-fraction=F] [--base-seed=N]\n"
      "\n"
      "Drives a deterministic classify/train workload against sbx_serve and\n"
      "reports msgs/sec and p50/p99 latency. --verify mirrors every request\n"
      "into an identical in-process frontend and fails on any score-bit\n"
      "mismatch; --verify-data-dir pre-seeds that mirror by replaying the\n"
      "server's snapshot+WAL (crash-recovery check). --shutdown stops the\n"
      "server when done; --stats prints its counters first.\n");
  return to == stdout ? 0 : 2;
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  using sbx::util::parse_double;
  using sbx::util::parse_uint;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::exit(usage(stdout));
    } else if (arg.rfind("--connect=", 0) == 0) {
      flags.connect = arg.substr(10);
    } else if (arg.rfind("--users=", 0) == 0) {
      flags.users = parse_uint(arg.substr(8), "--users");
    } else if (arg.rfind("--connections=", 0) == 0) {
      flags.connections = parse_uint(arg.substr(14), "--connections");
    } else if (arg.rfind("--requests=", 0) == 0) {
      flags.requests = parse_uint(arg.substr(11), "--requests");
    } else if (arg.rfind("--batch=", 0) == 0) {
      flags.batch = parse_uint(arg.substr(8), "--batch");
    } else if (arg.rfind("--train-every=", 0) == 0) {
      flags.train_every = parse_uint(arg.substr(14), "--train-every");
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = parse_uint(arg.substr(7), "--seed");
    } else if (arg.rfind("--json=", 0) == 0 &&
               arg.rfind("--json-metric-prefix=", 0) != 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--json-metric-prefix=", 0) == 0) {
      flags.json_metric_prefix = arg.substr(21);
    } else if (arg == "--verify") {
      flags.verify = true;
    } else if (arg.rfind("--verify-data-dir=", 0) == 0) {
      flags.verify = true;
      flags.verify_data_dir = arg.substr(18);
    } else if (arg == "--shutdown") {
      flags.shutdown = true;
    } else if (arg == "--stats") {
      flags.stats = true;
    } else if (arg.rfind("--op-timeout-ms=", 0) == 0) {
      flags.op_timeout_ms =
          static_cast<long>(parse_uint(arg.substr(16), "--op-timeout-ms"));
    } else if (arg.rfind("--attempts=", 0) == 0) {
      flags.attempts =
          static_cast<int>(parse_uint(arg.substr(11), "--attempts"));
    } else if (arg.rfind("--base-size=", 0) == 0) {
      flags.base.base_size = parse_uint(arg.substr(12), "--base-size");
    } else if (arg.rfind("--spam-fraction=", 0) == 0) {
      flags.base.spam_fraction =
          parse_double(arg.substr(16), "--spam-fraction");
    } else if (arg.rfind("--base-seed=", 0) == 0) {
      flags.base.seed = parse_uint(arg.substr(12), "--base-seed");
    } else {
      std::fprintf(stderr, "sbx_loadgen: unknown flag '%s'\n\n", arg.c_str());
      return false;
    }
  }
  if (flags.connect.empty()) {
    std::fprintf(stderr, "sbx_loadgen: --connect is required\n\n");
    return false;
  }
  if (flags.connections == 0 || flags.batch == 0 || flags.users == 0) {
    std::fprintf(stderr,
                 "sbx_loadgen: --connections, --batch and --users must be "
                 "greater than 0\n\n");
    return false;
  }
  if (flags.attempts < 1) {
    std::fprintf(stderr, "sbx_loadgen: --attempts must be at least 1\n\n");
    return false;
  }
  return true;
}

/// What one connection thread measured.
struct ConnectionResult {
  std::vector<double> latencies_ms;  // one entry per request
  std::uint64_t classified_messages = 0;
  std::uint64_t train_requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t mismatches = 0;  // --verify score-bit diffs
  std::uint64_t retries = 0;     // client-level reconnect/backoff retries
  /// Wall time from run start to this connection's first successful
  /// response (0 = none succeeded). Against a just-promoted standby this
  /// measures failover-to-first-ack.
  double first_response_ms = 0;
};

/// Bitwise score comparison between the daemon's response and the mirror's.
std::uint64_t count_mismatches(const Response& remote, const Response& local) {
  const auto* rc = std::get_if<ClassifyBatchResponse>(&remote);
  const auto* lc = std::get_if<ClassifyBatchResponse>(&local);
  if (rc && lc) {
    if (rc->results.size() != lc->results.size()) {
      return std::max(rc->results.size(), lc->results.size());
    }
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < rc->results.size(); ++i) {
      // Exact bit comparison via memcmp-equivalent double equality: any
      // representational difference other than identical bits is a flip.
      if (!(rc->results[i].score == lc->results[i].score) ||
          rc->results[i].verdict != lc->results[i].verdict) {
        ++bad;
      }
    }
    return bad;
  }
  const auto* rt = std::get_if<TrainResponse>(&remote);
  const auto* lt = std::get_if<TrainResponse>(&local);
  if (rt && lt) {
    // Generations are process-local counters, so only the counts must
    // agree across the two processes.
    return (rt->overlay_spam == lt->overlay_spam &&
            rt->overlay_ham == lt->overlay_ham)
               ? 0
               : 1;
  }
  return remote.index() == local.index() ? 0 : 1;
}

void run_connection(const Flags& flags, std::size_t conn_index,
                    const sbx::corpus::TrecLikeGenerator& generator,
                    sbx::serve::ServeFrontend* mirror,
                    std::chrono::steady_clock::time_point wall_start,
                    ConnectionResult& out) {
  sbx::serve::ClientOptions copts;
  copts.op_timeout_ms = flags.op_timeout_ms;
  copts.max_attempts = flags.attempts;
  copts.jitter_seed = flags.seed ^ (conn_index + 1);
  sbx::serve::Client client(flags.connect, copts);
  sbx::util::Rng rng = sbx::util::Rng(flags.seed).fork(conn_index);
  // Deterministic per-connection request-id stream. The seed is scrambled
  // first: splitmix64 walks states in increments of a fixed constant, so
  // unscrambled seeds would alias each other's id streams and different
  // runs against one data-dir would falsely dedup. Odd ids only: 0 means
  // "no dedup".
  std::uint64_t seed_state = flags.seed + 1;
  std::uint64_t id_state = sbx::util::splitmix64(seed_state) ^
                           ((conn_index + 1) * 0xBF58476D1CE4E5B9ull);

  // The users this connection owns: u % connections == conn_index. Every
  // request for one of them flows through this thread, so per-user order
  // is program order — exactly what the mirror replays.
  std::vector<std::uint64_t> owned;
  for (std::uint64_t u = conn_index; u < flags.users; u += flags.connections) {
    owned.push_back(u);
  }
  if (owned.empty()) return;

  out.latencies_ms.reserve(flags.requests);
  for (std::size_t r = 0; r < flags.requests; ++r) {
    const std::uint64_t user = owned[rng.index(owned.size())];
    Request request;
    std::size_t batch_messages = 0;
    const bool is_train =
        flags.train_every > 0 && (r + 1) % flags.train_every == 0;
    if (is_train) {
      TrainRequest t;
      t.user_id = user;
      t.as_spam = rng.bernoulli(0.5);
      t.copies = 1;
      t.message = sbx::email::render_message(
          t.as_spam ? generator.generate_spam(rng)
                    : generator.generate_ham(rng));
      t.request_id = sbx::util::splitmix64(id_state) | 1;
      request = std::move(t);
    } else {
      ClassifyBatchRequest c;
      c.user_id = user;
      c.messages.reserve(flags.batch);
      for (std::size_t b = 0; b < flags.batch; ++b) {
        c.messages.push_back(sbx::email::render_message(
            rng.bernoulli(0.5) ? generator.generate_spam(rng)
                               : generator.generate_ham(rng)));
      }
      batch_messages = c.messages.size();
      request = std::move(c);
    }

    const auto start = std::chrono::steady_clock::now();
    Response response;
    try {
      response = client.call(request);
    } catch (const sbx::Error&) {
      // Retries exhausted (or a protocol violation). The server may or may
      // not have applied a failed train, so the mirror is skipped too; the
      // nonzero error count fails the run regardless.
      ++out.errors;
      continue;
    }
    const auto stop = std::chrono::steady_clock::now();
    out.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    if (out.first_response_ms == 0) {
      out.first_response_ms =
          std::chrono::duration<double, std::milli>(stop - wall_start).count();
    }

    if (std::holds_alternative<ErrorResponse>(response)) {
      ++out.errors;
    } else if (is_train) {
      ++out.train_requests;
    } else {
      out.classified_messages += batch_messages;
    }
    if (mirror != nullptr) {
      out.mismatches += count_mismatches(response, mirror->dispatch(request));
    }
  }
  out.retries = client.retries();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Builds the --verify mirror. With --verify-data-dir the topology comes
/// from the server's manifest and the mirror is pre-seeded by replaying the
/// server's snapshot+WAL, so the run verifies recovered state.
std::unique_ptr<sbx::serve::ServeFrontend> build_mirror(Flags& flags) {
  sbx::serve::FrontendConfig fc;
  fc.user_count = flags.users;
  sbx::serve::BaseModelConfig base = flags.base;
  if (!flags.verify_data_dir.empty()) {
    const auto manifest = sbx::serve::read_manifest(flags.verify_data_dir);
    if (!manifest) {
      throw sbx::IoError("sbx_loadgen: no manifest in --verify-data-dir " +
                         flags.verify_data_dir);
    }
    fc.user_count = manifest->users;
    fc.shard_count = manifest->shards;
    base.base_size = manifest->base_size;
    base.spam_fraction = manifest->spam_fraction;
    base.seed = manifest->base_seed;
    flags.users = manifest->users;  // workload must target real users
  }
  auto mirror = std::make_unique<sbx::serve::ServeFrontend>(
      sbx::serve::build_base_filter(base), fc);
  if (!flags.verify_data_dir.empty()) {
    // Read-only replay: never repair the server's WAL files from here.
    const auto rs = sbx::serve::recover(*mirror, flags.verify_data_dir,
                                        /*repair_torn_tail=*/false);
    std::printf("sbx_loadgen: mirror replayed %llu snapshot users + %llu wal "
                "records from %s\n",
                static_cast<unsigned long long>(rs.snapshot_users),
                static_cast<unsigned long long>(rs.replayed_records),
                flags.verify_data_dir.c_str());
  }
  return mirror;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return usage(stderr);
  try {
    const sbx::corpus::TrecLikeGenerator generator;

    // --verify: the in-process twin. Same base triple as the daemon; shard
    // topology is irrelevant for bit-identity (routing never changes
    // scores) except under --verify-data-dir, where the manifest supplies
    // everything anyway.
    std::unique_ptr<sbx::serve::ServeFrontend> mirror;
    if (flags.verify) mirror = build_mirror(flags);

    std::vector<ConnectionResult> results(flags.connections);
    const auto wall_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(flags.connections);
      for (std::size_t c = 0; c < flags.connections; ++c) {
        threads.emplace_back([&, c] {
          run_connection(flags, c, generator, mirror.get(), wall_start,
                         results[c]);
        });
      }
      for (std::thread& t : threads) t.join();
    }
    const double elapsed_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    std::vector<double> latencies;
    std::uint64_t classified = 0, trains = 0, errors = 0, mismatches = 0;
    std::uint64_t retried = 0;
    double first_response_ms = 0;
    for (const ConnectionResult& r : results) {
      latencies.insert(latencies.end(), r.latencies_ms.begin(),
                       r.latencies_ms.end());
      classified += r.classified_messages;
      trains += r.train_requests;
      errors += r.errors;
      mismatches += r.mismatches;
      retried += r.retries;
      if (r.first_response_ms > 0 &&
          (first_response_ms == 0 || r.first_response_ms < first_response_ms)) {
        first_response_ms = r.first_response_ms;
      }
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    const double msgs_per_sec =
        elapsed_sec > 0 ? static_cast<double>(classified) / elapsed_sec : 0;
    const double reqs_per_sec =
        elapsed_sec > 0 ? static_cast<double>(latencies.size()) / elapsed_sec
                        : 0;

    std::printf("sbx_loadgen: %llu msgs classified, %llu trains, %llu errors, "
                "%llu retries in %.2fs over %zu connections\n",
                static_cast<unsigned long long>(classified),
                static_cast<unsigned long long>(trains),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(retried), elapsed_sec,
                flags.connections);
    std::printf("sbx_loadgen: %.1f msgs/sec, %.1f reqs/sec, p50 %.3f ms, "
                "p99 %.3f ms, first response %.3f ms\n",
                msgs_per_sec, reqs_per_sec, p50, p99, first_response_ms);
    if (flags.verify) {
      std::printf("sbx_loadgen: verify: %llu mismatches\n",
                  static_cast<unsigned long long>(mismatches));
    }

    // Recovery telemetry for the chaos harness: replayed records / replay
    // seconds, taken from the server's own counters.
    std::optional<StatsResponse> server_stats;
    if (flags.stats || flags.shutdown) {
      sbx::serve::ClientOptions copts;
      copts.op_timeout_ms = flags.op_timeout_ms;
      copts.max_attempts = flags.attempts;
      copts.jitter_seed = flags.seed ^ 0xC0FFEE;
      sbx::serve::Client control(flags.connect, copts);
      if (flags.stats) {
        const Response r = control.call(Request(sbx::serve::StatsRequest{}));
        if (const auto* s = std::get_if<StatsResponse>(&r)) {
          server_stats = *s;
          std::printf(
              "sbx_loadgen: server stats: uptime %llu ms, wal %llu records / "
              "%llu bytes / %llu snapshots, recovery %llu replayed + %llu "
              "torn dropped in %llu ms (%llu snapshot users), %llu deduped, "
              "%llu shed, %llu active\n",
              static_cast<unsigned long long>(s->uptime_ms),
              static_cast<unsigned long long>(s->wal_records),
              static_cast<unsigned long long>(s->wal_bytes),
              static_cast<unsigned long long>(s->wal_snapshots),
              static_cast<unsigned long long>(s->recovery_replayed_records),
              static_cast<unsigned long long>(s->recovery_torn_dropped),
              static_cast<unsigned long long>(s->recovery_ms),
              static_cast<unsigned long long>(s->recovery_snapshot_users),
              static_cast<unsigned long long>(s->deduped_mutations),
              static_cast<unsigned long long>(s->shed_connections),
              static_cast<unsigned long long>(s->active_connections));
          std::printf(
              "sbx_loadgen: server repl: shipped seqno %llu, acked seqno "
              "%llu, lag %llu, standby applied %llu, group-commit windows "
              "%llu, incremental snapshot bytes %llu\n",
              static_cast<unsigned long long>(s->repl_shipped_seqno),
              static_cast<unsigned long long>(s->repl_acked_seqno),
              static_cast<unsigned long long>(s->repl_lag_records),
              static_cast<unsigned long long>(s->standby_applied_records),
              static_cast<unsigned long long>(s->group_commit_windows),
              static_cast<unsigned long long>(s->incremental_snapshot_bytes));
        }
      }
      if (flags.shutdown) {
        control.call(Request(sbx::serve::ShutdownRequest{}));
      }
    }

    if (!flags.json_path.empty()) {
      std::FILE* f = std::fopen(flags.json_path.c_str(), "w");
      if (f == nullptr) {
        throw sbx::IoError("sbx_loadgen: cannot write " + flags.json_path);
      }
      const std::string& mp = flags.json_metric_prefix;
      // Latencies live under "info", not "metrics": check_bench.py treats
      // every metric as higher-is-better.
      std::fprintf(f,
                   "{\n"
                   "  \"schema\": 1,\n"
                   "  \"metrics\": {\n"
                   "    \"%sclassify_msgs_per_sec\": %.3f,\n"
                   "    \"%srequests_per_sec\": %.3f",
                   mp.c_str(), msgs_per_sec, mp.c_str(), reqs_per_sec);
      if (server_stats && server_stats->recovery_replayed_records > 0 &&
          server_stats->recovery_ms > 0) {
        const double replay_per_sec =
            static_cast<double>(server_stats->recovery_replayed_records) /
            (static_cast<double>(server_stats->recovery_ms) / 1000.0);
        std::fprintf(f,
                     ",\n    \"%srecovery_replayed_records_per_sec\": %.3f",
                     mp.c_str(), replay_per_sec);
      }
      // Replication telemetry (the failover harness queries the promoted
      // standby): apply throughput while it was a standby, and group-commit
      // window throughput under fsync=batch.
      if (server_stats && server_stats->standby_applied_records > 0 &&
          server_stats->uptime_ms > 0) {
        const double ship_per_sec =
            static_cast<double>(server_stats->standby_applied_records) /
            (static_cast<double>(server_stats->uptime_ms) / 1000.0);
        std::fprintf(f, ",\n    \"%sship_records_per_sec\": %.3f", mp.c_str(),
                     ship_per_sec);
      }
      if (server_stats && server_stats->group_commit_windows > 0) {
        std::fprintf(f, ",\n    \"%sgroup_commit_msgs_per_sec\": %.3f",
                     mp.c_str(), msgs_per_sec);
      }
      // Failover-to-first-ack, inverted to per-second so check_bench's
      // higher-is-better contract holds (faster failover = bigger number).
      if (!mp.empty() && first_response_ms > 0) {
        std::fprintf(f, ",\n    \"%sfailover_first_ack_per_sec\": %.3f",
                     mp.c_str(), 1000.0 / first_response_ms);
      }
      std::fprintf(f,
                   "\n  },\n"
                   "  \"info\": {\n"
                   "    \"p50_ms\": %.4f,\n"
                   "    \"p99_ms\": %.4f,\n"
                   "    \"connections\": %zu,\n"
                   "    \"users\": %zu,\n"
                   "    \"batch\": %zu,\n"
                   "    \"requests_per_connection\": %zu,\n"
                   "    \"train_every\": %zu,\n"
                   "    \"classified_messages\": %llu,\n"
                   "    \"train_requests\": %llu,\n"
                   "    \"errors\": %llu,\n"
                   "    \"retried_requests\": %llu,\n"
                   "    \"verify_mismatches\": %llu,\n"
                   "    \"elapsed_sec\": %.3f\n"
                   "  }\n"
                   "}\n",
                   p50, p99, flags.connections, flags.users, flags.batch,
                   flags.requests, flags.train_every,
                   static_cast<unsigned long long>(classified),
                   static_cast<unsigned long long>(trains),
                   static_cast<unsigned long long>(errors),
                   static_cast<unsigned long long>(retried),
                   static_cast<unsigned long long>(mismatches), elapsed_sec);
      std::fclose(f);
      std::printf("sbx_loadgen: wrote %s\n", flags.json_path.c_str());
    }

    if (errors > 0) return 1;
    if (flags.verify && mismatches > 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbx_loadgen: %s\n", e.what());
    return 1;
  }
}
