// sbx_experiments — the single CLI over the experiment registry. Replaces
// the per-figure bench main()s as the way to run any experiment or sweep:
//
//   sbx_experiments list
//   sbx_experiments describe <experiment>
//   sbx_experiments run <experiment> [key=value ...] [flags]
//   sbx_experiments sweep <experiment> --axis key=v1,v2 [...] [key=value ...]
//
// Shared flags:
//   --quick             apply the experiment's reduced-scale overrides
//   --threads=N         size the shared process pool (0 = hardware)
//   --seed=S            override the "seed" config key (explicit 0 honored)
//   --out-dir=DIR       write CSV tables + the JSON ResultDoc(s) to DIR
//
// Sweeps execute whole configs as top-level trials on the shared pool —
// the same pool the per-config fold loops use (run-inline-while-waiting,
// so the nesting cannot deadlock) — and their output is byte-identical at
// any thread count.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/attack_registry.h"
#include "eval/experiment.h"
#include "eval/registry.h"
#include "eval/sweep.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace {

using namespace sbx;

struct CliFlags {
  bool quick = false;
  std::size_t threads = 0;
  std::optional<std::uint64_t> seed;
  std::optional<std::string> out_dir;
  std::vector<std::string> overrides;       // key=value
  std::vector<eval::SweepAxis> axes;        // sweep only
};

int usage(FILE* to) {
  std::fprintf(to,
               "usage: sbx_experiments <command> [...]\n"
               "\n"
               "commands:\n"
               "  list                         all registered experiments\n"
               "  describe <exp>               config schema and defaults\n"
               "  run <exp> [k=v ...]          run one config\n"
               "  sweep <exp> --axis k=v1,v2 [--axis ...] [k=v ...]\n"
               "                               run the axis cross-product\n"
               "  attacks list                 all registered attacks with\n"
               "                               their taxonomy coordinates\n"
               "  attacks describe <attack>    taxonomy, threat model and\n"
               "                               parameter schema\n"
               "\n"
               "flags (run/sweep):\n"
               "  --quick          reduced-scale config for smoke runs\n"
               "  --threads=N      shared-pool size (0 = hardware)\n"
               "  --seed=S         override the seed key (explicit 0 ok)\n"
               "  --out-dir=DIR    write CSV tables + JSON ResultDocs\n");
  return to == stdout ? 0 : 2;
}

CliFlags parse_cli(int argc, char** argv, int first, bool allow_axes) {
  CliFlags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      flags.quick = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      flags.threads = static_cast<std::size_t>(
          eval::parse_uint(arg.substr(10), "--threads"));
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = eval::parse_uint(arg.substr(7), "--seed");
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      flags.out_dir = arg.substr(10);
    } else if (allow_axes && arg.rfind("--axis=", 0) == 0) {
      flags.axes.push_back(eval::parse_sweep_axis(arg.substr(7)));
    } else if (allow_axes && arg == "--axis") {
      if (i + 1 >= argc) {
        throw InvalidArgument("--axis needs a key=v1,v2,... argument");
      }
      flags.axes.push_back(eval::parse_sweep_axis(argv[++i]));
    } else if (arg.rfind("--", 0) == 0) {
      throw InvalidArgument("unknown flag '" + arg + "'");
    } else {
      flags.overrides.push_back(arg);  // key=value config override
    }
  }
  return flags;
}

eval::Config resolve(const eval::Experiment& experiment,
                     const CliFlags& flags) {
  return eval::resolve_config(experiment, flags.quick, flags.overrides,
                              flags.seed);
}

void print_doc(const eval::ResultDoc& doc) {
  for (const auto& named : doc.tables) {
    std::printf("%s\n", named.table.to_text().c_str());
  }
  for (const auto& line : doc.report) {
    std::printf("%s\n", line.c_str());
  }
  if (!doc.metrics.empty()) {
    std::printf("\nmetrics:\n");
    for (const auto& [name, value] : doc.metrics) {
      std::printf("  %-40s %g\n", name.c_str(), value);
    }
  }
}

int cmd_list() {
  std::printf("%-18s %-52s %s\n", "experiment", "description", "reproduces");
  for (const auto* experiment : eval::builtin_registry().experiments()) {
    std::printf("%-18s %-52s %s\n", experiment->name().c_str(),
                experiment->description().c_str(),
                experiment->paper_ref().c_str());
  }
  return 0;
}

int cmd_describe(const std::string& name) {
  const eval::Experiment& experiment = eval::builtin_registry().get(name);
  std::printf("%s — %s\nreproduces: %s\n\n", experiment.name().c_str(),
              experiment.description().c_str(),
              experiment.paper_ref().c_str());
  std::printf("%-20s %-12s %-28s %s\n", "key", "type", "default",
              "description");
  for (const auto& spec : experiment.schema().params()) {
    std::printf("%-20s %-12s %-28s %s\n", spec.key.c_str(),
                std::string(eval::to_string(spec.type)).c_str(),
                spec.default_value.c_str(), spec.description.c_str());
  }
  const auto quick = experiment.quick_overrides();
  if (!quick.empty()) {
    std::printf("\n--quick overrides:");
    for (const auto& [key, value] : quick) {
      std::printf(" %s=%s", key.c_str(), value.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_attacks_list() {
  std::printf("%-18s %-40s %s\n", "attack", "taxonomy", "description");
  for (const sbx::core::Attack* attack :
       sbx::core::builtin_attack_registry().attacks()) {
    std::printf("%-18s %-40s %s\n", attack->name().c_str(),
                attack->properties().description().c_str(),
                attack->description().c_str());
  }
  return 0;
}

int cmd_attacks_describe(const std::string& name) {
  const sbx::core::Attack& attack =
      sbx::core::builtin_attack_registry().get(name);
  const sbx::core::AttackProperties properties = attack.properties();
  std::printf("%s — %s\ntaxonomy: %s\nreproduces: %s\nhooks:%s%s\n\n",
              attack.name().c_str(), attack.description().c_str(),
              properties.description().c_str(), attack.paper_ref().c_str(),
              attack.crafts_poison() ? " craft_poison (Causative)" : "",
              attack.evades() ? " evade (Exploratory)" : "");
  if (attack.schema().params().empty()) {
    std::printf("no parameters\n");
    return 0;
  }
  std::printf("%-20s %-12s %-28s %s\n", "key", "type", "default",
              "description");
  for (const auto& spec : attack.schema().params()) {
    std::printf("%-20s %-12s %-28s %s\n", spec.key.c_str(),
                std::string(eval::to_string(spec.type)).c_str(),
                spec.default_value.c_str(), spec.description.c_str());
  }
  return 0;
}

int cmd_run(const std::string& name, const CliFlags& flags) {
  const eval::Experiment& experiment = eval::builtin_registry().get(name);
  const eval::Config config = resolve(experiment, flags);

  std::printf("%s — %s\nconfig:", experiment.name().c_str(),
              experiment.description().c_str());
  for (const auto& [key, value] : config.items()) {
    std::printf(" %s=%s", key.c_str(), value.c_str());
  }
  std::printf("\n\n");

  eval::RunContext ctx;
  ctx.threads = flags.threads;
  ctx.progress = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  };
  const eval::ResultDoc doc = experiment.run(config, ctx);
  print_doc(doc);

  if (flags.out_dir.has_value()) {
    for (const auto& path : doc.write_csv(*flags.out_dir, experiment.name())) {
      std::printf("CSV written to %s\n", path.c_str());
    }
    const std::string json_path =
        *flags.out_dir + "/" + experiment.name() + ".json";
    doc.write_json(json_path);
    std::printf("JSON written to %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_sweep(const std::string& name, const CliFlags& flags) {
  if (flags.axes.empty()) {
    throw InvalidArgument("sweep needs at least one --axis key=v1,v2,...");
  }
  const eval::Experiment& experiment = eval::builtin_registry().get(name);
  const eval::Config base = resolve(experiment, flags);

  eval::SweepOptions options;
  options.threads = flags.threads;
  options.progress = [](std::size_t i, std::size_t total) {
    std::printf("config %zu/%zu done\n", i + 1, total);
    std::fflush(stdout);
  };

  std::printf("sweep %s:", experiment.name().c_str());
  for (const auto& axis : flags.axes) {
    std::printf(" %s={", axis.key.c_str());
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      std::printf("%s%s", i ? "," : "", axis.values[i].c_str());
    }
    std::printf("}");
  }
  std::printf("\n");

  const eval::SweepResult result =
      eval::run_sweep(experiment, base, flags.axes, options);

  std::printf("\n%s\n", result.summary().to_text().c_str());
  if (flags.out_dir.has_value()) {
    for (std::size_t i = 0; i < result.docs.size(); ++i) {
      const std::string stem =
          experiment.name() + "_" + std::to_string(i);
      result.docs[i].write_json(*flags.out_dir + "/" + stem + ".json");
    }
    const std::string summary_path =
        *flags.out_dir + "/" + experiment.name() + "_sweep.csv";
    result.summary().write_csv(summary_path);
    std::printf("summary CSV written to %s; %zu ResultDoc JSONs in %s\n",
                summary_path.c_str(), result.docs.size(),
                flags.out_dir->c_str());
  }
  return 0;
}

/// Shared exit-2 path for an unrecognized (sub)command: one complaint
/// format, then the usage text on stderr.
int unknown_command(const char* kind, const std::string& name) {
  std::fprintf(stderr, "sbx_experiments: unknown %s '%s'\n\n", kind,
               name.c_str());
  return usage(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string command = argv[1];
  try {
    if (command == "--help" || command == "help") return usage(stdout);
    if (command == "list") return cmd_list();
    if (command == "describe") {
      if (argc < 3) return usage(stderr);
      return cmd_describe(argv[2]);
    }
    if (command == "attacks") {
      if (argc < 3) return usage(stderr);
      const std::string sub = argv[2];
      if (sub == "list") return cmd_attacks_list();
      if (sub == "describe") {
        if (argc < 4) return usage(stderr);
        return cmd_attacks_describe(argv[3]);
      }
      return unknown_command("attacks command", sub);
    }
    if (command == "run" || command == "sweep") {
      if (argc < 3) return usage(stderr);
      const CliFlags flags =
          parse_cli(argc, argv, 3, /*allow_axes=*/command == "sweep");
      // Size the shared pool before anything borrows it; every Runner in
      // the process (sweep trials and per-config folds alike) uses it.
      if (flags.threads != 0) {
        sbx::util::ThreadPool::configure_shared(flags.threads);
      }
      return command == "run" ? cmd_run(argv[2], flags)
                              : cmd_sweep(argv[2], flags);
    }
    return unknown_command("command", command);
  } catch (const sbx::Error& e) {
    std::fprintf(stderr, "sbx_experiments: %s\n", e.what());
    return 2;
  }
}
