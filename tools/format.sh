#!/usr/bin/env bash
# Formats (or with --check, verifies) every C++ source in the tree with the
# repo's .clang-format. Usage:
#   tools/format.sh           # rewrite files in place
#   tools/format.sh --check   # exit non-zero on drift (what CI runs)
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT=clang-format-18)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.h' \
  'tests/**/*.cpp' 'bench/*.cpp' 'bench/*.h' 'examples/*.cpp')

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
  echo "format check passed (${#files[@]} files)"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
