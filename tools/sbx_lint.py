#!/usr/bin/env python3
"""sbx_lint: project invariant linter.

Enforces the determinism and locking conventions no off-the-shelf tool
knows about. Bit-identical results at any thread count rest on every
source of nondeterminism being banished from the result paths; this
linter turns those conventions from review checklist items into a ctest.

Rules (all scoped to checked directories, see RULES):

  wallclock       src/{spambayes,core,eval,serve} must not draw entropy
                  or wall-clock time: no rand()/srand()/random_device, no
                  time()/system_clock/gettimeofday/localtime. Randomness
                  comes only from util::random forked streams (and
                  steady_clock is fine — it is monotonic and never feeds
                  results). serve is in scope since PR 9: replication
                  timers (ship deadlines, backoff, ack waits) must be
                  steady_clock-based deadlines, or failover behavior
                  changes under clock steps.
  unordered-iter  no range-for over an unordered_map/unordered_set in
                  the result paths: iteration order varies across
                  libstdc++ versions and hash seeds, so anything it
                  feeds (ResultDoc, tables, serializers) would too.
                  Point lookups (.find/.count/.at) are fine.
  float-format    float formatting lives in the audited round-trip
                  helpers (eval/result_doc.cpp, eval/attack_axis.cpp)
                  only; ad-hoc snprintf("%f")/to_chars/setprecision
                  elsewhere would fork the JSON/CSV float spelling.
  process-escape  no system()/popen()/tmpnam()/mktemp() anywhere in
                  src/ — experiments must be reproducible from the
                  binary alone, and tmpnam/mktemp are unsafe.
  lock-comment    a "caller holds the lock" comment must sit on a
                  declaration that carries SBX_REQUIRES(): prose and
                  annotation drifting apart is how locking bugs sneak
                  past review.
  raw-sync        no raw std::mutex / std::lock_guard / std::scoped_lock
                  / std::unique_lock / std::condition_variable in src/:
                  locking goes through the annotated, RANKED util::
                  wrappers (util/thread_annotations.h), or it is
                  invisible to clang TSA, the lock-rank tracker, AND
                  tools/sbx_lockgraph.py at once.
  tsan-supp       every suppression in tests/tsan.supp needs a comment
                  block with a "Justification:" line — suppressions
                  without a reason rot into "ignore all races here".

A line may opt out with an explanation:

    code();  // sbx-lint: allow(rule-name): why this one is safe

The marker without a reason does not count.

Usage:
  tools/sbx_lint.py [--root DIR]   lint the tree (exit 1 on violations)
  tools/sbx_lint.py --json         same, violations as a JSON array on
                                   stdout (rule, file, line, message)
  tools/sbx_lint.py --self-test    run every rule against its fixtures
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose outputs must be bit-identical at any thread count.
RESULT_PATH_DIRS = ("src/spambayes", "src/core", "src/eval")
# Result paths plus the serving/replication layer: its timers (ship
# deadlines, backoff, group-commit ack waits) must be monotonic, but its
# telemetry printfs are not result formatting, so only the wallclock rule
# widens to it.
WALLCLOCK_DIRS = RESULT_PATH_DIRS + ("src/serve",)
ALL_SRC_DIRS = ("src",)

# Files allowed to format floats: the two audited round-trip helpers.
FLOAT_FORMAT_ALLOWLIST = (
    "src/eval/result_doc.cpp",
    "src/eval/attack_axis.cpp",
)

SOURCE_EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")

ALLOW_RE = re.compile(r"sbx-lint:\s*allow\(([a-z-]+)\):\s*\S")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def as_dict(self):
        """The --json spelling (stable keys: CI renders these as GitHub
        annotations)."""
        return {"rule": self.rule, "file": self.path, "line": self.line,
                "message": self.message}


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Lets the code-pattern rules match real code without tripping on a
    banned identifier mentioned in a comment or a log message.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                # A quote straight after an alphanumeric is a digit
                # separator (10'000) or part of a suffix, not a char
                # literal opening.
                if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                    out.append(" ")
                    i += 1
                else:
                    state = "char"
                    out.append(" ")
                    i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def allowed(raw_lines, line_no, rule):
    """True when `line_no` (1-based) or the line above carries a matching
    allow-marker with a reason."""
    for idx in (line_no - 1, line_no - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m is not None and m.group(1) == rule:
                return True
    return False


# --- wallclock ---------------------------------------------------------------

WALLCLOCK_PATTERNS = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock (wall clock)"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "high_resolution_clock (may alias the wall clock)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\b(?:std::)?(?:local|gm)time(?:_r)?\s*\("),
     "localtime()/gmtime()"),
    (re.compile(r"(?<![\w:.>])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time()"),
]


def check_wallclock(path, raw_lines, code_lines):
    out = []
    for i, line in enumerate(code_lines, 1):
        for pattern, what in WALLCLOCK_PATTERNS:
            if pattern.search(line) and not allowed(raw_lines, i,
                                                    "wallclock"):
                out.append(Violation(
                    path, i, "wallclock",
                    "%s in a result path; determinism requires "
                    "util::random forked streams (steady_clock for "
                    "durations)" % what))
    return out


# --- unordered-iter ----------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>\s*&?\s*"
    r"(\w+)\s*(?:;|=|\{|\()")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(\w+)\s*\)")


def check_unordered_iter(path, raw_lines, code_lines):
    names = set()
    for line in code_lines:
        m = UNORDERED_DECL_RE.search(line)
        if m:
            names.add(m.group(1))
    out = []
    for i, line in enumerate(code_lines, 1):
        m = RANGE_FOR_RE.search(line)
        if m and m.group(1) in names and not allowed(raw_lines, i,
                                                     "unordered-iter"):
            out.append(Violation(
                path, i, "unordered-iter",
                "range-for over unordered container '%s': iteration "
                "order is not deterministic; collect into a sorted "
                "vector first" % m.group(1)))
    return out


# --- float-format ------------------------------------------------------------

FLOAT_FORMAT_PATTERNS = [
    (re.compile(r"\b(?:std::)?sn?printf\s*\("), "snprintf/sprintf"),
    (re.compile(r"\bto_chars\s*\("), "std::to_chars"),
    (re.compile(r"\bsetprecision\s*\("), "std::setprecision"),
]


def check_float_format(path, raw_lines, code_lines):
    rel = path.replace(os.sep, "/")
    if any(rel.endswith(allow) for allow in FLOAT_FORMAT_ALLOWLIST):
        return []
    out = []
    for i, line in enumerate(code_lines, 1):
        for pattern, what in FLOAT_FORMAT_PATTERNS:
            if pattern.search(line) and not allowed(raw_lines, i,
                                                    "float-format"):
                out.append(Violation(
                    path, i, "float-format",
                    "%s outside the audited round-trip helpers "
                    "(eval/result_doc.cpp, eval/attack_axis.cpp); float "
                    "spelling must have exactly one source of truth"
                    % what))
    return out


# --- process-escape ----------------------------------------------------------

PROCESS_ESCAPE_PATTERNS = [
    (re.compile(r"(?<![\w:.>])(?:std::)?system\s*\("), "system()"),
    (re.compile(r"\bpopen\s*\("), "popen()"),
    (re.compile(r"\btmpnam(?:_r)?\s*\("), "tmpnam()"),
    (re.compile(r"\bmktemp\s*\("), "mktemp()"),
]


def check_process_escape(path, raw_lines, code_lines):
    out = []
    for i, line in enumerate(code_lines, 1):
        for pattern, what in PROCESS_ESCAPE_PATTERNS:
            if pattern.search(line) and not allowed(raw_lines, i,
                                                    "process-escape"):
                out.append(Violation(
                    path, i, "process-escape",
                    "%s in library code; spawn nothing, name temp files "
                    "safely (mkstemp or a caller-provided dir)" % what))
    return out


# --- lock-comment ------------------------------------------------------------

LOCK_COMMENT_RE = re.compile(
    r"caller holds|lock (?:is )?held|mutex (?:is )?held|holding the lock",
    re.IGNORECASE)
# How far below the comment the annotated declaration may end.
LOCK_COMMENT_WINDOW = 6


def check_lock_comment(path, raw_lines, code_lines):
    del code_lines  # this rule reads the comments themselves
    out = []
    for i, line in enumerate(raw_lines, 1):
        if not LOCK_COMMENT_RE.search(line):
            continue
        if allowed(raw_lines, i, "lock-comment"):
            continue
        window = raw_lines[i - 1:i - 1 + LOCK_COMMENT_WINDOW]
        if not any("SBX_REQUIRES" in w for w in window):
            out.append(Violation(
                path, i, "lock-comment",
                "\"caller holds the lock\" prose without an "
                "SBX_REQUIRES() annotation within %d lines; the contract "
                "must be compiler-checked, not narrated"
                % LOCK_COMMENT_WINDOW))
    return out


# --- raw-sync ----------------------------------------------------------------

# The annotated wrappers themselves — the one place raw primitives live.
RAW_SYNC_ALLOWLIST = (
    "src/util/thread_annotations.h",
)

RAW_SYNC_PATTERNS = [
    (re.compile(r"\bstd::(?:recursive_|shared_|timed_|recursive_timed_)?"
                r"mutex\b"),
     "std::mutex family"),
    (re.compile(r"\bstd::lock_guard\b"), "std::lock_guard"),
    (re.compile(r"\bstd::scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"\bstd::unique_lock\b"), "std::unique_lock"),
    (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "std::condition_variable"),
]


def check_raw_sync(path, raw_lines, code_lines):
    rel = path.replace(os.sep, "/")
    if any(rel.endswith(allow) for allow in RAW_SYNC_ALLOWLIST):
        return []
    out = []
    for i, line in enumerate(code_lines, 1):
        for pattern, what in RAW_SYNC_PATTERNS:
            if pattern.search(line) and not allowed(raw_lines, i,
                                                    "raw-sync"):
                out.append(Violation(
                    path, i, "raw-sync",
                    "%s bypasses the annotated, ranked util:: wrappers "
                    "(util/thread_annotations.h) — invisible to clang "
                    "TSA, the SBX_LOCK_RANK tracker, and sbx_lockgraph "
                    "alike; use util::Mutex/MutexLock/CondVar" % what))
    return out


# --- tsan-supp ---------------------------------------------------------------

def check_tsan_supp(path, raw_lines):
    out = []
    justified = False
    for i, line in enumerate(raw_lines, 1):
        stripped = line.strip()
        if not stripped:
            justified = False
            continue
        if stripped.startswith("#"):
            if "Justification:" in stripped:
                justified = True
            continue
        if not justified:
            out.append(Violation(
                path, i, "tsan-supp",
                "suppression without a preceding comment block carrying "
                "a 'Justification:' line"))
        # A justification covers its contiguous block of suppressions.
    return out


# --- driver ------------------------------------------------------------------

# rule name -> (checker, scope dirs). tsan-supp is special-cased.
RULES = {
    "wallclock": (check_wallclock, WALLCLOCK_DIRS),
    "unordered-iter": (check_unordered_iter, RESULT_PATH_DIRS),
    "float-format": (check_float_format, RESULT_PATH_DIRS),
    "process-escape": (check_process_escape, ALL_SRC_DIRS),
    "lock-comment": (check_lock_comment, ALL_SRC_DIRS),
    "raw-sync": (check_raw_sync, ALL_SRC_DIRS),
}


def source_files(root, scope_dirs):
    for scope in scope_dirs:
        base = os.path.join(root, scope)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def lint_file(path, rules):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.split("\n")
    code_lines = strip_comments_and_strings(raw).split("\n")
    out = []
    for checker in rules:
        out.extend(checker(path, raw_lines, code_lines))
    return out


def lint_tree(root):
    violations = []
    by_scope = {}
    for rule, (checker, scope) in RULES.items():
        del rule
        by_scope.setdefault(scope, []).append(checker)
    for scope, checkers in by_scope.items():
        for path in source_files(root, scope):
            violations.extend(lint_file(path, checkers))
    supp = os.path.join(root, "tests", "tsan.supp")
    if os.path.exists(supp):
        with open(supp, encoding="utf-8") as f:
            violations.extend(check_tsan_supp(supp, f.read().split("\n")))
    return violations


# --- self-test ---------------------------------------------------------------

def run_fixture(checker, fixture_path, is_supp=False):
    with open(fixture_path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.split("\n")
    if is_supp:
        return check_tsan_supp(fixture_path, raw_lines)
    code_lines = strip_comments_and_strings(raw).split("\n")
    return checker(fixture_path, raw_lines, code_lines)


def self_test():
    fixtures = os.path.join(REPO_ROOT, "tools", "lint_fixtures")
    failures = []
    cases = [(rule, RULES[rule][0]) for rule in sorted(RULES)]
    cases.append(("tsan-supp", None))
    for rule, checker in cases:
        is_supp = rule == "tsan-supp"
        ext = ".supp" if is_supp else ".cc"
        bad = os.path.join(fixtures, rule + "_bad" + ext)
        good = os.path.join(fixtures, rule + "_good" + ext)
        bad_hits = run_fixture(checker, bad, is_supp)
        good_hits = run_fixture(checker, good, is_supp)
        if not any(v.rule == rule for v in bad_hits):
            failures.append("%s: did not fire on %s" % (rule, bad))
        if good_hits:
            failures.append("%s: false positive on %s: %s"
                            % (rule, good, good_hits[0]))
        print("  %-16s bad fixture: %d hit(s); good fixture: clean%s"
              % (rule, len(bad_hits),
                 "" if not good_hits else " FAILED"))
    # --json contract: every violation serializes to the four stable keys
    # CI renders as GitHub annotations, and the result survives a JSON
    # round-trip.
    sample = run_fixture(RULES["raw-sync"][0],
                         os.path.join(fixtures, "raw-sync_bad.cc"))
    encoded = json.loads(json.dumps([v.as_dict() for v in sample]))
    for entry in encoded:
        if sorted(entry) != ["file", "line", "message", "rule"]:
            failures.append("--json: unexpected keys %s" % sorted(entry))
        elif not isinstance(entry["line"], int):
            failures.append("--json: line is not an int: %r"
                            % entry["line"])
    if not encoded:
        failures.append("--json: raw-sync bad fixture produced no "
                        "violations to serialize")
    print("  %-16s %d violation(s) round-trip with stable keys"
          % ("--json", len(encoded)))
    if failures:
        for f in failures:
            print("SELF-TEST FAILURE: " + f, file=sys.stderr)
        return 1
    print("sbx_lint self-test: all %d rules fire on their bad fixture "
          "and stay quiet on the good one" % len(cases))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root to lint (default: the "
                             "checkout containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule fixtures instead of the tree")
    parser.add_argument("--json", action="store_true",
                        help="emit violations as a JSON array on stdout "
                             "(objects with rule, file, line, message)")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    violations = lint_tree(args.root)
    if args.json:
        json.dump([v.as_dict() for v in violations], sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 1 if violations else 0
    for v in violations:
        print(v)
    if violations:
        print("sbx_lint: %d violation(s)" % len(violations),
              file=sys.stderr)
        return 1
    print("sbx_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
