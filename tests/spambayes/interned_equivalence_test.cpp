// Equivalence suite for the interned hot paths: proves that the id-based
// representation (TokenIdSet + flat TokenDatabase + Classifier::score_ids)
// is bit-identical to the string-keyed implementation it replaced.
//
// The reference implementation below is a verbatim port of the
// pre-interning classifier/database (unordered_map<string, TokenCounts>,
// string-sorted tie-break). Every comparison against it is EXPECT_EQ on
// doubles — bitwise, not approximate.
#include <cmath>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "eval/runner.h"
#include "spambayes/filter.h"
#include "util/random.h"
#include "util/stats.h"

namespace sbx::spambayes {
namespace {

// --- reference (pre-interning) implementation ------------------------------

struct RefDatabase {
  std::unordered_map<std::string, TokenCounts> counts;
  std::uint32_t nspam = 0;
  std::uint32_t nham = 0;

  void train(const TokenSet& tokens, bool spam, std::uint32_t copies = 1) {
    for (const auto& t : tokens) {
      TokenCounts& c = counts[t];
      (spam ? c.spam : c.ham) += copies;
    }
    (spam ? nspam : nham) += copies;
  }

  void untrain(const TokenSet& tokens, bool spam, std::uint32_t copies = 1) {
    for (const auto& t : tokens) {
      auto it = counts.find(t);
      ASSERT_TRUE(it != counts.end());
      (spam ? it->second.spam : it->second.ham) -= copies;
      if (it->second.spam == 0 && it->second.ham == 0) counts.erase(it);
    }
    (spam ? nspam : nham) -= copies;
  }

  TokenCounts lookup(const std::string& token) const {
    auto it = counts.find(token);
    return it == counts.end() ? TokenCounts{} : it->second;
  }
};

double ref_token_score(const RefDatabase& db, const std::string& token,
                       const ClassifierOptions& opts) {
  const TokenCounts c = db.lookup(token);
  const double ns = db.nspam;
  const double nh = db.nham;
  const double spam_ratio = ns > 0 ? c.spam / ns : 0.0;
  const double ham_ratio = nh > 0 ? c.ham / nh : 0.0;
  double ps = 0.5;
  if (spam_ratio + ham_ratio > 0) {
    ps = spam_ratio / (spam_ratio + ham_ratio);
  }
  const double n_w = static_cast<double>(c.spam) + static_cast<double>(c.ham);
  const double s = opts.unknown_word_strength;
  const double x = opts.unknown_word_prob;
  return (s * x + n_w * ps) / (s + n_w);
}

ScoreResult ref_score(const RefDatabase& db, const TokenSet& tokens,
                      const ClassifierOptions& opts) {
  ScoreResult result;
  result.evidence.reserve(tokens.size());
  for (const auto& t : tokens) {
    result.evidence.push_back({t, ref_token_score(db, t, opts), false});
  }
  std::vector<std::size_t> candidates;
  candidates.reserve(result.evidence.size());
  for (std::size_t i = 0; i < result.evidence.size(); ++i) {
    if (std::fabs(result.evidence[i].score - 0.5) >
        opts.minimum_prob_strength) {
      candidates.push_back(i);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              double da = std::fabs(result.evidence[a].score - 0.5);
              double db_ = std::fabs(result.evidence[b].score - 0.5);
              if (da != db_) return da > db_;
              return result.evidence[a].token < result.evidence[b].token;
            });
  if (candidates.size() > opts.max_discriminators) {
    candidates.resize(opts.max_discriminators);
  }
  const std::size_t n = candidates.size();
  result.tokens_used = n;
  if (n == 0) {
    result.score = 0.5;
    result.spam_evidence = result.ham_evidence = 0.5;
    result.verdict = Classifier::verdict_for(0.5, opts.ham_cutoff,
                                             opts.spam_cutoff);
    return result;
  }
  double sum_log_f = 0.0;
  double sum_log_1mf = 0.0;
  for (std::size_t idx : candidates) {
    TokenEvidence& ev = result.evidence[idx];
    ev.used = true;
    double f = std::clamp(ev.score, 1e-300, 1.0 - 1e-15);
    sum_log_f += std::log(f);
    sum_log_1mf += std::log1p(-f);
  }
  const double h = util::chi2q_even_dof(-2.0 * sum_log_f, n);
  const double s = util::chi2q_even_dof(-2.0 * sum_log_1mf, n);
  result.spam_evidence = h;
  result.ham_evidence = s;
  result.score = (1.0 + h - s) / 2.0;
  result.verdict = Classifier::verdict_for(result.score, opts.ham_cutoff,
                                           opts.spam_cutoff);
  return result;
}

// --- shared fixture: a trained corpus in both representations --------------

struct Corpus {
  RefDatabase ref;
  Filter filter;
  std::vector<TokenSet> probes_tokens;
  std::vector<TokenIdSet> probes_ids;

  explicit Corpus(int train_each = 120, int probes = 60,
                  std::uint64_t seed = 991) {
    const corpus::TrecLikeGenerator& gen = generator();
    util::Rng rng(seed);
    for (int i = 0; i < train_each; ++i) {
      const TokenSet ham = filter.message_tokens(gen.generate_ham(rng));
      const TokenSet spam = filter.message_tokens(gen.generate_spam(rng));
      ref.train(ham, /*spam=*/false);
      ref.train(spam, /*spam=*/true);
      filter.train_ham_tokens(ham);
      filter.train_spam_tokens(spam);
    }
    for (int i = 0; i < probes; ++i) {
      const email::Message m =
          i % 2 == 0 ? gen.generate_ham(rng) : gen.generate_spam(rng);
      probes_tokens.push_back(filter.message_tokens(m));
      probes_ids.push_back(filter.message_token_ids(m));
    }
  }

  static const corpus::TrecLikeGenerator& generator() {
    static const corpus::TrecLikeGenerator gen;
    return gen;
  }
};

// --- tokenizer stream equivalence ------------------------------------------

TEST(InternedEquivalence, TokenStreamsAreByteIdentical) {
  const corpus::TrecLikeGenerator& gen = Corpus::generator();
  const Tokenizer tok;
  const TokenInterner& interner = global_interner();
  util::Rng rng(5150);
  for (int i = 0; i < 30; ++i) {
    const email::Message msg =
        i % 2 == 0 ? gen.generate_ham(rng) : gen.generate_spam(rng);
    const TokenList strings = tok.tokenize(msg);
    const TokenIdList ids = tok.tokenize_ids(msg);
    ASSERT_EQ(strings.size(), ids.size()) << "message " << i;
    for (std::size_t j = 0; j < strings.size(); ++j) {
      EXPECT_EQ(interner.spelling(ids[j]), strings[j])
          << "message " << i << " token " << j;
    }
    // And dedup commutes with interning.
    EXPECT_EQ(intern_tokens(unique_tokens(strings)),
              unique_token_ids(tok.tokenize_ids(msg)));
  }
}

// --- classification equivalence --------------------------------------------

TEST(InternedEquivalence, ScoresBitIdenticalToStringKeyedReference) {
  Corpus corpus;
  const ClassifierOptions opts = corpus.filter.options().classifier;
  for (std::size_t i = 0; i < corpus.probes_tokens.size(); ++i) {
    const ScoreResult expected =
        ref_score(corpus.ref, corpus.probes_tokens[i], opts);
    const ScoreResult via_strings =
        corpus.filter.classify_tokens(corpus.probes_tokens[i]);
    const ScoreIdResult via_ids =
        corpus.filter.classify_ids(corpus.probes_ids[i]);

    // Bitwise equality on every aggregate, through both entry points.
    EXPECT_EQ(expected.score, via_strings.score) << "probe " << i;
    EXPECT_EQ(expected.score, via_ids.score) << "probe " << i;
    EXPECT_EQ(expected.spam_evidence, via_strings.spam_evidence);
    EXPECT_EQ(expected.spam_evidence, via_ids.spam_evidence);
    EXPECT_EQ(expected.ham_evidence, via_strings.ham_evidence);
    EXPECT_EQ(expected.ham_evidence, via_ids.ham_evidence);
    EXPECT_EQ(expected.tokens_used, via_strings.tokens_used);
    EXPECT_EQ(expected.tokens_used, via_ids.tokens_used);
    EXPECT_EQ(expected.verdict, via_strings.verdict);
    EXPECT_EQ(expected.verdict, via_ids.verdict);

    // Evidence equivalence: the string path preserves ordering and flags
    // exactly; the id path selects the same delta(E) set.
    ASSERT_EQ(expected.evidence.size(), via_strings.evidence.size());
    const TokenInterner& interner = global_interner();
    std::vector<std::string> expected_used;
    std::vector<std::string> ids_used;
    for (std::size_t j = 0; j < expected.evidence.size(); ++j) {
      EXPECT_EQ(expected.evidence[j].token, via_strings.evidence[j].token);
      EXPECT_EQ(expected.evidence[j].score, via_strings.evidence[j].score);
      EXPECT_EQ(expected.evidence[j].used, via_strings.evidence[j].used);
      if (expected.evidence[j].used) {
        expected_used.push_back(expected.evidence[j].token);
      }
    }
    for (const auto& ev : via_ids.evidence) {
      EXPECT_EQ(ev.score,
                corpus.filter.classifier().token_score(
                    corpus.filter.database(), ev.id));
      if (ev.used) ids_used.emplace_back(interner.spelling(ev.id));
    }
    std::sort(expected_used.begin(), expected_used.end());
    std::sort(ids_used.begin(), ids_used.end());
    EXPECT_EQ(expected_used, ids_used) << "probe " << i;
  }
}

TEST(InternedEquivalence, ScoreIsIndependentOfIdOrder) {
  Corpus corpus(60, 20, 313);
  for (std::size_t i = 0; i < corpus.probes_ids.size(); ++i) {
    TokenIdList shuffled = corpus.probes_ids[i];
    util::Rng rng(1000 + i);
    rng.shuffle(shuffled);
    EXPECT_EQ(corpus.filter.classify_ids(corpus.probes_ids[i]).score,
              corpus.filter.classify_ids(shuffled).score)
        << "probe " << i;
  }
}

// --- training-state equivalence --------------------------------------------

TEST(InternedEquivalence, TrainUntrainCountsMatchStringPath) {
  const corpus::TrecLikeGenerator& gen = Corpus::generator();
  util::Rng rng(777);
  Filter via_strings;
  Filter via_ids;
  std::vector<TokenSet> sets;
  std::vector<TokenIdSet> id_sets;
  for (int i = 0; i < 40; ++i) {
    const email::Message m =
        i % 2 == 0 ? gen.generate_ham(rng) : gen.generate_spam(rng);
    sets.push_back(via_strings.message_tokens(m));
    id_sets.push_back(via_strings.message_token_ids(m));
  }
  for (int i = 0; i < 40; ++i) {
    const auto copies = static_cast<std::uint32_t>(1 + i % 3);
    if (i % 2 == 0) {
      via_strings.train_ham_tokens(sets[i], copies);
      via_ids.train_ham_ids(id_sets[i], copies);
    } else {
      via_strings.train_spam_tokens(sets[i], copies);
      via_ids.train_spam_ids(id_sets[i], copies);
    }
  }
  auto expect_equal_databases = [&] {
    const TokenDatabase& a = via_strings.database();
    const TokenDatabase& b = via_ids.database();
    EXPECT_EQ(a.spam_count(), b.spam_count());
    EXPECT_EQ(a.ham_count(), b.ham_count());
    EXPECT_EQ(a.vocabulary_size(), b.vocabulary_size());
    EXPECT_EQ(a.tokens(), b.tokens());
  };
  expect_equal_databases();
  // Untrain half of the messages again, through the opposite entry points
  // to cross-check the wrappers.
  for (int i = 0; i < 20; ++i) {
    const auto copies = static_cast<std::uint32_t>(1 + i % 3);
    if (i % 2 == 0) {
      via_strings.untrain_ham_ids(id_sets[i], copies);
      via_ids.untrain_ham_tokens(sets[i], copies);
    } else {
      via_strings.untrain_spam_ids(id_sets[i], copies);
      via_ids.untrain_spam_tokens(sets[i], copies);
    }
  }
  expect_equal_databases();
}

TEST(InternedEquivalence, SaveLoadSaveIsByteStable) {
  Corpus corpus(50, 0, 555);
  std::stringstream first;
  corpus.filter.database().save(first);
  TokenDatabase loaded = TokenDatabase::load(first);
  std::stringstream second;
  loaded.save(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(loaded.vocabulary_size(),
            corpus.filter.database().vocabulary_size());
  EXPECT_EQ(loaded.tokens(), corpus.filter.database().tokens());
}

// --- thread-count equivalence ----------------------------------------------

// Classification scores must be bit-identical to the single-threaded
// string-keyed reference no matter how many threads tokenize/intern/classify
// concurrently (id *assignment* is scheduling-dependent; scores must not
// be).
TEST(InternedEquivalence, ScoresBitIdenticalAtOneAndFourThreads) {
  const corpus::TrecLikeGenerator& gen = Corpus::generator();
  Corpus corpus(80, 0, 441);
  const ClassifierOptions opts = corpus.filter.options().classifier;

  // Fresh probe messages, tokenized inside the parallel trials below so the
  // interner sees concurrent traffic.
  constexpr std::size_t kProbes = 48;
  std::vector<email::Message> messages;
  util::Rng rng(616);
  for (std::size_t i = 0; i < kProbes; ++i) {
    messages.push_back(i % 2 == 0 ? gen.generate_ham(rng)
                                  : gen.generate_spam(rng));
  }
  std::vector<double> expected;
  const Tokenizer tok(corpus.filter.options().tokenizer);
  for (const auto& m : messages) {
    expected.push_back(
        ref_score(corpus.ref, unique_tokens(tok.tokenize(m)), opts).score);
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    eval::Runner runner(1, threads);
    std::vector<double> scores = runner.map(
        messages.size(), /*salt=*/10, [&](std::size_t i, util::Rng&) {
          return corpus.filter
              .classify_ids(corpus.filter.message_token_ids(messages[i]))
              .score;
        });
    ASSERT_EQ(scores.size(), expected.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], expected[i])
          << "probe " << i << " at " << threads << " thread(s)";
    }
  }
}

}  // namespace
}  // namespace sbx::spambayes
