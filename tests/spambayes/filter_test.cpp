// Tests for spambayes/filter: end-to-end train/classify on real messages,
// batch equivalence, untraining, cutoff swapping.
#include "spambayes/filter.h"

#include <gtest/gtest.h>

#include "email/builder.h"
#include "util/error.h"

namespace sbx::spambayes {
namespace {

email::Message spam_message(int i) {
  return email::MessageBuilder()
      .from("deals@offers.example")
      .subject("amazing offer " + std::to_string(i))
      .body("buy cheap pills viagra casino winner cash prize\n")
      .build();
}

email::Message ham_message(int i) {
  return email::MessageBuilder()
      .from("colleague@corp.example")
      .subject("meeting notes " + std::to_string(i))
      .body("agenda budget review quarterly forecast projections\n")
      .build();
}

TEST(Filter, EndToEndClassification) {
  Filter filter;
  for (int i = 0; i < 20; ++i) {
    filter.train_spam(spam_message(i));
    filter.train_ham(ham_message(i));
  }
  EXPECT_EQ(filter.classify(spam_message(99)).verdict, Verdict::spam);
  EXPECT_EQ(filter.classify(ham_message(99)).verdict, Verdict::ham);
  EXPECT_EQ(filter.database().spam_count(), 20u);
  EXPECT_EQ(filter.database().ham_count(), 20u);
}

TEST(Filter, UntrainedFilterSaysUnsure) {
  Filter filter;
  EXPECT_EQ(filter.classify(ham_message(0)).verdict, Verdict::unsure);
}

TEST(Filter, TrainSpamCopiesEqualsLoop) {
  email::Message msg = spam_message(0);
  Filter loop, batch;
  for (int i = 0; i < 33; ++i) loop.train_spam(msg);
  batch.train_spam_copies(msg, 33);
  EXPECT_EQ(loop.database().spam_count(), batch.database().spam_count());
  for (const auto& [token, counts] : loop.database().tokens()) {
    EXPECT_EQ(batch.database().counts(token).spam, counts.spam) << token;
  }
  // And classification agrees exactly.
  EXPECT_DOUBLE_EQ(loop.classify(ham_message(1)).score,
                   batch.classify(ham_message(1)).score);
}

TEST(Filter, UntrainRestoresClassification) {
  Filter filter;
  for (int i = 0; i < 10; ++i) {
    filter.train_spam(spam_message(i));
    filter.train_ham(ham_message(i));
  }
  const double before = filter.classify(ham_message(42)).score;

  email::Message poison =
      email::MessageBuilder()
          .body("agenda budget review quarterly forecast projections\n")
          .build();
  filter.train_spam_copies(poison, 25);
  EXPECT_GT(filter.classify(ham_message(42)).score, before);
  filter.untrain_spam(poison);  // remove one copy...
  for (int i = 0; i < 24; ++i) filter.untrain_spam(poison);  // ...and rest
  EXPECT_DOUBLE_EQ(filter.classify(ham_message(42)).score, before);
}

TEST(Filter, TokensViewMatchesTrainAndClassify) {
  Filter filter;
  email::Message msg = ham_message(7);
  TokenSet tokens = filter.message_tokens(msg);
  Filter other;
  other.train_ham_tokens(tokens);
  filter.train_ham(msg);
  EXPECT_EQ(filter.database().ham_count(), other.database().ham_count());
  EXPECT_DOUBLE_EQ(filter.classify(msg).score,
                   other.classify_tokens(tokens).score);
}

TEST(Filter, SetCutoffsChangesVerdictsOnly) {
  Filter filter;
  for (int i = 0; i < 10; ++i) {
    filter.train_spam(spam_message(i));
    filter.train_ham(ham_message(i));
  }
  email::Message probe = ham_message(3);
  const double score = filter.classify(probe).score;
  filter.set_cutoffs(0.0, 1.0);  // everything scores strictly inside -> unsure
  EXPECT_DOUBLE_EQ(filter.classify(probe).score, score);
  if (score > 0.0 && score < 1.0) {
    EXPECT_EQ(filter.classify(probe).verdict, Verdict::unsure);
  }
  EXPECT_THROW(filter.set_cutoffs(0.9, 0.1), InvalidArgument);
}

TEST(Filter, HeaderEvidenceMatters) {
  // Identical bodies, different headers: training spammy headers must make
  // messages carrying them spammier.
  Filter filter;
  for (int i = 0; i < 20; ++i) {
    filter.train_spam(email::MessageBuilder()
                          .from("deals@offers.example")
                          .subject("offer")
                          .body("neutral words only here\n")
                          .build());
    filter.train_ham(email::MessageBuilder()
                         .from("colleague@corp.example")
                         .subject("meeting")
                         .body("neutral words only here\n")
                         .build());
  }
  auto spam_headers = email::MessageBuilder()
                          .from("deals@offers.example")
                          .subject("offer")
                          .body("fresh body\n")
                          .build();
  auto ham_headers = email::MessageBuilder()
                         .from("colleague@corp.example")
                         .subject("meeting")
                         .body("fresh body\n")
                         .build();
  EXPECT_GT(filter.classify(spam_headers).score,
            filter.classify(ham_headers).score);
}

TEST(Filter, CopyableSnapshots) {
  Filter base;
  for (int i = 0; i < 5; ++i) {
    base.train_spam(spam_message(i));
    base.train_ham(ham_message(i));
  }
  Filter copy = base;
  copy.train_spam_copies(spam_message(100), 50);
  // The original is unaffected by mutations of the copy.
  EXPECT_EQ(base.database().spam_count(), 5u);
  EXPECT_EQ(copy.database().spam_count(), 55u);
}

}  // namespace
}  // namespace sbx::spambayes
