// Tests for spambayes/interner: dedup, id stability, spelling round trips,
// arena growth across blocks, chunk-boundary crossing and concurrent
// interning.
#include "spambayes/interner.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/thread_pool.h"

namespace sbx::spambayes {
namespace {

TEST(TokenInterner, DedupAssignsOneIdPerSpelling) {
  TokenInterner interner;
  const TokenId a = interner.intern("alpha");
  const TokenId b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.intern("beta"), b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(TokenInterner, SpellingRoundTrip) {
  TokenInterner interner;
  // Includes tokens with embedded spaces (skip pseudo-tokens) and bytes
  // outside ASCII — the tokenizer can emit both.
  const std::vector<std::string> tokens = {"buy", "skip:x 20", "url:pills",
                                           "caf\xc3\xa9", ""};
  for (const auto& t : tokens) {
    const TokenId id = interner.intern(t);
    EXPECT_EQ(interner.spelling(id), t);
  }
  EXPECT_EQ(interner.size(), tokens.size());
}

TEST(TokenInterner, IdsAreStableAcrossLaterInserts) {
  TokenInterner interner;
  const TokenId first = interner.intern("first");
  const std::string_view first_spelling = interner.spelling(first);
  for (int i = 0; i < 20'000; ++i) {
    interner.intern("tok" + std::to_string(i));
  }
  EXPECT_EQ(interner.intern("first"), first);
  EXPECT_EQ(interner.spelling(first), "first");
  // The view itself must not have been invalidated by arena/chunk growth.
  EXPECT_EQ(first_spelling, "first");
}

TEST(TokenInterner, FindDoesNotInsert) {
  TokenInterner interner;
  EXPECT_FALSE(interner.find("ghost").has_value());
  EXPECT_EQ(interner.size(), 0u);
  const TokenId id = interner.intern("ghost");
  ASSERT_TRUE(interner.find("ghost").has_value());
  EXPECT_EQ(*interner.find("ghost"), id);
}

TEST(TokenInterner, UnknownIdThrows) {
  TokenInterner interner;
  interner.intern("only");
  EXPECT_THROW(interner.spelling(1), InvalidArgument);
  EXPECT_THROW(interner.spelling(12345), InvalidArgument);
}

TEST(TokenInterner, ArenaGrowsAcrossBlocksAndOversizedTokens) {
  TokenInterner interner;
  const std::size_t before = interner.arena_bytes();
  // ~40k tokens x ~10 bytes >> one 64KB block; plus one token larger than a
  // whole block, which gets a dedicated allocation.
  std::vector<TokenId> ids;
  for (int i = 0; i < 40'000; ++i) {
    ids.push_back(interner.intern("token-" + std::to_string(i)));
  }
  const std::string huge(100'000, 'x');
  const TokenId huge_id = interner.intern(huge);
  EXPECT_GT(interner.arena_bytes(), before + 100'000);
  // Every spelling survives the growth.
  EXPECT_EQ(interner.spelling(huge_id), huge);
  for (int i = 0; i < 40'000; i += 997) {
    EXPECT_EQ(interner.spelling(ids[i]), "token-" + std::to_string(i));
  }
  // Distinct ids throughout (dedup still correct across blocks/chunks).
  std::set<TokenId> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), ids.size());
}

TEST(TokenInterner, ConcurrentInterningAgreesOnIds) {
  TokenInterner interner;
  constexpr int kThreads = 4;
  constexpr int kTokens = 5'000;
  // Every thread interns the same token universe in a different order and
  // records the ids it observed.
  std::vector<std::vector<TokenId>> seen(kThreads,
                                         std::vector<TokenId>(kTokens));
  util::parallel_for(
      kThreads,
      [&](std::size_t t) {
        for (int i = 0; i < kTokens; ++i) {
          const int k = (t % 2 == 0) ? i : kTokens - 1 - i;
          seen[t][k] = interner.intern("shared-" + std::to_string(k));
        }
      },
      kThreads);
  EXPECT_EQ(interner.size(), static_cast<std::size_t>(kTokens));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]) << "thread " << t << " disagrees";
  }
  for (int k = 0; k < kTokens; ++k) {
    EXPECT_EQ(interner.spelling(seen[0][k]), "shared-" + std::to_string(k));
  }
}

}  // namespace
}  // namespace sbx::spambayes
