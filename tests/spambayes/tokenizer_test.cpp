// Tests for spambayes/tokenizer: word extraction rules, skip tokens, URL
// crunching, header prefixing, MIME integration.
#include "spambayes/tokenizer.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "email/builder.h"
#include "email/mime.h"
#include "email/rfc2822.h"

namespace sbx::spambayes {
namespace {

bool contains(const TokenList& tokens, const std::string& t) {
  return std::find(tokens.begin(), tokens.end(), t) != tokens.end();
}

TEST(Tokenizer, BasicWordsLowercased) {
  Tokenizer tok;
  auto tokens = tok.tokenize_text("Hello World FOO bar");
  EXPECT_TRUE(contains(tokens, "hello"));
  EXPECT_TRUE(contains(tokens, "world"));
  EXPECT_TRUE(contains(tokens, "foo"));
  EXPECT_TRUE(contains(tokens, "bar"));
}

TEST(Tokenizer, ShortWordsDropped) {
  Tokenizer tok;
  auto tokens = tok.tokenize_text("I am ok yes");
  EXPECT_FALSE(contains(tokens, "i"));
  EXPECT_FALSE(contains(tokens, "am"));
  EXPECT_FALSE(contains(tokens, "ok"));
  EXPECT_TRUE(contains(tokens, "yes"));
}

TEST(Tokenizer, PunctuationStripped) {
  Tokenizer tok;
  auto tokens = tok.tokenize_text("(hello), \"world\"... [foo]?");
  EXPECT_TRUE(contains(tokens, "hello"));
  EXPECT_TRUE(contains(tokens, "world"));
  EXPECT_TRUE(contains(tokens, "foo"));
}

TEST(Tokenizer, KeepsSpamSignificantCharacters) {
  // SpamBayes deliberately keeps $ and ! because they are spam evidence.
  Tokenizer tok;
  auto tokens = tok.tokenize_text("win $1000 now!!! don't");
  EXPECT_TRUE(contains(tokens, "$1000"));
  EXPECT_TRUE(contains(tokens, "now!!!"));
  EXPECT_TRUE(contains(tokens, "don't"));
}

TEST(Tokenizer, LongWordsBecomeSkipTokens) {
  Tokenizer tok;
  auto tokens =
      tok.tokenize_text("supercalifragilisticexpialidocious regular");
  // 34 chars -> "skip:s 30".
  EXPECT_TRUE(contains(tokens, "skip:s 30"));
  EXPECT_TRUE(contains(tokens, "regular"));
  // The over-length word itself must not appear.
  EXPECT_FALSE(contains(tokens, "supercalifragilisticexpialidocious"));
}

TEST(Tokenizer, LongWordsSplitOnPunctuationIntoPieces) {
  Tokenizer tok;
  auto tokens = tok.tokenize_text("first-second-third-fourth-fifth");
  // 31 chars total: skip token plus embedded pieces.
  EXPECT_TRUE(contains(tokens, "skip:f 30"));
  EXPECT_TRUE(contains(tokens, "first"));
  EXPECT_TRUE(contains(tokens, "second"));
  EXPECT_TRUE(contains(tokens, "fifth"));
}

TEST(Tokenizer, SkipTokensCanBeDisabled) {
  TokenizerOptions opts;
  opts.generate_skip_tokens = false;
  Tokenizer tok(opts);
  auto tokens = tok.tokenize_text("abcdefghijklmnopqrstuvwxyz");
  for (const auto& t : tokens) {
    EXPECT_NE(t.rfind("skip:", 0), 0u) << t;
  }
}

TEST(Tokenizer, UrlsCrunchedIntoComponents) {
  Tokenizer tok;
  auto tokens =
      tok.tokenize_text("visit http://pills.offers.example/buy/cheap now");
  EXPECT_TRUE(contains(tokens, "url:http"));
  EXPECT_TRUE(contains(tokens, "url:pills"));
  EXPECT_TRUE(contains(tokens, "url:offers"));
  EXPECT_TRUE(contains(tokens, "url:example"));
  EXPECT_TRUE(contains(tokens, "url:buy"));
  EXPECT_TRUE(contains(tokens, "url:cheap"));
  EXPECT_TRUE(contains(tokens, "now"));
}

TEST(Tokenizer, HttpsAndWwwUrls) {
  Tokenizer tok;
  auto tokens = tok.tokenize_text("https://secure.example www.plain.example");
  EXPECT_TRUE(contains(tokens, "url:https"));
  EXPECT_TRUE(contains(tokens, "url:secure"));
  EXPECT_TRUE(contains(tokens, "url:www"));
  EXPECT_TRUE(contains(tokens, "url:plain"));
}

TEST(Tokenizer, UrlTokenizationCanBeDisabled) {
  TokenizerOptions opts;
  opts.tokenize_urls = false;
  Tokenizer tok(opts);
  auto tokens = tok.tokenize_text("http://host.example/path");
  for (const auto& t : tokens) EXPECT_NE(t.rfind("url:", 0), 0u) << t;
}

TEST(Tokenizer, HeaderTokensPrefixed) {
  email::Message m = email::MessageBuilder()
                         .from("alice.smith@corp.example")
                         .to("bob@corp.example")
                         .subject("Quarterly Budget Review")
                         .body("body words here\n")
                         .build();
  Tokenizer tok;
  auto tokens = tok.tokenize(m);
  EXPECT_TRUE(contains(tokens, "subject:quarterly"));
  EXPECT_TRUE(contains(tokens, "subject:budget"));
  EXPECT_TRUE(contains(tokens, "subject:review"));
  EXPECT_TRUE(contains(tokens, "from:alice.smith"));
  EXPECT_TRUE(contains(tokens, "from:corp.example"));
  EXPECT_TRUE(contains(tokens, "to:bob"));
  EXPECT_TRUE(contains(tokens, "body"));
}

TEST(Tokenizer, ShortHeaderWordsKept) {
  email::Message m =
      email::MessageBuilder().subject("RE: it").body("x\n").build();
  Tokenizer tok;
  auto tokens = tok.tokenize(m);
  // Header tokens keep words of length >= 2 ("re" matters for subjects).
  EXPECT_TRUE(contains(tokens, "subject:re"));
  EXPECT_TRUE(contains(tokens, "subject:it"));
}

TEST(Tokenizer, HeaderTokenizationCanBeDisabled) {
  TokenizerOptions opts;
  opts.tokenize_headers = false;
  email::Message m =
      email::MessageBuilder().subject("secret").body("visible\n").build();
  Tokenizer tok(opts);
  auto tokens = tok.tokenize(m);
  EXPECT_FALSE(contains(tokens, "subject:secret"));
  EXPECT_TRUE(contains(tokens, "visible"));
}

TEST(Tokenizer, EmptyHeaderMessageYieldsOnlyBodyTokens) {
  // Dictionary attack emails: no headers at all.
  email::Message m;
  m.set_body("alpha beta gamma\n");
  Tokenizer tok;
  auto tokens = tok.tokenize(m);
  EXPECT_EQ(tokens.size(), 3u);
  for (const auto& t : tokens) {
    EXPECT_EQ(t.find(':'), std::string::npos) << t;
  }
}

TEST(Tokenizer, DecodesMimeBeforeTokenizing) {
  email::Message m;
  m.add_header("Content-Transfer-Encoding", "base64");
  m.set_body(email::encode_base64("hidden payload words"));
  Tokenizer tok;
  auto tokens = tok.tokenize(m);
  EXPECT_TRUE(contains(tokens, "hidden"));
  EXPECT_TRUE(contains(tokens, "payload"));
}

TEST(Tokenizer, EmptyInputs) {
  Tokenizer tok;
  EXPECT_TRUE(tok.tokenize_text("").empty());
  EXPECT_TRUE(tok.tokenize_text("   \n\t ").empty());
  EXPECT_TRUE(tok.tokenize_text("., !? ()").empty());
  email::Message empty;
  EXPECT_TRUE(tok.tokenize(empty).empty());
}

TEST(Tokenizer, UniqueTokensSortedAndDeduplicated) {
  TokenList list = {"bbb", "aaa", "bbb", "ccc", "aaa"};
  TokenSet set = unique_tokens(list);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], "aaa");
  EXPECT_EQ(set[1], "bbb");
  EXPECT_EQ(set[2], "ccc");
  EXPECT_TRUE(unique_tokens({}).empty());
}

TEST(Tokenizer, BoundaryLengthsRespectOptions) {
  Tokenizer tok;  // min 3, max 12
  auto tokens = tok.tokenize_text("ab abc abcdefghijkl abcdefghijklm");
  EXPECT_FALSE(contains(tokens, "ab"));          // 2 < min
  EXPECT_TRUE(contains(tokens, "abc"));          // == min
  EXPECT_TRUE(contains(tokens, "abcdefghijkl"));  // == max (12)
  EXPECT_FALSE(contains(tokens, "abcdefghijklm"));  // 13 > max
  EXPECT_TRUE(contains(tokens, "skip:a 10"));       // its skip token
}

TEST(Tokenizer, DeterministicAcrossCalls) {
  Tokenizer tok;
  const char* text = "Some Mixed CASE text with http://a.example/x and "
                     "$500 offers!!!";
  EXPECT_EQ(tok.tokenize_text(text), tok.tokenize_text(text));
}

}  // namespace
}  // namespace sbx::spambayes
