// Property-based suites for the SpamBayes learner: class-symmetry of the
// score, robustness of the tokenizer on arbitrary bytes, serialization
// round trips over random databases, and tokenization stability across the
// email render/parse cycle.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "email/mbox.h"
#include "email/rfc2822.h"
#include "spambayes/filter.h"
#include "util/random.h"

namespace sbx::spambayes {
namespace {

// --- class symmetry -------------------------------------------------------
//
// Eq. 1-4 are symmetric under swapping ham <-> spam: if every training
// email flips its label, f(w) -> 1 - f(w) and hence I(E) -> 1 - I(E).

class SymmetrySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymmetrySweep, MirroredTrainingMirrorsScore) {
  util::Rng rng(GetParam());
  TokenDatabase db, mirrored;
  for (int i = 0; i < 60; ++i) {
    TokenSet tokens;
    std::size_t n = 1 + rng.index(12);
    for (std::size_t j = 0; j < n; ++j) {
      tokens.push_back("w" + std::to_string(rng.index(50)));
    }
    tokens = unique_tokens(tokens);
    if (rng.bernoulli(0.5)) {
      db.train_spam(tokens);
      mirrored.train_ham(tokens);
    } else {
      db.train_ham(tokens);
      mirrored.train_spam(tokens);
    }
  }
  Classifier c;
  for (int probe = 0; probe < 10; ++probe) {
    TokenSet msg;
    std::size_t n = 1 + rng.index(15);
    for (std::size_t j = 0; j < n; ++j) {
      msg.push_back("w" + std::to_string(rng.index(60)));
    }
    msg = unique_tokens(msg);
    const double i1 = c.score(db, msg).score;
    const double i2 = c.score(mirrored, msg).score;
    EXPECT_NEAR(i1, 1.0 - i2, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetrySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- tokenizer robustness --------------------------------------------------

class TokenizerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenizerFuzz, ArbitraryBytesNeverCrashOrViolateBounds) {
  util::Rng rng(GetParam());
  Tokenizer tok;
  for (int round = 0; round < 50; ++round) {
    std::string text;
    std::size_t len = rng.index(2000);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    }
    TokenList tokens = tok.tokenize_text(text);
    for (const auto& t : tokens) {
      ASSERT_FALSE(t.empty());
      // Plain tokens respect the length window; pseudo-tokens carry their
      // prefixes.
      if (t.rfind("skip:", 0) == 0 || t.rfind("url:", 0) == 0) continue;
      EXPECT_GE(t.size(), tok.options().min_token_length);
      EXPECT_LE(t.size(), tok.options().max_token_length);
      // Lower-case invariant for ASCII letters.
      for (char ch : t) {
        EXPECT_FALSE(ch >= 'A' && ch <= 'Z') << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzz,
                         ::testing::Values(11, 22, 33, 44));

// --- serialization round trip over random databases ------------------------

class SerializationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationSweep, RandomDatabaseSurvivesRoundTrip) {
  util::Rng rng(GetParam());
  TokenDatabase db;
  for (int i = 0; i < 100; ++i) {
    TokenSet tokens;
    std::size_t n = 1 + rng.index(8);
    for (std::size_t j = 0; j < n; ++j) {
      switch (rng.index(3)) {
        case 0:
          tokens.push_back("word" + std::to_string(rng.index(200)));
          break;
        case 1:
          tokens.push_back("skip:x " + std::to_string(10 * rng.index(9)));
          break;
        default:
          tokens.push_back("url:host" + std::to_string(rng.index(40)));
      }
    }
    tokens = unique_tokens(tokens);
    auto copies = static_cast<std::uint32_t>(1 + rng.index(3));
    if (rng.bernoulli(0.5)) {
      db.train_spam(tokens, copies);
    } else {
      db.train_ham(tokens, copies);
    }
  }
  std::stringstream ss;
  db.save(ss);
  TokenDatabase loaded = TokenDatabase::load(ss);
  ASSERT_EQ(loaded.spam_count(), db.spam_count());
  ASSERT_EQ(loaded.ham_count(), db.ham_count());
  ASSERT_EQ(loaded.vocabulary_size(), db.vocabulary_size());
  for (const auto& [token, counts] : db.tokens()) {
    EXPECT_EQ(loaded.counts(token).spam, counts.spam) << token;
    EXPECT_EQ(loaded.counts(token).ham, counts.ham) << token;
  }
  // And classification through a filter is bit-identical.
  Classifier c;
  TokenSet probe = {"word1", "word5", "url:host3", "never-seen"};
  EXPECT_DOUBLE_EQ(c.score(db, probe).score, c.score(loaded, probe).score);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationSweep,
                         ::testing::Values(101, 202, 303));

// --- end-to-end stability: corpus -> mbox -> parse -> tokenize -------------

TEST(PipelineStability, MboxRoundTripPreservesTokenization) {
  corpus::TrecLikeGenerator gen;
  util::Rng rng(7);
  Tokenizer tok;
  std::vector<email::Message> originals;
  for (int i = 0; i < 20; ++i) {
    originals.push_back(gen.generate_ham(rng));
    originals.push_back(gen.generate_spam(rng));
  }
  std::string mbox = email::render_mbox(originals);
  std::vector<email::Message> reloaded = email::parse_mbox(mbox);
  ASSERT_EQ(reloaded.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(unique_tokens(tok.tokenize(originals[i])),
              unique_tokens(tok.tokenize(reloaded[i])))
        << "message " << i;
  }
}

TEST(PipelineStability, RenderParsePreservesClassification) {
  corpus::TrecLikeGenerator gen;
  util::Rng rng(8);
  Filter filter;
  for (int i = 0; i < 60; ++i) {
    filter.train_ham(gen.generate_ham(rng));
    filter.train_spam(gen.generate_spam(rng));
  }
  for (int i = 0; i < 10; ++i) {
    email::Message original = gen.generate_ham(rng);
    email::Message round_trip =
        email::parse_message(email::render_message(original));
    EXPECT_DOUBLE_EQ(filter.classify(original).score,
                     filter.classify(round_trip).score);
  }
}

}  // namespace
}  // namespace sbx::spambayes
