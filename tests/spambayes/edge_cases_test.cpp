// Edge-case tests across the SpamBayes stack: discriminator cap at the
// paper's 150, degenerate messages, tie handling in threshold utilities,
// and boundary tokenizer inputs.
#include <gtest/gtest.h>

#include "core/dynamic_threshold.h"
#include "email/builder.h"
#include "spambayes/filter.h"

namespace sbx::spambayes {
namespace {

TEST(EdgeCases, DefaultDiscriminatorCapIs150) {
  // A message with 400 strongly scored tokens uses exactly 150 of them,
  // per footnote 3 of the paper.
  TokenDatabase db;
  TokenSet msg;
  for (int i = 0; i < 400; ++i) {
    std::string t = "token" + std::to_string(i);
    db.train_spam({t}, 3);
    msg.push_back(t);
  }
  std::sort(msg.begin(), msg.end());
  Classifier c;
  ScoreResult r = c.score(db, msg);
  EXPECT_EQ(r.tokens_used, 150u);
  EXPECT_EQ(r.evidence.size(), 400u);
}

TEST(EdgeCases, MessageOfOnlyUnknownTokensIsUnsure) {
  TokenDatabase db;
  db.train_spam({"seen"}, 10);
  db.train_ham({"also-seen"}, 10);
  Classifier c;
  ScoreResult r = c.score(db, {"novel1", "novel2", "novel3"});
  EXPECT_EQ(r.tokens_used, 0u);
  EXPECT_DOUBLE_EQ(r.score, 0.5);
  EXPECT_EQ(r.verdict, Verdict::unsure);
}

TEST(EdgeCases, SingleTokenMessage) {
  TokenDatabase db;
  db.train_spam({"alone"}, 30);
  Classifier c;
  ScoreResult r = c.score(db, {"alone"});
  EXPECT_EQ(r.tokens_used, 1u);
  EXPECT_GT(r.score, 0.9);
  EXPECT_EQ(r.verdict, Verdict::spam);
}

TEST(EdgeCases, FilterHandlesMessageWithOnlyHeaders) {
  Filter filter;
  email::Message headers_only =
      email::MessageBuilder().from("a@b.example").subject("topic").build();
  filter.train_ham(headers_only);
  EXPECT_EQ(filter.database().ham_count(), 1u);
  EXPECT_GT(filter.database().vocabulary_size(), 0u);
  // Classifying it back is at worst unsure, never a crash.
  (void)filter.classify(headers_only);
}

TEST(EdgeCases, FilterHandlesEmptyMessage) {
  Filter filter;
  email::Message empty;
  filter.train_spam(empty);  // counts the email even with zero tokens
  EXPECT_EQ(filter.database().spam_count(), 1u);
  ScoreResult r = filter.classify(empty);
  EXPECT_EQ(r.verdict, Verdict::unsure);
  filter.untrain_spam(empty);
  EXPECT_EQ(filter.database().spam_count(), 0u);
}

TEST(EdgeCases, TokenizerHandlesPathologicalWhitespaceAndPunctuation) {
  Tokenizer tok;
  EXPECT_TRUE(tok.tokenize_text(std::string(10'000, ' ')).empty());
  EXPECT_TRUE(tok.tokenize_text(std::string(10'000, '.')).empty());
  auto tokens = tok.tokenize_text(std::string(5'000, 'a'));
  // One giant word: a single skip token (the pieces filter to nothing).
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "skip:a 5000");
}

TEST(EdgeCases, ThresholdUtilityTiesAtExactScores) {
  // Scores exactly equal to t are in neither NS<(t) nor NH>(t) (strict
  // inequalities, as defined in §5.2).
  std::vector<core::ScoredExample> scored = {
      {0.5, corpus::TrueLabel::spam},
      {0.5, corpus::TrueLabel::ham},
  };
  // Both at exactly t: no spam below, no ham above -> perfect separator.
  EXPECT_DOUBLE_EQ(core::threshold_utility(scored, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(core::threshold_utility(scored, 0.4), 0.0);  // ham above
  EXPECT_DOUBLE_EQ(core::threshold_utility(scored, 0.6), 1.0);  // spam below
}

TEST(EdgeCases, BatchTrainingHugeCopyCountsDoNotOverflow) {
  TokenDatabase db;
  db.train_spam({"w"}, 2'000'000);
  db.train_spam({"w"}, 2'000'000);
  EXPECT_EQ(db.spam_count(), 4'000'000u);
  EXPECT_EQ(db.counts("w").spam, 4'000'000u);
  Classifier c;
  double f = c.token_score(db, "w");
  EXPECT_GT(f, 0.99);
  EXPECT_LT(f, 1.0);
}

TEST(EdgeCases, ScoresAreMidpointSymmetricForMirroredEvidence) {
  // k spammy + k hammy tokens of equal strength: I(E) = 0.5 exactly by the
  // symmetry of Eq. 3.
  TokenDatabase db;
  for (int i = 0; i < 5; ++i) {
    db.train_spam({"s" + std::to_string(i)}, 10);
    db.train_ham({"h" + std::to_string(i)}, 10);
  }
  Classifier c;
  TokenSet msg;
  for (int i = 0; i < 5; ++i) {
    msg.push_back("s" + std::to_string(i));
    msg.push_back("h" + std::to_string(i));
  }
  std::sort(msg.begin(), msg.end());
  EXPECT_NEAR(c.score(db, msg).score, 0.5, 1e-9);
}

}  // namespace
}  // namespace sbx::spambayes
