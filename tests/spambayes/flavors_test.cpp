// Tests for the tokenizer flavor presets (footnote 1 of the paper) and the
// prefix_header_tokens option they exercise.
#include <algorithm>

#include <gtest/gtest.h>

#include "email/builder.h"
#include "spambayes/classifier.h"
#include "spambayes/token_db.h"
#include "spambayes/tokenizer.h"

namespace sbx::spambayes {
namespace {

bool contains(const TokenList& tokens, const std::string& t) {
  return std::find(tokens.begin(), tokens.end(), t) != tokens.end();
}

TEST(Flavors, PresetsDiffer) {
  auto sb = TokenizerFlavors::spambayes();
  auto bogo = TokenizerFlavors::bogofilter();
  auto sa = TokenizerFlavors::spamassassin();
  EXPECT_EQ(sb.max_token_length, 12u);
  EXPECT_TRUE(sb.generate_skip_tokens);
  EXPECT_TRUE(sb.prefix_header_tokens);
  EXPECT_EQ(bogo.max_token_length, 30u);
  EXPECT_FALSE(bogo.generate_skip_tokens);
  EXPECT_FALSE(bogo.prefix_header_tokens);
  EXPECT_EQ(sa.max_token_length, 15u);
  EXPECT_TRUE(sa.prefix_header_tokens);
}

TEST(Flavors, UnprefixedHeadersShareBodyTokenSpace) {
  email::Message msg = email::MessageBuilder()
                           .subject("budget meeting")
                           .body("unrelated words\n")
                           .build();
  Tokenizer spambayes_tok(TokenizerFlavors::spambayes());
  auto prefixed = spambayes_tok.tokenize(msg);
  EXPECT_TRUE(contains(prefixed, "subject:budget"));
  EXPECT_FALSE(contains(prefixed, "budget"));

  Tokenizer bogo_tok(TokenizerFlavors::bogofilter());
  auto plain = bogo_tok.tokenize(msg);
  EXPECT_TRUE(contains(plain, "budget"));
  EXPECT_TRUE(contains(plain, "meeting"));
  EXPECT_FALSE(contains(plain, "subject:budget"));
}

TEST(Flavors, UnprefixedHeadersRespectBodyMinLength) {
  email::Message msg =
      email::MessageBuilder().subject("RE of it").body("x\n").build();
  Tokenizer bogo_tok(TokenizerFlavors::bogofilter());
  auto tokens = bogo_tok.tokenize(msg);
  // 2-char header words are dropped when unprefixed (body min length 3).
  EXPECT_FALSE(contains(tokens, "re"));
  EXPECT_FALSE(contains(tokens, "of"));
  EXPECT_FALSE(contains(tokens, "it"));
}

TEST(Flavors, BogofilterKeepsLongWordsWhole) {
  Tokenizer bogo_tok(TokenizerFlavors::bogofilter());
  auto tokens = bogo_tok.tokenize_text("pneumonoultramicroscopic regular");
  EXPECT_TRUE(contains(tokens, "pneumonoultramicroscopic"));  // 24 <= 30
  for (const auto& t : tokens) EXPECT_NE(t.rfind("skip:", 0), 0u);
}

TEST(Flavors, BodyPoisonReachesHeaderEvidenceOnlyWhenUnprefixed) {
  // The mechanism behind bench_ext_tokenizer_flavors: with unprefixed
  // headers, training a body-only email as spam also poisons the tokens a
  // victim's subject line produces.
  email::Message attack;  // body-only, per the contamination assumption
  attack.set_body("budget\n");
  email::Message victim = email::MessageBuilder()
                              .subject("budget")
                              .body("neutral filler words here\n")
                              .build();

  for (bool prefixed : {true, false}) {
    TokenizerOptions opts = prefixed ? TokenizerFlavors::spambayes()
                                     : TokenizerFlavors::bogofilter();
    Tokenizer tok(opts);
    TokenDatabase db;
    db.train_spam(unique_tokens(tok.tokenize(attack)), 10);
    db.train_ham({"neutral", "filler", "words", "here"}, 10);
    Classifier c;
    // Find the evidence score of the victim's subject token.
    auto subject_token = prefixed ? "subject:budget" : "budget";
    double f = c.token_score(db, subject_token);
    if (prefixed) {
      EXPECT_DOUBLE_EQ(f, 0.5) << "prefixed header token must be untouched";
    } else {
      EXPECT_GT(f, 0.9) << "unprefixed header token must be poisoned";
    }
  }
}

}  // namespace
}  // namespace sbx::spambayes
