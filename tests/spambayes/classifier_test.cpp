// Tests for spambayes/classifier: Eq. 1-4 against hand-computed fixtures,
// score properties (bounds, monotonicity), token selection rules and
// thresholding.
#include "spambayes/classifier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/stats.h"

namespace sbx::spambayes {
namespace {

ClassifierOptions default_opts() { return ClassifierOptions{}; }

TEST(TokenScore, UnknownTokenGetsPrior) {
  TokenDatabase db;
  db.train_spam({"other"});
  db.train_ham({"another"});
  Classifier c(default_opts());
  // N(w) = 0 -> f = x = 0.5.
  EXPECT_DOUBLE_EQ(c.token_score(db, "never-seen"), 0.5);
}

TEST(TokenScore, HandComputedFixture) {
  // NS = 3 spam, NH = 2 ham; token "w": NS(w) = 2, NH(w) = 1.
  TokenDatabase db;
  db.train_spam({"w", "s1"});
  db.train_spam({"w", "s2"});
  db.train_spam({"s3"});
  db.train_ham({"w"});
  db.train_ham({"h1"});

  // Eq. 1: PS = NH*NS(w) / (NH*NS(w) + NS*NH(w)) = 2*2 / (2*2 + 3*1) = 4/7.
  // Eq. 2: N(w) = 3, s = 0.45, x = 0.5:
  //        f = (0.45*0.5 + 3*(4/7)) / (0.45 + 3).
  const double expected = (0.45 * 0.5 + 3.0 * (4.0 / 7.0)) / (0.45 + 3.0);
  Classifier c(default_opts());
  EXPECT_NEAR(c.token_score(db, "w"), expected, 1e-12);
}

TEST(TokenScore, PureSpamAndPureHamTokens) {
  TokenDatabase db;
  db.train_spam({"spammy"}, 50);
  db.train_ham({"hammy"}, 50);
  Classifier c(default_opts());
  // PS = 1 for spam-only tokens; f -> (s*x + N) / (s + N), close to 1.
  const double fs = c.token_score(db, "spammy");
  EXPECT_NEAR(fs, (0.45 * 0.5 + 50.0) / (0.45 + 50.0), 1e-12);
  EXPECT_GT(fs, 0.99);
  const double fh = c.token_score(db, "hammy");
  EXPECT_NEAR(fh, (0.45 * 0.5) / (0.45 + 50.0), 1e-12);
  EXPECT_LT(fh, 0.01);
  // Always strictly inside (0, 1) with s > 0.
  EXPECT_GT(fh, 0.0);
  EXPECT_LT(fs, 1.0);
}

TEST(TokenScore, PrevalenceNormalization) {
  // Eq. 1 normalizes by class sizes: a token present in 1 of 10 spam and
  // 1 of 100 ham leans spammy even though the raw counts are equal.
  TokenDatabase db;
  db.train_spam({"w"});
  db.train_spam({"filler"}, 9);
  db.train_ham({"w"});
  db.train_ham({"hfiller"}, 99);
  Classifier c(default_opts());
  // PS = (1/10) / (1/10 + 1/100) = 10/11.
  const double expected_ps = (1.0 / 10.0) / (1.0 / 10.0 + 1.0 / 100.0);
  const double expected = (0.45 * 0.5 + 2.0 * expected_ps) / (0.45 + 2.0);
  EXPECT_NEAR(c.token_score(db, "w"), expected, 1e-12);
}

TEST(TokenScore, EmptyDatabaseYieldsPrior) {
  TokenDatabase db;
  Classifier c(default_opts());
  EXPECT_DOUBLE_EQ(c.token_score(db, "anything"), 0.5);
}

TEST(Score, EmptyTokenSetIsUnsureMidpoint) {
  TokenDatabase db;
  db.train_spam({"x"});
  db.train_ham({"y"});
  Classifier c(default_opts());
  ScoreResult r = c.score(db, {});
  EXPECT_DOUBLE_EQ(r.score, 0.5);
  EXPECT_EQ(r.tokens_used, 0u);
  EXPECT_EQ(r.verdict, Verdict::unsure);
}

TEST(Score, NeutralTokensExcludedFromDelta) {
  TokenDatabase db;
  // Balanced classes so that a token present once in each has PS exactly
  // 0.5 and falls inside the excluded [0.4, 0.6] band.
  db.train_spam({"strong", "weak"});
  db.train_spam({"strong"}, 19);
  db.train_ham({"filler", "weak"});
  db.train_ham({"filler"}, 19);
  Classifier c(default_opts());
  ScoreResult r = c.score(db, {"strong", "weak", "unknown"});
  EXPECT_EQ(r.tokens_used, 1u);
  for (const auto& ev : r.evidence) {
    if (ev.token == "strong") {
      EXPECT_TRUE(ev.used);
    } else {
      EXPECT_FALSE(ev.used) << ev.token;
    }
  }
}

TEST(Score, SpammyMessageScoresHigh) {
  TokenDatabase db;
  for (int i = 0; i < 20; ++i) {
    db.train_spam({"viagra", "pills", "cheap"});
    db.train_ham({"meeting", "budget", "agenda"});
  }
  Classifier c(default_opts());
  ScoreResult spam = c.score(db, {"viagra", "pills", "cheap"});
  EXPECT_GT(spam.score, 0.95);
  EXPECT_EQ(spam.verdict, Verdict::spam);
  ScoreResult ham = c.score(db, {"meeting", "budget", "agenda"});
  EXPECT_LT(ham.score, 0.05);
  EXPECT_EQ(ham.verdict, Verdict::ham);
  ScoreResult mixed =
      c.score(db, {"viagra", "pills", "meeting", "budget"});
  EXPECT_EQ(mixed.verdict, Verdict::unsure);
}

TEST(Score, HandComputedTwoTokenFisher) {
  // Two tokens with known f values; verify I(E) against a direct
  // evaluation of Eq. 3-4.
  TokenDatabase db;
  db.train_spam({"a"}, 3);  // f(a) = (0.225 + 3) / 3.45
  db.train_ham({"b"}, 2);   // f(b) = 0.225 / 2.45
  Classifier c(default_opts());
  const double fa = c.token_score(db, "a");
  const double fb = c.token_score(db, "b");

  const double h =
      util::chi2q_even_dof(-2.0 * (std::log(fa) + std::log(fb)), 2);
  const double s = util::chi2q_even_dof(
      -2.0 * (std::log1p(-fa) + std::log1p(-fb)), 2);
  const double expected = (1.0 + h - s) / 2.0;

  ScoreResult r = c.score(db, {"a", "b"});
  EXPECT_EQ(r.tokens_used, 2u);
  EXPECT_NEAR(r.score, expected, 1e-12);
  EXPECT_NEAR(r.spam_evidence, h, 1e-12);
  EXPECT_NEAR(r.ham_evidence, s, 1e-12);
}

TEST(Score, AlwaysWithinUnitInterval) {
  TokenDatabase db;
  db.train_spam({"s1", "s2", "s3"}, 100);
  db.train_ham({"h1", "h2", "h3"}, 100);
  Classifier c(default_opts());
  for (auto tokens :
       {TokenSet{"s1"}, TokenSet{"h1"}, TokenSet{"s1", "h1"},
        TokenSet{"s1", "s2", "s3", "h1", "h2", "h3"}, TokenSet{"zz"}}) {
    double score = c.score(db, tokens).score;
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(Score, MaxDiscriminatorsCapRespected) {
  ClassifierOptions opts;
  opts.max_discriminators = 5;
  TokenDatabase db;
  TokenSet msg;
  for (int i = 0; i < 30; ++i) {
    std::string t = "tok" + std::to_string(i);
    db.train_spam({t}, 5);
    msg.push_back(t);
  }
  Classifier c(opts);
  ScoreResult r = c.score(db, msg);
  EXPECT_EQ(r.tokens_used, 5u);
  std::size_t used = 0;
  for (const auto& ev : r.evidence) used += ev.used ? 1 : 0;
  EXPECT_EQ(used, 5u);
}

TEST(Score, StrongestTokensSelectedFirst) {
  ClassifierOptions opts;
  opts.max_discriminators = 1;
  TokenDatabase db;
  db.train_spam({"mild"}, 2);
  db.train_ham({"mild"}, 1);
  db.train_spam({"extreme"}, 50);
  Classifier c(opts);
  ScoreResult r = c.score(db, {"mild", "extreme"});
  for (const auto& ev : r.evidence) {
    EXPECT_EQ(ev.used, ev.token == "extreme");
  }
}

TEST(Score, MonotoneInAttackWordInclusion) {
  // §3.4's key fact: with the number of attack *messages* held fixed,
  // adding a word to the attack message does not change other tokens'
  // scores and never lowers I(E) for messages containing that word. (Note
  // that adding more attack *messages* is not pointwise monotone, because
  // growing NS rescales every token's PS — the experiments measure that
  // effect in aggregate instead.)
  const TokenSet message = {"target", "other"};
  Classifier c(default_opts());
  auto score_with_attack = [&](bool include_target) {
    TokenDatabase db;
    db.train_ham({"target", "other"}, 10);
    TokenSet attack = {"decoy"};
    if (include_target) attack.push_back("target");
    db.train_spam(attack, 10);
    return c.score(db, message);
  };
  ScoreResult without = score_with_attack(false);
  ScoreResult with = score_with_attack(true);
  EXPECT_GT(with.score, without.score);
  // Independence: the excluded token's score is untouched by the new word.
  for (const auto& ev : without.evidence) {
    if (ev.token != "other") continue;
    for (const auto& ev2 : with.evidence) {
      if (ev2.token == "other") {
        EXPECT_DOUBLE_EQ(ev.score, ev2.score);
      }
    }
  }
}

TEST(Verdicts, ThresholdBoundaries) {
  Classifier c(default_opts());  // theta0 = 0.15, theta1 = 0.9
  EXPECT_EQ(c.verdict_for(0.0), Verdict::ham);
  EXPECT_EQ(c.verdict_for(0.15), Verdict::ham);       // [0, theta0]
  EXPECT_EQ(c.verdict_for(0.150001), Verdict::unsure);
  EXPECT_EQ(c.verdict_for(0.9), Verdict::unsure);     // (theta0, theta1]
  EXPECT_EQ(c.verdict_for(0.900001), Verdict::spam);  // (theta1, 1]
  EXPECT_EQ(c.verdict_for(1.0), Verdict::spam);
}

TEST(Verdicts, StaticOverload) {
  EXPECT_EQ(Classifier::verdict_for(0.5, 0.6, 0.7), Verdict::ham);
  EXPECT_EQ(Classifier::verdict_for(0.65, 0.6, 0.7), Verdict::unsure);
  EXPECT_EQ(Classifier::verdict_for(0.75, 0.6, 0.7), Verdict::spam);
}

TEST(Verdicts, InvalidCutoffsRejected) {
  ClassifierOptions opts;
  opts.ham_cutoff = 0.9;
  opts.spam_cutoff = 0.15;
  EXPECT_THROW(Classifier{opts}, InvalidArgument);
}

TEST(Verdicts, ToStringNames) {
  EXPECT_EQ(to_string(Verdict::ham), "ham");
  EXPECT_EQ(to_string(Verdict::unsure), "unsure");
  EXPECT_EQ(to_string(Verdict::spam), "spam");
}

// Property sweep: for mixtures of k spammy and (n-k) hammy tokens, the
// score increases with k (more spam evidence -> higher I).
class MixtureSweep : public ::testing::TestWithParam<int> {};

TEST_P(MixtureSweep, ScoreIncreasesWithSpamEvidence) {
  const int n = 10;
  TokenDatabase db;
  for (int i = 0; i < n; ++i) {
    db.train_spam({"s" + std::to_string(i)}, 20);
    db.train_ham({"h" + std::to_string(i)}, 20);
  }
  Classifier c(default_opts());
  const int k = GetParam();
  auto score_for = [&](int spam_tokens) {
    TokenSet tokens;
    for (int i = 0; i < spam_tokens; ++i) tokens.push_back("s" + std::to_string(i));
    for (int i = spam_tokens; i < n; ++i) tokens.push_back("h" + std::to_string(i));
    return c.score(db, tokens).score;
  };
  EXPECT_LE(score_for(k), score_for(k + 1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(KSweep, MixtureSweep,
                         ::testing::Range(0, 9));

}  // namespace
}  // namespace sbx::spambayes
