// Equivalence + invalidation suite for the generation-cached ScoreEngine:
//
//  * the engine's single-message and batch paths are BIT-identical to
//    Classifier::score_ids (scores, evidence values/ordering/used flags,
//    verdicts) — every comparison is EXPECT_EQ on doubles, never
//    approximate;
//  * the generation contract makes stale-cache reuse impossible: any
//    train/untrain/merge/load moves the database to a process-globally
//    unique generation and the warm memo is refilled, so
//    train -> score -> untrain -> score returns the pre-train bits;
//  * mutating the database from inside a batch sink throws (one batch =
//    one snapshot);
//  * one engine per thread reproduces the single-threaded bits at any
//    thread count.
#include <algorithm>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "eval/runner.h"
#include "spambayes/filter.h"
#include "spambayes/score_engine.h"
#include "util/error.h"
#include "util/random.h"

namespace sbx::spambayes {
namespace {

const corpus::TrecLikeGenerator& generator() {
  static const corpus::TrecLikeGenerator gen;
  return gen;
}

/// A trained filter plus deduplicated probe id sets.
struct EngineCorpus {
  Filter filter;
  std::vector<TokenIdSet> probes;

  explicit EngineCorpus(int train_each = 100, int probe_count = 40,
                        std::uint64_t seed = 4242) {
    const corpus::TrecLikeGenerator& gen = generator();
    util::Rng rng(seed);
    for (int i = 0; i < train_each; ++i) {
      filter.train_ham_ids(filter.message_token_ids(gen.generate_ham(rng)));
      filter.train_spam_ids(filter.message_token_ids(gen.generate_spam(rng)));
    }
    for (int i = 0; i < probe_count; ++i) {
      const email::Message m =
          i % 2 == 0 ? gen.generate_ham(rng) : gen.generate_spam(rng);
      probes.push_back(filter.message_token_ids(m));
    }
  }
};

void expect_bitwise_equal(const ScoreIdResult& expected,
                          const ScoreIdResult& actual, const char* what) {
  EXPECT_EQ(expected.score, actual.score) << what;
  EXPECT_EQ(expected.spam_evidence, actual.spam_evidence) << what;
  EXPECT_EQ(expected.ham_evidence, actual.ham_evidence) << what;
  EXPECT_EQ(expected.tokens_used, actual.tokens_used) << what;
  EXPECT_EQ(expected.verdict, actual.verdict) << what;
  ASSERT_EQ(expected.evidence.size(), actual.evidence.size()) << what;
  for (std::size_t j = 0; j < expected.evidence.size(); ++j) {
    EXPECT_EQ(expected.evidence[j].id, actual.evidence[j].id) << what;
    EXPECT_EQ(expected.evidence[j].score, actual.evidence[j].score) << what;
    EXPECT_EQ(expected.evidence[j].used, actual.evidence[j].used) << what;
  }
}

// --- bitwise equivalence to Classifier::score_ids --------------------------

TEST(ScoreEngine, SingleMessagePathMatchesClassifierBitwise) {
  EngineCorpus corpus;
  const Classifier& classifier = corpus.filter.classifier();
  ScoreEngine engine(corpus.filter.options().classifier);
  for (std::size_t i = 0; i < corpus.probes.size(); ++i) {
    const ScoreIdResult expected =
        classifier.score_ids(corpus.filter.database(), corpus.probes[i]);
    // Score twice: the first call fills the memo, the second consumes it
    // warm — both must carry the same bits as the uncached classifier.
    expect_bitwise_equal(
        expected, engine.score_ids(corpus.filter.database(), corpus.probes[i]),
        "cold");
    expect_bitwise_equal(
        expected, engine.score_ids(corpus.filter.database(), corpus.probes[i]),
        "warm");
  }
}

TEST(ScoreEngine, BatchPathMatchesClassifierBitwise) {
  EngineCorpus corpus;
  const Classifier& classifier = corpus.filter.classifier();
  ScoreEngine engine(corpus.filter.options().classifier);
  std::size_t seen = 0;
  engine.score_ids_batch(
      corpus.filter.database(), corpus.probes,
      [&](std::size_t i, const BatchScore& scored) {
        ++seen;
        const ScoreIdResult expected =
            classifier.score_ids(corpus.filter.database(), corpus.probes[i]);
        EXPECT_EQ(expected.score, scored.score) << "probe " << i;
        EXPECT_EQ(expected.spam_evidence, scored.spam_evidence);
        EXPECT_EQ(expected.ham_evidence, scored.ham_evidence);
        EXPECT_EQ(expected.tokens_used, scored.tokens_used);
        EXPECT_EQ(expected.verdict, scored.verdict);
        ASSERT_EQ(expected.evidence.size(), scored.evidence.size());
        for (std::size_t j = 0; j < expected.evidence.size(); ++j) {
          EXPECT_EQ(expected.evidence[j].id, scored.evidence[j].id);
          EXPECT_EQ(expected.evidence[j].score, scored.evidence[j].score);
          EXPECT_EQ(expected.evidence[j].used, scored.evidence[j].used);
        }
      });
  EXPECT_EQ(seen, corpus.probes.size());
}

TEST(ScoreEngine, FilterClassifyIdsMatchesClassifierBitwise) {
  // Filter::classify_ids routes through the thread-local engine; it must
  // stay a bit-exact drop-in for the direct classifier call.
  EngineCorpus corpus;
  const Classifier& classifier = corpus.filter.classifier();
  for (const TokenIdSet& probe : corpus.probes) {
    expect_bitwise_equal(classifier.score_ids(corpus.filter.database(), probe),
                         corpus.filter.classify_ids(probe), "classify_ids");
  }
}

// --- generation invalidation -----------------------------------------------

TEST(ScoreEngine, TrainUntrainRoundTripRestoresPreTrainBits) {
  EngineCorpus corpus(60, 10, 77);
  ScoreEngine engine(corpus.filter.options().classifier);
  util::Rng rng(5);
  const TokenIdSet extra =
      corpus.filter.message_token_ids(generator().generate_spam(rng));

  std::vector<ScoreIdResult> before;
  for (const TokenIdSet& probe : corpus.probes) {
    before.push_back(engine.score_ids(corpus.filter.database(), probe));
  }

  corpus.filter.train_spam_ids(extra, 3);
  const Classifier& classifier = corpus.filter.classifier();
  for (std::size_t i = 0; i < corpus.probes.size(); ++i) {
    // The warm memo must not leak pre-train values into the poisoned
    // database's scores...
    expect_bitwise_equal(
        classifier.score_ids(corpus.filter.database(), corpus.probes[i]),
        engine.score_ids(corpus.filter.database(), corpus.probes[i]),
        "after train");
  }

  corpus.filter.untrain_spam_ids(extra, 3);
  for (std::size_t i = 0; i < corpus.probes.size(); ++i) {
    // ...and untraining back to the original counts must reproduce the
    // original bits even though the generation is new.
    expect_bitwise_equal(
        before[i],
        engine.score_ids(corpus.filter.database(), corpus.probes[i]),
        "after untrain");
  }
}

TEST(ScoreEngine, LoadInvalidates) {
  EngineCorpus small(30, 4, 11);
  EngineCorpus big(90, 4, 12);
  ScoreEngine engine(small.filter.options().classifier);
  // Warm the memo on the small database...
  for (const TokenIdSet& probe : small.probes) {
    engine.score_ids(small.filter.database(), probe);
  }
  // ...then score a freshly load()ed database with different contents:
  // the loaded database carries a new generation, so no warm value may
  // survive.
  std::stringstream stream;
  big.filter.database().save(stream);
  const TokenDatabase loaded = TokenDatabase::load(stream);
  EXPECT_NE(loaded.generation(), small.filter.database().generation());
  EXPECT_NE(loaded.generation(), big.filter.database().generation());
  const Classifier& classifier = big.filter.classifier();
  for (const TokenIdSet& probe : big.probes) {
    expect_bitwise_equal(classifier.score_ids(loaded, probe),
                         engine.score_ids(loaded, probe), "loaded db");
  }
}

TEST(ScoreEngine, GenerationsAreProcessGloballyUnique) {
  util::Rng rng(9);
  Filter filter;
  const TokenIdSet msg =
      filter.message_token_ids(generator().generate_spam(rng));

  TokenDatabase a;
  const std::uint64_t g0 = a.generation();
  a.train_spam_ids(msg);
  const std::uint64_t g1 = a.generation();
  EXPECT_NE(g0, g1);

  // A copy IS the same state and keeps the stamp...
  TokenDatabase b = a;
  EXPECT_EQ(b.generation(), g1);
  // ...until either side mutates, which moves it to a fresh value no
  // database has ever held.
  b.train_ham_ids(msg);
  const std::uint64_t g2 = b.generation();
  EXPECT_NE(g2, g1);
  EXPECT_EQ(a.generation(), g1);
  a.untrain_spam_ids(msg);
  EXPECT_NE(a.generation(), g1);
  EXPECT_NE(a.generation(), g2);

  // merge() and no-op guards.
  TokenDatabase c;
  const std::uint64_t g3 = c.generation();
  c.merge(b);
  EXPECT_NE(c.generation(), g3);
  const std::uint64_t g4 = c.generation();
  c.train_spam_ids(msg, 0);  // copies == 0 mutates nothing
  EXPECT_EQ(c.generation(), g4);
}

TEST(ScoreEngine, FailedUntrainLeavesContentsAndGenerationUntouched) {
  // A throwing untrain must not change the database at all: a partial
  // decrement without a generation bump would let a warm engine serve
  // stale memoized values while believing the contents unchanged.
  const TokenId a = global_interner().intern("score-engine-test-token-a");
  const TokenId b = global_interner().intern("score-engine-test-token-b");
  const TokenId c = global_interner().intern("score-engine-test-token-c");
  TokenDatabase db;
  TokenIdSet trained = {a, b};
  std::sort(trained.begin(), trained.end());
  db.train_spam_ids(trained);
  const std::uint64_t gen = db.generation();
  TokenIdSet bogus = {a, b, c};  // c was never trained
  std::sort(bogus.begin(), bogus.end());
  EXPECT_THROW(db.untrain_spam_ids(bogus), InvalidArgument);
  EXPECT_EQ(db.generation(), gen);
  EXPECT_EQ(db.counts(a).spam, 1u);
  EXPECT_EQ(db.counts(b).spam, 1u);
  EXPECT_EQ(db.spam_count(), 1u);
  EXPECT_EQ(db.vocabulary_size(), 2u);
}

TEST(ScoreEngine, MutationDuringBatchThrows) {
  EngineCorpus corpus(40, 6, 21);
  ScoreEngine engine(corpus.filter.options().classifier);
  EXPECT_THROW(
      engine.score_ids_batch(
          corpus.filter.database(), corpus.probes,
          [&](std::size_t i, const BatchScore&) {
            if (i == 0) corpus.filter.train_spam_ids(corpus.probes[0]);
          }),
      InvalidArgument);
  // Clean up the mutation so the filter is consistent for other asserts.
  corpus.filter.untrain_spam_ids(corpus.probes[0]);
  // The engine itself must recover: the next bind resynchronizes.
  expect_bitwise_equal(
      corpus.filter.classifier().score_ids(corpus.filter.database(),
                                           corpus.probes[1]),
      engine.score_ids(corpus.filter.database(), corpus.probes[1]),
      "after recovery");
}

// --- options rebinding ------------------------------------------------------

TEST(ScoreEngine, ThreadEngineTracksOptionChanges) {
  EngineCorpus corpus(50, 8, 31);
  ClassifierOptions strict;
  strict.minimum_prob_strength = 0.3;
  strict.unknown_word_strength = 0.8;
  const Classifier strict_classifier(strict);
  const Classifier default_classifier{ClassifierOptions{}};
  for (const TokenIdSet& probe : corpus.probes) {
    // Alternate options through the shared thread engine: each rebind
    // must invalidate the memoized probabilities/flags.
    expect_bitwise_equal(
        default_classifier.score_ids(corpus.filter.database(), probe),
        ScoreEngine::for_current_thread(ClassifierOptions{})
            .score_ids(corpus.filter.database(), probe),
        "default opts");
    expect_bitwise_equal(
        strict_classifier.score_ids(corpus.filter.database(), probe),
        ScoreEngine::for_current_thread(strict).score_ids(
            corpus.filter.database(), probe),
        "strict opts");
  }
}

// --- thread-count equivalence ----------------------------------------------

TEST(ScoreEngine, SharedConstFilterBitIdenticalAtOneAndFourThreads) {
  EngineCorpus corpus(80, 32, 616);
  const Classifier& classifier = corpus.filter.classifier();
  std::vector<double> expected;
  for (const TokenIdSet& probe : corpus.probes) {
    expected.push_back(
        classifier.score_ids(corpus.filter.database(), probe).score);
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    eval::Runner runner(1, threads);
    // Every worker classifies through its own thread_local engine against
    // the one shared const Filter.
    std::vector<double> scores = runner.map(
        corpus.probes.size(), /*salt=*/10, [&](std::size_t i, util::Rng&) {
          return corpus.filter.classify_ids(corpus.probes[i]).score;
        });
    ASSERT_EQ(scores.size(), expected.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(scores[i], expected[i])
          << "probe " << i << " at " << threads << " thread(s)";
    }
  }
}

}  // namespace
}  // namespace sbx::spambayes
