// Tests for spambayes/token_db: counting, batching, exact untraining,
// merging and serialization.
#include "spambayes/token_db.h"

#include <filesystem>
#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/random.h"

namespace sbx::spambayes {
namespace {

TEST(TokenDatabase, CountsPresencePerEmail) {
  TokenDatabase db;
  db.train_spam({"buy", "now"});
  db.train_spam({"buy"});
  db.train_ham({"meeting", "now"});
  EXPECT_EQ(db.spam_count(), 2u);
  EXPECT_EQ(db.ham_count(), 1u);
  EXPECT_EQ(db.counts("buy").spam, 2u);
  EXPECT_EQ(db.counts("buy").ham, 0u);
  EXPECT_EQ(db.counts("now").spam, 1u);
  EXPECT_EQ(db.counts("now").ham, 1u);
  EXPECT_EQ(db.counts("unseen").spam, 0u);
  EXPECT_EQ(db.counts("unseen").ham, 0u);
  EXPECT_EQ(db.vocabulary_size(), 3u);
}

TEST(TokenDatabase, BatchTrainEqualsRepeatedTrain) {
  TokenSet tokens = {"alpha", "beta", "gamma"};
  TokenDatabase repeated;
  for (int i = 0; i < 57; ++i) repeated.train_spam(tokens);
  TokenDatabase batched;
  batched.train_spam(tokens, 57);
  EXPECT_EQ(batched.spam_count(), repeated.spam_count());
  for (const auto& t : tokens) {
    EXPECT_EQ(batched.counts(t).spam, repeated.counts(t).spam);
  }
}

TEST(TokenDatabase, ZeroCopiesIsNoop) {
  TokenDatabase db;
  db.train_spam({"x"}, 0);
  EXPECT_EQ(db.spam_count(), 0u);
  EXPECT_EQ(db.vocabulary_size(), 0u);
}

TEST(TokenDatabase, UntrainExactlyReversesTrain) {
  TokenDatabase db;
  db.train_ham({"keep", "shared"});
  db.train_spam({"shared", "junk"});

  TokenDatabase snapshot = db;
  db.train_spam({"poison", "shared"}, 5);
  db.untrain_spam({"poison", "shared"}, 5);

  EXPECT_EQ(db.spam_count(), snapshot.spam_count());
  EXPECT_EQ(db.ham_count(), snapshot.ham_count());
  EXPECT_EQ(db.vocabulary_size(), snapshot.vocabulary_size());
  for (const auto& [token, counts] : snapshot.tokens()) {
    EXPECT_EQ(db.counts(token).spam, counts.spam) << token;
    EXPECT_EQ(db.counts(token).ham, counts.ham) << token;
  }
  // "poison" was fully removed, not left at zero.
  EXPECT_EQ(db.counts("poison").spam, 0u);
}

TEST(TokenDatabase, UntrainUnknownThrows) {
  TokenDatabase db;
  db.train_spam({"known"});
  EXPECT_THROW(db.untrain_spam({"unknown"}), InvalidArgument);
  EXPECT_THROW(db.untrain_spam({"known"}, 2), InvalidArgument);
  EXPECT_THROW(db.untrain_ham({"known"}), InvalidArgument);
  TokenDatabase empty;
  EXPECT_THROW(empty.untrain_spam({"x"}), InvalidArgument);
}

TEST(TokenDatabase, MergeAddsCounts) {
  TokenDatabase a, b;
  a.train_spam({"x", "y"});
  b.train_spam({"y", "z"}, 2);
  b.train_ham({"x"});
  a.merge(b);
  EXPECT_EQ(a.spam_count(), 3u);
  EXPECT_EQ(a.ham_count(), 1u);
  EXPECT_EQ(a.counts("y").spam, 3u);
  EXPECT_EQ(a.counts("x").spam, 1u);
  EXPECT_EQ(a.counts("x").ham, 1u);
  EXPECT_EQ(a.counts("z").spam, 2u);
}

TEST(TokenDatabase, SerializationRoundTrip) {
  TokenDatabase db;
  db.train_spam({"buy", "skip:x 20", "url:pills"});
  db.train_ham({"meeting", "skip:x 20"}, 3);

  std::stringstream ss;
  db.save(ss);
  TokenDatabase loaded = TokenDatabase::load(ss);

  EXPECT_EQ(loaded.spam_count(), db.spam_count());
  EXPECT_EQ(loaded.ham_count(), db.ham_count());
  EXPECT_EQ(loaded.vocabulary_size(), db.vocabulary_size());
  // Tokens containing spaces survive (skip tokens embed a space).
  EXPECT_EQ(loaded.counts("skip:x 20").ham, 3u);
  EXPECT_EQ(loaded.counts("skip:x 20").spam, 1u);
  EXPECT_EQ(loaded.counts("url:pills").spam, 1u);
}

TEST(TokenDatabase, LoadRejectsMalformedInput) {
  auto load_str = [](const std::string& s) {
    std::stringstream ss(s);
    return TokenDatabase::load(ss);
  };
  EXPECT_THROW(load_str(""), ParseError);
  EXPECT_THROW(load_str("WRONG 1\n0 0\n"), ParseError);
  EXPECT_THROW(load_str("SBXDB 2\n0 0\n"), ParseError);
  EXPECT_THROW(load_str("SBXDB 1\nx y\n"), ParseError);
  EXPECT_THROW(load_str("SBXDB 1\n1 1\nnot_numbers here\n"), ParseError);
  EXPECT_THROW(load_str("SBXDB 1\n1 1\n1 0\n"), ParseError);     // no token
  EXPECT_THROW(load_str("SBXDB 1\n1 1\n0 0 token\n"), ParseError);  // zeroed
}

TEST(TokenDatabase, FileRoundTrip) {
  TokenDatabase db;
  db.train_spam({"persisted"});
  auto path = std::filesystem::temp_directory_path() / "sbx_tokendb_test.db";
  db.save_file(path.string());
  TokenDatabase loaded = TokenDatabase::load_file(path.string());
  EXPECT_EQ(loaded.counts("persisted").spam, 1u);
  std::filesystem::remove(path);
  EXPECT_THROW(TokenDatabase::load_file("/nonexistent/db"), IoError);
}

TEST(TokenDatabase, RandomizedTrainUntrainInverse) {
  // Property: any interleaving of train operations followed by their exact
  // reversal restores the empty database.
  util::Rng rng(99);
  TokenDatabase db;
  std::vector<std::tuple<TokenSet, std::uint32_t, bool>> ops;
  for (int i = 0; i < 200; ++i) {
    TokenSet tokens;
    std::size_t n = 1 + rng.index(5);
    for (std::size_t j = 0; j < n; ++j) {
      tokens.push_back("tok" + std::to_string(rng.index(30)));
    }
    tokens = unique_tokens(tokens);
    auto copies = static_cast<std::uint32_t>(1 + rng.index(4));
    bool spam = rng.bernoulli(0.5);
    if (spam) {
      db.train_spam(tokens, copies);
    } else {
      db.train_ham(tokens, copies);
    }
    ops.emplace_back(std::move(tokens), copies, spam);
  }
  // Reverse in random order (counts are commutative).
  rng.shuffle(ops);
  for (const auto& [tokens, copies, spam] : ops) {
    if (spam) {
      db.untrain_spam(tokens, copies);
    } else {
      db.untrain_ham(tokens, copies);
    }
  }
  EXPECT_EQ(db.spam_count(), 0u);
  EXPECT_EQ(db.ham_count(), 0u);
  EXPECT_EQ(db.vocabulary_size(), 0u);
}

}  // namespace
}  // namespace sbx::spambayes
