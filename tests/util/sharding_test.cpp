#include "util/sharding.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/error.h"

namespace sbx::util {
namespace {

// mix64 is the SplitMix64 finalizer; its output for fixed inputs is part
// of the wire-level placement contract (client and server route by it),
// so the exact values are pinned. Reference values computed from the
// published SplitMix64 algorithm (Steele, Lea & Flood; same constants as
// java.util.SplittableRandom).
TEST(Mix64Test, StabilityVectors) {
  EXPECT_EQ(mix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(mix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(mix64(2), 0x975835de1c9756ceULL);
  EXPECT_EQ(mix64(0x123456789abcdefULL), 0x157a3807a48faa9dULL);
  EXPECT_EQ(mix64(0xffffffffffffffffULL), 0xe4d971771b652c20ULL);
}

TEST(Mix64Test, IsConstexpr) {
  static_assert(mix64(0) == 0xe220a8397b1dcdafULL);
}

TEST(Mix64Test, ConsecutiveInputsDecorrelate) {
  // The property shard routing needs: sequential user ids must not map
  // to sequential shards. Check that consecutive inputs differ in many
  // bits (avalanche), not just the low ones.
  for (std::uint64_t x = 0; x < 64; ++x) {
    const std::uint64_t diff = mix64(x) ^ mix64(x + 1);
    int bits = 0;
    for (std::uint64_t d = diff; d != 0; d >>= 1) bits += d & 1;
    EXPECT_GE(bits, 16) << "mix64(" << x << ") vs mix64(" << x + 1 << ")";
  }
}

TEST(ShardOfTest, ZeroShardCountThrows) {
  EXPECT_THROW(shard_of(42, 0), InvalidArgument);
}

TEST(ShardOfTest, SingleShardTakesEverything) {
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(shard_of(key, 1), 0u);
  }
}

TEST(ShardOfTest, InRangeAndDeterministic) {
  for (std::size_t shards : {2, 3, 7, 16}) {
    for (std::uint64_t key = 0; key < 1000; ++key) {
      const std::size_t s = shard_of(key, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of(key, shards)) << "must be a pure function";
    }
  }
}

TEST(ShardOfTest, SequentialKeysSpreadEvenly) {
  // 10k sequential user ids over 8 shards: each shard should get close
  // to 1250. A wide tolerance (±25%) still catches the failure mode this
  // guards against — raw modulo would put ids 0..1249 all on shard 0 in
  // round-robin stripes, and a broken mixer piles everything on a few
  // shards.
  constexpr std::size_t kShards = 8;
  constexpr std::uint64_t kKeys = 10'000;
  std::vector<std::size_t> counts(kShards, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++counts[shard_of(key, kShards)];
  }
  const double expected = static_cast<double>(kKeys) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], expected * 0.75) << "shard " << s;
    EXPECT_LT(counts[s], expected * 1.25) << "shard " << s;
  }
}

TEST(ParallelOverShardsTest, RunsEveryShardExactlyOnce) {
  constexpr std::size_t kShards = 13;
  std::vector<std::atomic<int>> hits(kShards);
  parallel_over_shards(kShards, [&](std::size_t shard) {
    hits[shard].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

TEST(ParallelOverShardsTest, ZeroShardsIsANoop) {
  bool ran = false;
  parallel_over_shards(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelOverShardsTest, RethrowsBodyException) {
  EXPECT_THROW(
      parallel_over_shards(4,
                           [](std::size_t shard) {
                             if (shard == 2) {
                               throw std::runtime_error("shard 2 failed");
                             }
                           }),
      std::runtime_error);
}

TEST(ParallelOverShardsTest, NestedDispatchDoesNotDeadlock) {
  // A shard body that itself fans out over shards — the pattern the
  // shared pool's run-inline-while-waiting policy exists for.
  std::atomic<int> total{0};
  parallel_over_shards(4, [&](std::size_t) {
    parallel_over_shards(4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace sbx::util
