// Tests for util/table.
#include "util/table.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace sbx::util {
namespace {

TEST(Table, RequiresHeadersAndMatchingRowWidth) {
  EXPECT_THROW(Table({}), InvalidArgument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, TextRenderingAligns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::string text = t.to_text();
  EXPECT_NE(text.find("| name   | value |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
  EXPECT_EQ(Table::cell(-7), "-7");
}

TEST(Table, WriteCsvCreatesDirectories) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "sbx_table_test";
  std::filesystem::remove_all(dir);
  Table t({"h"});
  t.add_row({"v"});
  std::string path = (dir / "nested" / "out.csv").string();
  t.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "h\nv\n");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sbx::util
