#include "util/backoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace sbx::util {
namespace {

TEST(DeadlineTest, UnlimitedNeverExpires) {
  const Deadline d = Deadline::unlimited();
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 60'000);  // bounded poll slice
}

TEST(DeadlineTest, NonPositiveMsMeansUnlimited) {
  EXPECT_TRUE(Deadline::after_ms(0).is_unlimited());
  EXPECT_TRUE(Deadline::after_ms(-5).is_unlimited());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline d = Deadline::after_ms(60'000);
  EXPECT_FALSE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0);
  EXPECT_LE(d.remaining_ms(), 60'000);
}

TEST(DeadlineTest, RemainingIsClampedToPollSlice) {
  // A deadline far in the future still reports at most the 60s slice so
  // poll() stays responsive to stop flags.
  const Deadline d = Deadline::after_ms(3'600'000);
  EXPECT_EQ(d.remaining_ms(), 60'000);
}

TEST(ExponentialBackoffTest, ValidatesConfiguration) {
  EXPECT_THROW(ExponentialBackoff(0, 100, 1), InvalidArgument);
  EXPECT_THROW(ExponentialBackoff(-1, 100, 1), InvalidArgument);
  EXPECT_THROW(ExponentialBackoff(200, 100, 1), InvalidArgument);
  EXPECT_NO_THROW(ExponentialBackoff(100, 100, 1));
}

TEST(ExponentialBackoffTest, DelaysStayWithinJitterBounds) {
  // Attempt k draws uniformly from [1, min(cap, base * 2^k)]. Check the
  // bound for every attempt under many seeds.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ExponentialBackoff backoff(10, 300, seed);
    long ceiling = 10;
    for (int attempt = 0; attempt < 12; ++attempt) {
      const int delay = backoff.next_delay_ms();
      EXPECT_GE(delay, 1) << "seed " << seed << " attempt " << attempt;
      EXPECT_LE(delay, ceiling) << "seed " << seed << " attempt " << attempt;
      ceiling = std::min<long>(ceiling * 2, 300);
    }
  }
}

TEST(ExponentialBackoffTest, CeilingIsMonotoneAndCapped) {
  // The jitter ceiling (the max over many same-seed draws per attempt)
  // must double per attempt until the cap: with full jitter the draws
  // themselves are not monotone, so probe the ceiling by maxing over
  // fresh generators at each attempt count.
  constexpr int kBase = 8;
  constexpr int kCap = 64;
  for (int attempt = 0; attempt < 6; ++attempt) {
    int max_seen = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      ExponentialBackoff backoff(kBase, kCap, seed);
      int delay = 0;
      for (int k = 0; k <= attempt; ++k) delay = backoff.next_delay_ms();
      max_seen = std::max(max_seen, delay);
    }
    const int expected_ceiling =
        std::min(kCap, kBase * (1 << attempt));
    EXPECT_LE(max_seen, expected_ceiling) << "attempt " << attempt;
    // With 200 seeds the max draw should come close to the ceiling —
    // this is what catches an off-by-one that halves the range.
    EXPECT_GT(max_seen, expected_ceiling / 2) << "attempt " << attempt;
  }
}

TEST(ExponentialBackoffTest, DeterministicUnderFixedSeed) {
  ExponentialBackoff a(10, 1000, 42);
  ExponentialBackoff b(10, 1000, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_delay_ms(), b.next_delay_ms()) << "attempt " << i;
  }
}

TEST(ExponentialBackoffTest, DifferentSeedsDecorrelate) {
  // Not a hard guarantee per-draw, but 10 identical draws from two seeds
  // would mean the seed is ignored.
  ExponentialBackoff a(10, 1000, 1);
  ExponentialBackoff b(10, 1000, 2);
  std::vector<int> da;
  std::vector<int> db;
  for (int i = 0; i < 10; ++i) {
    da.push_back(a.next_delay_ms());
    db.push_back(b.next_delay_ms());
  }
  EXPECT_NE(da, db);
}

TEST(ExponentialBackoffTest, ResetRestartsTheSchedule) {
  ExponentialBackoff backoff(10, 1000, 7);
  for (int i = 0; i < 5; ++i) backoff.next_delay_ms();
  EXPECT_EQ(backoff.attempts(), 5);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0);
  // After reset the first draw is again bounded by the base (attempt 0
  // ceiling), not by the grown ceiling.
  const int delay = backoff.next_delay_ms();
  EXPECT_GE(delay, 1);
  EXPECT_LE(delay, 10);
}

}  // namespace
}  // namespace sbx::util
