// Tests for util/ascii_chart.
#include "util/ascii_chart.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace sbx::util {
namespace {

ChartSeries line(const std::string& label, char glyph,
                 std::vector<double> x, std::vector<double> y) {
  ChartSeries s;
  s.label = label;
  s.glyph = glyph;
  s.x = std::move(x);
  s.y = std::move(y);
  return s;
}

TEST(AsciiChart, RendersGlyphsAndLegend) {
  auto out = render_chart(
      {line("rising", 'R', {0, 1, 2}, {0, 50, 100})});
  EXPECT_NE(out.find('R'), std::string::npos);
  EXPECT_NE(out.find("R = rising"), std::string::npos);
  EXPECT_NE(out.find("100.0"), std::string::npos);  // top y tick
  EXPECT_NE(out.find("0.0"), std::string::npos);    // bottom y tick
}

TEST(AsciiChart, MultipleSeriesAllAppear) {
  auto out = render_chart({line("a", 'A', {0, 1}, {0, 10}),
                           line("b", 'B', {0, 1}, {10, 0})});
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find("A = a"), std::string::npos);
  EXPECT_NE(out.find("B = b"), std::string::npos);
}

TEST(AsciiChart, FixedRangeClampsPoints) {
  ChartOptions opts;
  opts.y_min = 0.0;
  opts.y_max = 10.0;
  // A point above the range must not crash and must land on the top row.
  auto out = render_chart({line("spike", 'X', {0, 1}, {5, 50})}, opts);
  EXPECT_NE(out.find('X'), std::string::npos);
  EXPECT_NE(out.find("10.0"), std::string::npos);
}

TEST(AsciiChart, AxisLabelsIncluded) {
  ChartOptions opts;
  opts.x_label = "the x axis";
  opts.y_label = "the y axis";
  auto out = render_chart({line("s", 'S', {0, 1}, {0, 1})}, opts);
  EXPECT_NE(out.find("the x axis"), std::string::npos);
  EXPECT_NE(out.find("the y axis"), std::string::npos);
}

TEST(AsciiChart, RisingSeriesPutsLaterPointsHigher) {
  auto out = render_chart({line("rise", '*', {0, 10}, {0, 100})});
  // The first line containing '*' must be nearer the top for the y=100
  // point; check that '*' occurs both near the start column and end column.
  std::size_t first = out.find('*');
  std::size_t last = out.rfind('*');
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  // The high point (x=10 -> right edge) appears earlier in the text (top
  // row) than the low point (x=0 -> left edge, bottom row).
  std::size_t first_line = std::count(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(first), '\n');
  std::size_t last_line = std::count(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(last), '\n');
  EXPECT_LT(first_line, last_line);
}

TEST(AsciiChart, DegenerateInputsRejected) {
  EXPECT_THROW(render_chart({}), InvalidArgument);
  EXPECT_THROW(render_chart({line("empty", 'E', {}, {})}), InvalidArgument);
  EXPECT_THROW(render_chart({line("mismatch", 'M', {0, 1}, {0})}),
               InvalidArgument);
}

TEST(AsciiChart, SinglePointSeriesWorks) {
  auto out = render_chart({line("dot", 'D', {5}, {5})});
  EXPECT_NE(out.find('D'), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesWorks) {
  auto out = render_chart({line("flat", 'F', {0, 1, 2}, {3, 3, 3})});
  EXPECT_NE(out.find('F'), std::string::npos);
}

}  // namespace
}  // namespace sbx::util
