// Tests for the lock-rank tracker (util/lock_rank.h + the ranked
// util::Mutex in util/thread_annotations.h): ordered acquisition is
// silent, and each violation class — rank inversion, same-rank pair,
// re-entrant acquisition, CondVar wait with another lock held — aborts
// with the lock names and the held stack (death tests). With the tracker
// compiled out (Release), the violation tests skip and the positive
// tests double as "the ranked wrapper still locks".
#include "util/lock_rank.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace sbx::util {
namespace {

// Other suites in this binary (thread_pool_test) leave live threads
// behind; the default "fast" death-test style forks from a
// multi-threaded process and can hang. "threadsafe" re-executes the
// binary instead.
class LockRankDeathTest : public testing::Test {
 protected:
  LockRankDeathTest() {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST(LockRank, NamesMatchEnumerators) {
  EXPECT_STREQ(lock_rank_name(LockRank::kThreadPool), "kThreadPool");
  EXPECT_STREQ(lock_rank_name(LockRank::kShard), "kShard");
  EXPECT_STREQ(lock_rank_name(LockRank::kWal), "kWal");
  EXPECT_STREQ(lock_rank_name(LockRank::kLeaf), "kLeaf");
}

TEST(LockRank, OrderedNestingIsSilent) {
  Mutex outer{LockRank::kShard, "test::outer"};
  Mutex middle{LockRank::kWal, "test::middle"};
  Mutex inner{LockRank::kLeaf, "test::inner"};
  {
    MutexLock a(outer);
    MutexLock b(middle);
    MutexLock c(inner);
#ifdef SBX_LOCK_RANK
    EXPECT_EQ(lock_rank_detail::held_count(), 3);
#endif
  }
#ifdef SBX_LOCK_RANK
  EXPECT_EQ(lock_rank_detail::held_count(), 0);
#endif
}

// Releasing resets the ordering constraint: high-rank then (released)
// then low-rank on the same thread is legal — only SIMULTANEOUS holding
// is ordered.
TEST(LockRank, SequentialAcquisitionIgnoresRank) {
  Mutex low{LockRank::kShard, "test::low"};
  Mutex high{LockRank::kLeaf, "test::high"};
  { MutexLock a(high); }
  { MutexLock b(low); }
  { MutexLock c(high); }
}

TEST(LockRank, FailedTryLockLeavesNothingHeld) {
  Mutex contended{LockRank::kLeaf, "test::contended"};
  Mutex other{LockRank::kShard, "test::other"};
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    MutexLock lock(contended);
    locked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!locked.load()) std::this_thread::yield();
  EXPECT_FALSE(contended.try_lock());
#ifdef SBX_LOCK_RANK
  // The failed try_lock must have rolled its note_acquire back, so a
  // LOWER-rank acquisition is still legal on this thread...
  EXPECT_EQ(lock_rank_detail::held_count(), 0);
#endif
  { MutexLock lock(other); }  // ...which this would abort on otherwise
  release.store(true);
  holder.join();
}

#ifdef SBX_LOCK_RANK

TEST_F(LockRankDeathTest, RankInversionAborts) {
  EXPECT_DEATH(
      {
        Mutex wal(LockRank::kWal, "test::wal");
        Mutex shard(LockRank::kShard, "test::shard");
        MutexLock a(wal);
        MutexLock b(shard);  // kShard < kWal while kWal is held
      },
      "rank inversion.*test::shard.*test::wal");
}

// Two locks of EQUAL rank held together is an undeclared ordering — the
// hierarchy requires strictly increasing ranks.
TEST_F(LockRankDeathTest, SameRankPairAborts) {
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kLeaf, "test::leaf_a");
        Mutex b(LockRank::kLeaf, "test::leaf_b");
        MutexLock la(a);
        MutexLock lb(b);
      },
      "rank inversion.*test::leaf_b.*test::leaf_a");
}

TEST_F(LockRankDeathTest, ReentrantAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex m(LockRank::kLeaf, "test::reentrant");
        MutexLock a(m);
        MutexLock b(m);  // re-locking a std::mutex is UB, not a hang
      },
      "re-entrant acquisition.*test::reentrant");
}

TEST_F(LockRankDeathTest, CondVarWaitWithOtherLockHeldAborts) {
  EXPECT_DEATH(
      {
        Mutex outer(LockRank::kShard, "test::outer");
        Mutex waited(LockRank::kLeaf, "test::waited");
        CondVar cv;
        MutexLock a(outer);
        MutexLock b(waited);
        cv.wait_for_ms(b, 1);  // outer stays held across the block
      },
      "CondVar wait.*test::outer");
}

TEST_F(LockRankDeathTest, ManualUnlockOfUnheldLockAborts) {
  EXPECT_DEATH(
      {
        Mutex m(LockRank::kLeaf, "test::unheld");
        m.unlock();
      },
      "does not hold");
}

#else  // !SBX_LOCK_RANK

TEST_F(LockRankDeathTest, TrackerCompiledOut) {
  GTEST_SKIP() << "SBX_LOCK_RANK is off in this build; violation death "
                  "tests need a Debug/sanitizer build (or -DSBX_LOCK_RANK"
                  "=ON)";
}

#endif  // SBX_LOCK_RANK

}  // namespace
}  // namespace sbx::util
