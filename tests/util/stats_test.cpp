// Tests for util/stats: log-gamma, incomplete gamma, chi-square CDF/SF and
// the even-dof Erlang shortcut the classifier uses, plus running stats and
// quantiles.
#include "util/stats.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "util/error.h"

namespace sbx::util {
namespace {

TEST(LogGamma, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGamma, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(3.14159265358979323846), 1e-12);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(log_gamma(1.5),
              0.5 * std::log(3.14159265358979323846) - std::log(2.0), 1e-12);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), InvalidArgument);
  EXPECT_THROW(log_gamma(-1.5), InvalidArgument);
}

TEST(RegularizedGamma, ComplementsSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 75.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 120.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGamma, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(a, 0) = 0; Q(a, 0) = 1.
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(3.0, 0.0), 1.0);
}

TEST(ChiSquare, MedianAndExtremes) {
  // Exponential special case: chi2 with 2 dof has CDF 1 - exp(-x/2).
  EXPECT_NEAR(chi_square_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(chi_square_cdf(0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 4.0), 1.0);
  EXPECT_NEAR(chi_square_sf(1000.0, 4.0), 0.0, 1e-12);
}

TEST(Chi2QEvenDof, MatchesGeneralImplementation) {
  // The Erlang log-space shortcut must agree with the incomplete-gamma
  // implementation across the dof/x ranges the classifier uses.
  for (std::size_t n : {1u, 2u, 5u, 10u, 50u, 150u}) {
    for (double x : {0.01, 0.5, 1.0, 10.0, 50.0, 250.0, 600.0}) {
      const double expected = chi_square_sf(x, 2.0 * static_cast<double>(n));
      const double actual = chi2q_even_dof(x, n);
      EXPECT_NEAR(actual, expected, 1e-9)
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(Chi2QEvenDof, Boundaries) {
  EXPECT_DOUBLE_EQ(chi2q_even_dof(0.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(chi2q_even_dof(5.0, 0), 1.0);
  EXPECT_THROW(chi2q_even_dof(-1.0, 3), InvalidArgument);
  // Very large x underflows to 0, never to garbage.
  EXPECT_GE(chi2q_even_dof(1e6, 150), 0.0);
  EXPECT_LE(chi2q_even_dof(1e6, 150), 1e-12);
}

// Verbatim port of the pre-optimization Erlang fold: no tail break, no
// pair interleaving. chi2q_even_dof and chi2q_even_dof_pair promise
// BIT-identical results to this loop (the classifier's scores depend on
// it), so every comparison below is EXPECT_EQ on doubles.
double reference_chi2q(double x, std::size_t n) {
  if (n == 0) return 1.0;
  const double m = x / 2.0;
  if (m == 0.0) return 1.0;
  const double log_m = std::log(m);
  double log_term = 0.0;
  double log_sum = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    log_term += log_m - std::log(static_cast<double>(i));
    const double hi = std::max(log_sum, log_term);
    const double lo = std::min(log_sum, log_term);
    log_sum = hi + std::log(1.0 + std::exp(lo - hi));
  }
  const double log_q = log_sum - m;
  if (log_q >= 0.0) return 1.0;
  return std::exp(log_q);
}

TEST(Chi2QEvenDof, BitIdenticalToPlainFold) {
  for (std::size_t n : {1u, 2u, 5u, 17u, 50u, 150u, 300u}) {
    for (double x = 0.0; x < 1500.0; x += 0.7) {
      EXPECT_EQ(chi2q_even_dof(x, n), reference_chi2q(x, n))
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(Chi2QEvenDofPair, BitIdenticalToTwoSingleCalls) {
  for (std::size_t n : {1u, 2u, 5u, 17u, 50u, 150u, 300u}) {
    for (double xa = 0.0; xa < 1500.0; xa += 1.3) {
      const double xb = 1500.0 - xa + 0.001;
      double qa = -1.0;
      double qb = -1.0;
      chi2q_even_dof_pair(xa, xb, n, &qa, &qb);
      EXPECT_EQ(qa, reference_chi2q(xa, n)) << "n=" << n << " xa=" << xa;
      EXPECT_EQ(qb, reference_chi2q(xb, n)) << "n=" << n << " xb=" << xb;
    }
  }
}

TEST(Chi2QEvenDofPair, Boundaries) {
  double qa = -1.0;
  double qb = -1.0;
  chi2q_even_dof_pair(0.0, 12.0, 10, &qa, &qb);
  EXPECT_EQ(qa, 1.0);
  EXPECT_EQ(qb, chi2q_even_dof(12.0, 10));
  chi2q_even_dof_pair(5.0, 7.0, 0, &qa, &qb);
  EXPECT_EQ(qa, 1.0);
  EXPECT_EQ(qb, 1.0);
  EXPECT_THROW(chi2q_even_dof_pair(-1.0, 3.0, 3, &qa, &qb), InvalidArgument);
  EXPECT_THROW(chi2q_even_dof_pair(3.0, -1.0, 3, &qa, &qb), InvalidArgument);
}

TEST(Chi2QEvenDof, MonotoneDecreasingInX) {
  double prev = 1.0;
  for (double x = 0.0; x <= 400.0; x += 10.0) {
    double q = chi2q_even_dof(x, 75);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(LogSumExp, BasicIdentities) {
  EXPECT_NEAR(log_sum_exp(std::log(2.0), std::log(3.0)), std::log(5.0),
              1e-12);
  EXPECT_NEAR(log_sum_exp(-1000.0, 0.0), 0.0, 1e-12);
  double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_sum_exp(neg_inf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_sum_exp(1.5, neg_inf), 1.5);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(static_cast<double>(i)) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Quantile, InterpolatesOrderStatistics) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile(v, 1.5), InvalidArgument);
}

// Parameterized cross-check sweep: chi2q_even_dof vs chi_square_sf over a
// grid (property-style verification of the classifier's core numeric).
class Chi2Sweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Chi2Sweep, AgreesWithIncompleteGamma) {
  const int n = std::get<0>(GetParam());
  const double x = std::get<1>(GetParam());
  EXPECT_NEAR(chi2q_even_dof(x, static_cast<std::size_t>(n)),
              chi_square_sf(x, 2.0 * n), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Chi2Sweep,
    ::testing::Combine(::testing::Values(1, 3, 20, 75, 150, 300),
                       ::testing::Values(0.05, 2.0, 30.0, 150.0, 400.0,
                                         900.0)));

}  // namespace
}  // namespace sbx::util
