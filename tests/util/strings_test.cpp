// Tests for util/strings.
#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace sbx::util {
namespace {

TEST(Strings, ToLowerUpperAsciiOnly) {
  EXPECT_EQ(to_lower("HeLLo-123"), "hello-123");
  EXPECT_EQ(to_upper("HeLLo-123"), "HELLO-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  auto parts = split_whitespace("  one \t two\nthree  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, CaseInsensitiveComparisons) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_TRUE(istarts_with("Content-Type: text", "content-type"));
  EXPECT_FALSE(istarts_with("abc", "abcd"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none here", "x", "y"), "none here");
  EXPECT_EQ(replace_all("\"quoted\"", "\"", "\"\""), "\"\"quoted\"\"");
  EXPECT_THROW(replace_all("x", "", "y"), InvalidArgument);
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Strings, IsSpace) {
  for (char c : {' ', '\t', '\r', '\n', '\f', '\v'}) EXPECT_TRUE(is_space(c));
  EXPECT_FALSE(is_space('a'));
  EXPECT_FALSE(is_space('\0'));
}

}  // namespace
}  // namespace sbx::util
