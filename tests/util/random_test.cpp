// Tests for util/random: determinism, stream independence, distribution
// sanity, sampling without replacement, alias/Zipf samplers.
#include "util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace sbx::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(Pcg32, DeterministicAndSeedSensitive) {
  Pcg32 a(1, 1), b(1, 1), c(2, 1);
  std::vector<std::uint32_t> va, vb, vc;
  for (int i = 0; i < 100; ++i) {
    va.push_back(a());
    vb.push_back(b());
    vc.push_back(c());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Pcg32, AdvanceMatchesStepping) {
  Pcg32 a(7, 3), b(7, 3);
  for (int i = 0; i < 1000; ++i) (void)a();
  b.advance(1000);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(123);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_THROW(rng.uniform_int(2, 1), InvalidArgument);
}

TEST(Rng, UniformInHalfOpenInterval) {
  Rng rng(9);
  double mean = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= 10000;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgesAndRate) {
  Rng rng(77);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(11);
  for (double lambda : {3.0, 80.0}) {
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) sum += rng.poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1) << "lambda=" << lambda;
  }
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(1);
  Rng a = parent.fork(1);
  Rng b = parent.fork(1);  // same key, later counter: still distinct
  Rng c = parent.fork(2);
  std::vector<std::uint32_t> va, vb, vc;
  for (int i = 0; i < 50; ++i) {
    va.push_back(a());
    vb.push_back(b());
    vc.push_back(c());
  }
  EXPECT_NE(va, vb);
  EXPECT_NE(va, vc);
  EXPECT_NE(vb, vc);
}

TEST(Rng, ForkIsDeterministicAcrossRuns) {
  Rng r1(99), r2(99);
  Rng c1 = r1.fork(7);
  Rng c2 = r2.fork(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(17);
  auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvalidArgument);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, ChoiceUniform) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 3000; ++i) counts[rng.choice(v)] += 1;
  for (int k = 1; k <= 3; ++k) EXPECT_NEAR(counts[k] / 3000.0, 1.0 / 3, 0.05);
  std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), InvalidArgument);
}

TEST(AliasSampler, MatchesWeights) {
  Rng rng(31);
  AliasSampler sampler({1.0, 2.0, 3.0, 4.0});
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[sampler.sample(rng)] += 1;
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), (k + 1) / 10.0, 0.02);
  }
}

TEST(AliasSampler, RejectsDegenerateInput) {
  EXPECT_THROW(AliasSampler({}), InvalidArgument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(AliasSampler({1.0, -1.0}), InvalidArgument);
}

TEST(AliasSampler, HandlesZeroWeightEntries) {
  Rng rng(33);
  AliasSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(ZipfSampler, ProbabilitiesNormalizedAndDecreasing) {
  ZipfSampler z(1000, 1.1, 2.7);
  double total = 0;
  double prev = 1.0;
  for (std::size_t k = 0; k < 1000; ++k) {
    double p = z.probability(k);
    EXPECT_LE(p, prev);
    total += p;
    prev = p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_THROW(z.probability(1000), InvalidArgument);
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  Rng rng(41);
  ZipfSampler z(50, 1.2, 2.0);
  std::vector<int> counts(50, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) counts[z.sample(rng)] += 1;
  for (std::size_t k : {0u, 1u, 5u, 20u}) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), z.probability(k), 0.01)
        << "rank " << k;
  }
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), InvalidArgument);
  EXPECT_THROW(ZipfSampler(10, 0.0), InvalidArgument);
  EXPECT_THROW(ZipfSampler(10, 1.0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace sbx::util
