// Tests for util/thread_pool.
#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace sbx::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsFirstException) {
  EXPECT_THROW(
      parallel_for(16,
                   [](std::size_t i) {
                     if (i % 2 == 0) throw std::runtime_error("even failure");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto run = [](std::size_t threads) {
    std::vector<double> out(64);
    parallel_for(64, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    }, threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(run(1), run(8));
}

}  // namespace
}  // namespace sbx::util
