// Tests for util/thread_pool, including the shared-pool semantics the
// experiment harness relies on: nested submit-from-worker never deadlocks
// (run-inline-while-waiting) and a pool of size 1 still completes nested
// workloads deterministically.
#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace sbx::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsFirstException) {
  EXPECT_THROW(
      parallel_for(16,
                   [](std::size_t i) {
                     if (i % 2 == 0) throw std::runtime_error("even failure");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto run = [](std::size_t threads) {
    std::vector<double> out(64);
    parallel_for(64, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    }, threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(run(1), run(8));
}

// ---------------------------------------------------------------------------
// Shared-pool / nesting semantics (the sweep x folds contract).
// ---------------------------------------------------------------------------

// A task running on a worker submits subtasks to the SAME pool and waits
// for them. Without the helping wait() this deadlocks as soon as outer
// tasks occupy every worker; with it, the waiting workers execute the
// nested tasks on their own stacks.
TEST(ThreadPool, NestedSubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 8; ++i) {  // 8 outer tasks > 2 workers
    outer.push_back(pool.submit([&pool, &inner_runs] {
      std::vector<std::future<void>> inner;
      for (int j = 0; j < 4; ++j) {
        inner.push_back(
            pool.submit([&inner_runs] { inner_runs.fetch_add(1); }));
      }
      pool.wait(inner);
    }));
  }
  pool.wait(outer);
  EXPECT_EQ(inner_runs.load(), 32);
}

// The degenerate pool still completes arbitrarily deep nesting: every
// nested wait() runs the queued tasks inline on the single available
// stack, so size 1 degrades to (deterministic) inline execution.
TEST(ThreadPool, SizeOneRunsNestedWorkInline) {
  ThreadPool pool(1);
  std::atomic<int> runs{0};
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back(pool.submit([&pool, &runs] {
      std::vector<std::future<void>> inner;
      for (int j = 0; j < 3; ++j) {
        inner.push_back(pool.submit([&pool, &runs] {
          std::vector<std::future<void>> innermost;
          innermost.push_back(pool.submit([&runs] { runs.fetch_add(1); }));
          pool.wait(innermost);
          runs.fetch_add(1);
        }));
      }
      pool.wait(inner);
      runs.fetch_add(1);
    }));
  }
  pool.wait(outer);
  EXPECT_EQ(runs.load(), 4 * (3 * 2 + 1));
}

// An external (non-worker) thread waiting on a size-1 pool also helps, so
// per-index writes complete exactly once each.
TEST(ThreadPool, SizeOneHelpingWaitCoversEveryIndexOnce) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    futures.push_back(pool.submit([&hits, i] { hits[i].fetch_add(1); }));
  }
  pool.wait(futures);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([i] {
      if (i % 3 == 0) throw std::runtime_error("boom");
    }));
  }
  EXPECT_THROW(pool.wait(futures), std::runtime_error);
}

// wait() helps by running queued tasks inline on the waiting thread
// (worker or external). Under the rank tracker this path must be clean:
// try_run_one releases the pool mutex BEFORE invoking the task, so a
// task observes an empty held-locks stack even when it executes inside
// another task's wait() — no false re-entrancy, no false inversion when
// the task then takes its own (higher-rank) locks.
TEST(ThreadPool, HelpingWaitRunsTasksWithNoLocksHeld) {
  ThreadPool pool(2);
  Mutex task_mutex{LockRank::kLeaf, "test::task_mutex"};
  std::atomic<int> clean_runs{0};
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 8; ++i) {  // > workers, so waits must help
    outer.push_back(pool.submit([&] {
      std::vector<std::future<void>> inner;
      for (int j = 0; j < 4; ++j) {
        inner.push_back(pool.submit([&] {
#ifdef SBX_LOCK_RANK
          ASSERT_EQ(lock_rank_detail::held_count(), 0)
              << "task started with a lock still held by its thread";
#endif
          // A lock acquisition inside an inline-run task must not trip
          // the tracker (it would if wait() held the pool mutex here).
          const MutexLock lock(task_mutex);
          clean_runs.fetch_add(1);
        }));
      }
      pool.wait(inner);
    }));
  }
  pool.wait(outer);
  EXPECT_EQ(clean_runs.load(), 32);
}

TEST(ThreadPool, SharedPoolIsOneInstance) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

TEST(ThreadPool, ConfigureSharedAfterCreationRejectsResize) {
  ThreadPool& pool = ThreadPool::shared();  // ensure it exists
  // Re-requesting the current size is a no-op...
  EXPECT_NO_THROW(ThreadPool::configure_shared(pool.thread_count()));
  // ...but an actual resize of a pool others already borrowed throws.
  EXPECT_THROW(ThreadPool::configure_shared(pool.thread_count() + 1), Error);
}

}  // namespace
}  // namespace sbx::util
