# Runs one quick experiment and validates the ResultDoc JSON it writes
# against the schema contract in tools/check_bench.py. Registered as the
# sbx_resultdoc_schema ctest so serializer drift fails locally, not first
# in the sweep-smoke CI job.
#
# Expects: EXPERIMENTS (sbx_experiments binary), PYTHON (python3),
# CHECK_BENCH (tools/check_bench.py), OUT_DIR (scratch directory).

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
  COMMAND "${EXPERIMENTS}" run ham-labeled --quick --seed=1
          "--out-dir=${OUT_DIR}"
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR
    "sbx_experiments run ham-labeled --quick failed (rc=${run_rc})")
endif()

file(GLOB result_jsons "${OUT_DIR}/*.json")
if(NOT result_jsons)
  message(FATAL_ERROR "no ResultDoc JSON written to ${OUT_DIR}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK_BENCH}" validate-resultdoc ${result_jsons}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "validate-resultdoc failed (rc=${check_rc})")
endif()
