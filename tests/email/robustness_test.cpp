// Robustness tests: the email substrate faces adversarial input by
// definition (spam is malformed mail). Arbitrary bytes must never crash,
// hang, or throw anything other than the library's typed errors, and the
// full pipeline (parse -> MIME -> tokenize) must stay total.
#include <string>

#include <gtest/gtest.h>

#include "email/mbox.h"
#include "email/mime.h"
#include "email/rfc2822.h"
#include "spambayes/tokenizer.h"
#include "util/error.h"
#include "util/random.h"

namespace sbx::email {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string s;
  std::size_t len = rng.index(max_len + 1);
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
  }
  return s;
}

// Mixes random bytes with structural fragments so the fuzz inputs actually
// reach the interesting parser states.
std::string structured_fuzz(util::Rng& rng) {
  static const char* kFragments[] = {
      "From ",          "From: a@b\n",
      "Content-Type: ", "multipart/mixed; boundary=",
      "--",             "\r\n",
      "\n\n",           "Content-Transfer-Encoding: base64\n",
      "=3D",            "=\n",
      ">From ",         "Subject: ",
      ": no name\n",    "\tcontinuation\n",
  };
  std::string s;
  std::size_t pieces = 1 + rng.index(20);
  for (std::size_t i = 0; i < pieces; ++i) {
    if (rng.bernoulli(0.5)) {
      s += kFragments[rng.index(std::size(kFragments))];
    } else {
      s += random_bytes(rng, 40);
    }
  }
  return s;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, ParseMessageIsTotal) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string input = structured_fuzz(rng);
    // Lenient parsing never throws; strict may throw ParseError only.
    Message m = parse_message(input);
    // Rendering the result must also be total.
    (void)render_message(m);
    try {
      ParseOptions strict;
      strict.lenient = false;
      (void)parse_message(input, strict);
    } catch (const ParseError&) {
      // acceptable
    }
  }
}

TEST_P(ParserFuzz, MimeExtractionIsTotal) {
  util::Rng rng(GetParam() + 1'000);
  for (int round = 0; round < 200; ++round) {
    Message m = parse_message(structured_fuzz(rng));
    std::string text = extract_text(m);
    // And the tokenizer consumes whatever comes out.
    spambayes::Tokenizer tok;
    (void)tok.tokenize(m);
    (void)tok.tokenize_text(text);
  }
}

TEST_P(ParserFuzz, MboxParsingThrowsOnlyTypedErrors) {
  util::Rng rng(GetParam() + 2'000);
  for (int round = 0; round < 200; ++round) {
    try {
      auto messages = parse_mbox(structured_fuzz(rng));
      // Successful parses re-render without crashing.
      (void)render_mbox(messages);
    } catch (const ParseError&) {
      // acceptable: junk before the first envelope, or no messages
    }
  }
}

TEST_P(ParserFuzz, CodecsAreTotal) {
  util::Rng rng(GetParam() + 3'000);
  for (int round = 0; round < 300; ++round) {
    std::string input = random_bytes(rng, 300);
    (void)decode_base64(input);
    (void)decode_quoted_printable(input);
    // Round trips on arbitrary bytes hold exactly.
    EXPECT_EQ(decode_base64(encode_base64(input)), input);
    EXPECT_EQ(decode_quoted_printable(encode_quoted_printable(input)), input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace sbx::email
