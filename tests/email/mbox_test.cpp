// Tests for email/mbox: parsing, quoting, file round trips.
#include "email/mbox.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "util/error.h"

namespace sbx::email {
namespace {

TEST(Mbox, ParsesMultipleMessages) {
  const char* data =
      "From alice@example Mon Jan  1 00:00:00 2005\n"
      "From: alice@example\n"
      "Subject: one\n"
      "\n"
      "first body\n"
      "\n"
      "From bob@example Mon Jan  1 00:00:01 2005\n"
      "From: bob@example\n"
      "Subject: two\n"
      "\n"
      "second body\n";
  auto messages = parse_mbox(data);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].header("Subject").value(), "one");
  EXPECT_EQ(messages[1].header("Subject").value(), "two");
  EXPECT_NE(messages[1].body().find("second body"), std::string::npos);
}

TEST(Mbox, UnquotesFromLines) {
  const char* data =
      "From sender@example Mon Jan  1 00:00:00 2005\n"
      "Subject: quoting\n"
      "\n"
      ">From the beginning, it was quoted\n"
      "plain line\n";
  auto messages = parse_mbox(data);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_NE(messages[0].body().find("From the beginning"), std::string::npos);
  EXPECT_EQ(messages[0].body().find(">From"), std::string::npos);
}

TEST(Mbox, EmptyInputYieldsNoMessages) {
  EXPECT_TRUE(parse_mbox("").empty());
  EXPECT_TRUE(parse_mbox("  \n \n").empty());
}

TEST(Mbox, RejectsContentBeforeEnvelope) {
  EXPECT_THROW(parse_mbox("Subject: orphan\n\nbody\n"), ParseError);
}

TEST(Mbox, RenderParseRoundTrip) {
  Message a({{"From", "a@example"}, {"Subject", "first"}},
            "body a\nFrom the top\n");  // body line needs quoting
  Message b({{"From", "b@example"}, {"Subject", "second"}}, "body b\n");
  std::string rendered = render_mbox({a, b});
  auto parsed = parse_mbox(rendered);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].header("Subject").value(), "first");
  EXPECT_NE(parsed[0].body().find("From the top"), std::string::npos);
  EXPECT_EQ(parsed[1].header("Subject").value(), "second");
}

TEST(Mbox, FileRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "sbx_mbox_test.mbox";
  Message m({{"From", "x@example"}, {"Subject", "file"}}, "contents\n");
  write_mbox_file(path.string(), {m});
  auto loaded = read_mbox_file(path.string());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].header("Subject").value(), "file");
  std::filesystem::remove(path);
}

TEST(Mbox, MissingFileThrows) {
  EXPECT_THROW(read_mbox_file("/nonexistent/dir/x.mbox"), IoError);
}

TEST(Mbox, MessageWithoutFromHeaderGetsPlaceholderEnvelope) {
  Message m({{"Subject", "anonymous"}}, "b\n");
  std::string rendered = render_mbox({m});
  EXPECT_EQ(rendered.rfind("From MAILER-DAEMON@localhost", 0), 0u);
  auto parsed = parse_mbox(rendered);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].header("Subject").value(), "anonymous");
}

}  // namespace
}  // namespace sbx::email
