// Tests for email/mime: content-type parsing, base64/quoted-printable
// codecs and multipart text extraction.
#include "email/mime.h"

#include <string>

#include <gtest/gtest.h>

#include "email/rfc2822.h"

namespace sbx::email {
namespace {

TEST(ContentTypeParse, MediaTypeAndParams) {
  ContentType ct = parse_content_type(
      "multipart/mixed; boundary=\"xyz 123\"; charset=UTF-8");
  EXPECT_EQ(ct.type, "multipart");
  EXPECT_EQ(ct.subtype, "mixed");
  EXPECT_TRUE(ct.is_multipart());
  EXPECT_EQ(ct.boundary(), "xyz 123");
  EXPECT_EQ(ct.params.at("charset"), "UTF-8");
}

TEST(ContentTypeParse, DefaultsOnGarbage) {
  ContentType ct = parse_content_type("complete nonsense");
  EXPECT_EQ(ct.type, "text");
  EXPECT_EQ(ct.subtype, "plain");
  EXPECT_TRUE(ct.is_text());
  EXPECT_EQ(ct.boundary(), "");
}

TEST(ContentTypeParse, CaseNormalization) {
  ContentType ct = parse_content_type("TEXT/HTML; CHARSET=ascii");
  EXPECT_EQ(ct.type, "text");
  EXPECT_EQ(ct.subtype, "html");
  EXPECT_EQ(ct.params.at("charset"), "ascii");
}

TEST(Base64, RoundTrip) {
  for (const std::string& plain :
       {std::string(""), std::string("a"), std::string("ab"),
        std::string("abc"), std::string("hello, world!"),
        std::string("\x00\x01\xfe\xff", 4)}) {
    EXPECT_EQ(decode_base64(encode_base64(plain)), plain);
  }
}

TEST(Base64, KnownVectors) {
  EXPECT_EQ(encode_base64("Man"), "TWFu");
  EXPECT_EQ(encode_base64("Ma"), "TWE=");
  EXPECT_EQ(encode_base64("M"), "TQ==");
  EXPECT_EQ(decode_base64("TWFu"), "Man");
  EXPECT_EQ(decode_base64("TQ=="), "M");
}

TEST(Base64, IgnoresWhitespaceAndJunk) {
  EXPECT_EQ(decode_base64("TW\nFu"), "Man");
  EXPECT_EQ(decode_base64("T W F u"), "Man");
  EXPECT_EQ(decode_base64("TW*Fu"), "Man");
}

TEST(QuotedPrintable, RoundTrip) {
  const std::string plain = "Hello=World\nwith special \xE9 bytes\n";
  EXPECT_EQ(decode_quoted_printable(encode_quoted_printable(plain)), plain);
}

TEST(QuotedPrintable, DecodesEscapes) {
  EXPECT_EQ(decode_quoted_printable("a=3Db"), "a=b");
  EXPECT_EQ(decode_quoted_printable("caf=E9"), "caf\xE9");
  // Soft breaks vanish.
  EXPECT_EQ(decode_quoted_printable("long=\nline"), "longline");
  EXPECT_EQ(decode_quoted_printable("long=\r\nline"), "longline");
  // Malformed escapes are kept literally.
  EXPECT_EQ(decode_quoted_printable("100=zz"), "100=zz");
  EXPECT_EQ(decode_quoted_printable("end="), "end=");
}

TEST(QuotedPrintable, EncoderWrapsLines) {
  std::string long_line(300, 'a');
  std::string encoded = encode_quoted_printable(long_line);
  std::size_t start = 0;
  while (start < encoded.size()) {
    std::size_t nl = encoded.find('\n', start);
    if (nl == std::string::npos) nl = encoded.size();
    EXPECT_LE(nl - start, 76u);
    start = nl + 1;
  }
  EXPECT_EQ(decode_quoted_printable(encoded), long_line);
}

TEST(TransferEncoding, Dispatch) {
  EXPECT_EQ(decode_transfer_encoding("TWFu", "base64"), "Man");
  EXPECT_EQ(decode_transfer_encoding("a=3Db", "Quoted-Printable"), "a=b");
  EXPECT_EQ(decode_transfer_encoding("as is", "7bit"), "as is");
  EXPECT_EQ(decode_transfer_encoding("as is", ""), "as is");
  EXPECT_EQ(decode_transfer_encoding("as is", "x-unknown"), "as is");
}

TEST(ExtractText, PlainMessage) {
  Message m = parse_message("Subject: s\n\nplain body\n");
  EXPECT_EQ(extract_text(m), "plain body\n");
}

TEST(ExtractText, Base64Body) {
  Message m;
  m.add_header("Content-Transfer-Encoding", "base64");
  m.set_body(encode_base64("decoded payload"));
  EXPECT_EQ(extract_text(m), "decoded payload");
}

TEST(ExtractText, MultipartConcatenatesTextParts) {
  const char* raw =
      "Content-Type: multipart/alternative; boundary=BBB\n"
      "\n"
      "preamble is ignored\n"
      "--BBB\n"
      "Content-Type: text/plain\n"
      "\n"
      "first part\n"
      "--BBB\n"
      "Content-Type: text/html\n"
      "\n"
      "<p>second part</p>\n"
      "--BBB\n"
      "Content-Type: image/png\n"
      "Content-Transfer-Encoding: base64\n"
      "\n"
      "aWdub3JlZA==\n"
      "--BBB--\n"
      "epilogue ignored\n";
  Message m = parse_message(raw);
  std::string text = extract_text(m);
  EXPECT_NE(text.find("first part"), std::string::npos);
  EXPECT_NE(text.find("second part"), std::string::npos);
  EXPECT_EQ(text.find("ignored"), std::string::npos);
  EXPECT_EQ(text.find("preamble"), std::string::npos);
}

TEST(ExtractText, NestedMultipart) {
  const char* raw =
      "Content-Type: multipart/mixed; boundary=OUTER\n"
      "\n"
      "--OUTER\n"
      "Content-Type: multipart/alternative; boundary=INNER\n"
      "\n"
      "--INNER\n"
      "Content-Type: text/plain\n"
      "\n"
      "nested text\n"
      "--INNER--\n"
      "--OUTER--\n";
  Message m = parse_message(raw);
  EXPECT_NE(extract_text(m).find("nested text"), std::string::npos);
}

TEST(ExtractText, DepthLimitStopsRecursion) {
  // A multipart that contains itself conceptually: build 12 nesting levels
  // and confirm extraction terminates and respects the depth cap.
  std::string raw = "Content-Type: text/plain\n\ndeepest\n";
  for (int i = 0; i < 12; ++i) {
    std::string boundary = "B" + std::to_string(i);
    raw = "Content-Type: multipart/mixed; boundary=" + boundary +
          "\n\n--" + boundary + "\n" + raw + "\n--" + boundary + "--\n";
  }
  Message m = parse_message(raw);
  EXPECT_EQ(extract_text(m, 8).find("deepest"), std::string::npos);
  EXPECT_NE(extract_text(m, 20).find("deepest"), std::string::npos);
}

TEST(ExtractText, MultipartWithoutBoundaryYieldsNothing) {
  Message m = parse_message("Content-Type: multipart/mixed\n\nopaque\n");
  EXPECT_EQ(extract_text(m), "");
}

TEST(ExtractText, NonTextLeafSkipped) {
  Message m = parse_message("Content-Type: application/pdf\n\n%PDF-1.4\n");
  EXPECT_EQ(extract_text(m), "");
}

}  // namespace
}  // namespace sbx::email
