// Tests for email/rfc2822: parsing (folding, CRLF, malformed input) and
// rendering round trips.
#include "email/rfc2822.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/strings.h"

namespace sbx::email {
namespace {

TEST(Rfc2822Parse, SimpleMessage) {
  Message m = parse_message("From: a@b.example\nSubject: hi\n\nbody text\n");
  EXPECT_EQ(m.header("From").value(), "a@b.example");
  EXPECT_EQ(m.header("Subject").value(), "hi");
  EXPECT_EQ(m.body(), "body text\n");
}

TEST(Rfc2822Parse, CrLfLineEndings) {
  Message m =
      parse_message("From: a@b\r\nSubject: crlf\r\n\r\nbody\r\nmore\r\n");
  EXPECT_EQ(m.header("Subject").value(), "crlf");
  EXPECT_EQ(m.body(), "body\nmore\n");
}

TEST(Rfc2822Parse, UnfoldsContinuationLines) {
  Message m = parse_message(
      "Subject: a very long\n\tfolded subject\n continuation\n\nbody\n");
  EXPECT_EQ(m.header("Subject").value(),
            "a very long folded subject continuation");
}

TEST(Rfc2822Parse, EmptyBody) {
  Message m = parse_message("Subject: only headers\n\n");
  EXPECT_TRUE(m.body().empty());
  Message m2 = parse_message("Subject: no blank line at all\n");
  EXPECT_EQ(m2.header("Subject").value(), "no blank line at all");
  EXPECT_TRUE(m2.body().empty());
}

TEST(Rfc2822Parse, EmptyHeaderBlock) {
  Message m = parse_message("\njust a body\n");
  EXPECT_EQ(m.header_count(), 0u);
  EXPECT_EQ(m.body(), "just a body\n");
}

TEST(Rfc2822Parse, LenientModeTreatsJunkAsBody) {
  Message m = parse_message("From: a@b\nthis is not a header\nmore\n");
  EXPECT_EQ(m.header_count(), 1u);
  EXPECT_EQ(m.body(), "this is not a header\nmore\n");
}

TEST(Rfc2822Parse, StrictModeThrowsOnJunk) {
  ParseOptions strict;
  strict.lenient = false;
  EXPECT_THROW(parse_message("From: a@b\nnot a header\n\nbody\n", strict),
               ParseError);
}

TEST(Rfc2822Parse, HeaderValueWhitespaceTrimmed) {
  Message m = parse_message("Subject:    spaced out   \n\n");
  EXPECT_EQ(m.header("Subject").value(), "spaced out");
}

TEST(Rfc2822Parse, EmptyHeaderValueAllowed) {
  Message m = parse_message("X-Empty:\nSubject: s\n\nb\n");
  EXPECT_EQ(m.header("X-Empty").value(), "");
  EXPECT_EQ(m.header("Subject").value(), "s");
}

TEST(Rfc2822Parse, ColonAtLineStartIsNotAHeader) {
  Message m = parse_message(": no name\n\nbody\n");
  EXPECT_EQ(m.header_count(), 0u);
  // Lenient: the junk line becomes body.
  EXPECT_EQ(m.body(), ": no name\n\nbody\n");
}

TEST(Rfc2822Render, RoundTripSimple) {
  Message m;
  m.add_header("From", "a@b.example");
  m.add_header("Subject", "round trip");
  m.set_body("the body\n");
  Message re = parse_message(render_message(m));
  EXPECT_EQ(re.header("From").value(), "a@b.example");
  EXPECT_EQ(re.header("Subject").value(), "round trip");
  EXPECT_EQ(re.body(), "the body\n");
}

TEST(Rfc2822Render, FoldsLongHeaders) {
  Message m;
  std::string long_value;
  for (int i = 0; i < 30; ++i) long_value += "wordwordword ";
  m.add_header("Subject", long_value);
  std::string rendered = render_message(m);
  // Every physical line stays within a sane bound.
  std::size_t start = 0;
  while (start < rendered.size()) {
    std::size_t nl = rendered.find('\n', start);
    if (nl == std::string::npos) nl = rendered.size();
    EXPECT_LE(nl - start, 80u);
    start = nl + 1;
  }
  // And unfolding restores the value (modulo collapsed whitespace).
  Message re = parse_message(rendered);
  EXPECT_EQ(re.header("Subject").value(),
            std::string(sbx::util::trim(long_value)));
}

TEST(Rfc2822Render, BodyGetsTrailingNewline) {
  Message m;
  m.add_header("A", "1");
  m.set_body("no newline");
  std::string rendered = render_message(m);
  EXPECT_EQ(rendered.back(), '\n');
  Message re = parse_message(rendered);
  EXPECT_EQ(re.body(), "no newline\n");
}

TEST(Rfc2822Parse, RealWorldShape) {
  const char* raw =
      "Received: from mail.example (mail.example [10.0.0.1])\n"
      "\tby mx.victim.example with SMTP id abc123\n"
      "From: \"Sales Team\" <sales@offers.example>\n"
      "To: victim@corp.example\n"
      "Subject: limited time offer\n"
      "Date: Mon, 14 Feb 2005 09:30:00 -0800\n"
      "Message-ID: <20050214@offers.example>\n"
      "MIME-Version: 1.0\n"
      "Content-Type: text/plain; charset=us-ascii\n"
      "\n"
      "Buy now.\n";
  Message m = parse_message(raw);
  EXPECT_EQ(m.header_count(), 8u);
  EXPECT_EQ(m.header("Received").value(),
            "from mail.example (mail.example [10.0.0.1]) by mx.victim.example "
            "with SMTP id abc123");
  EXPECT_EQ(m.body(), "Buy now.\n");
}

}  // namespace
}  // namespace sbx::email
