// Tests for email/message: header storage, lookup and manipulation.
#include "email/message.h"

#include <gtest/gtest.h>

namespace sbx::email {
namespace {

TEST(Message, HeaderLookupIsCaseInsensitive) {
  Message m;
  m.add_header("Subject", "hello");
  EXPECT_TRUE(m.has_header("subject"));
  EXPECT_TRUE(m.has_header("SUBJECT"));
  EXPECT_EQ(m.header("sUbJeCt").value(), "hello");
  EXPECT_FALSE(m.has_header("From"));
  EXPECT_EQ(m.header("From"), std::nullopt);
}

TEST(Message, PreservesOrderAndDuplicates) {
  Message m;
  m.add_header("Received", "hop1");
  m.add_header("Subject", "s");
  m.add_header("Received", "hop2");
  ASSERT_EQ(m.header_count(), 3u);
  EXPECT_EQ(m.headers()[0].value, "hop1");
  EXPECT_EQ(m.headers()[2].value, "hop2");
  auto all = m.all_headers("received");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "hop1");
  EXPECT_EQ(all[1], "hop2");
  // header() returns the first.
  EXPECT_EQ(m.header("Received").value(), "hop1");
}

TEST(Message, RemoveHeaders) {
  Message m;
  m.add_header("X-A", "1");
  m.add_header("X-B", "2");
  m.add_header("x-a", "3");
  EXPECT_EQ(m.remove_headers("X-A"), 2u);
  EXPECT_EQ(m.header_count(), 1u);
  EXPECT_FALSE(m.has_header("X-A"));
  EXPECT_EQ(m.remove_headers("X-A"), 0u);
}

TEST(Message, SetHeadersReplacesBlock) {
  Message m;
  m.add_header("A", "1");
  m.set_headers({{"B", "2"}, {"C", "3"}});
  EXPECT_FALSE(m.has_header("A"));
  EXPECT_EQ(m.header_count(), 2u);
  EXPECT_EQ(m.header("C").value(), "3");
}

TEST(Message, BodyRoundTrip) {
  Message m;
  EXPECT_TRUE(m.body().empty());
  m.set_body("line one\nline two\n");
  EXPECT_EQ(m.body(), "line one\nline two\n");
}

TEST(Message, ConstructorTakesHeadersAndBody) {
  Message m({{"From", "a@b"}, {"To", "c@d"}}, "hi\n");
  EXPECT_EQ(m.header_count(), 2u);
  EXPECT_EQ(m.body(), "hi\n");
}

}  // namespace
}  // namespace sbx::email
