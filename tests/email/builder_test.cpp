// Tests for email/builder.
#include "email/builder.h"

#include <gtest/gtest.h>

#include "email/rfc2822.h"

namespace sbx::email {
namespace {

TEST(MessageBuilder, ChainsHeaders) {
  Message m = MessageBuilder()
                  .from("a@example")
                  .to("b@example")
                  .subject("subj")
                  .date("Mon, 14 Feb 2005 09:30:00 -0800")
                  .message_id("<id@example>")
                  .header("X-Custom", "value")
                  .body("hello\n")
                  .build();
  EXPECT_EQ(m.header("From").value(), "a@example");
  EXPECT_EQ(m.header("To").value(), "b@example");
  EXPECT_EQ(m.header("Subject").value(), "subj");
  EXPECT_EQ(m.header("Message-ID").value(), "<id@example>");
  EXPECT_EQ(m.header("X-Custom").value(), "value");
  EXPECT_EQ(m.body(), "hello\n");
}

TEST(MessageBuilder, BuildIsRepeatable) {
  MessageBuilder b;
  b.subject("same");
  Message m1 = b.build();
  Message m2 = b.build();
  EXPECT_EQ(m1.header("Subject").value(), m2.header("Subject").value());
}

TEST(MessageBuilder, BodyFromWordsLaysOutLines) {
  std::vector<std::string> words;
  for (int i = 0; i < 30; ++i) words.push_back("w" + std::to_string(i));
  Message m = MessageBuilder().body_from_words(words, 10).build();
  const std::string& body = m.body();
  // 30 words at 10 per line -> 3 lines, each ending with newline.
  EXPECT_EQ(std::count(body.begin(), body.end(), '\n'), 3);
  EXPECT_NE(body.find("w0 w1"), std::string::npos);
  EXPECT_NE(body.find("w29"), std::string::npos);
}

TEST(MessageBuilder, BodyFromWordsEmptyAndSingle) {
  EXPECT_TRUE(MessageBuilder().body_from_words({}).build().body().empty());
  Message one = MessageBuilder().body_from_words({"solo"}).build();
  EXPECT_EQ(one.body(), "solo\n");
}

TEST(MessageBuilder, ZeroWordsPerLineFallsBackToDefault) {
  std::vector<std::string> words(24, "x");
  Message m = MessageBuilder().body_from_words(words, 0).build();
  EXPECT_EQ(std::count(m.body().begin(), m.body().end(), '\n'), 2);
}

TEST(MessageBuilder, EmptyHeaderMessageRendersParsable) {
  // Dictionary attack emails have no headers at all; the render/parse cycle
  // must keep the body intact.
  Message m = MessageBuilder().body_from_words({"alpha", "beta"}).build();
  EXPECT_EQ(m.header_count(), 0u);
  Message re = parse_message(render_message(m));
  EXPECT_NE(re.body().find("alpha beta"), std::string::npos);
}

}  // namespace
}  // namespace sbx::email
