// Tests for corpus/dataset: labels, tokenized views, K-fold properties.
#include "corpus/dataset.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "email/builder.h"
#include "util/error.h"

namespace sbx::corpus {
namespace {

Dataset tiny_dataset(std::size_t n) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    email::Message m = email::MessageBuilder()
                           .subject("msg " + std::to_string(i))
                           .body("token" + std::to_string(i) + " shared\n")
                           .build();
    d.items.push_back(
        {std::move(m), i % 2 == 0 ? TrueLabel::ham : TrueLabel::spam});
  }
  return d;
}

TEST(Dataset, Counts) {
  Dataset d = tiny_dataset(10);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.count(TrueLabel::ham), 5u);
  EXPECT_EQ(d.count(TrueLabel::spam), 5u);
}

TEST(Dataset, LabelNames) {
  EXPECT_EQ(to_string(TrueLabel::ham), "ham");
  EXPECT_EQ(to_string(TrueLabel::spam), "spam");
}

TEST(TokenizeDataset, PreservesLabelsAndDedupes) {
  Dataset d = tiny_dataset(4);
  spambayes::Tokenizer tok;
  TokenizedDataset td = tokenize_dataset(d, tok);
  ASSERT_EQ(td.size(), 4u);
  EXPECT_EQ(td.count(TrueLabel::ham), 2u);
  for (std::size_t i = 0; i < td.size(); ++i) {
    EXPECT_EQ(td.items[i].label, d.items[i].label);
    // Token sets are sorted and unique.
    EXPECT_TRUE(std::is_sorted(td.items[i].tokens.begin(),
                               td.items[i].tokens.end()));
    EXPECT_EQ(std::adjacent_find(td.items[i].tokens.begin(),
                                 td.items[i].tokens.end()),
              td.items[i].tokens.end());
  }
}

TEST(KFold, PartitionProperties) {
  util::Rng rng(5);
  const std::size_t n = 103;
  const std::size_t k = 10;
  auto folds = k_fold_splits(n, k, rng);
  ASSERT_EQ(folds.size(), k);

  std::set<std::size_t> all_test;
  for (const auto& fold : folds) {
    // Train and test are disjoint and together cover [0, n).
    EXPECT_EQ(fold.train.size() + fold.test.size(), n);
    std::set<std::size_t> train(fold.train.begin(), fold.train.end());
    for (std::size_t t : fold.test) {
      EXPECT_EQ(train.count(t), 0u);
      all_test.insert(t);
    }
    // Fold sizes differ by at most one.
    EXPECT_GE(fold.test.size(), n / k);
    EXPECT_LE(fold.test.size(), n / k + 1);
  }
  // Every index is a test item in exactly one fold.
  EXPECT_EQ(all_test.size(), n);
}

TEST(KFold, EveryIndexTestedExactlyOnce) {
  util::Rng rng(6);
  auto folds = k_fold_splits(50, 5, rng);
  std::vector<int> tested(50, 0);
  for (const auto& fold : folds) {
    for (std::size_t t : fold.test) tested[t] += 1;
  }
  for (int c : tested) EXPECT_EQ(c, 1);
}

TEST(KFold, DeterministicGivenRngSeed) {
  util::Rng a(9), b(9);
  auto fa = k_fold_splits(30, 3, a);
  auto fb = k_fold_splits(30, 3, b);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].test, fb[i].test);
    EXPECT_EQ(fa[i].train, fb[i].train);
  }
}

TEST(KFold, Validation) {
  util::Rng rng(1);
  EXPECT_THROW(k_fold_splits(10, 1, rng), InvalidArgument);
  EXPECT_THROW(k_fold_splits(3, 4, rng), InvalidArgument);
  // k == size is legal (leave-one-out).
  auto folds = k_fold_splits(4, 4, rng);
  for (const auto& f : folds) EXPECT_EQ(f.test.size(), 1u);
}

}  // namespace
}  // namespace sbx::corpus
