// Tests for corpus/vocabulary: word uniqueness, lexicon sizes, the
// paper-calibrated Aspell/Usenet overlap, tokenizer compatibility.
#include "corpus/vocabulary.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "spambayes/tokenizer.h"
#include "util/error.h"

namespace sbx::corpus {
namespace {

TEST(WordGenerator, Deterministic) {
  EXPECT_EQ(WordGenerator::word(0), WordGenerator::word(0));
  EXPECT_EQ(WordGenerator::word(12345), WordGenerator::word(12345));
  EXPECT_EQ(WordGenerator::colloquial_word(7),
            WordGenerator::colloquial_word(7));
}

TEST(WordGenerator, FormalWordsDistinctOverLexiconRange) {
  // Covers the full index range the lexicons + entity pools use.
  std::unordered_set<std::string> seen;
  const std::uint64_t limit = 200'000;
  for (std::uint64_t i = 0; i < limit; ++i) {
    ASSERT_TRUE(seen.insert(WordGenerator::word(i)).second)
        << "collision at index " << i << ": " << WordGenerator::word(i);
  }
}

TEST(WordGenerator, ColloquialWordsDistinctAndMarked) {
  std::unordered_set<std::string> seen;
  for (std::uint64_t i = 0; i < 60'000; ++i) {
    std::string w = WordGenerator::colloquial_word(i);
    ASSERT_TRUE(seen.insert(w).second) << "collision at " << i;
    EXPECT_EQ(w[0], 'q') << w;  // the disjointness marker
  }
}

TEST(WordGenerator, FormalWordsNeverContainQ) {
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    EXPECT_EQ(WordGenerator::word(i).find('q'), std::string::npos);
  }
}

TEST(WordGenerator, WordsSurviveTokenization) {
  // Every lexicon word must tokenize to exactly itself, otherwise attack
  // dictionaries would not hit the tokens ham actually produces.
  spambayes::Tokenizer tok;
  for (std::uint64_t i : {0ull, 17ull, 999ull, 98'567ull, 150'000ull}) {
    std::string w = WordGenerator::word(i);
    auto tokens = tok.tokenize_text(w);
    ASSERT_EQ(tokens.size(), 1u) << w;
    EXPECT_EQ(tokens[0], w);
  }
  for (std::uint64_t i : {0ull, 28'999ull, 50'000ull}) {
    std::string w = WordGenerator::colloquial_word(i);
    auto tokens = tok.tokenize_text(w);
    ASSERT_EQ(tokens.size(), 1u) << w;
    EXPECT_EQ(tokens[0], w);
  }
}

TEST(WordGenerator, ColloquialIndexRangeGuarded) {
  EXPECT_THROW(WordGenerator::colloquial_word(1ull << 40), InvalidArgument);
}

TEST(Lexicons, PaperCalibratedSizes) {
  Lexicons lex;
  EXPECT_EQ(lex.aspell().size(), 98'568u);   // GNU Aspell en 6.0-0
  EXPECT_EQ(lex.usenet().size(), 90'000u);   // top Usenet words
  EXPECT_EQ(lex.overlap(), 61'000u);         // §4.2: ~61k shared
  EXPECT_EQ(lex.colloquial().size(), 29'000u);
}

TEST(Lexicons, OverlapIsExact) {
  LexiconSizes sizes;
  sizes.aspell = 2'000;
  sizes.usenet = 1'500;
  sizes.overlap = 1'000;
  Lexicons lex(sizes);
  std::unordered_set<std::string> aspell(lex.aspell().begin(),
                                         lex.aspell().end());
  std::size_t shared = 0;
  for (const auto& w : lex.usenet()) shared += aspell.count(w);
  EXPECT_EQ(shared, sizes.overlap);
  // Usenet-minus-Aspell = colloquial words, all disjoint from Aspell.
  for (const auto& w : lex.colloquial()) {
    EXPECT_FALSE(lex.in_aspell(w)) << w;
  }
}

TEST(Lexicons, UsenetHasNoDuplicates) {
  LexiconSizes sizes;
  sizes.aspell = 3'000;
  sizes.usenet = 2'000;
  sizes.overlap = 1'200;
  Lexicons lex(sizes);
  std::unordered_set<std::string> seen(lex.usenet().begin(),
                                       lex.usenet().end());
  EXPECT_EQ(seen.size(), lex.usenet().size());
}

TEST(Lexicons, ColloquialInterleavedThroughRanking) {
  // Slang ranks highly in a Usenet frequency list; the front of the ranked
  // list must already contain colloquial words, not have them all appended
  // at the end.
  LexiconSizes sizes;
  sizes.aspell = 3'000;
  sizes.usenet = 2'000;
  sizes.overlap = 1'000;
  Lexicons lex(sizes);
  std::size_t colloquial_in_front = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    colloquial_in_front += lex.usenet()[i][0] == 'q' ? 1 : 0;
  }
  EXPECT_GT(colloquial_in_front, 50u);
  EXPECT_LT(colloquial_in_front, 150u);
}

TEST(Lexicons, InvalidOverlapRejected) {
  LexiconSizes sizes;
  sizes.aspell = 100;
  sizes.usenet = 100;
  sizes.overlap = 150;
  EXPECT_THROW(Lexicons{sizes}, InvalidArgument);
}

TEST(Lexicons, MembershipTest) {
  LexiconSizes sizes;
  sizes.aspell = 500;
  sizes.usenet = 400;
  sizes.overlap = 300;
  Lexicons lex(sizes);
  EXPECT_TRUE(lex.in_aspell(lex.aspell().front()));
  EXPECT_TRUE(lex.in_aspell(lex.aspell().back()));
  EXPECT_FALSE(lex.in_aspell("qzzz-not-a-word"));
}

}  // namespace
}  // namespace sbx::corpus
