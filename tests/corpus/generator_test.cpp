// Tests for corpus/generator: determinism, structural realism, token
// statistics that the attacks rely on (colloquial mass, dictionary
// coverage, email lengths), mailbox sampling.
#include "corpus/generator.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "email/rfc2822.h"
#include "spambayes/tokenizer.h"
#include "util/error.h"

namespace sbx::corpus {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  static const TrecLikeGenerator& generator() {
    static const TrecLikeGenerator gen;
    return gen;
  }
};

TEST_F(GeneratorTest, DeterministicGivenSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 5; ++i) {
    email::Message ma = generator().generate_ham(a);
    email::Message mb = generator().generate_ham(b);
    EXPECT_EQ(ma.body(), mb.body());
    EXPECT_EQ(ma.header("Subject"), mb.header("Subject"));
    EXPECT_EQ(generator().generate_spam(a).body(),
              generator().generate_spam(b).body());
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  EXPECT_NE(generator().generate_ham(a).body(),
            generator().generate_ham(b).body());
}

TEST_F(GeneratorTest, MessagesHaveRealisticHeaders) {
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    for (auto msg : {generator().generate_ham(rng),
                     generator().generate_spam(rng)}) {
      EXPECT_TRUE(msg.has_header("From"));
      EXPECT_TRUE(msg.has_header("To"));
      EXPECT_TRUE(msg.has_header("Subject"));
      EXPECT_TRUE(msg.has_header("Date"));
      EXPECT_TRUE(msg.has_header("Message-ID"));
      EXPECT_NE(msg.header("From")->find('@'), std::string::npos);
      EXPECT_FALSE(msg.body().empty());
    }
  }
}

TEST_F(GeneratorTest, MessagesRenderAndReparse) {
  util::Rng rng(11);
  email::Message msg = generator().generate_ham(rng);
  email::Message re = email::parse_message(email::render_message(msg));
  EXPECT_EQ(re.header("Subject"), msg.header("Subject"));
  EXPECT_EQ(re.header("Message-ID"), msg.header("Message-ID"));
}

TEST_F(GeneratorTest, MeanTokenCountNearCalibration) {
  // DESIGN.md: the corpus-wide mean email should carry roughly 280 tokens
  // so the paper's token-ratio statistics (~7x at 2% Aspell) come out.
  util::Rng rng(13);
  spambayes::Tokenizer tok;
  std::size_t total = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    total += tok.tokenize(generator().generate_ham(rng)).size();
    total += tok.tokenize(generator().generate_spam(rng)).size();
  }
  double mean = static_cast<double>(total) / (2 * n);
  EXPECT_GT(mean, 180.0);
  EXPECT_LT(mean, 400.0);
}

TEST_F(GeneratorTest, HamDrawsColloquialMass) {
  // The Usenet-attack advantage requires ham to carry colloquial
  // (Usenet-only) tokens at roughly the configured mixture weight.
  util::Rng rng(17);
  spambayes::Tokenizer tok;
  std::size_t colloquial = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    email::Message msg = generator().generate_ham(rng);
    for (const auto& t : tok.tokenize_text(msg.body())) {
      total += 1;
      colloquial += t[0] == 'q' ? 1 : 0;
    }
  }
  double fraction = static_cast<double>(colloquial) / total;
  EXPECT_GT(fraction, 0.08);
  EXPECT_LT(fraction, 0.20);
}

TEST_F(GeneratorTest, HamCoreInsideAspellAndUsenet) {
  const auto& lex = generator().lexicons();
  std::unordered_set<std::string> usenet(lex.usenet().begin(),
                                         lex.usenet().end());
  for (const auto& w : generator().ham_core_words()) {
    ASSERT_TRUE(lex.in_aspell(w)) << w;
    ASSERT_TRUE(usenet.count(w)) << w;
  }
}

TEST_F(GeneratorTest, SpamVocabInAspellButNotUsenet) {
  const auto& lex = generator().lexicons();
  std::unordered_set<std::string> usenet(lex.usenet().begin(),
                                         lex.usenet().end());
  for (const auto& w : generator().spam_vocab_words()) {
    ASSERT_TRUE(lex.in_aspell(w)) << w;
    ASSERT_FALSE(usenet.count(w)) << w;
  }
}

TEST_F(GeneratorTest, FullVocabularyCoversEmittedBodyWords) {
  // The optimal attack's premise: the generator's declared vocabulary must
  // cover (almost) every plain word that appears in generated bodies.
  auto vocab_words = generator().full_vocabulary();
  std::unordered_set<std::string> vocab(vocab_words.begin(),
                                        vocab_words.end());
  util::Rng rng(19);
  spambayes::Tokenizer tok;
  std::size_t covered = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    for (auto msg : {generator().generate_ham(rng),
                     generator().generate_spam(rng)}) {
      for (const auto& t : tok.tokenize_text(msg.body())) {
        // Skip pseudo-tokens and numerics, which the optimal attack cannot
        // enumerate (documented in DESIGN.md).
        if (t.rfind("url:", 0) == 0 || t.rfind("skip:", 0) == 0) continue;
        bool numeric = t.find_first_of("0123456789$") != std::string::npos;
        if (numeric) continue;
        total += 1;
        covered += vocab.count(t);
      }
    }
  }
  EXPECT_GT(static_cast<double>(covered) / total, 0.999);
}

TEST_F(GeneratorTest, SampleMailboxRespectsSpamFraction) {
  util::Rng rng(23);
  Dataset box = generator().sample_mailbox(400, 0.25, rng);
  EXPECT_EQ(box.size(), 400u);
  EXPECT_EQ(box.count(TrueLabel::spam), 100u);
  EXPECT_EQ(box.count(TrueLabel::ham), 300u);
  EXPECT_THROW(generator().sample_mailbox(10, 1.5, rng), InvalidArgument);
}

TEST_F(GeneratorTest, SampleMailboxShufflesLabels) {
  util::Rng rng(29);
  Dataset box = generator().sample_mailbox(200, 0.5, rng);
  // The first 100 messages must not all share one label.
  std::size_t spam_in_front = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    spam_in_front += box.items[i].label == TrueLabel::spam ? 1 : 0;
  }
  EXPECT_GT(spam_in_front, 20u);
  EXPECT_LT(spam_in_front, 80u);
}

TEST_F(GeneratorTest, ConfigValidation) {
  GeneratorConfig bad;
  bad.ham_core_vocab = 70'000;  // exceeds the 61k overlap
  EXPECT_THROW(TrecLikeGenerator{bad}, InvalidArgument);

  GeneratorConfig bad2;
  bad2.spam_vocab = 40'000;  // does not fit outside the overlap
  EXPECT_THROW(TrecLikeGenerator{bad2}, InvalidArgument);
}

TEST_F(GeneratorTest, SpamAndHamVocabulariesOverlapPartially) {
  // Spam carries shared English background (the paper's corpus does too);
  // the classifier must see overlapping-but-distinguishable distributions.
  util::Rng rng(31);
  spambayes::Tokenizer tok;
  std::unordered_set<std::string> ham_tokens;
  for (int i = 0; i < 40; ++i) {
    for (const auto& t :
         tok.tokenize_text(generator().generate_ham(rng).body())) {
      ham_tokens.insert(t);
    }
  }
  std::size_t shared = 0, spam_total = 0;
  for (int i = 0; i < 40; ++i) {
    for (const auto& t :
         tok.tokenize_text(generator().generate_spam(rng).body())) {
      spam_total += 1;
      shared += ham_tokens.count(t);
    }
  }
  double fraction = static_cast<double>(shared) / spam_total;
  EXPECT_GT(fraction, 0.15);  // substantial shared background...
  EXPECT_LT(fraction, 0.75);  // ...but far from identical distributions
}

}  // namespace
}  // namespace sbx::corpus
