// Tests for the generator realism features that calibrate score overlap:
// hard spam (plain-text scams) and ham-mimicking spam subjects. These are
// what make the Figure-5 dynamic-threshold trade-off reproducible (see
// GeneratorConfig documentation).
#include <unordered_set>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "util/random.h"
#include "util/strings.h"

namespace sbx::corpus {
namespace {

TEST(HardSpam, SubjectsMixHamVocabulary) {
  TrecLikeGenerator gen;
  std::unordered_set<std::string> ham_core(gen.ham_core_words().begin(),
                                           gen.ham_core_words().end());
  util::Rng rng(3);
  std::size_t ham_words = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    email::Message spam = gen.generate_spam(rng);
    for (const auto& w :
         util::split_whitespace(spam.header("Subject").value_or(""))) {
      total += 1;
      ham_words += ham_core.count(util::to_lower(w)) ? 1 : 0;
    }
  }
  double fraction = static_cast<double>(ham_words) / total;
  // Configured at 0.5; the "!!!" suffix and sampling noise shift it a bit.
  EXPECT_GT(fraction, 0.3);
  EXPECT_LT(fraction, 0.7);
}

TEST(HardSpam, CanBeDisabled) {
  GeneratorConfig config;
  config.hard_spam_fraction = 0.0;
  config.spam_subject_ham_word_prob = 0.0;
  TrecLikeGenerator gen(config);
  std::unordered_set<std::string> ham_core(gen.ham_core_words().begin(),
                                           gen.ham_core_words().end());
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    email::Message spam = gen.generate_spam(rng);
    for (const auto& w :
         util::split_whitespace(spam.header("Subject").value_or(""))) {
      std::string lower = util::to_lower(w);
      if (lower.size() >= 3 && lower.find("!!!") == std::string::npos) {
        EXPECT_FALSE(ham_core.count(lower)) << lower;
      }
    }
  }
}

TEST(HardSpam, CreatesScoreOverlapTail) {
  // With hard spam enabled, a trained filter must see a low-score tail in
  // the spam score distribution; without it, spam scores concentrate at 1.
  auto spam_scores = [](double hard_fraction) {
    GeneratorConfig config;
    config.hard_spam_fraction = hard_fraction;
    TrecLikeGenerator gen(config);
    util::Rng rng(5);
    spambayes::Filter filter;
    for (int i = 0; i < 400; ++i) {
      filter.train_ham(gen.generate_ham(rng));
      filter.train_spam(gen.generate_spam(rng));
    }
    std::vector<double> scores;
    for (int i = 0; i < 200; ++i) {
      scores.push_back(filter.classify(gen.generate_spam(rng)).score);
    }
    return scores;
  };

  auto low_tail = [](const std::vector<double>& scores) {
    std::size_t n = 0;
    for (double s : scores) n += s < 0.99 ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(scores.size());
  };

  EXPECT_GT(low_tail(spam_scores(0.25)), low_tail(spam_scores(0.0)));
}

TEST(HardSpam, BaselineAccuracyStaysUsable) {
  // The realism features must not break the clean filter: ham stays
  // essentially perfectly classified, spam errors stay a small tail.
  TrecLikeGenerator gen;
  util::Rng rng(6);
  spambayes::Filter filter;
  for (int i = 0; i < 500; ++i) {
    filter.train_ham(gen.generate_ham(rng));
    filter.train_spam(gen.generate_spam(rng));
  }
  int ham_bad = 0, spam_bad = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    ham_bad += filter.classify(gen.generate_ham(rng)).verdict !=
                       spambayes::Verdict::ham
                   ? 1
                   : 0;
    spam_bad += filter.classify(gen.generate_spam(rng)).verdict !=
                        spambayes::Verdict::spam
                    ? 1
                    : 0;
  }
  EXPECT_LT(ham_bad / static_cast<double>(n), 0.02);
  EXPECT_LT(spam_bad / static_cast<double>(n), 0.15);
}

}  // namespace
}  // namespace sbx::corpus
