// Tests for core/ham_labeled_attack: the §2.2 Causative Integrity
// extension.
#include "core/ham_labeled_attack.h"

#include <gtest/gtest.h>

#include "core/roni.h"
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "util/error.h"

namespace sbx::core {
namespace {

TEST(HamLabeledAttack, TaxonomyAndConstruction) {
  HamLabeledAttack attack({"cheap", "pills"}, {{"From", "friend@corp"}});
  EXPECT_EQ(attack.properties().description(),
            "Causative Integrity Indiscriminate");
  EXPECT_EQ(attack.payload_size(), 2u);
  EXPECT_EQ(attack.attack_message().header("From").value(), "friend@corp");
  EXPECT_NE(attack.attack_message().body().find("cheap pills"),
            std::string::npos);
  EXPECT_THROW(HamLabeledAttack({}, {}), InvalidArgument);
}

class HamLabeledEndToEnd : public ::testing::Test {
 protected:
  static const corpus::TrecLikeGenerator& generator() {
    static const corpus::TrecLikeGenerator gen;
    return gen;
  }
};

TEST_F(HamLabeledEndToEnd, WhitensCampaignVocabulary) {
  util::Rng rng(17);
  spambayes::Filter filter;
  for (int i = 0; i < 400; ++i) {
    filter.train_ham(generator().generate_ham(rng));
    filter.train_spam(generator().generate_spam(rng));
  }
  std::vector<std::string> payload = generator().spam_vocab_words();
  const auto& junk = generator().spam_junk_words();
  payload.insert(payload.end(), junk.begin(), junk.end());
  HamLabeledAttack attack(payload,
                          generator().generate_ham(rng).headers());

  util::Rng probe_rng(18);
  auto spam_score_mean = [&] {
    double total = 0;
    util::Rng r = probe_rng;  // same probes before and after
    for (int i = 0; i < 50; ++i) {
      total += filter.classify(generator().generate_spam(r)).score;
    }
    return total / 50;
  };
  const double before = spam_score_mean();
  // 2% ham-labeled injection.
  spambayes::Tokenizer tok;
  filter.train_ham_tokens(
      spambayes::unique_tokens(tok.tokenize(attack.attack_message())), 16);
  const double after = spam_score_mean();
  EXPECT_LT(after, before - 0.05);

  // Legitimate ham is unharmed (the attack only ever adds ham evidence).
  util::Rng ham_rng(19);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(filter.classify(generator().generate_ham(ham_rng)).verdict,
              spambayes::Verdict::ham);
  }
}

TEST_F(HamLabeledEndToEnd, InvisibleToRoni) {
  // RONI measures damage to ham classification; the ham-labeled attack
  // *improves* ham classification, so its impact statistic is <= 0.
  util::Rng rng(20);
  corpus::Dataset pool = generator().sample_mailbox(250, 0.5, rng);
  spambayes::Tokenizer tok;
  corpus::TokenizedDataset tokenized = corpus::tokenize_dataset(pool, tok);

  std::vector<std::string> payload = generator().spam_vocab_words();
  HamLabeledAttack attack(payload, generator().generate_ham(rng).headers());
  RoniDefense roni({}, {});
  auto assessment = roni.assess(
      spambayes::unique_tokens(tok.tokenize(attack.attack_message())),
      tokenized, rng);
  EXPECT_FALSE(assessment.rejected);
  EXPECT_LE(assessment.mean_ham_as_ham_decrease, 1.0);
}

}  // namespace
}  // namespace sbx::core
