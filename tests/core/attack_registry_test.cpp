// Contract tests for the attack registry: every registered attack exposes
// coherent taxonomy coordinates, a self-validating schema, and crafts /
// evades deterministically — including under concurrent callers, the
// multi-thread shape the sweep harness exercises (one rng per trial, the
// attack itself stateless).
#include <gtest/gtest.h>

#include <cctype>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/attack_registry.h"
#include "core/focused_attack.h"  // attackable_body_words
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "spambayes/tokenizer.h"
#include "util/error.h"

namespace sbx::core {
namespace {

const corpus::TrecLikeGenerator& generator() {
  static const corpus::TrecLikeGenerator* g = new corpus::TrecLikeGenerator();
  return *g;
}

std::string flatten(const email::Message& m) {
  std::string out;
  for (const auto& field : m.headers()) {
    out += field.name;
    out += ": ";
    out += field.value;
    out += "\n";
  }
  out += "\n";
  out += m.body();
  return out;
}

/// Params with small payloads so the determinism tests stay fast; attacks
/// without a dictionary_size knob run their defaults.
util::Config fast_params(const Attack& attack) {
  util::Config params = attack.default_params();
  if (attack.name() == "usenet" || attack.name() == "aspell" ||
      attack.name() == "informed") {
    params.set("dictionary_size", "2000");
  }
  return params;
}

/// A small shared victim filter for the Exploratory attacks.
const spambayes::Filter& victim_filter() {
  static const spambayes::Filter* filter = [] {
    auto* f = new spambayes::Filter();
    util::Rng rng(99);
    for (int i = 0; i < 120; ++i) {
      f->train_spam(generator().generate_spam(rng));
      f->train_ham(generator().generate_ham(rng));
    }
    return f;
  }();
  return *filter;
}

TEST(AttackRegistry, ContainsEveryBuiltinAttack) {
  const std::vector<std::string> expected = {
      "aspell",      "backdoor-trigger", "focused",
      "good-word",   "ham-labeled",      "informed",
      "obfuscation", "optimal",          "usenet"};
  std::vector<std::string> names;
  for (const Attack* attack : builtin_attack_registry().attacks()) {
    names.push_back(attack->name());
  }
  EXPECT_EQ(names, expected);  // attacks() sorts by name
}

TEST(AttackRegistry, DuplicateAddThrows) {
  AttackRegistry registry;
  register_builtin_attacks(registry);
  EXPECT_THROW(register_builtin_attacks(registry), InvalidArgument);
}

TEST(AttackRegistry, GetUnknownThrowsWithKnownNames) {
  try {
    builtin_attack_registry().get("no-such-attack");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("backdoor-trigger"), std::string::npos) << message;
    EXPECT_NE(message.find("usenet"), std::string::npos) << message;
  }
}

TEST(AttackRegistry, EveryAttackHasCoherentContract) {
  for (const Attack* attack : builtin_attack_registry().attacks()) {
    SCOPED_TRACE(attack->name());
    EXPECT_FALSE(attack->name().empty());
    for (char c : attack->name()) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) != 0 ||
                  std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-')
          << "registry names are lowercase-dash, got '" << c << "'";
    }
    EXPECT_FALSE(attack->description().empty());
    EXPECT_FALSE(attack->paper_ref().empty());

    // Exactly one hook, matching the Influence axis.
    const AttackProperties properties = attack->properties();
    EXPECT_EQ(attack->crafts_poison(),
              properties.influence == Influence::causative);
    EXPECT_EQ(attack->evades(),
              properties.influence == Influence::exploratory);
    EXPECT_NE(attack->crafts_poison(), attack->evades());

    // The schema's declared defaults all validate (default_params() throws
    // otherwise), and every key round-trips through raw_value.
    const util::Config defaults = attack->default_params();
    for (const auto& spec : attack->schema().params()) {
      EXPECT_EQ(defaults.raw_value(spec.key), spec.default_value);
      EXPECT_FALSE(spec.description.empty()) << spec.key;
    }
  }
}

TEST(AttackRegistry, WrongHookThrows) {
  util::Rng rng(1);
  for (const Attack* attack : builtin_attack_registry().attacks()) {
    SCOPED_TRACE(attack->name());
    const util::Config params = attack->default_params();
    if (attack->evades()) {
      CraftContext ctx{generator(), params, rng, 1, nullptr, nullptr,
                       nullptr};
      EXPECT_THROW(attack->craft_poison(ctx), InvalidArgument);
      EXPECT_EQ(attack->canonical_poison(generator(), params, rng),
                std::nullopt);
    } else {
      EvadeContext ctx{generator(), params, victim_filter(), 100,
                       spambayes::Verdict::unsure};
      EXPECT_THROW(attack->evade(ctx, generator().generate_spam(rng)),
                   InvalidArgument);
    }
  }
}

/// Crafts one attack's poison with a fresh Rng(seed); returns the
/// flattened messages. Covers both the canonical (indiscriminate) and the
/// targeted (focused) CraftContext shapes.
std::vector<std::string> craft_once(const Attack& attack,
                                    const util::Config& params,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  util::Rng target_rng(seed + 1);
  const email::Message target = generator().generate_ham(target_rng);
  const spambayes::Tokenizer tokenizer;
  const spambayes::TokenSet body_words =
      attackable_body_words(target, tokenizer);
  const email::Message spam_a = generator().generate_spam(target_rng);
  const email::Message spam_b = generator().generate_spam(target_rng);
  const std::vector<const email::Message*> header_pool = {&spam_a, &spam_b};

  CraftContext ctx{generator(), params, rng, 3, &target, &body_words,
                   &header_pool};
  std::vector<std::string> out;
  for (const auto& message : attack.craft_poison(ctx)) {
    out.push_back(flatten(message));
  }
  return out;
}

TEST(AttackRegistry, CausativeAttacksCraftDeterministically) {
  for (const Attack* attack : builtin_attack_registry().attacks()) {
    if (!attack->crafts_poison()) continue;
    SCOPED_TRACE(attack->name());
    const util::Config params = fast_params(*attack);

    const std::vector<std::string> first = craft_once(*attack, params, 42);
    const std::vector<std::string> second = craft_once(*attack, params, 42);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first, second);

    // Identical-copy attacks replicate their canonical message; the
    // canonical form agrees with craft_poison and with poison_label().
    util::Rng rng(42);
    const std::optional<CanonicalPoison> canonical =
        attack->canonical_poison(generator(), params, rng);
    if (canonical.has_value()) {
      EXPECT_EQ(first[0], first[1]);
      EXPECT_EQ(first[0], first[2]);
      EXPECT_EQ(first[0], flatten(canonical->message));
      EXPECT_EQ(canonical->train_as, attack->poison_label());
      EXPECT_FALSE(canonical->display_name.empty());
    }
  }
}

TEST(AttackRegistry, CraftIsIdenticalAcrossConcurrentCallers) {
  // The sweep harness crafts from many worker threads at once (one rng
  // per trial, a shared const Attack). Every thread must see the bytes the
  // single-threaded caller sees.
  for (const char* name : {"backdoor-trigger", "ham-labeled", "focused"}) {
    SCOPED_TRACE(name);
    const Attack& attack = builtin_attack_registry().get(name);
    const util::Config params = fast_params(attack);
    const std::vector<std::string> expected = craft_once(attack, params, 7);

    std::vector<std::vector<std::string>> results(4);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < results.size(); ++t) {
      threads.emplace_back([&, t] {
        results[t] = craft_once(attack, params, 7);
      });
    }
    for (auto& thread : threads) thread.join();
    for (const auto& result : results) EXPECT_EQ(result, expected);
  }
}

TEST(AttackRegistry, ExploratoryAttacksEvadeDeterministically) {
  util::Rng spam_rng(5);
  const email::Message spam = generator().generate_spam(spam_rng);
  for (const Attack* attack : builtin_attack_registry().attacks()) {
    if (!attack->evades()) continue;
    SCOPED_TRACE(attack->name());
    const util::Config params = attack->default_params();

    auto evade_once = [&] {
      EvadeContext ctx{generator(), params, victim_filter(), 200,
                       spambayes::Verdict::unsure};
      return attack->evade(ctx, spam);
    };
    const EvadeResult first = evade_once();
    EXPECT_GE(first.queries, 1u);

    // Sequential repeat and 4 concurrent callers all reproduce the same
    // result, bit-for-bit on the scores.
    std::vector<EvadeResult> results(5);
    results[0] = evade_once();
    std::vector<std::thread> threads;
    for (std::size_t t = 1; t < results.size(); ++t) {
      threads.emplace_back([&, t] { results[t] = evade_once(); });
    }
    for (auto& thread : threads) thread.join();
    for (const EvadeResult& r : results) {
      EXPECT_EQ(flatten(r.message), flatten(first.message));
      EXPECT_EQ(r.words_added, first.words_added);
      EXPECT_EQ(r.queries, first.queries);
      EXPECT_EQ(r.score_before, first.score_before);
      EXPECT_EQ(r.score_after, first.score_after);
      EXPECT_EQ(r.evaded, first.evaded);
    }
  }
}

TEST(AttackRegistry, BackdoorTriggerTokensAreRareAndSeedStable) {
  const Attack& attack = builtin_attack_registry().get("backdoor-trigger");
  util::Config params = attack.default_params();
  const std::vector<std::string> trigger = attack.trigger_tokens(params);
  ASSERT_EQ(trigger.size(), 8u);  // the default trigger_length
  for (const auto& token : trigger) {
    EXPECT_EQ(token.rfind("xq", 0), 0u) << token;  // lexicon-disjoint prefix
    EXPECT_EQ(token.size(), 8u);
  }
  EXPECT_EQ(trigger, attack.trigger_tokens(params));  // seed-stable

  params.set("trigger_seed", "43");
  EXPECT_NE(trigger, attack.trigger_tokens(params));
  params.set("trigger_length", "3");
  EXPECT_EQ(attack.trigger_tokens(params).size(), 3u);
  params.set("trigger_length", "0");
  EXPECT_THROW(attack.trigger_tokens(params), InvalidArgument);
}

}  // namespace
}  // namespace sbx::core
