// Tests for core defenses: RONI impact measurement and rejection, dynamic
// threshold utility/selection and end-to-end behaviour.
#include <gtest/gtest.h>

#include "core/dictionary_attack.h"
#include "core/dynamic_threshold.h"
#include "core/roni.h"
#include "corpus/generator.h"
#include "util/error.h"

namespace sbx::core {
namespace {

corpus::TokenizedDataset tokenized_pool(const corpus::TrecLikeGenerator& gen,
                                        std::size_t n, util::Rng& rng) {
  corpus::Dataset pool = gen.sample_mailbox(n, 0.5, rng);
  return corpus::tokenize_dataset(pool, spambayes::Tokenizer());
}

class RoniTest : public ::testing::Test {
 protected:
  static const corpus::TrecLikeGenerator& generator() {
    static const corpus::TrecLikeGenerator gen;
    return gen;
  }
};

TEST_F(RoniTest, ValidatesConfiguration) {
  EXPECT_THROW(RoniDefense({0, 50, 5, 5.5}, {}), InvalidArgument);
  EXPECT_THROW(RoniDefense({20, 0, 5, 5.5}, {}), InvalidArgument);
  EXPECT_THROW(RoniDefense({20, 50, 0, 5.5}, {}), InvalidArgument);
}

TEST_F(RoniTest, RequiresLargeEnoughPool) {
  RoniDefense defense({20, 50, 5, 5.5}, {});
  util::Rng rng(1);
  auto pool = tokenized_pool(generator(), 30, rng);
  EXPECT_THROW(defense.assess({"x"}, pool, rng), InvalidArgument);
}

TEST_F(RoniTest, DictionaryAttackEmailRejected) {
  RoniDefense defense({}, {});
  util::Rng rng(2);
  auto pool = tokenized_pool(generator(), 300, rng);
  DictionaryAttack attack = DictionaryAttack::usenet(generator().lexicons());
  spambayes::Tokenizer tok;
  auto attack_tokens =
      spambayes::unique_tokens(tok.tokenize(attack.attack_message()));
  RoniAssessment a = defense.assess(attack_tokens, pool, rng);
  EXPECT_TRUE(a.rejected);
  EXPECT_GT(a.mean_ham_as_ham_decrease, 5.5);
  EXPECT_EQ(a.per_trial.size(), RoniConfig{}.resamples);
}

TEST_F(RoniTest, OrdinarySpamAccepted) {
  RoniDefense defense({}, {});
  util::Rng rng(3);
  auto pool = tokenized_pool(generator(), 300, rng);
  spambayes::Tokenizer tok;
  util::Rng spam_rng(4);
  for (int i = 0; i < 5; ++i) {
    auto tokens = spambayes::unique_tokens(
        tok.tokenize(generator().generate_spam(spam_rng)));
    RoniAssessment a = defense.assess(tokens, pool, rng);
    EXPECT_FALSE(a.rejected) << "spam email " << i << " impact "
                             << a.mean_ham_as_ham_decrease;
  }
}

TEST_F(RoniTest, DeterministicGivenRng) {
  RoniDefense defense({}, {});
  auto pool = [&] {
    util::Rng rng(5);
    return tokenized_pool(generator(), 200, rng);
  }();
  spambayes::Tokenizer tok;
  auto tokens = spambayes::unique_tokens(tok.tokenize(
      DictionaryAttack::aspell(generator().lexicons()).attack_message()));
  util::Rng r1(6), r2(6);
  RoniAssessment a1 = defense.assess(tokens, pool, r1);
  RoniAssessment a2 = defense.assess(tokens, pool, r2);
  EXPECT_EQ(a1.per_trial, a2.per_trial);
  EXPECT_EQ(a1.rejected, a2.rejected);
}

TEST(ThresholdUtility, MatchesDefinition) {
  // g(t) = NS<(t) / (NS<(t) + NH>(t)).
  std::vector<ScoredExample> scored = {
      {0.1, corpus::TrueLabel::ham},  {0.2, corpus::TrueLabel::ham},
      {0.3, corpus::TrueLabel::spam}, {0.8, corpus::TrueLabel::spam},
      {0.9, corpus::TrueLabel::spam},
  };
  // t = 0.5: spam below = 1 (0.3); ham above = 0 -> g = 1.
  EXPECT_DOUBLE_EQ(threshold_utility(scored, 0.5), 1.0);
  // t = 0.15: spam below = 0, ham above = 1 -> g = 0.
  EXPECT_DOUBLE_EQ(threshold_utility(scored, 0.15), 0.0);
  // t = 0.25: spam below 0, ham above 0 -> perfect separator -> 0.5.
  EXPECT_DOUBLE_EQ(threshold_utility(scored, 0.25), 0.5);
}

TEST(SelectThresholds, PerfectlySeparableCollapsesToGap) {
  std::vector<ScoredExample> scored;
  for (int i = 0; i < 20; ++i) {
    scored.push_back({0.05 + i * 0.01, corpus::TrueLabel::ham});
    scored.push_back({0.70 + i * 0.01, corpus::TrueLabel::spam});
  }
  ThresholdPair pair = select_thresholds(scored, {0.05, 0.95});
  // Both thresholds land in the (0.24, 0.70) gap.
  EXPECT_GT(pair.theta0, 0.24);
  EXPECT_LT(pair.theta0, 0.70);
  EXPECT_LE(pair.theta0, pair.theta1);
  EXPECT_GT(pair.theta1, 0.24);
  EXPECT_LT(pair.theta1, 0.70);
}

TEST(SelectThresholds, OverlappingScoresCreateUnsureBand) {
  // Ham mass at low scores, spam mass at high scores, a mixed region in
  // the middle: theta0 must sit below the mixed region, theta1 above it.
  std::vector<ScoredExample> scored;
  for (int i = 0; i < 50; ++i) {
    scored.push_back({0.02 + 0.002 * i, corpus::TrueLabel::ham});
    scored.push_back({0.90 + 0.002 * i, corpus::TrueLabel::spam});
  }
  for (int i = 0; i < 20; ++i) {
    scored.push_back({0.40 + 0.01 * i, corpus::TrueLabel::ham});
    scored.push_back({0.40 + 0.01 * i, corpus::TrueLabel::spam});
  }
  ThresholdPair pair = select_thresholds(scored, {0.05, 0.95});
  EXPECT_LT(pair.theta0, 0.45);
  EXPECT_GT(pair.theta1, 0.55);
  EXPECT_LT(pair.theta0, pair.theta1);
}

TEST(SelectThresholds, ShiftInvariance) {
  // §5.2's motivation: rankings are invariant to monotone shifts, so
  // shifting every score up must not change which EXAMPLES fall below
  // theta0 / above theta1.
  std::vector<ScoredExample> base;
  for (int i = 0; i < 30; ++i) {
    base.push_back({0.05 + 0.003 * i, corpus::TrueLabel::ham});
    base.push_back({0.55 + 0.003 * i, corpus::TrueLabel::spam});
  }
  ThresholdPair p1 = select_thresholds(base, {0.10, 0.90});
  std::vector<ScoredExample> shifted = base;
  for (auto& e : shifted) e.score += 0.3;
  ThresholdPair p2 = select_thresholds(shifted, {0.10, 0.90});
  auto count_below = [](const std::vector<ScoredExample>& v, double t) {
    std::size_t n = 0;
    for (const auto& e : v) n += e.score <= t ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count_below(base, p1.theta0), count_below(shifted, p2.theta0));
  EXPECT_EQ(count_below(base, p1.theta1), count_below(shifted, p2.theta1));
}

TEST(SelectThresholds, Validation) {
  EXPECT_THROW(select_thresholds({}, {0.05, 0.95}), InvalidArgument);
  std::vector<ScoredExample> one = {{0.5, corpus::TrueLabel::ham}};
  EXPECT_THROW(select_thresholds(one, {0.9, 0.1}), InvalidArgument);
  EXPECT_THROW(select_thresholds(one, {-0.1, 0.95}), InvalidArgument);
}

TEST(SelectThresholds, AllSpamOrAllHam) {
  std::vector<ScoredExample> all_spam;
  for (int i = 0; i < 10; ++i) {
    all_spam.push_back({0.8 + 0.01 * i, corpus::TrueLabel::spam});
  }
  ThresholdPair p = select_thresholds(all_spam, {0.05, 0.95});
  EXPECT_LE(p.theta0, p.theta1);
  std::vector<ScoredExample> all_ham;
  for (int i = 0; i < 10; ++i) {
    all_ham.push_back({0.1 + 0.01 * i, corpus::TrueLabel::ham});
  }
  p = select_thresholds(all_ham, {0.05, 0.95});
  EXPECT_LE(p.theta0, p.theta1);
}

TEST(ComputeDynamicThresholds, EndToEndOnCleanData) {
  corpus::TrecLikeGenerator gen;
  util::Rng rng(11);
  auto pool = tokenized_pool(gen, 400, rng);
  std::vector<std::size_t> indices(pool.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  util::Rng split_rng(12);
  ThresholdPair pair = compute_dynamic_thresholds(
      pool, indices, {}, spambayes::FilterOptions{}, {0.05, 0.95},
      split_rng);
  // Clean, separable data: thresholds land strictly inside (0, 1).
  EXPECT_GT(pair.theta0, 0.0);
  EXPECT_LT(pair.theta1, 1.0 + 1e-12);
  EXPECT_LE(pair.theta0, pair.theta1);
}

TEST(ComputeDynamicThresholds, AttackShiftsThresholdsUp) {
  corpus::TrecLikeGenerator gen;
  util::Rng rng(13);
  auto pool = tokenized_pool(gen, 400, rng);
  std::vector<std::size_t> indices(pool.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  spambayes::Tokenizer tok;
  auto attack_tokens = spambayes::unique_tokens(tok.tokenize(
      DictionaryAttack::usenet(gen.lexicons()).attack_message()));

  util::Rng r1(14), r2(14);
  ThresholdPair clean = compute_dynamic_thresholds(
      pool, indices, {}, {}, {0.05, 0.95}, r1);
  ThresholdPair attacked = compute_dynamic_thresholds(
      pool, indices, {{attack_tokens, 40}}, {}, {0.05, 0.95}, r2);
  // Under attack every score inflates; the data-driven thresholds chase
  // them upward (this is the defense's entire point).
  EXPECT_GT(attacked.theta1, clean.theta0);
  EXPECT_GE(attacked.theta0, clean.theta0);
}

TEST(ComputeDynamicThresholds, Validation) {
  corpus::TokenizedDataset empty;
  util::Rng rng(15);
  EXPECT_THROW(
      compute_dynamic_thresholds(empty, {}, {}, {}, {0.05, 0.95}, rng),
      InvalidArgument);
}

}  // namespace
}  // namespace sbx::core
