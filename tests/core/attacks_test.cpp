// Tests for core attacks: taxonomy labels, attack-count arithmetic,
// dictionary attack construction, focused attack guessing model.
#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/attack_math.h"
#include "core/dictionary_attack.h"
#include "core/focused_attack.h"
#include "core/taxonomy.h"
#include "corpus/generator.h"
#include "email/builder.h"
#include "spambayes/filter.h"
#include "util/error.h"

namespace sbx::core {
namespace {

TEST(Taxonomy, Descriptions) {
  AttackProperties dictionary = DictionaryAttack::properties();
  EXPECT_EQ(dictionary.description(), "Causative Availability Indiscriminate");
  AttackProperties focused = FocusedAttack::properties();
  EXPECT_EQ(focused.description(), "Causative Availability Targeted");
  EXPECT_EQ(to_string(Influence::exploratory), "Exploratory");
  EXPECT_EQ(to_string(Violation::integrity), "Integrity");
}

TEST(AttackMath, PaperQuotedCounts) {
  // §4.2: 1% of a 10,000-message inbox = 101 attack emails; 2% = 204.
  EXPECT_EQ(attack_message_count(10'000, 0.01), 101u);
  EXPECT_EQ(attack_message_count(10'000, 0.02), 204u);
  EXPECT_EQ(attack_message_count(10'000, 0.0), 0u);
  EXPECT_EQ(attack_message_count(10'000, 0.10), 1'111u);
}

TEST(AttackMath, FractionIsOfFinalTrainingSet) {
  for (double f : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    std::size_t clean = 5'000;
    std::size_t a = attack_message_count(clean, f);
    double realized = static_cast<double>(a) / static_cast<double>(clean + a);
    EXPECT_NEAR(realized, f, 0.001) << "f=" << f;
  }
}

TEST(AttackMath, RejectsInvalidFractions) {
  EXPECT_THROW(attack_message_count(100, -0.1), InvalidArgument);
  EXPECT_THROW(attack_message_count(100, 1.0), InvalidArgument);
}

TEST(AttackMath, AddingAttackWordsNeverLowersScore) {
  // §3.4: with the attack message count fixed, growing the attack payload
  // word-by-word monotonically raises the score of a message whose words
  // the payload progressively covers.
  spambayes::TokenDatabase db;
  db.train_ham({"alpha", "beta", "gamma", "delta"}, 10);
  db.train_spam({"junk"}, 10);
  spambayes::Classifier classifier;
  spambayes::TokenSet msg = {"alpha", "beta", "gamma", "delta"};

  spambayes::TokenSet attack = {"junk"};
  double prev = score_under_attack(classifier, db, msg, attack, 10);
  for (const char* word : {"alpha", "beta", "gamma", "delta"}) {
    attack.push_back(word);
    std::sort(attack.begin(), attack.end());
    double cur = score_under_attack(classifier, db, msg, attack, 10);
    EXPECT_GE(cur, prev - 1e-12) << word;
    prev = cur;
  }
  // Full coverage beats no coverage strictly.
  EXPECT_GT(prev, score_under_attack(classifier, db, msg, {"junk"}, 10));
}

class DictionaryAttackTest : public ::testing::Test {
 protected:
  static const corpus::TrecLikeGenerator& generator() {
    static const corpus::TrecLikeGenerator gen;
    return gen;
  }
};

TEST_F(DictionaryAttackTest, EmptyHeadersAndFullDictionaryBody) {
  DictionaryAttack attack = DictionaryAttack::aspell(generator().lexicons());
  EXPECT_EQ(attack.name(), "aspell");
  EXPECT_EQ(attack.dictionary_size(), 98'568u);
  const email::Message& msg = attack.attack_message();
  EXPECT_EQ(msg.header_count(), 0u);  // contamination assumption: no headers
  // Tokenizing the message recovers exactly the dictionary words.
  spambayes::Tokenizer tok;
  auto tokens = spambayes::unique_tokens(tok.tokenize(msg));
  EXPECT_EQ(tokens.size(), 98'568u);
}

TEST_F(DictionaryAttackTest, UsenetVariantsAreRankedPrefixes) {
  DictionaryAttack big = DictionaryAttack::usenet(generator().lexicons());
  EXPECT_EQ(big.dictionary_size(), 90'000u);
  EXPECT_EQ(big.name(), "usenet-90000");
  DictionaryAttack small =
      DictionaryAttack::usenet(generator().lexicons(), 1'000);
  EXPECT_EQ(small.dictionary_size(), 1'000u);
  // The truncated body is a prefix of the full body.
  EXPECT_EQ(big.attack_message().body().rfind(
                small.attack_message().body().substr(0, 200), 0),
            0u);
  EXPECT_THROW(DictionaryAttack::usenet(generator().lexicons(), 0),
               InvalidArgument);
  EXPECT_THROW(DictionaryAttack::usenet(generator().lexicons(), 90'001),
               InvalidArgument);
}

TEST_F(DictionaryAttackTest, OptimalCoversGeneratorVocabulary) {
  DictionaryAttack attack = DictionaryAttack::optimal(generator());
  EXPECT_EQ(attack.dictionary_size(),
            generator().full_vocabulary().size());
  EXPECT_EQ(attack.name(), "optimal");
}

TEST_F(DictionaryAttackTest, EmptyDictionaryRejected) {
  EXPECT_THROW(DictionaryAttack("x", {}), InvalidArgument);
}

TEST_F(DictionaryAttackTest, PoisoningRaisesHamScores) {
  // The core mechanism: training dictionary emails as spam raises the
  // message score of unrelated legitimate email.
  util::Rng rng(5);
  spambayes::Filter filter;
  for (int i = 0; i < 100; ++i) {
    filter.train_ham(generator().generate_ham(rng));
    filter.train_spam(generator().generate_spam(rng));
  }
  email::Message probe = generator().generate_ham(rng);
  const double before = filter.classify(probe).score;
  DictionaryAttack attack = DictionaryAttack::usenet(generator().lexicons());
  filter.train_spam_copies(attack.attack_message(), 10);
  const double after = filter.classify(probe).score;
  EXPECT_GT(after, before + 0.2);
}

class FocusedAttackTest : public ::testing::Test {
 protected:
  spambayes::Tokenizer tok;
};

TEST_F(FocusedAttackTest, GuessProbabilityControlsPayloadSize) {
  spambayes::TokenSet target;
  for (int i = 0; i < 400; ++i) target.push_back("word" + std::to_string(i));
  std::sort(target.begin(), target.end());

  for (double p : {0.1, 0.5, 0.9}) {
    util::Rng rng(77);
    FocusedAttackConfig config;
    config.guess_probability = p;
    FocusedAttack attack(config, target, rng);
    double fraction =
        static_cast<double>(attack.guessed_words().size()) / target.size();
    EXPECT_NEAR(fraction, p, 0.08) << "p=" << p;
    // Guessed words are a subset of the target.
    std::unordered_set<std::string> t(target.begin(), target.end());
    for (const auto& w : attack.guessed_words()) EXPECT_TRUE(t.count(w));
  }
}

TEST_F(FocusedAttackTest, SingleGuessSetSharedAcrossEmails) {
  spambayes::TokenSet target = {"aaa", "bbb", "ccc", "ddd", "eee", "fff"};
  util::Rng rng(3);
  FocusedAttack attack({0.5, 0, false}, target, rng);
  email::Message donor =
      email::MessageBuilder().from("spam@x.example").subject("sp").build();
  std::vector<const email::Message*> pool = {&donor};
  auto emails = attack.generate(pool, 10, rng);
  ASSERT_EQ(emails.size(), 10u);
  for (const auto& m : emails) {
    EXPECT_EQ(m.body(), emails[0].body());  // same payload every time
  }
}

TEST_F(FocusedAttackTest, FreshGuessVariantDiffersAcrossEmails) {
  spambayes::TokenSet target;
  for (int i = 0; i < 100; ++i) target.push_back("w" + std::to_string(i));
  std::sort(target.begin(), target.end());
  util::Rng rng(4);
  FocusedAttack attack({0.5, 0, true}, target, rng);
  email::Message donor = email::MessageBuilder().from("s@x").build();
  std::vector<const email::Message*> pool = {&donor};
  auto emails = attack.generate(pool, 5, rng);
  bool any_difference = false;
  for (std::size_t i = 1; i < emails.size(); ++i) {
    any_difference |= emails[i].body() != emails[0].body();
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(FocusedAttackTest, ClonesSpamHeadersButStripsMime) {
  spambayes::TokenSet target = {"alpha", "beta", "gamma"};
  util::Rng rng(5);
  FocusedAttack attack({1.0, 0, false}, target, rng);
  email::Message donor = email::MessageBuilder()
                             .from("spammer@offers.example")
                             .subject("great DEAL")
                             .header("Content-Type", "multipart/mixed; "
                                                     "boundary=xx")
                             .header("Content-Transfer-Encoding", "base64")
                             .build();
  std::vector<const email::Message*> pool = {&donor};
  auto emails = attack.generate(pool, 3, rng);
  for (const auto& m : emails) {
    EXPECT_EQ(m.header("From").value(), "spammer@offers.example");
    EXPECT_EQ(m.header("Subject").value(), "great DEAL");
    EXPECT_FALSE(m.has_header("Content-Type"));
    EXPECT_FALSE(m.has_header("Content-Transfer-Encoding"));
    // Payload visible to the tokenizer.
    auto tokens = spambayes::unique_tokens(tok.tokenize(m));
    for (const auto& w : target) {
      EXPECT_NE(std::find(tokens.begin(), tokens.end(), w), tokens.end());
    }
  }
}

TEST_F(FocusedAttackTest, FullKnowledgeGuessesEverything) {
  spambayes::TokenSet target = {"one", "two", "three"};
  util::Rng rng(6);
  FocusedAttack attack({1.0, 0, false}, target, rng);
  EXPECT_EQ(attack.guessed_words().size(), 3u);
}

TEST_F(FocusedAttackTest, ZeroKnowledgeFallsBackToMinimalPayload) {
  spambayes::TokenSet target = {"one", "two", "three"};
  util::Rng rng(7);
  FocusedAttack attack({0.0, 0, false}, target, rng);
  EXPECT_EQ(attack.guessed_words().size(), 1u);  // minimal junk payload
}

TEST_F(FocusedAttackTest, Validation) {
  util::Rng rng(8);
  EXPECT_THROW(FocusedAttack({1.5, 0, false}, {"x"}, rng), InvalidArgument);
  EXPECT_THROW(FocusedAttack({0.5, 0, false}, {}, rng), InvalidArgument);
  FocusedAttack ok({0.5, 0, false}, {"x"}, rng);
  EXPECT_THROW(ok.generate({}, 1, rng), InvalidArgument);
}

TEST_F(FocusedAttackTest, AttackableBodyWordsExcludePseudoTokens) {
  email::Message msg =
      email::MessageBuilder()
          .subject("header words invisible")
          .body("normal words plus http://host.example/path and "
                "averyveryverylongunbrokenword\n")
          .build();
  auto words = attackable_body_words(msg, tok);
  for (const auto& w : words) {
    EXPECT_NE(w.rfind("url:", 0), 0u) << w;
    EXPECT_NE(w.rfind("subject:", 0), 0u) << w;
    EXPECT_NE(w.rfind("skip:", 0), 0u) << w;
  }
  EXPECT_NE(std::find(words.begin(), words.end(), "normal"), words.end());
  EXPECT_EQ(std::find(words.begin(), words.end(), "invisible"), words.end());
}

TEST_F(FocusedAttackTest, ExtraWordsAppendFillerWithoutTouchingTarget) {
  spambayes::TokenSet target = {"alpha", "beta"};
  util::Rng rng(21);
  FocusedAttack attack({1.0, 25, false}, target, rng);
  // Payload = both target words + 25 filler tokens from the reserved
  // namespace.
  std::size_t filler = 0;
  for (const auto& w : attack.guessed_words()) {
    if (w.rfind("xfiller", 0) == 0) {
      ++filler;
    } else {
      EXPECT_TRUE(w == "alpha" || w == "beta") << w;
    }
  }
  EXPECT_EQ(filler, 25u);

  // Per the Section 3.4 independence argument, filler cannot weaken the
  // attack: the target's score under the padded attack is >= under the
  // lean attack.
  spambayes::TokenDatabase db;
  db.train_ham({"alpha", "beta", "gamma"}, 20);
  db.train_spam({"junk"}, 20);
  spambayes::Classifier classifier;
  util::Rng rng2(22);
  FocusedAttack lean({1.0, 0, false}, target, rng2);
  auto payload_set = [](const FocusedAttack& a) {
    return spambayes::unique_tokens(a.guessed_words());
  };
  const double with_filler = score_under_attack(
      classifier, db, {"alpha", "beta", "gamma"}, payload_set(attack), 10);
  const double lean_score = score_under_attack(
      classifier, db, {"alpha", "beta", "gamma"}, payload_set(lean), 10);
  EXPECT_GE(with_filler, lean_score - 1e-12);
}

TEST_F(FocusedAttackTest, PoisoningPushesTargetTowardSpam) {
  // End-to-end: the focused attack raises the target's score while barely
  // moving other ham.
  corpus::TrecLikeGenerator gen;
  util::Rng rng(9);
  spambayes::Filter filter;
  std::vector<email::Message> spam_pool;
  for (int i = 0; i < 150; ++i) {
    filter.train_ham(gen.generate_ham(rng));
    email::Message s = gen.generate_spam(rng);
    filter.train_spam(s);
    spam_pool.push_back(std::move(s));
  }
  std::vector<const email::Message*> pool;
  for (const auto& s : spam_pool) pool.push_back(&s);

  email::Message target = gen.generate_ham(rng);
  email::Message other = gen.generate_ham(rng);
  const double target_before = filter.classify(target).score;
  const double other_before = filter.classify(other).score;

  FocusedAttack attack({0.9, 0, false},
                       attackable_body_words(target, tok), rng);
  for (const auto& m : attack.generate(pool, 40, rng)) {
    filter.train_spam(m);
  }
  const double target_after = filter.classify(target).score;
  const double other_after = filter.classify(other).score;
  EXPECT_GT(target_after, target_before + 0.3);
  // The attack is targeted: collateral damage stays small.
  EXPECT_LT(other_after - other_before, 0.2);
}

}  // namespace
}  // namespace sbx::core
