// Tests for the §3.4 optimal constrained attack (informed_attack) and the
// Exploratory good-word attack.
#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/good_word_attack.h"
#include "core/informed_attack.h"
#include "corpus/generator.h"
#include "email/builder.h"
#include "spambayes/filter.h"
#include "util/error.h"

namespace sbx::core {
namespace {

const corpus::TrecLikeGenerator& generator() {
  static const corpus::TrecLikeGenerator gen;
  return gen;
}

TEST(HamWordDistribution, IsAProbabilityDistribution) {
  auto dist = generator().ham_word_distribution();
  ASSERT_FALSE(dist.empty());
  double total = 0;
  std::unordered_set<std::string> seen;
  for (const auto& [word, p] : dist) {
    EXPECT_GT(p, 0.0) << word;
    EXPECT_TRUE(seen.insert(word).second) << "duplicate " << word;
    total += p;
  }
  // Sums to < 1 (numbers/URLs excluded) but close.
  EXPECT_GT(total, 0.85);
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(HamWordDistribution, TopWordsAreTheHamCoreHead) {
  // The Zipf head of the ham core must dominate the distribution.
  auto dist = generator().ham_word_distribution();
  std::sort(dist.begin(), dist.end(), [](const auto& a, const auto& b) {
    return a.probability > b.probability;
  });
  const auto& core_words = generator().ham_core_words();
  std::unordered_set<std::string> head(core_words.begin(),
                                       core_words.begin() + 100);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 50; ++i) hits += head.count(dist[i].word);
  EXPECT_GT(hits, 40u);
}

TEST(InformedAttack, PicksHighestProbabilityWords) {
  std::vector<corpus::TrecLikeGenerator::WordProbability> dist = {
      {"rare", 0.01}, {"common", 0.5}, {"mid", 0.2}, {"tie-b", 0.1},
      {"tie-a", 0.1}};
  DictionaryAttack attack = make_informed_attack(dist, 3);
  EXPECT_EQ(attack.name(), "informed-3");
  EXPECT_EQ(attack.dictionary_size(), 3u);
  const std::string& body = attack.attack_message().body();
  EXPECT_NE(body.find("common"), std::string::npos);
  EXPECT_NE(body.find("mid"), std::string::npos);
  EXPECT_NE(body.find("tie-a"), std::string::npos);  // lexicographic tie-break
  EXPECT_EQ(body.find("tie-b"), std::string::npos);
  EXPECT_EQ(body.find("rare"), std::string::npos);
}

TEST(InformedAttack, BudgetValidation) {
  std::vector<corpus::TrecLikeGenerator::WordProbability> dist = {
      {"a", 0.5}, {"b", 0.5}};
  EXPECT_THROW(make_informed_attack(dist, 0), InvalidArgument);
  EXPECT_THROW(make_informed_attack(dist, 3), InvalidArgument);
}

TEST(InformedAttack, BeatsUnrankedDictionaryAtEqualBudget) {
  // The §3.4 claim at experiment level (small scale): the informed top-N
  // payload causes more damage than the first N formal-dictionary words.
  util::Rng rng(5);
  spambayes::Filter base;
  for (int i = 0; i < 300; ++i) {
    base.train_ham(generator().generate_ham(rng));
    base.train_spam(generator().generate_spam(rng));
  }
  const std::size_t budget = 8'000;
  DictionaryAttack informed =
      make_informed_attack(generator().ham_word_distribution(), budget);
  DictionaryAttack unranked =
      DictionaryAttack::aspell_truncated(generator().lexicons(), budget);

  auto damage = [&](const DictionaryAttack& attack) {
    spambayes::Filter filter = base;
    filter.train_spam_copies(attack.attack_message(), 6);  // ~1% of 600
    util::Rng probe(77);
    int bad = 0;
    for (int i = 0; i < 100; ++i) {
      bad += filter.classify(generator().generate_ham(probe)).verdict !=
                     spambayes::Verdict::ham
                 ? 1
                 : 0;
    }
    return bad;
  };
  EXPECT_GT(damage(informed), damage(unranked));
}

class GoodWordAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(9);
    for (int i = 0; i < 300; ++i) {
      filter.train_ham(generator().generate_ham(rng));
      filter.train_spam(generator().generate_spam(rng));
    }
    candidates.assign(generator().ham_core_words().begin(),
                      generator().ham_core_words().begin() + 1'000);
  }

  spambayes::Filter filter;
  std::vector<std::string> candidates;
};

TEST_F(GoodWordAttackTest, TaxonomyAndValidation) {
  EXPECT_EQ(GoodWordAttack::properties().description(),
            "Exploratory Integrity Targeted");
  EXPECT_THROW(GoodWordAttack({}), InvalidArgument);
}

TEST_F(GoodWordAttackTest, PadsSpamOutOfTheSpamFolder) {
  util::Rng rng(10);
  GoodWordAttack attack(candidates, 10);
  int evaded = 0;
  for (int i = 0; i < 20; ++i) {
    email::Message spam = generator().generate_spam(rng);
    // Skip the hard-spam tail that already starts outside the spam folder.
    if (filter.classify(spam).verdict != spambayes::Verdict::spam) continue;
    auto result = attack.evade(filter, spam, 1'000);
    if (result.evaded) {
      ++evaded;
      EXPECT_LT(result.score_after, result.score_before);
      EXPECT_NE(filter.classify(result.message).verdict,
                spambayes::Verdict::spam);
      EXPECT_GT(result.words_added, 0u);
    }
  }
  EXPECT_GT(evaded, 5);  // the attack works on a solid share of messages
}

TEST_F(GoodWordAttackTest, DoesNotTouchTraining) {
  util::Rng rng(11);
  email::Message spam = generator().generate_spam(rng);
  const std::uint32_t spam_before = filter.database().spam_count();
  GoodWordAttack attack(candidates, 25);
  (void)attack.evade(filter, spam, 500);
  // Exploratory: the filter's training state is untouched.
  EXPECT_EQ(filter.database().spam_count(), spam_before);
}

TEST_F(GoodWordAttackTest, AlreadyHamMessageNeedsNoWork) {
  util::Rng rng(12);
  GoodWordAttack attack(candidates);
  auto result = attack.evade(filter, generator().generate_ham(rng), 100);
  EXPECT_TRUE(result.evaded);
  EXPECT_EQ(result.words_added, 0u);
  EXPECT_EQ(result.queries, 1u);
}

TEST_F(GoodWordAttackTest, BudgetExhaustionReportsFailure) {
  util::Rng rng(13);
  GoodWordAttack attack(candidates, 5);
  email::Message spam = generator().generate_spam(rng);
  auto result = attack.evade(filter, spam, /*max_words=*/5,
                             spambayes::Verdict::ham);
  // Five common words cannot whitewash a full spam message.
  EXPECT_FALSE(result.evaded);
  EXPECT_EQ(result.words_added, 5u);
}

TEST_F(GoodWordAttackTest, StrongerGoalIsHarder) {
  util::Rng rng(14);
  GoodWordAttack attack(candidates, 10);
  int unsure_ok = 0, ham_ok = 0;
  for (int i = 0; i < 15; ++i) {
    email::Message spam = generator().generate_spam(rng);
    unsure_ok +=
        attack.evade(filter, spam, 1'000, spambayes::Verdict::unsure).evaded;
    ham_ok +=
        attack.evade(filter, spam, 1'000, spambayes::Verdict::ham).evaded;
  }
  EXPECT_GE(unsure_ok, ham_ok);
}

}  // namespace
}  // namespace sbx::core
