// Tests for the experiment registry layer: schema/config validation (the
// strict parsing that replaced the atoll-style flag handling), registry
// lookup, ResultDoc serialization, and a reduced-scale registry run of the
// extension drivers that used to exist only as bench binaries.
#include "eval/registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/result_doc.h"
#include "util/error.h"

namespace sbx::eval {
namespace {

// ---------------------------------------------------------------------------
// Strict scalar parsing.
// ---------------------------------------------------------------------------

TEST(Parsing, UIntAcceptsPlainDigitsOnly) {
  EXPECT_EQ(parse_uint("0", "t"), 0u);
  EXPECT_EQ(parse_uint("12345", "t"), 12345u);
  EXPECT_EQ(parse_uint(" 7 ", "t"), 7u);  // surrounding whitespace trimmed
  EXPECT_THROW(parse_uint("abc", "t"), ParseError);
  EXPECT_THROW(parse_uint("12abc", "t"), ParseError);  // atoll accepted this
  EXPECT_THROW(parse_uint("", "t"), ParseError);
  EXPECT_THROW(parse_uint("-3", "t"), ParseError);
  EXPECT_THROW(parse_uint("1.5", "t"), ParseError);
}

TEST(Parsing, DoubleRequiresFullConsumptionAndFiniteness) {
  EXPECT_DOUBLE_EQ(parse_double("0.25", "t"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3", "t"), -1e-3);
  EXPECT_THROW(parse_double("0.25x", "t"), ParseError);
  EXPECT_THROW(parse_double("nan", "t"), ParseError);
  EXPECT_THROW(parse_double("inf", "t"), ParseError);
  EXPECT_THROW(parse_double("", "t"), ParseError);
}

TEST(Parsing, BoolAcceptsTheUsualSpellings) {
  EXPECT_TRUE(parse_bool("true", "t"));
  EXPECT_TRUE(parse_bool("1", "t"));
  EXPECT_TRUE(parse_bool("Yes", "t"));
  EXPECT_FALSE(parse_bool("false", "t"));
  EXPECT_FALSE(parse_bool("0", "t"));
  EXPECT_FALSE(parse_bool("off", "t"));
  EXPECT_THROW(parse_bool("maybe", "t"), ParseError);
}

// ---------------------------------------------------------------------------
// Schema + Config.
// ---------------------------------------------------------------------------

ConfigSchema test_schema() {
  ConfigSchema schema;
  schema.add("count", ParamType::kUInt, "10", "a count")
      .add("rate", ParamType::kDouble, "0.5", "a rate")
      .add("enabled", ParamType::kBool, "false", "a flag")
      .add("label", ParamType::kString, "base", "a label")
      .add("fractions", ParamType::kDoubleList, "0.1,0.2", "a list");
  return schema;
}

TEST(Config, DefaultsResolveTyped) {
  ConfigSchema schema = test_schema();
  Config config(&schema);
  EXPECT_EQ(config.get_uint("count"), 10u);
  EXPECT_DOUBLE_EQ(config.get_double("rate"), 0.5);
  EXPECT_FALSE(config.get_bool("enabled"));
  EXPECT_EQ(config.get_string("label"), "base");
  EXPECT_EQ(config.get_double_list("fractions"),
            (std::vector<double>{0.1, 0.2}));
}

TEST(Config, SetValidatesTypeAndKey) {
  ConfigSchema schema = test_schema();
  Config config(&schema);
  config.set("count", "42");
  EXPECT_EQ(config.get_uint("count"), 42u);
  EXPECT_THROW(config.set("count", "abc"), ParseError);
  EXPECT_THROW(config.set("rate", "fast"), ParseError);
  EXPECT_THROW(config.set("nope", "1"), InvalidArgument);
  EXPECT_THROW(config.set_key_value("no-equals-sign"), InvalidArgument);
  config.set_key_value("label=other");
  EXPECT_EQ(config.get_string("label"), "other");
}

TEST(Config, ListValuesSplitOnCommaAndSemicolon) {
  ConfigSchema schema = test_schema();
  Config config(&schema);
  config.set("fractions", "0.3;0.4,0.5");
  EXPECT_EQ(config.get_double_list("fractions"),
            (std::vector<double>{0.3, 0.4, 0.5}));
  EXPECT_THROW(config.set("fractions", "0.3;;0.5"), ParseError);
}

TEST(Config, GetWithWrongTypeThrows) {
  ConfigSchema schema = test_schema();
  Config config(&schema);
  EXPECT_THROW(config.get_double("count"), InvalidArgument);
  EXPECT_THROW(config.get_uint("label"), InvalidArgument);
}

TEST(ConfigSchema, RejectsDuplicateKeysAndBadDefaults) {
  ConfigSchema schema;
  schema.add("k", ParamType::kUInt, "1", "");
  EXPECT_THROW(schema.add("k", ParamType::kUInt, "2", ""), InvalidArgument);
  EXPECT_THROW(schema.add("bad", ParamType::kDouble, "oops", ""), ParseError);
}

// ---------------------------------------------------------------------------
// Registry contents.
// ---------------------------------------------------------------------------

TEST(Registry, ContainsEveryBuiltinExperiment) {
  const std::vector<std::string> expected = {
      "dictionary",  "focused-guessing", "focused-knowledge",
      "focused-size", "good-word",       "ham-labeled",
      "retraining",   "roni",            "threshold",
      "token-shift"};
  std::vector<std::string> names;
  for (const Experiment* e : builtin_registry().experiments()) {
    names.push_back(e->name());
  }
  EXPECT_EQ(names, expected);  // experiments() sorts by name
}

TEST(Registry, GetUnknownThrowsWithKnownNames) {
  try {
    builtin_registry().get("no-such-experiment");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("dictionary"), std::string::npos);
  }
}

TEST(Registry, EverySchemaHasASeedAndValidQuickOverrides) {
  for (const Experiment* experiment : builtin_registry().experiments()) {
    const ParamSpec* seed = experiment->schema().find("seed");
    ASSERT_NE(seed, nullptr) << experiment->name();
    EXPECT_EQ(seed->type, ParamType::kUInt) << experiment->name();
    // Quick overrides must name declared keys and carry valid values.
    Config config = experiment->default_config();
    for (const auto& [key, value] : experiment->quick_overrides()) {
      EXPECT_NO_THROW(config.set(key, value))
          << experiment->name() << ": " << key << "=" << value;
    }
    EXPECT_FALSE(experiment->description().empty()) << experiment->name();
    EXPECT_FALSE(experiment->paper_ref().empty()) << experiment->name();
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  Registry registry;
  register_builtin_experiments(registry);
  EXPECT_THROW(register_builtin_experiments(registry), InvalidArgument);
}

// ---------------------------------------------------------------------------
// ResultDoc serialization.
// ---------------------------------------------------------------------------

TEST(ResultDoc, JsonEscapesAndStructure) {
  EXPECT_EQ(json_quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");

  ResultDoc doc;
  doc.experiment = "demo";
  doc.config = {{"k", "v"}};
  doc.add_metric("m", 1.25);
  util::Table& table = doc.add_table("t", {"h1", "h2"});
  table.add_row({"a", "b,c"});
  doc.series.push_back({"s", {1.0, 2.0}, {3.0, 4.0}});
  doc.report.push_back("line");

  const std::string json = doc.to_json();
  EXPECT_NE(json.find("\"experiment\": \"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": \"v\""), std::string::npos);
  EXPECT_NE(json.find("\"m\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"headers\": [\"h1\",\"h2\"]"), std::string::npos);
  EXPECT_NE(json.find("[\"a\",\"b,c\"]"), std::string::npos);
  EXPECT_NE(json.find("\"x\": [1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"report\": [\"line\"]"), std::string::npos);

  EXPECT_EQ(&doc.table("t"), &doc.tables[0].table);
  EXPECT_THROW(doc.table("missing"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Reduced-scale registry runs of the extension drivers (previously only
// reachable through bench_ext_* main()s).
// ---------------------------------------------------------------------------

TEST(RegistryRun, HamLabeledProducesCampaignTableAndMetrics) {
  const Experiment& experiment = builtin_registry().get("ham-labeled");
  Config config = experiment.default_config();
  config.set("inbox_size", "300");
  config.set("probes", "40");
  config.set("copies", "0;50");
  const ResultDoc doc = experiment.run(config, RunContext{});

  EXPECT_EQ(doc.experiment, "ham-labeled");
  const util::Table& table = doc.table("campaign");
  ASSERT_EQ(table.row_count(), 2u);  // one row per copies value
  // Whitening the campaign vocabulary must move campaign spam out of the
  // spam folder relative to the clean filter.
  const double clean_as_ham = std::stod(table.rows()[0][2]);
  const double poisoned_as_ham = std::stod(table.rows()[1][2]);
  EXPECT_GT(poisoned_as_ham, clean_as_ham);
  bool found = false;
  for (const auto& [name, value] : doc.metrics) {
    if (name == "max_copies_campaign_as_ham_pct") {
      found = true;
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value, 100.0);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_GE(doc.report.size(), 3u);  // payload + RONI verdict preamble
  EXPECT_NE(doc.report[0].find("payload:"), std::string::npos);
}

TEST(RegistryRun, GoodWordProducesEvasionTableAndPoisonComparison) {
  const Experiment& experiment = builtin_registry().get("good-word");
  Config config = experiment.default_config();
  config.set("inbox_size", "300");
  config.set("common_words", "400");
  config.set("probes", "6");
  config.set("max_words", "300");
  config.set("poison_probes", "20");
  const ResultDoc doc = experiment.run(config, RunContext{});

  EXPECT_EQ(doc.experiment, "good-word");
  const util::Table& table = doc.table("evasion");
  ASSERT_EQ(table.row_count(), 2u);  // goals: unsure, ham
  EXPECT_EQ(table.rows()[0][0], "unsure");
  EXPECT_EQ(table.rows()[1][0], "ham");
  bool found = false;
  for (const auto& [name, value] : doc.metrics) {
    if (name == "poisoned_ham_misdelivered_pct") {
      found = true;
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value, 100.0);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_GE(doc.report.size(), 2u);
  EXPECT_NE(doc.report[0].find("causative comparison:"), std::string::npos);
}

}  // namespace
}  // namespace sbx::eval
