// eval::Runner: per-trial RNG streams depend only on (seed, salt, index),
// results come back in trial order, exceptions propagate, and — the
// determinism contract — the thread count never changes results. The
// contract is verified bit-exactly (including floating-point aggregates)
// on the dictionary and focused experiment drivers.
#include "eval/runner.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "core/dictionary_attack.h"
#include "eval/experiments.h"

namespace sbx::eval {
namespace {

TEST(Runner, MapReturnsResultsInTrialOrder) {
  Runner runner(1, 4);
  auto results = runner.map(
      32, /*salt=*/5, [](std::size_t i, util::Rng&) { return 3 * i + 1; });
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 3 * i + 1);
  }
}

TEST(Runner, TrialStreamsAreMasterForksByIndex) {
  Runner runner(42, 4);
  auto draws = runner.map(
      8, /*salt=*/100, [](std::size_t, util::Rng& rng) { return rng(); });
  util::Rng reference(42);
  for (std::size_t i = 0; i < draws.size(); ++i) {
    EXPECT_EQ(draws[i], reference.fork(100 + i)()) << "trial " << i;
  }
}

TEST(Runner, ParentScopedStreamsMatchParentForks) {
  Runner runner(7, 4);
  util::Rng parent = runner.fork(2);
  util::Rng reference = util::Rng(7).fork(2);
  auto draws = runner.map(
      6, parent, [](std::size_t, util::Rng& rng) { return rng(); });
  for (std::size_t i = 0; i < draws.size(); ++i) {
    EXPECT_EQ(draws[i], reference.fork(i)()) << "trial " << i;
  }
}

TEST(Runner, MergeRunsInTrialOrderOnCallingThread) {
  Runner runner(3, 4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> merged;
  runner.map_reduce(
      20, /*salt=*/0, [](std::size_t i, util::Rng&) { return i; },
      [&](std::size_t i, std::size_t result) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(i, result);
        merged.push_back(result);
      });
  ASSERT_EQ(merged.size(), 20u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i], i);
  }
}

TEST(Runner, TrialExceptionsPropagate) {
  Runner runner(1, 4);
  EXPECT_THROW(runner.map(8, /*salt=*/0,
                          [](std::size_t i, util::Rng&) {
                            if (i == 3) throw std::runtime_error("boom");
                            return i;
                          }),
               std::runtime_error);
}

TEST(Runner, ZeroTrialsIsANoOp) {
  Runner runner(1, 4);
  auto results =
      runner.map(0, /*salt=*/0, [](std::size_t i, util::Rng&) { return i; });
  EXPECT_TRUE(results.empty());
}

// ---------------------------------------------------------------------------
// Bit-identical thread invariance on the real experiment drivers.
// ---------------------------------------------------------------------------

const corpus::TrecLikeGenerator& generator() {
  static const corpus::TrecLikeGenerator gen;
  return gen;
}

TEST(RunnerDeterminism, DictionaryCurveBitIdenticalAcrossThreadCounts) {
  core::DictionaryAttack attack =
      core::DictionaryAttack::usenet(generator().lexicons(), 25'000);
  DictionaryCurveConfig config;
  config.training_set_size = 400;
  config.folds = 4;
  config.attack_fractions = {0.01, 0.05};
  config.seed = 2008;

  config.threads = 1;
  const DictionaryCurve serial =
      run_dictionary_curve(generator(), attack, config);
  config.threads = 4;
  const DictionaryCurve parallel =
      run_dictionary_curve(generator(), attack, config);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const DictionaryCurvePoint& a = serial.points[i];
    const DictionaryCurvePoint& b = parallel.points[i];
    EXPECT_EQ(a.attack_messages, b.attack_messages);
    for (auto label : {corpus::TrueLabel::ham, corpus::TrueLabel::spam}) {
      for (auto verdict : {spambayes::Verdict::ham, spambayes::Verdict::unsure,
                           spambayes::Verdict::spam}) {
        EXPECT_EQ(a.matrix.count(label, verdict),
                  b.matrix.count(label, verdict));
      }
    }
    // The fold spread is a float accumulation: merge order must not depend
    // on the schedule, so the aggregates are bit-identical, not just close.
    EXPECT_EQ(a.ham_misclassified_by_fold.count(),
              b.ham_misclassified_by_fold.count());
    EXPECT_EQ(a.ham_misclassified_by_fold.mean(),
              b.ham_misclassified_by_fold.mean());
    EXPECT_EQ(a.ham_misclassified_by_fold.variance(),
              b.ham_misclassified_by_fold.variance());
    EXPECT_EQ(a.attack_token_ratio, b.attack_token_ratio);
  }
}

TEST(RunnerDeterminism, FocusedKnowledgeBitIdenticalAcrossThreadCounts) {
  FocusedConfig config;
  config.inbox_size = 300;
  config.target_count = 4;
  config.repetitions = 3;
  config.seed = 2009;

  config.threads = 1;
  const auto serial =
      run_focused_knowledge(generator(), {0.3, 0.7}, 20, config);
  config.threads = 4;
  const auto parallel =
      run_focused_knowledge(generator(), {0.3, 0.7}, 20, config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].guess_probability, parallel[i].guess_probability);
    EXPECT_EQ(serial[i].targets, parallel[i].targets);
    EXPECT_EQ(serial[i].as_ham, parallel[i].as_ham);
    EXPECT_EQ(serial[i].as_unsure, parallel[i].as_unsure);
    EXPECT_EQ(serial[i].as_spam, parallel[i].as_spam);
    EXPECT_EQ(serial[i].control_as_ham, parallel[i].control_as_ham);
  }
}

TEST(RunnerDeterminism, FocusedSizeBitIdenticalAcrossThreadCounts) {
  FocusedConfig config;
  config.inbox_size = 300;
  config.target_count = 4;
  config.repetitions = 3;
  config.seed = 2010;

  config.threads = 1;
  const auto serial =
      run_focused_size(generator(), 0.5, {0.02, 0.08}, config);
  config.threads = 4;
  const auto parallel =
      run_focused_size(generator(), 0.5, {0.02, 0.08}, config);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].attack_messages, parallel[i].attack_messages);
    EXPECT_EQ(serial[i].targets, parallel[i].targets);
    EXPECT_EQ(serial[i].as_spam, parallel[i].as_spam);
    EXPECT_EQ(serial[i].as_unsure_or_spam, parallel[i].as_unsure_or_spam);
  }
}

}  // namespace
}  // namespace sbx::eval
