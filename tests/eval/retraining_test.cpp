// Tests for eval/retraining: timeline mechanics, poison persistence under
// cumulative vs window retraining, RONI gating, dynamic thresholds.
#include "eval/retraining.h"

#include <gtest/gtest.h>

#include "core/dictionary_attack.h"
#include "util/error.h"

namespace sbx::eval {
namespace {

const corpus::TrecLikeGenerator& generator() {
  static const corpus::TrecLikeGenerator gen;
  return gen;
}

spambayes::TokenSet usenet_tokens() {
  static const spambayes::TokenSet tokens = [] {
    spambayes::Tokenizer tok;
    return spambayes::unique_tokens(
        tok.tokenize(core::DictionaryAttack::usenet(generator().lexicons())
                         .attack_message()));
  }();
  return tokens;
}

RetrainingConfig small_config() {
  RetrainingConfig config;
  config.weeks = 5;
  config.messages_per_week = 200;
  config.test_messages = 150;
  config.seed = 404;
  config.roni.resamples = 2;
  return config;
}

TEST(Retraining, CleanTimelineStaysAccurate) {
  auto reports = run_retraining_timeline(generator(), {}, small_config());
  ASSERT_EQ(reports.size(), 5u);
  for (const auto& r : reports) {
    EXPECT_LT(r.test.ham_misclassified_rate(), 0.05) << "week " << r.week;
    EXPECT_EQ(r.attack_offered, 0u);
    EXPECT_GT(r.training_size, 0u);
  }
  // Cumulative scope grows week over week.
  EXPECT_GT(reports.back().training_size, reports.front().training_size);
}

TEST(Retraining, CumulativePoisonPersists) {
  std::vector<AttackInjection> injections = {{1, usenet_tokens(), 4}};
  auto reports =
      run_retraining_timeline(generator(), injections, small_config());
  // Before the attack: clean.
  EXPECT_LT(reports[0].test.ham_misclassified_rate(), 0.05);
  // From the attack week on: badly degraded, and still degraded at the end.
  EXPECT_GT(reports[1].test.ham_misclassified_rate(), 0.5);
  EXPECT_GT(reports.back().test.ham_misclassified_rate(), 0.2);
  EXPECT_EQ(reports[1].attack_offered, 4u);
  EXPECT_EQ(reports[1].attack_admitted, 4u);  // no gate
}

TEST(Retraining, WindowForgetsPoison) {
  RetrainingConfig config = small_config();
  config.cumulative = false;
  config.window_weeks = 2;
  std::vector<AttackInjection> injections = {{1, usenet_tokens(), 4}};
  auto reports = run_retraining_timeline(generator(), injections, config);
  // Poisoned while week 1 is inside the window...
  EXPECT_GT(reports[1].test.ham_misclassified_rate(), 0.5);
  EXPECT_GT(reports[2].test.ham_misclassified_rate(), 0.5);
  // ...recovered once it ages out (weeks 3+ train on weeks {2,3}, {3,4}).
  EXPECT_LT(reports[3].test.ham_misclassified_rate(), 0.05);
  EXPECT_LT(reports[4].test.ham_misclassified_rate(), 0.05);
}

TEST(Retraining, RoniGateBlocksInjection) {
  RetrainingConfig config = small_config();
  config.roni_gate = true;
  std::vector<AttackInjection> injections = {{1, usenet_tokens(), 4}};
  auto reports = run_retraining_timeline(generator(), injections, config);
  EXPECT_EQ(reports[1].attack_offered, 4u);
  EXPECT_EQ(reports[1].attack_admitted, 0u);
  for (const auto& r : reports) {
    EXPECT_LT(r.test.ham_misclassified_rate(), 0.05) << "week " << r.week;
  }
}

TEST(Retraining, DynamicThresholdsReported) {
  RetrainingConfig config = small_config();
  config.dynamic_thresholds = true;
  auto reports = run_retraining_timeline(generator(), {}, config);
  for (const auto& r : reports) {
    // Re-derived thresholds differ from the static defaults and are sane.
    EXPECT_GE(r.thresholds.theta0, 0.0);
    EXPECT_LE(r.thresholds.theta1, 1.0);
    EXPECT_LE(r.thresholds.theta0, r.thresholds.theta1);
  }
}

TEST(Retraining, InjectionsOutsideTimelineIgnored) {
  std::vector<AttackInjection> injections = {{99, usenet_tokens(), 4}};
  auto reports =
      run_retraining_timeline(generator(), injections, small_config());
  for (const auto& r : reports) {
    EXPECT_EQ(r.attack_offered, 0u);
  }
}

TEST(Retraining, Validation) {
  RetrainingConfig config = small_config();
  config.weeks = 0;
  EXPECT_THROW(run_retraining_timeline(generator(), {}, config),
               InvalidArgument);
  config = small_config();
  config.cumulative = false;
  config.window_weeks = 0;
  EXPECT_THROW(run_retraining_timeline(generator(), {}, config),
               InvalidArgument);
}

TEST(Retraining, Deterministic) {
  std::vector<AttackInjection> injections = {{1, usenet_tokens(), 2}};
  auto a = run_retraining_timeline(generator(), injections, small_config());
  auto b = run_retraining_timeline(generator(), injections, small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].test.count(corpus::TrueLabel::ham,
                              spambayes::Verdict::spam),
              b[i].test.count(corpus::TrueLabel::ham,
                              spambayes::Verdict::spam));
    EXPECT_EQ(a[i].training_size, b[i].training_size);
  }
}

}  // namespace
}  // namespace sbx::eval
