// Tests for eval::Sweep: axis parsing, row-major grid expansion, and the
// acceptance contract — a sweep over >= 2 config axes serializes to
// byte-identical CSV/JSON at 1 vs 4 threads, including with nested
// parallelism (sweep trials that themselves fan out folds on the shared
// pool). The good-word and ham-labeled extension drivers run here at
// reduced scale through the registry, which bench_ext_* never covered.
#include "eval/sweep.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/registry.h"
#include "util/error.h"

namespace sbx::eval {
namespace {

std::string config_value(const Config& config, const std::string& key) {
  for (const auto& [k, v] : config.items()) {
    if (k == key) return v;
  }
  return "";
}

/// Serializes a whole sweep result the way the CLI persists it: every
/// ResultDoc's JSON plus the summary CSV, concatenated.
std::string serialize(const SweepResult& result) {
  std::string out;
  for (const auto& doc : result.docs) out += doc.to_json();
  out += result.summary().to_csv();
  return out;
}

TEST(SweepAxis, ParsesKeyAndValues) {
  const SweepAxis axis = parse_sweep_axis("copies=0;50,101;204,526");
  EXPECT_EQ(axis.key, "copies");
  EXPECT_EQ(axis.values,
            (std::vector<std::string>{"0;50", "101;204", "526"}));
  EXPECT_THROW(parse_sweep_axis("no-equals"), InvalidArgument);
  EXPECT_THROW(parse_sweep_axis("=1,2"), InvalidArgument);
  EXPECT_THROW(parse_sweep_axis("k=1,,2"), InvalidArgument);
}

TEST(Sweep, ExpandsRowMajorWithFirstAxisOutermost) {
  const Experiment& experiment = builtin_registry().get("ham-labeled");
  const Config base = experiment.default_config();
  const std::vector<SweepAxis> axes = {
      {"probes", {"10", "20"}},
      {"spam_fraction", {"0.4", "0.6"}},
  };
  const std::vector<Config> grid = expand_sweep(base, axes);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(config_value(grid[0], "probes"), "10");
  EXPECT_EQ(config_value(grid[0], "spam_fraction"), "0.4");
  EXPECT_EQ(config_value(grid[1], "probes"), "10");
  EXPECT_EQ(config_value(grid[1], "spam_fraction"), "0.6");
  EXPECT_EQ(config_value(grid[2], "probes"), "20");
  EXPECT_EQ(config_value(grid[2], "spam_fraction"), "0.4");
  EXPECT_EQ(config_value(grid[3], "probes"), "20");
  EXPECT_EQ(config_value(grid[3], "spam_fraction"), "0.6");
  // Non-axis keys keep the base value.
  EXPECT_EQ(config_value(grid[3], "inbox_size"), "10000");
}

TEST(Sweep, RejectsUnknownAxisKeyAndBadValuesBeforeRunning) {
  const Experiment& experiment = builtin_registry().get("ham-labeled");
  const Config base = experiment.default_config();
  EXPECT_THROW(
      expand_sweep(base, {{"no_such_key", {"1"}}}),
      InvalidArgument);
  EXPECT_THROW(
      expand_sweep(base, {{"probes", {"10", "abc"}}}),
      ParseError);
}

TEST(Sweep, ProgressReportsEveryConfigInOrder) {
  const Experiment& experiment = builtin_registry().get("ham-labeled");
  Config base = experiment.default_config();
  base.set("inbox_size", "200");
  base.set("probes", "10");
  base.set("copies", "0;20");

  SweepOptions options;
  options.threads = 2;
  std::vector<std::size_t> seen;
  options.progress = [&](std::size_t i, std::size_t total) {
    EXPECT_EQ(total, 4u);
    seen.push_back(i);
  };
  const SweepResult result = run_sweep(
      experiment, base,
      {{"probes", {"10", "20"}}, {"spam_fraction", {"0.4", "0.6"}}}, options);
  EXPECT_EQ(result.docs.size(), 4u);
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
  // Summary: one row per config, axis columns filled in.
  const util::Table summary = result.summary();
  ASSERT_EQ(summary.row_count(), 4u);
  EXPECT_EQ(summary.rows()[2][1], "20");
  EXPECT_EQ(summary.rows()[2][2], "0.4");
}

// ---------------------------------------------------------------------------
// The acceptance contract: byte-identical serialized output at 1 vs 4
// threads, over >= 2 axes.
// ---------------------------------------------------------------------------

TEST(SweepDeterminism, HamLabeledTwoAxesBitIdenticalAcrossThreadCounts) {
  const Experiment& experiment = builtin_registry().get("ham-labeled");
  Config base = experiment.default_config();
  base.set("inbox_size", "250");
  base.set("probes", "20");
  const std::vector<SweepAxis> axes = {
      {"copies", {"0;50", "101;204"}},
      {"spam_fraction", {"0.4", "0.6"}},
  };

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::string a = serialize(run_sweep(experiment, base, axes, serial));
  const std::string b = serialize(run_sweep(experiment, base, axes, parallel));
  EXPECT_EQ(a, b);  // byte identity, not approximate equality
  EXPECT_NE(a.find("\"experiment\": \"ham-labeled\""), std::string::npos);
}

TEST(SweepDeterminism, GoodWordTwoAxesBitIdenticalAcrossThreadCounts) {
  const Experiment& experiment = builtin_registry().get("good-word");
  Config base = experiment.default_config();
  base.set("inbox_size", "250");
  base.set("common_words", "300");
  base.set("probes", "4");
  base.set("max_words", "200");
  base.set("poison_probes", "15");
  const std::vector<SweepAxis> axes = {
      {"batch_size", {"5", "10"}},
      {"poison_fraction", {"0.01", "0.02"}},
  };

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::string a = serialize(run_sweep(experiment, base, axes, serial));
  const std::string b = serialize(run_sweep(experiment, base, axes, parallel));
  EXPECT_EQ(a, b);
}

// Nested parallelism: every sweep trial itself runs cross-validation folds
// through eval::Runner on the same shared pool (experiment_threads > 1).
// This is the sweep x folds configuration the shared pool exists for; the
// output must still be byte-identical to the fully serial run.
TEST(SweepDeterminism, NestedDictionarySweepBitIdenticalAcrossThreadCounts) {
  const Experiment& experiment = builtin_registry().get("dictionary");
  Config base = experiment.default_config();
  base.set("training_set_size", "300");
  base.set("folds", "3");
  base.set("attack_fractions", "0.02;0.05");
  base.set("dictionary_size", "5000");
  const std::vector<SweepAxis> axes = {
      {"training_set_size", {"300", "400"}},
      {"attack", {"usenet", "aspell"}},
  };

  SweepOptions serial;
  serial.threads = 1;
  serial.experiment_threads = 1;
  SweepOptions nested;
  nested.threads = 4;
  nested.experiment_threads = 3;  // folds also fan out on the shared pool
  const std::string a = serialize(run_sweep(experiment, base, axes, serial));
  const std::string b = serialize(run_sweep(experiment, base, axes, nested));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sbx::eval
