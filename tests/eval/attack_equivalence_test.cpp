// Bitwise equivalence of the ported attack adapters: each of the five
// pre-existing attack classes (dictionary family incl. informed, focused,
// good-word, ham-labeled) must produce byte-identical messages — and the
// attack-parametric experiment drivers bit-identical numbers — through the
// registry as through the original direct-construction path. Same pattern
// as spambayes/interned_equivalence_test: the pre-port construction runs
// verbatim next to the adapter and every byte/bit is compared.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/attack_registry.h"
#include "core/dictionary_attack.h"
#include "core/focused_attack.h"
#include "core/good_word_attack.h"
#include "core/ham_labeled_attack.h"
#include "core/informed_attack.h"
#include "eval/attack_axis.h"
#include "eval/experiments.h"
#include "eval/registry.h"
#include "spambayes/filter.h"
#include "util/error.h"

namespace sbx::eval {
namespace {

const corpus::TrecLikeGenerator& generator() {
  static const corpus::TrecLikeGenerator* g = new corpus::TrecLikeGenerator();
  return *g;
}

std::string flatten(const email::Message& m) {
  std::string out;
  for (const auto& field : m.headers()) {
    out += field.name;
    out += ": ";
    out += field.value;
    out += "\n";
  }
  out += "\n";
  out += m.body();
  return out;
}

/// Registry canonical poison under `overrides`, crafted with Rng(seed).
PoisonSpec registry_poison(const std::string& attack_name,
                           const std::vector<std::pair<std::string,
                                                       std::string>>& overrides,
                           std::uint64_t seed) {
  const core::Attack& attack =
      core::builtin_attack_registry().get(attack_name);
  util::Config params = attack.default_params();
  for (const auto& [key, value] : overrides) params.set(key, value);
  BoundAttack bound{&attack, std::move(params)};
  util::Rng rng(seed);
  return resolve_poison(bound, generator(), rng);
}

void expect_same_poison(const PoisonSpec& ported,
                        const core::DictionaryAttack& direct) {
  const PoisonSpec pre = poison_spec_from(direct);
  EXPECT_EQ(ported.name, pre.name);
  EXPECT_EQ(ported.payload_size, pre.payload_size);
  EXPECT_EQ(ported.train_as, pre.train_as);
  EXPECT_TRUE(ported.trigger.empty());
  EXPECT_EQ(flatten(ported.message), flatten(pre.message));
}

TEST(AttackEquivalence, DictionaryFamilyCanonicalMessages) {
  const auto& lexicons = generator().lexicons();
  expect_same_poison(registry_poison("usenet", {}, 1),
                     core::DictionaryAttack::usenet(lexicons));
  expect_same_poison(
      registry_poison("usenet", {{"dictionary_size", "25000"}}, 1),
      core::DictionaryAttack::usenet(lexicons, 25'000));
  expect_same_poison(registry_poison("aspell", {}, 1),
                     core::DictionaryAttack::aspell(lexicons));
  expect_same_poison(
      registry_poison("aspell", {{"dictionary_size", "10000"}}, 1),
      core::DictionaryAttack::aspell_truncated(lexicons, 10'000));
  expect_same_poison(registry_poison("optimal", {}, 1),
                     core::DictionaryAttack::optimal(generator()));
  expect_same_poison(
      registry_poison("informed", {{"dictionary_size", "5000"}}, 1),
      core::make_informed_attack(generator().ham_word_distribution(), 5'000));
}

TEST(AttackEquivalence, OptimalRejectsTruncation) {
  EXPECT_THROW(registry_poison("optimal", {{"dictionary_size", "100"}}, 1),
               InvalidArgument);
}

TEST(AttackEquivalence, HamLabeledCanonicalMessage) {
  // Pre-port construction, verbatim from the old ham-labeled experiment.
  util::Rng pre_rng(77);
  std::vector<std::string> payload = generator().spam_vocab_words();
  const auto& junk = generator().spam_junk_words();
  payload.insert(payload.end(), junk.begin(), junk.end());
  const email::Message donor = generator().generate_ham(pre_rng);
  const core::HamLabeledAttack direct(payload, donor.headers());

  const PoisonSpec ported = registry_poison("ham-labeled", {}, 77);
  EXPECT_EQ(ported.train_as, corpus::TrueLabel::ham);
  EXPECT_EQ(ported.payload_size, direct.payload_size());
  EXPECT_EQ(flatten(ported.message), flatten(direct.attack_message()));
}

TEST(AttackEquivalence, FocusedCraftedMessages) {
  const spambayes::Tokenizer tokenizer;
  util::Rng setup_rng(3);
  const email::Message target = generator().generate_ham(setup_rng);
  const spambayes::TokenSet body_words =
      core::attackable_body_words(target, tokenizer);
  const email::Message spam_a = generator().generate_spam(setup_rng);
  const email::Message spam_b = generator().generate_spam(setup_rng);
  const std::vector<const email::Message*> header_pool = {&spam_a, &spam_b};

  // Pre-port construction, verbatim from the old focused driver.
  core::FocusedAttackConfig config;
  config.guess_probability = 0.3;
  util::Rng pre_rng(11);
  const core::FocusedAttack direct(config, body_words, pre_rng);
  const std::vector<email::Message> pre =
      direct.generate(header_pool, 5, pre_rng);

  // The adapter, from the identically-seeded rng.
  const core::Attack& attack = core::builtin_attack_registry().get("focused");
  util::Config params = attack.default_params();
  params.set("guess_probability", "0.3");
  util::Rng rng(11);
  core::CraftContext ctx{generator(), params, rng, 5, &target, &body_words,
                         &header_pool};
  const std::vector<email::Message> ported = attack.craft_poison(ctx);

  ASSERT_EQ(ported.size(), pre.size());
  for (std::size_t i = 0; i < pre.size(); ++i) {
    EXPECT_EQ(flatten(ported[i]), flatten(pre[i])) << "message " << i;
  }
}

TEST(AttackEquivalence, FocusedWithoutTargetContextThrows) {
  const core::Attack& attack = core::builtin_attack_registry().get("focused");
  const util::Config params = attack.default_params();
  util::Rng rng(1);
  core::CraftContext ctx{generator(), params, rng, 1, nullptr, nullptr,
                         nullptr};
  EXPECT_THROW(attack.craft_poison(ctx), InvalidArgument);
}

TEST(AttackEquivalence, GoodWordEvadeResult) {
  spambayes::Filter filter;
  util::Rng train_rng(21);
  for (int i = 0; i < 100; ++i) {
    filter.train_spam(generator().generate_spam(train_rng));
    filter.train_ham(generator().generate_ham(train_rng));
  }
  const email::Message spam = generator().generate_spam(train_rng);

  // Pre-port construction, verbatim from the old good-word experiment.
  const auto& core_words = generator().ham_core_words();
  const std::size_t word_count = std::min<std::size_t>(core_words.size(), 500);
  std::vector<std::string> candidates(core_words.begin(),
                                      core_words.begin() + word_count);
  const core::GoodWordAttack direct(candidates, 10);
  const core::GoodWordAttack::Result pre =
      direct.evade(filter, spam, 400, spambayes::Verdict::unsure);

  const core::Attack& attack =
      core::builtin_attack_registry().get("good-word");
  util::Config params = attack.default_params();
  params.set("common_words", "500");
  core::EvadeContext ctx{generator(), params, filter, 400,
                         spambayes::Verdict::unsure};
  const core::EvadeResult ported = attack.evade(ctx, spam);

  EXPECT_EQ(flatten(ported.message), flatten(pre.message));
  EXPECT_EQ(ported.words_added, pre.words_added);
  EXPECT_EQ(ported.queries, pre.queries);
  EXPECT_EQ(ported.score_before, pre.score_before);  // bit-identical doubles
  EXPECT_EQ(ported.score_after, pre.score_after);
  EXPECT_EQ(ported.evaded, pre.evaded);
}

// ---------------------------------------------------------------------------
// Experiment-level equivalence: the attack-parametric drivers reproduce the
// pre-port numbers bit-for-bit when handed the ported adapters.
// ---------------------------------------------------------------------------

void expect_same_matrix(const ConfusionMatrix& a, const ConfusionMatrix& b) {
  for (corpus::TrueLabel truth :
       {corpus::TrueLabel::ham, corpus::TrueLabel::spam}) {
    for (spambayes::Verdict verdict :
         {spambayes::Verdict::ham, spambayes::Verdict::unsure,
          spambayes::Verdict::spam}) {
      EXPECT_EQ(a.count(truth, verdict), b.count(truth, verdict));
    }
  }
}

TEST(AttackEquivalence, DictionaryCurveThroughRegistry) {
  DictionaryCurveConfig config;
  config.training_set_size = 400;
  config.folds = 2;
  config.attack_fractions = {0.02};

  // Pre-port path: the direct DictionaryAttack overload.
  const DictionaryCurve pre = run_dictionary_curve(
      generator(),
      core::DictionaryAttack::usenet(generator().lexicons(), 2'000), config);
  // Ported path: the same attack resolved through the registry.
  const DictionaryCurve ported = run_dictionary_curve(
      generator(),
      registry_poison("usenet", {{"dictionary_size", "2000"}}, 1), config);

  EXPECT_EQ(ported.attack_name, pre.attack_name);
  EXPECT_EQ(ported.dictionary_size, pre.dictionary_size);
  ASSERT_EQ(ported.points.size(), pre.points.size());
  for (std::size_t i = 0; i < pre.points.size(); ++i) {
    expect_same_matrix(ported.points[i].matrix, pre.points[i].matrix);
    EXPECT_EQ(ported.points[i].attack_messages, pre.points[i].attack_messages);
    EXPECT_EQ(ported.points[i].attack_token_ratio,
              pre.points[i].attack_token_ratio);  // bit-identical
    EXPECT_EQ(ported.points[i].ham_misclassified_by_fold.mean(),
              pre.points[i].ham_misclassified_by_fold.mean());
    EXPECT_EQ(ported.points[i].ham_misclassified_by_fold.stddev(),
              pre.points[i].ham_misclassified_by_fold.stddev());
  }
}

TEST(AttackEquivalence, ThresholdCurveThroughRegistry) {
  ThresholdDefenseConfig config;
  config.base.training_set_size = 400;
  config.base.folds = 2;
  config.base.attack_fractions = {0.02};
  config.variants = {{0.1, 0.9}};

  const auto pre = run_threshold_defense_curve(
      generator(),
      core::DictionaryAttack::usenet(generator().lexicons(), 2'000), config);
  const auto ported = run_threshold_defense_curve(
      generator(),
      registry_poison("usenet", {{"dictionary_size", "2000"}}, 1), config);

  ASSERT_EQ(ported.size(), pre.size());
  for (std::size_t i = 0; i < pre.size(); ++i) {
    expect_same_matrix(ported[i].no_defense, pre[i].no_defense);
    ASSERT_EQ(ported[i].defended.size(), pre[i].defended.size());
    for (std::size_t vi = 0; vi < pre[i].defended.size(); ++vi) {
      expect_same_matrix(ported[i].defended[vi], pre[i].defended[vi]);
      EXPECT_EQ(ported[i].mean_thresholds[vi].theta0,
                pre[i].mean_thresholds[vi].theta0);
      EXPECT_EQ(ported[i].mean_thresholds[vi].theta1,
                pre[i].mean_thresholds[vi].theta1);
    }
  }
}

TEST(AttackEquivalence, FocusedKnowledgeThroughRegistry) {
  FocusedConfig config;
  config.inbox_size = 400;
  config.target_count = 4;
  config.repetitions = 1;

  // The historical entry point (now a registry-resolving wrapper) against
  // an explicit direct binding — and both at 1 vs 4 threads.
  const core::Attack& attack = core::builtin_attack_registry().get("focused");
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    config.threads = threads;
    const auto pre = run_focused_knowledge(generator(), {0.1, 0.9}, 20,
                                           config);
    const auto ported = run_focused_knowledge(
        generator(), attack, attack.default_params(), {0.1, 0.9}, 20, config);
    ASSERT_EQ(ported.size(), pre.size());
    for (std::size_t i = 0; i < pre.size(); ++i) {
      EXPECT_EQ(ported[i].guess_probability, pre[i].guess_probability);
      EXPECT_EQ(ported[i].targets, pre[i].targets);
      EXPECT_EQ(ported[i].as_ham, pre[i].as_ham);
      EXPECT_EQ(ported[i].as_unsure, pre[i].as_unsure);
      EXPECT_EQ(ported[i].as_spam, pre[i].as_spam);
      EXPECT_EQ(ported[i].control_as_ham, pre[i].control_as_ham);
    }
  }
}

TEST(AttackEquivalence, RegistryExperimentsBitIdenticalAcrossThreads) {
  // The two NEW attacks end-to-end through the registry experiments, 1 vs
  // 4 threads: the serialized documents must agree byte-for-byte.
  const Experiment& dictionary = builtin_registry().get("dictionary");
  Config config = dictionary.default_config();
  config.set("training_set_size", "400");
  config.set("folds", "2");
  config.set("attack_fractions", "0.02");
  config.set("attack", "backdoor-trigger");

  RunContext one;
  one.threads = 1;
  RunContext four;
  four.threads = 4;
  const std::string doc_one = dictionary.run(config, one).to_json();
  const std::string doc_four = dictionary.run(config, four).to_json();
  EXPECT_EQ(doc_one, doc_four);
  EXPECT_NE(doc_one.find("\"attack\": {\"name\": \"backdoor-trigger\""),
            std::string::npos);
  EXPECT_NE(doc_one.find("Causative Integrity Targeted"), std::string::npos);
}

}  // namespace
}  // namespace sbx::eval
