// Integration tests: the experiment drivers at reduced scale must
// reproduce the paper's qualitative shapes (monotone attack curves, attack
// ordering, defense effects) and be deterministic and thread-invariant.
#include "eval/experiments.h"

#include <gtest/gtest.h>

#include "core/attack_math.h"

namespace sbx::eval {
namespace {

const corpus::TrecLikeGenerator& generator() {
  static const corpus::TrecLikeGenerator gen;
  return gen;
}

DictionaryCurveConfig small_dictionary_config() {
  DictionaryCurveConfig config;
  config.training_set_size = 600;
  config.folds = 3;
  config.attack_fractions = {0.01, 0.05};
  config.seed = 77;
  return config;
}

TEST(DictionaryExperiment, BaselineAccurateAndAttackDegrades) {
  core::DictionaryAttack attack =
      core::DictionaryAttack::usenet(generator().lexicons());
  DictionaryCurve curve = run_dictionary_curve(generator(), attack,
                                               small_dictionary_config());
  ASSERT_EQ(curve.points.size(), 3u);  // control + 2 fractions
  // Control: the clean filter is accurate on ham; spam has a hard tail
  // (plain-text scams) that lands in unsure at this small training size.
  EXPECT_DOUBLE_EQ(curve.points[0].attack_fraction, 0.0);
  EXPECT_LT(curve.points[0].matrix.ham_misclassified_rate(), 0.05);
  EXPECT_LT(curve.points[0].matrix.spam_misclassified_rate(), 0.20);
  // Attack: ham misclassification grows monotonically (up to saturation)
  // and substantially.
  EXPECT_GT(curve.points[1].matrix.ham_misclassified_rate(),
            curve.points[0].matrix.ham_misclassified_rate());
  EXPECT_GE(curve.points[2].matrix.ham_misclassified_rate(),
            curve.points[1].matrix.ham_misclassified_rate());
  EXPECT_GT(curve.points[2].matrix.ham_misclassified_rate(), 0.5);
  // The attack barely touches spam classification (§4.1: "their effect on
  // spam is marginal").
  EXPECT_LT(curve.points[2].matrix.spam_as_ham_rate(), 0.05);
}

TEST(DictionaryExperiment, AttackMessageCountsUseFinalFraction) {
  core::DictionaryAttack attack =
      core::DictionaryAttack::aspell(generator().lexicons());
  DictionaryCurve curve = run_dictionary_curve(generator(), attack,
                                               small_dictionary_config());
  // train size = 600 -> 1% = 6 messages (6/606 ~ 0.99%).
  EXPECT_EQ(curve.points[1].attack_messages,
            core::attack_message_count(600, 0.01));
  EXPECT_GT(curve.points[1].attack_token_ratio, 0.0);
}

TEST(DictionaryExperiment, UsenetBeatsAspellOnHamCoverage) {
  DictionaryCurveConfig config = small_dictionary_config();
  // Compare below the saturation point: at this corpus size both attacks
  // reach 100% by ~2%, so measure at 1% where coverage differences show.
  config.training_set_size = 1'000;
  config.attack_fractions = {0.01};
  DictionaryCurve usenet = run_dictionary_curve(
      generator(), core::DictionaryAttack::usenet(generator().lexicons()),
      config);
  DictionaryCurve aspell = run_dictionary_curve(
      generator(), core::DictionaryAttack::aspell(generator().lexicons()),
      config);
  DictionaryCurve optimal = run_dictionary_curve(
      generator(), core::DictionaryAttack::optimal(generator()), config);
  // Figure 1's ordering: optimal >= usenet >= aspell (on the solid lines).
  EXPECT_GE(optimal.points[1].matrix.ham_misclassified_rate() + 0.02,
            usenet.points[1].matrix.ham_misclassified_rate());
  EXPECT_GT(usenet.points[1].matrix.ham_misclassified_rate(),
            aspell.points[1].matrix.ham_misclassified_rate());
}

TEST(DictionaryExperiment, DeterministicAndThreadInvariant) {
  core::DictionaryAttack attack =
      core::DictionaryAttack::usenet(generator().lexicons(), 25'000);
  DictionaryCurveConfig config = small_dictionary_config();
  config.threads = 1;
  DictionaryCurve serial = run_dictionary_curve(generator(), attack, config);
  config.threads = 4;
  DictionaryCurve parallel =
      run_dictionary_curve(generator(), attack, config);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].matrix.count(corpus::TrueLabel::ham,
                                            spambayes::Verdict::spam),
              parallel.points[i].matrix.count(corpus::TrueLabel::ham,
                                              spambayes::Verdict::spam));
    EXPECT_EQ(serial.points[i].matrix.count(corpus::TrueLabel::ham,
                                            spambayes::Verdict::unsure),
              parallel.points[i].matrix.count(corpus::TrueLabel::ham,
                                              spambayes::Verdict::unsure));
  }
}

FocusedConfig small_focused_config() {
  FocusedConfig config;
  config.inbox_size = 400;
  config.target_count = 6;
  config.repetitions = 2;
  config.seed = 99;
  return config;
}

TEST(FocusedExperiment, SuccessGrowsWithKnowledge) {
  auto points = run_focused_knowledge(generator(), {0.1, 0.5, 0.9}, 30,
                                      small_focused_config());
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    EXPECT_EQ(p.targets, 12u);  // 6 targets x 2 repetitions
    EXPECT_EQ(p.as_ham + p.as_unsure + p.as_spam, p.targets);
    // Pre-attack the targets are ham (clean filter).
    EXPECT_EQ(p.control_as_ham, p.targets);
  }
  auto success = [](const FocusedKnowledgePoint& p) {
    return static_cast<double>(p.as_unsure + p.as_spam) / p.targets;
  };
  EXPECT_LE(success(points[0]), success(points[1]) + 1e-9);
  EXPECT_LE(success(points[1]), success(points[2]) + 1e-9);
  EXPECT_GT(success(points[2]), 0.5);  // high knowledge is devastating
}

TEST(FocusedExperiment, SizeSweepMonotone) {
  auto points = run_focused_size(generator(), 0.5, {0.02, 0.05, 0.10},
                                 small_focused_config());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LE(points[0].as_unsure_or_spam, points[1].as_unsure_or_spam);
  EXPECT_LE(points[1].as_unsure_or_spam, points[2].as_unsure_or_spam);
  EXPECT_EQ(points[0].attack_messages,
            core::attack_message_count(400, 0.02));
  // Spam-or-unsure always dominates spam-only.
  for (const auto& p : points) {
    EXPECT_GE(p.as_unsure_or_spam, p.as_spam);
    EXPECT_EQ(p.targets, 12u);
  }
}

TEST(FocusedExperiment, Deterministic) {
  auto a = run_focused_knowledge(generator(), {0.5}, 20,
                                 small_focused_config());
  auto b = run_focused_knowledge(generator(), {0.5}, 20,
                                 small_focused_config());
  EXPECT_EQ(a[0].as_ham, b[0].as_ham);
  EXPECT_EQ(a[0].as_unsure, b[0].as_unsure);
  EXPECT_EQ(a[0].as_spam, b[0].as_spam);
}

TEST(TokenShift, GuessedTokensRiseMissedTokensFall) {
  FocusedConfig config = small_focused_config();
  auto examples = run_token_shift(generator(), 0.5, 40, config, 20);
  ASSERT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_GT(ex.message_score_after, ex.message_score_before - 1e-9);
    std::size_t guessed_up = 0, guessed = 0, missed_up = 0, missed = 0;
    for (const auto& t : ex.tokens) {
      if (t.in_attack) {
        guessed += 1;
        guessed_up += t.score_after > t.score_before ? 1 : 0;
      } else if (t.score_after != t.score_before) {
        missed += 1;
        missed_up += t.score_after > t.score_before ? 1 : 0;
      }
    }
    ASSERT_GT(guessed, 0u);
    // Figure 4: every guessed token's score increases...
    EXPECT_EQ(guessed_up, guessed);
    // ...while the moved non-guessed tokens overwhelmingly decrease.
    if (missed > 0) {
      EXPECT_LT(static_cast<double>(missed_up) / missed, 0.3);
    }
  }
}

RoniExperimentConfig small_roni_config() {
  RoniExperimentConfig config;
  config.pool_size = 250;
  config.nonattack_queries = 12;
  config.attack_repetitions = 3;
  config.seed = 123;
  return config;
}

TEST(RoniExperiment, SeparatesAttacksFromSpam) {
  core::DictionaryAttack usenet =
      core::DictionaryAttack::usenet(generator().lexicons());
  core::DictionaryAttack aspell =
      core::DictionaryAttack::aspell(generator().lexicons());
  const std::vector<const core::DictionaryAttack*> attacks = {&usenet,
                                                              &aspell};
  RoniExperimentResult result =
      run_roni_experiment(generator(), attacks, small_roni_config());

  EXPECT_EQ(result.nonattack_spam.assessed, 12u);
  EXPECT_EQ(result.nonattack_spam.rejected, 0u);  // no false positives
  ASSERT_EQ(result.attack_variants.size(), 2u);
  for (const auto& v : result.attack_variants) {
    EXPECT_EQ(v.assessed, 3u);
    EXPECT_EQ(v.rejected, 3u) << v.name;  // 100% detection
    EXPECT_GT(v.impact.min(), result.nonattack_spam.impact.max());
  }
}

ThresholdDefenseConfig small_threshold_config() {
  ThresholdDefenseConfig config;
  config.base.training_set_size = 600;
  config.base.folds = 3;
  config.base.attack_fractions = {0.05};
  config.base.seed = 321;
  return config;
}

TEST(ThresholdExperiment, DefenseKeepsHamOutOfSpamFolder) {
  core::DictionaryAttack attack =
      core::DictionaryAttack::usenet(generator().lexicons());
  auto points = run_threshold_defense_curve(generator(), attack,
                                            small_threshold_config());
  ASSERT_EQ(points.size(), 2u);  // control + 5%
  const auto& attacked = points[1];
  // Without the defense the attack ruins ham classification.
  EXPECT_GT(attacked.no_defense.ham_misclassified_rate(), 0.5);
  // With it, ham stays out of the spam folder...
  for (const auto& defended : attacked.defended) {
    EXPECT_LT(defended.ham_as_spam_rate(),
              attacked.no_defense.ham_as_spam_rate() + 1e-9);
    EXPECT_LT(defended.ham_misclassified_rate(),
              attacked.no_defense.ham_misclassified_rate());
  }
  // ...and the chosen thresholds moved up to chase the shifted scores.
  EXPECT_GT(attacked.mean_thresholds[0].theta1, 0.9);
}

TEST(ThresholdExperiment, ControlPointLeavesAccuracyIntact) {
  core::DictionaryAttack attack =
      core::DictionaryAttack::usenet(generator().lexicons());
  auto points = run_threshold_defense_curve(generator(), attack,
                                            small_threshold_config());
  const auto& control = points[0];
  for (const auto& defended : control.defended) {
    EXPECT_LT(defended.ham_misclassified_rate(), 0.10);
  }
}

TEST(Helpers, TrainAndClassifyIndices) {
  util::Rng rng(7);
  corpus::Dataset data = generator().sample_mailbox(60, 0.5, rng);
  corpus::TokenizedDataset tokenized =
      corpus::tokenize_dataset(data, spambayes::Tokenizer());
  std::vector<std::size_t> train, test;
  for (std::size_t i = 0; i < 40; ++i) train.push_back(i);
  for (std::size_t i = 40; i < 60; ++i) test.push_back(i);
  spambayes::Filter filter;
  train_on_indices(filter, tokenized, train);
  EXPECT_EQ(filter.database().spam_count() + filter.database().ham_count(),
            40u);
  ConfusionMatrix m = classify_indices(filter, tokenized, test);
  EXPECT_EQ(m.total(), 20u);
}

TEST(Helpers, RawTokenCountCountsDuplicates) {
  corpus::Dataset d;
  d.items.push_back(
      {email::Message({}, "alpha alpha beta\n"), corpus::TrueLabel::ham});
  EXPECT_EQ(raw_token_count(d, spambayes::Tokenizer()), 3u);
}

}  // namespace
}  // namespace sbx::eval
