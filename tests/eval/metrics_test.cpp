// Tests for eval/metrics: confusion matrix accounting and rates.
#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace sbx::eval {
namespace {

using corpus::TrueLabel;
using spambayes::Verdict;

TEST(ConfusionMatrix, CountsAndTotals) {
  ConfusionMatrix m;
  m.add(TrueLabel::ham, Verdict::ham, 7);
  m.add(TrueLabel::ham, Verdict::unsure, 2);
  m.add(TrueLabel::ham, Verdict::spam);
  m.add(TrueLabel::spam, Verdict::spam, 9);
  m.add(TrueLabel::spam, Verdict::ham);

  EXPECT_EQ(m.count(TrueLabel::ham, Verdict::ham), 7u);
  EXPECT_EQ(m.count(TrueLabel::ham, Verdict::unsure), 2u);
  EXPECT_EQ(m.count(TrueLabel::ham, Verdict::spam), 1u);
  EXPECT_EQ(m.total(TrueLabel::ham), 10u);
  EXPECT_EQ(m.total(TrueLabel::spam), 10u);
  EXPECT_EQ(m.total(), 20u);
}

TEST(ConfusionMatrix, Rates) {
  ConfusionMatrix m;
  m.add(TrueLabel::ham, Verdict::ham, 6);
  m.add(TrueLabel::ham, Verdict::unsure, 3);
  m.add(TrueLabel::ham, Verdict::spam, 1);
  m.add(TrueLabel::spam, Verdict::spam, 8);
  m.add(TrueLabel::spam, Verdict::unsure, 1);
  m.add(TrueLabel::spam, Verdict::ham, 1);

  EXPECT_DOUBLE_EQ(m.ham_as_spam_rate(), 0.1);
  EXPECT_DOUBLE_EQ(m.ham_as_unsure_rate(), 0.3);
  EXPECT_DOUBLE_EQ(m.ham_misclassified_rate(), 0.4);
  EXPECT_DOUBLE_EQ(m.spam_as_ham_rate(), 0.1);
  EXPECT_DOUBLE_EQ(m.spam_as_unsure_rate(), 0.1);
  EXPECT_DOUBLE_EQ(m.spam_misclassified_rate(), 0.2);
  EXPECT_DOUBLE_EQ(m.accuracy(), 14.0 / 20.0);
}

TEST(ConfusionMatrix, EmptyMatrixHasZeroRates) {
  ConfusionMatrix m;
  EXPECT_DOUBLE_EQ(m.ham_as_spam_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.spam_misclassified_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_EQ(m.total(), 0u);
}

TEST(ConfusionMatrix, MergeAdds) {
  ConfusionMatrix a, b;
  a.add(TrueLabel::ham, Verdict::ham, 5);
  b.add(TrueLabel::ham, Verdict::spam, 5);
  b.add(TrueLabel::spam, Verdict::spam, 10);
  a.merge(b);
  EXPECT_EQ(a.total(TrueLabel::ham), 10u);
  EXPECT_DOUBLE_EQ(a.ham_as_spam_rate(), 0.5);
  EXPECT_EQ(a.total(), 20u);
}

TEST(ConfusionMatrix, ToStringContainsCounts) {
  ConfusionMatrix m;
  m.add(TrueLabel::ham, Verdict::unsure, 42);
  std::string s = m.to_string();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("true ham"), std::string::npos);
}

}  // namespace
}  // namespace sbx::eval
