// Fault-injection matrix: short writes, injected delays vs deadlines,
// injected connection closes vs client retry, WAL integrity under short
// writes, and a fork-based deterministic crash-after-WAL-append test.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "serve/base_model.h"
#include "serve/client.h"
#include "serve/fault_injector.h"
#include "serve/frontend.h"
#include "serve/recovery.h"
#include "serve/server.h"
#include "serve/wal.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

BaseModelConfig small_base() { return {/*base_size=*/200, 0.5, /*seed=*/5}; }

/// The injector is process-global; every test disarms it on the way out so
/// later tests in this binary see a clean slate.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    FaultInjector::instance().reset();
    FaultInjector::instance().configure(spec);
  }
  ~FaultGuard() { FaultInjector::instance().reset(); }
};

std::string temp_sock(const std::string& tag) {
  return testing::TempDir() + "sbx_fault_" + tag + "_" +
         std::to_string(static_cast<unsigned>(::getpid())) + ".sock";
}

std::string make_message(int i) {
  return "Subject: fault test " + std::to_string(i) +
         "\n\nbody with some tokens to score " + std::to_string(i * 17);
}

TEST(FaultInjection, SpecParsingRejectsUnknownKeysAndBadValues) {
  FaultInjector::instance().reset();
  EXPECT_THROW(FaultInjector::instance().configure("made_up_key=1"),
               ParseError);
  EXPECT_THROW(FaultInjector::instance().configure("short_write_every=abc"),
               ParseError);
  EXPECT_THROW(FaultInjector::instance().configure("short_write_every"),
               ParseError);
  EXPECT_FALSE(FaultInjector::instance().enabled());
  FaultInjector::instance().configure("short_write_every=3");
  EXPECT_TRUE(FaultInjector::instance().enabled());
  FaultInjector::instance().reset();
  EXPECT_FALSE(FaultInjector::instance().enabled());
}

TEST(FaultInjection, EveryWriteShortenedToOneByteStillRoundTrips) {
  // Worst-case partial writes on BOTH sides of the socket: every write
  // transfers one byte. Correctness must not depend on write() atomicity.
  FaultGuard guard("short_write_every=1");

  const std::string path = temp_sock("short");
  ServeFrontend frontend(build_base_filter(small_base()), {2, 8});
  Server server(frontend, "unix:" + path);
  std::thread serving([&] { server.run(); });

  ServeFrontend mirror(build_base_filter(small_base()), {2, 8});
  {
    Client client("unix:" + path);
    TrainRequest t;
    t.user_id = 1;
    t.as_spam = true;
    t.message = make_message(1);
    const auto remote = client.call(Request(t));
    const auto local = mirror.dispatch(Request(t));
    EXPECT_EQ(std::get<TrainResponse>(remote).overlay_spam,
              std::get<TrainResponse>(local).overlay_spam);

    ClassifyBatchRequest c;
    c.user_id = 1;
    for (int i = 0; i < 4; ++i) c.messages.push_back(make_message(i));
    const auto remote_scores =
        std::get<ClassifyBatchResponse>(client.call(Request(c)));
    const auto local_scores =
        std::get<ClassifyBatchResponse>(mirror.dispatch(Request(c)));
    ASSERT_EQ(remote_scores.results.size(), local_scores.results.size());
    for (std::size_t i = 0; i < remote_scores.results.size(); ++i) {
      EXPECT_EQ(remote_scores.results[i].score, local_scores.results[i].score);
    }
  }
  server.request_drain();
  serving.join();
  std::remove(path.c_str());
}

TEST(FaultInjection, InjectedReadDelayTripsTheClientDeadline) {
  FaultGuard guard("delay_read_every=1,delay_ms=400");

  const std::string path = temp_sock("delay");
  ServeFrontend frontend(build_base_filter(small_base()), {2, 8});
  Server server(frontend, "unix:" + path);
  std::thread serving([&] { server.run(); });
  {
    ClientOptions options;
    options.op_timeout_ms = 100;  // < injected delay
    options.max_attempts = 1;
    Client client("unix:" + path, options);
    EXPECT_THROW(client.call(Request(StatsRequest{})), IoError);
  }
  FaultInjector::instance().reset();  // let the drain path run clean
  server.request_drain();
  serving.join();
  std::remove(path.c_str());
}

TEST(FaultInjection, InjectedConnectionCloseIsAbsorbedByRetry) {
  // Write op 1 is the client's request; op 2 — the server's response — is
  // replaced by a shutdown. The retry must reconnect and succeed.
  FaultGuard guard("close_write_at=2");

  const std::string path = temp_sock("close");
  ServeFrontend frontend(build_base_filter(small_base()), {2, 8});
  Server server(frontend, "unix:" + path);
  std::thread serving([&] { server.run(); });
  {
    ClientOptions options;
    options.max_attempts = 4;
    options.backoff_base_ms = 1;
    Client client("unix:" + path, options);
    const Response r = client.call(Request(StatsRequest{}));
    EXPECT_TRUE(std::holds_alternative<StatsResponse>(r));
    EXPECT_GE(client.retries(), 1u);
  }
  server.request_drain();
  serving.join();
  std::remove(path.c_str());
}

TEST(FaultInjection, WalSurvivesShortWritesByteForByte) {
  const std::string dir = testing::TempDir() + "sbx_fault_wal_" +
                          std::to_string(static_cast<unsigned>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  WalRecord record;
  record.seqno = 1;
  record.user_id = 5;
  record.message = make_message(9);

  const std::string clean_path = dir + "/clean.log";
  {
    WalWriter writer(clean_path, FsyncMode::kNone);
    writer.append(record);
  }
  const std::string faulty_path = dir + "/faulty.log";
  {
    FaultGuard guard("short_write_every=1");
    WalWriter writer(faulty_path, FsyncMode::kNone);
    writer.append(record);
  }
  // One-byte-at-a-time appends produce the identical log.
  std::vector<WalRecord> got;
  const auto stats =
      read_wal(faulty_path, [&](const WalRecord& r) { got.push_back(r); });
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.bytes_total, std::filesystem::file_size(clean_path));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].message, record.message);
  std::filesystem::remove_all(dir);
}

TEST(FaultInjection, CrashAfterNthWalRecordLosesExactlyTheRest) {
  const std::string dir = testing::TempDir() + "sbx_fault_crash_" +
                          std::to_string(static_cast<unsigned>(::getpid()));
  std::filesystem::remove_all(dir);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: arm the crash, apply 6 mutations — _Exit(42) fires inside the
    // 3rd append, after the record hit the log but before it publishes.
    FaultInjector::instance().reset();
    FaultInjector::instance().configure("crash_after_wal=3");
    DurabilityConfig dc;
    dc.data_dir = dir;
    dc.fsync = FsyncMode::kNone;
    ServeFrontend frontend(build_base_filter(small_base()),
                           FrontendConfig{2, 8},
                           std::make_unique<Durability>(dc, 2));
    for (int i = 0; i < 6; ++i) {
      TrainRequest t;
      t.user_id = static_cast<std::uint64_t>(i) % 8;
      t.as_spam = (i % 2) == 0;
      t.message = make_message(i);
      t.request_id = static_cast<std::uint64_t>(i) + 1;
      frontend.train(t);
    }
    ::_exit(7);  // unreachable when the fault fires
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "crash injection did not fire";

  // Exactly 3 records exist across the shard logs, and they are the FIRST
  // 3 mutations in program order.
  std::vector<WalRecord> all;
  for (std::size_t s = 0; s < 2; ++s) {
    read_wal(wal_path_in(dir, s),
             [&](const WalRecord& r) { all.push_back(r); });
  }
  ASSERT_EQ(all.size(), 3u);
  for (const WalRecord& r : all) {
    EXPECT_GE(r.request_id, 1u);
    EXPECT_LE(r.request_id, 3u);
  }

  // Recovery replays them; a reference frontend applying the same first 3
  // mutations classifies bit-identically.
  ServeFrontend recovered(build_base_filter(small_base()), {2, 8});
  const RecoveryStats rs = recover(recovered, dir);
  EXPECT_EQ(rs.replayed_records, 3u);

  ServeFrontend reference(build_base_filter(small_base()), {2, 8});
  for (int i = 0; i < 3; ++i) {
    TrainRequest t;
    t.user_id = static_cast<std::uint64_t>(i) % 8;
    t.as_spam = (i % 2) == 0;
    t.message = make_message(i);
    reference.train(t);
  }
  for (std::uint64_t uid = 0; uid < 8; ++uid) {
    ClassifyBatchRequest c;
    c.user_id = uid;
    for (int i = 0; i < 4; ++i) c.messages.push_back(make_message(100 + i));
    const auto a = recovered.classify_batch(c);
    const auto b = reference.classify_batch(c);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      ASSERT_EQ(a.results[i].score, b.results[i].score) << "user " << uid;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sbx::serve
