// Replication tests: group-commit windows, incremental snapshot chains
// (recovery bit-identity, broken-chain detection, compaction), WAL
// shipping to a live standby (bit-identical at the acked watermark),
// promotion, client redirect following, and the never-retry-ParseError
// contract.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "corpus/generator.h"
#include "email/rfc2822.h"
#include "serve/base_model.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/recovery.h"
#include "serve/replication.h"
#include "serve/server.h"
#include "serve/wal.h"
#include "util/error.h"
#include "util/lock_rank.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace sbx::serve {
namespace {

BaseModelConfig small_base() { return {/*base_size=*/200, 0.5, /*seed=*/5}; }

constexpr std::size_t kShards = 2;
constexpr std::size_t kUsers = 8;

struct TempDataDir {
  std::string path;
  explicit TempDataDir(const std::string& tag)
      : path(testing::TempDir() + "sbx_repl_" + tag + "_" +
             std::to_string(static_cast<unsigned>(::getpid()))) {
    std::filesystem::remove_all(path);
  }
  ~TempDataDir() { std::filesystem::remove_all(path); }
};

std::string temp_sock(const std::string& tag) {
  return testing::TempDir() + "sbx_repl_" + tag + "_" +
         std::to_string(static_cast<unsigned>(::getpid())) + ".sock";
}

std::unique_ptr<ServeFrontend> durable_frontend(const std::string& data_dir,
                                                std::uint64_t snapshot_every) {
  DurabilityConfig dc;
  dc.data_dir = data_dir;
  dc.fsync = FsyncMode::kNone;  // page cache is durable enough for tests
  dc.snapshot_every = snapshot_every;
  return std::make_unique<ServeFrontend>(
      build_base_filter(small_base()), FrontendConfig{kShards, kUsers},
      std::make_unique<Durability>(dc, kShards));
}

std::unique_ptr<ServeFrontend> memory_frontend() {
  return std::make_unique<ServeFrontend>(build_base_filter(small_base()),
                                         FrontendConfig{kShards, kUsers});
}

std::vector<std::string> make_messages(int n, std::uint64_t seed) {
  corpus::TrecLikeGenerator generator;
  util::Rng rng(seed);
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(email::render_message(i % 2 == 0
                                            ? generator.generate_ham(rng)
                                            : generator.generate_spam(rng)));
  }
  return out;
}

/// Mixed deterministic mutation workload (same shape recovery_test uses).
void apply_workload(ServeFrontend& frontend, int mutations,
                    std::uint64_t seed) {
  const auto msgs = make_messages(mutations, seed);
  util::Rng rng(seed + 1);
  for (int i = 0; i < mutations; ++i) {
    TrainRequest t;
    t.user_id = rng.index(kUsers);
    t.as_spam = rng.bernoulli(0.5);
    t.copies = 1 + static_cast<std::uint32_t>(rng.index(2));
    t.message = msgs[static_cast<std::size_t>(i)];
    t.request_id = seed * 1000 + static_cast<std::uint64_t>(i) + 1;
    frontend.train(t);
    if (i % 5 == 4) {
      UntrainRequest u;
      u.user_id = t.user_id;
      u.as_spam = t.as_spam;
      u.copies = 1;
      u.message = t.message;
      frontend.untrain(u);
    }
  }
}

/// Bit-exact classify comparison over every user (direct classify_batch
/// calls — on a standby only dispatch() is role-gated, by design, so the
/// proof of bit-identity does not need a promotion first).
void expect_bit_identical(ServeFrontend& got, ServeFrontend& want,
                          std::uint64_t probe_seed) {
  const auto probes = make_messages(6, probe_seed);
  for (std::uint64_t uid = 0; uid < kUsers; ++uid) {
    ClassifyBatchRequest c;
    c.user_id = uid;
    c.messages = probes;
    const auto a = got.classify_batch(c);
    const auto b = want.classify_batch(c);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      // operator== on doubles: identical bit patterns or bust.
      ASSERT_EQ(a.results[i].score, b.results[i].score)
          << "user " << uid << " probe " << i;
      ASSERT_EQ(a.results[i].verdict, b.results[i].verdict);
    }
  }
}

WalRecord sample_record(std::uint64_t seqno) {
  WalRecord r;
  r.op = kWalOpTrain;
  r.seqno = seqno;
  r.user_id = seqno % kUsers;
  r.request_id = 7000 + seqno;
  r.as_spam = (seqno % 2) == 0;
  r.copies = 1;
  r.message = "Subject: s" + std::to_string(seqno) + "\n\nbody body\n";
  return r;
}

// --- Group commit ----------------------------------------------------------

TEST(GroupCommit, OneWindowCoversEveryTicketDrawnBeforeTheFsync) {
  TempDataDir dir("gc");
  DurabilityConfig dc;
  dc.data_dir = dir.path;
  dc.fsync = FsyncMode::kBatch;
  Durability durability(dc, 1);

  std::vector<std::uint64_t> tickets;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    durability.wal(0).append(sample_record(i));
    tickets.push_back(durability.note_append());
  }
  EXPECT_EQ(durability.group_commit_windows(), 0u);

  // The latest ticket leads one window; that window covers all three.
  durability.await_durable(tickets.back());
  EXPECT_EQ(durability.group_commit_windows(), 1u);
  durability.await_durable(tickets.front());  // already covered, no new fsync
  EXPECT_EQ(durability.group_commit_windows(), 1u);

  durability.wal(0).append(sample_record(4));
  durability.await_durable(durability.note_append());
  EXPECT_EQ(durability.group_commit_windows(), 2u);
}

TEST(GroupCommit, ConcurrentWaitersShareWindows) {
  TempDataDir dir("gcmt");
  DurabilityConfig dc;
  dc.data_dir = dir.path;
  dc.fsync = FsyncMode::kBatch;
  Durability durability(dc, 1);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&durability, t] {
      for (int i = 0; i < kPerThread; ++i) {
        durability.wal(0).append(
            sample_record(static_cast<std::uint64_t>(t * kPerThread + i + 1)));
        durability.await_durable(durability.note_append());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every ack was covered by a window; absorption means strictly fewer
  // windows than appends is possible but never zero.
  EXPECT_GE(durability.group_commit_windows(), 1u);
  EXPECT_LE(durability.group_commit_windows(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(durability.wal(0).records(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

// --- Incremental snapshot chain --------------------------------------------

TEST(IncrementalSnapshots, ChainRecoveryIsBitIdenticalAndCompactionKicksIn) {
  TempDataDir dir("chain");
  {
    auto durable = durable_frontend(dir.path, /*snapshot_every=*/2);
    apply_workload(*durable, 60, 77);
    EXPECT_GT(durable->durability()->incremental_snapshot_bytes(), 0u);
    durable->sync_durability();
  }
  // 60 mutations / checkpoint-every-2 crosses kCompactChainAfterSegments,
  // so at least one shard compacted into a full snapshot.
  bool compacted = false;
  for (std::size_t s = 0; s < kShards; ++s) {
    compacted = compacted ||
                std::filesystem::exists(snapshot_path_in(dir.path, s));
  }
  EXPECT_TRUE(compacted);

  auto recovered = durable_frontend(dir.path, 2);
  const RecoveryStats rs = recover(*recovered, dir.path);
  EXPECT_GT(rs.snapshot_segments + rs.snapshot_users, 0u);

  auto reference = memory_frontend();
  apply_workload(*reference, 60, 77);
  expect_bit_identical(*recovered, *reference, 901);
}

TEST(IncrementalSnapshots, MissingChainSegmentFailsLoudly) {
  TempDataDir dir("gap");
  {
    auto durable = durable_frontend(dir.path, /*snapshot_every=*/1);
    apply_workload(*durable, 8, 31);
    durable->sync_durability();
  }
  // Find a shard with at least two segments and delete the older one: the
  // newer segment's parent link now dangles and its state is beyond any
  // full snapshot, which recovery must refuse to guess around.
  bool removed = false;
  for (std::size_t s = 0; s < kShards && !removed; ++s) {
    const std::string first = incremental_snapshot_path_in(dir.path, s, 1);
    const std::string second = incremental_snapshot_path_in(dir.path, s, 2);
    if (std::filesystem::exists(first) && std::filesystem::exists(second)) {
      std::filesystem::remove(first);
      removed = true;
    }
  }
  ASSERT_TRUE(removed);
  auto frontend = memory_frontend();
  EXPECT_THROW(recover(*frontend, dir.path), ParseError);
}

TEST(IncrementalSnapshots, SegmentFileRoundTripsWithCrc) {
  TempDataDir dir("seg");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/snap-000001.inc";

  IncrementalSnapshot snap;
  snap.index = 1;
  snap.seqno = 42;
  snap.parent_crc = 0xDEADBEEF;
  const IncrementalWriteResult wrote =
      write_incremental_snapshot_file(path, snap);
  EXPECT_GT(wrote.bytes, 0u);

  std::uint32_t crc = 0;
  const auto back = read_incremental_snapshot_file(path, &crc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->index, 1u);
  EXPECT_EQ(back->seqno, 42u);
  EXPECT_EQ(back->parent_crc, 0xDEADBEEFu);
  EXPECT_EQ(crc, wrote.crc);

  // One flipped content byte must flip the verdict to ParseError.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    f.write("X", 1);
  }
  EXPECT_THROW(read_incremental_snapshot_file(path), ParseError);
}

// --- WAL shipping to a live standby ----------------------------------------

/// A standby sbx_serve in miniature: durable frontend marked standby plus
/// a real socket server, torn down in order.
struct LiveStandby {
  TempDataDir dir;
  std::unique_ptr<ServeFrontend> frontend;
  Server server;
  std::thread serving;

  LiveStandby(const std::string& tag, const std::string& endpoint,
              std::string redirect = "")
      : dir(tag), frontend([&] {
          auto f = durable_frontend(dir.path, 0);
          f->set_standby(std::move(redirect));
          return f;
        }()),
        server(*frontend, endpoint), serving([this] { server.run(); }) {}

  ~LiveStandby() {
    server.request_drain();
    serving.join();
  }
};

TEST(Replication, StandbyIsBitIdenticalAtTheAckedWatermark) {
  const std::string sock = temp_sock("ship");
  LiveStandby standby("ship_standby", "unix:" + sock);

  TempDataDir primary_dir("ship_primary");
  auto primary = durable_frontend(primary_dir.path, 0);
  ReplicationConfig rc;
  rc.target = "unix:" + sock;
  rc.ack = ReplAckPolicy::kQuorum;
  primary->attach_replicator(std::make_unique<Replicator>(rc));

  // Under kQuorum every train/untrain ack below waited for the standby,
  // so by the time the workload returns the acked watermark covers it all.
  apply_workload(*primary, 25, 55);

  const ReplicationStats stats = primary->replicator()->stats();
  EXPECT_EQ(stats.lag_records, 0u);
  EXPECT_GT(stats.acked_seqno, 0u);
  EXPECT_EQ(stats.acked_seqno, stats.shipped_seqno);

  expect_bit_identical(*standby.frontend, *primary, 902);

  // The standby's own log + chain replays back to the same state (what a
  // failover-then-restart of the promoted node relies on).
  auto reborn = durable_frontend(standby.dir.path, 0);
  recover(*reborn, standby.dir.path);
  expect_bit_identical(*reborn, *primary, 903);

  primary->sync_durability();  // stop the shipper before the standby dies
}

TEST(Replication, ResentRecordsAreSkippedBySeqno) {
  TempDataDir dir("dedup");
  auto standby = durable_frontend(dir.path, 0);
  standby->set_standby("");

  ReplicateBatchRequest batch;
  WalRecord r = sample_record(1);
  const auto at = standby->route(r.user_id);
  batch.records.push_back(ReplicatedRecord{at.shard, r});

  const ReplicateAckResponse first = standby->replicate_batch(batch);
  EXPECT_EQ(first.acked_seqno, 1u);
  EXPECT_EQ(first.applied_records, 1u);
  // A reconnecting primary resends the unacked tail; the duplicate must
  // not double-train.
  const ReplicateAckResponse again = standby->replicate_batch(batch);
  EXPECT_EQ(again.acked_seqno, 1u);
  EXPECT_EQ(again.applied_records, 1u);
}

TEST(Replication, PromoteFlipsRoleAndAdvancesSeqnos) {
  TempDataDir dir("promote");
  auto standby = durable_frontend(dir.path, 0);
  standby->set_standby("tcp:127.0.0.1:1");

  ReplicateBatchRequest batch;
  WalRecord r = sample_record(17);
  batch.records.push_back(ReplicatedRecord{standby->route(r.user_id).shard, r});
  standby->replicate_batch(batch);

  // Writes bounce with a redirect until promotion.
  const Response refused = standby->dispatch(Request(TrainRequest{
      0, true, 1, "Subject: x\n\nbody\n", 1}));
  const auto* err = std::get_if<ErrorResponse>(&refused);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, static_cast<std::uint8_t>(ErrorCode::kNotPrimary));
  EXPECT_EQ(err->redirect, "tcp:127.0.0.1:1");

  const PromoteResponse promoted = standby->promote();
  EXPECT_EQ(promoted.last_applied_seqno, 17u);
  EXPECT_EQ(standby->role(), Role::kPrimary);
  // Idempotent: promoting a primary reports the same watermark.
  EXPECT_EQ(standby->promote().last_applied_seqno, 17u);

  // The first post-promotion mutation draws a seqno strictly above the
  // replicated watermark — no replay gap, no collision on failback.
  const Response trained = standby->dispatch(Request(TrainRequest{
      0, true, 1, "Subject: y\n\nfresh after promote\n", 2}));
  EXPECT_TRUE(std::holds_alternative<TrainResponse>(trained));
  EXPECT_GT(standby->promote().last_applied_seqno, 17u);
}

TEST(Replication, PrimaryRefusesReplicateBatch) {
  auto primary = memory_frontend();
  const Response r =
      primary->dispatch(Request(ReplicateBatchRequest{}));
  const auto* err = std::get_if<ErrorResponse>(&r);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, static_cast<std::uint8_t>(ErrorCode::kGeneric));
}

TEST(Replication, ReplicatorConstructionRejectsBadConfigs) {
  ReplicationConfig rc;
  EXPECT_THROW(Replicator{rc}, InvalidArgument);  // empty target
  rc.target = "tcp:1";
  rc.ack = ReplAckPolicy::kNone;
  EXPECT_THROW(Replicator{rc}, InvalidArgument);  // disabled policy
  rc.ack = ReplAckPolicy::kAsync;
  rc.batch_max = 0;
  EXPECT_THROW(Replicator{rc}, InvalidArgument);

  EXPECT_EQ(repl_ack_policy_from_string("quorum"), ReplAckPolicy::kQuorum);
  EXPECT_EQ(to_string(ReplAckPolicy::kAsync), "async");
  EXPECT_THROW(repl_ack_policy_from_string("sometimes"), ParseError);
}

// --- Client redirect following ---------------------------------------------

/// In-memory primary behind a real server (the redirect target).
struct LivePrimary {
  std::unique_ptr<ServeFrontend> frontend;
  Server server;
  std::thread serving;

  explicit LivePrimary(const std::string& endpoint)
      : frontend(memory_frontend()),
        server(*frontend, endpoint),
        serving([this] { server.run(); }) {}

  ~LivePrimary() {
    server.request_drain();
    serving.join();
  }
};

TEST(ClientRedirect, FollowsNotPrimaryToTheNamedEndpoint) {
  const std::string primary_sock = temp_sock("redir_primary");
  const std::string standby_sock = temp_sock("redir_standby");
  LivePrimary primary("unix:" + primary_sock);
  LiveStandby standby("redir_standby", "unix:" + standby_sock,
                      "unix:" + primary_sock);

  ClientOptions opts;
  opts.max_attempts = 2;  // the redirect hop consumes one attempt
  Client client("unix:" + standby_sock, opts);
  TrainRequest t;
  t.user_id = 3;
  t.message = "Subject: hello\n\nredirect me\n";
  t.request_id = 41;
  const Response r = client.call(Request(t));
  EXPECT_TRUE(std::holds_alternative<TrainResponse>(r))
      << "redirected train must land on the primary";
  EXPECT_EQ(client.endpoint(), "unix:" + primary_sock);
  EXPECT_EQ(client.retries(), 1u);
}

TEST(ClientRedirect, BareNotPrimaryIsReturnedAsIs) {
  const std::string standby_sock = temp_sock("bare_standby");
  LiveStandby standby("bare_standby", "unix:" + standby_sock, "");

  ClientOptions opts;
  opts.max_attempts = 3;
  Client client("unix:" + standby_sock, opts);
  const Response r = client.call(Request(ClassifyBatchRequest{
      1, {"Subject: q\n\nbody\n"}}));
  const auto* err = std::get_if<ErrorResponse>(&r);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, static_cast<std::uint8_t>(ErrorCode::kNotPrimary));
  EXPECT_TRUE(err->redirect.empty());
  EXPECT_EQ(client.retries(), 0u) << "no redirect target, nothing to retry";
}

TEST(ClientRedirect, ParseErrorIsNeverRetried) {
  const std::string path = temp_sock("badframe");
  ::unlink(path.c_str());
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  std::thread peer([lfd] {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) return;
    char buf[4096];
    (void)::read(fd, buf, sizeof(buf));
    // A framed payload with a bogus protocol version: decodes as
    // ParseError, which the client must surface without burning retries.
    const std::uint8_t bad[] = {3, 0, 0, 0, 9, 9, 9};
    (void)::write(fd, bad, sizeof(bad));
    ::close(fd);
  });

  ClientOptions opts;
  opts.max_attempts = 5;
  Client client("unix:" + path, opts);
  EXPECT_THROW(client.call(Request(StatsRequest{})), ParseError);
  EXPECT_EQ(client.retries(), 0u);
  peer.join();
  ::close(lfd);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Lock-ordering regression: the quorum-ack wait and the shard lock.
// ---------------------------------------------------------------------------

// Enqueueing to the replicator while holding a shard-rank lock is the
// designed fast path (shard.cpp does exactly this on every mutation) and
// must stay legal under the rank tracker: kShard < kReplicator ascends.
TEST(ReplicationLockOrder, EnqueueUnderShardRankLockIsLegal) {
  ReplicationConfig rc;
  rc.target = "unix:" + temp_sock("rank_enqueue_void");  // never connects
  rc.ack = ReplAckPolicy::kAsync;
  Replicator replicator(rc);
  util::Mutex shard_rank_lock(util::LockRank::kShard,
                              "test::shard_rank_lock");
  WalRecord record;
  record.seqno = 1;
  {
    const util::MutexLock lock(shard_rank_lock);
    EXPECT_EQ(replicator.enqueue(0, record), 1u);
  }
  replicator.stop();
}

#ifdef SBX_LOCK_RANK

// Pins the PR 7 invariant the prose used to carry alone: wait_acked
// blocks on ack_cv_ until the standby acks, so a caller still holding a
// shard mutation lock would stall every writer on that shard behind a
// remote round-trip (or forever, against a dead standby). frontend.cpp
// releases the shard lock BEFORE waiting; if anyone reintroduces the
// inverted order, the rank tracker must abort at the CondVar wait
// rather than let the serving path hang in production.
TEST(ReplicationLockOrder, WaitAckedUnderShardRankLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ReplicationConfig rc;
        // Unreachable target: the enqueued record is never acked, so
        // wait_acked must reach the blocking ack_cv_ wait.
        rc.target = "unix:" + temp_sock("rank_wait_void");
        rc.ack = ReplAckPolicy::kQuorum;
        Replicator replicator(rc);
        WalRecord record;
        record.seqno = 1;
        const std::uint64_t ticket = replicator.enqueue(0, record);
        util::Mutex shard_rank_lock(util::LockRank::kShard,
                                    "test::shard_rank_lock");
        const util::MutexLock lock(shard_rank_lock);
        replicator.wait_acked(ticket);
      },
      "CondVar wait.*test::shard_rank_lock");
}

#endif  // SBX_LOCK_RANK

}  // namespace
}  // namespace sbx::serve
