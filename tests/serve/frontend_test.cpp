// ServeFrontend dispatch/stats/concurrency tests plus a live socket
// round-trip through Server/Client on a UNIX domain socket.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "email/rfc2822.h"
#include "serve/base_model.h"
#include "serve/frontend.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/random.h"

namespace sbx::serve {
namespace {

BaseModelConfig small_base() { return {/*base_size=*/200, 0.5, /*seed=*/5}; }

std::vector<std::string> make_messages(int n, std::uint64_t seed) {
  corpus::TrecLikeGenerator generator;
  util::Rng rng(seed);
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(email::render_message(i % 2 == 0
                                            ? generator.generate_ham(rng)
                                            : generator.generate_spam(rng)));
  }
  return out;
}

TEST(ServeFrontend, RejectsZeroTopologyAndUnknownUsers) {
  EXPECT_THROW(ServeFrontend(build_base_filter(small_base()), {0, 8}),
               InvalidArgument);
  EXPECT_THROW(ServeFrontend(build_base_filter(small_base()), {2, 0}),
               InvalidArgument);

  ServeFrontend frontend(build_base_filter(small_base()), {2, 8});
  ClassifyBatchRequest req;
  req.user_id = 8;  // one past the end
  req.messages = make_messages(1, 1);
  EXPECT_THROW(frontend.classify_batch(req), InvalidArgument);
  const Response r = frontend.dispatch(Request(req));
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(r));
  EXPECT_NE(std::get<ErrorResponse>(r).message.find("unknown user"),
            std::string::npos);
}

TEST(ServeFrontend, RoutingCoversAllShardsWithDenseLocalSlots) {
  ServeFrontend frontend(build_base_filter(small_base()), {4, 64});
  std::vector<int> per_shard(4, 0);
  for (std::uint64_t uid = 0; uid < 64; ++uid) {
    const auto at = frontend.route(uid);
    ASSERT_LT(at.shard, 4u);
    ++per_shard[at.shard];
  }
  for (int n : per_shard) EXPECT_GT(n, 0);
}

TEST(ServeFrontend, StatsTrackRequestsAndOverlays) {
  ServeFrontend frontend(build_base_filter(small_base()), {2, 8});
  const auto msgs = make_messages(4, 2);

  ClassifyBatchRequest c;
  c.user_id = 0;
  c.messages = msgs;
  frontend.classify_batch(c);

  TrainRequest t;
  t.user_id = 3;
  t.message = msgs[0];
  frontend.train(t);

  const StatsResponse s = frontend.stats();
  EXPECT_EQ(s.users, 8u);
  EXPECT_EQ(s.shards, 2u);
  EXPECT_EQ(s.classify_requests, 1u);
  EXPECT_EQ(s.classified_messages, 4u);
  EXPECT_EQ(s.train_requests, 1u);
  EXPECT_EQ(s.overlay_users, 1u);
  EXPECT_EQ(s.base_spam_count + s.base_ham_count, 200u);
}

TEST(ServeFrontend, ClassifyManyMatchesSequentialDispatchBitwise) {
  ServeFrontend frontend(build_base_filter(small_base()), {4, 32});
  ServeFrontend sequential(build_base_filter(small_base()), {4, 32});
  const auto msgs = make_messages(6, 3);

  std::vector<ClassifyBatchRequest> batch;
  for (std::uint64_t uid = 0; uid < 32; uid += 3) {
    ClassifyBatchRequest c;
    c.user_id = uid;
    c.messages = msgs;
    batch.push_back(c);
  }
  batch.push_back({/*user_id=*/999, {msgs[0]}});  // routed to ErrorResponse

  const std::vector<Response> parallel = frontend.classify_many(batch);
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t i = 0; i + 1 < batch.size(); ++i) {
    const auto& got = std::get<ClassifyBatchResponse>(parallel[i]);
    const auto want = sequential.classify_batch(batch[i]);
    ASSERT_EQ(got.results.size(), want.results.size());
    for (std::size_t j = 0; j < got.results.size(); ++j) {
      EXPECT_EQ(got.results[j].score, want.results[j].score);
    }
  }
  EXPECT_TRUE(std::holds_alternative<ErrorResponse>(parallel.back()));
}

// Classify traffic hammering one user while another user trains: the
// reader must never block or crash, and scores must always correspond to
// some published snapshot (here: just exercise it under TSan).
TEST(ServeFrontend, ConcurrentClassifyDuringTraining) {
  ServeFrontend frontend(build_base_filter(small_base()), {2, 4});
  const auto msgs = make_messages(3, 4);

  std::thread trainer([&] {
    for (int i = 0; i < 50; ++i) {
      TrainRequest t;
      t.user_id = 1;
      t.as_spam = i % 2 == 0;
      t.message = msgs[i % msgs.size()];
      frontend.train(t);
    }
  });
  std::thread classifier([&] {
    for (int i = 0; i < 50; ++i) {
      ClassifyBatchRequest c;
      c.user_id = 1;
      c.messages = msgs;
      const auto r = frontend.classify_batch(c);
      ASSERT_EQ(r.results.size(), msgs.size());
    }
  });
  trainer.join();
  classifier.join();
  EXPECT_EQ(frontend.stats().train_requests, 50u);
}

TEST(ServeServer, SocketRoundTripMatchesInProcessBitwise) {
  ServeFrontend frontend(build_base_filter(small_base()), {2, 8});
  ServeFrontend mirror(build_base_filter(small_base()), {2, 8});

  const std::string path =
      testing::TempDir() + "sbx_serve_test_" +
      std::to_string(static_cast<unsigned>(::getpid())) + ".sock";
  Server server(frontend, "unix:" + path);
  std::thread serving([&] { server.run(); });

  {
    Client client("unix:" + path);
    const auto msgs = make_messages(4, 6);

    TrainRequest t;
    t.user_id = 2;
    t.message = msgs[0];
    const auto train_remote = client.call(Request(t));
    const auto train_local = mirror.dispatch(Request(t));
    EXPECT_EQ(std::get<TrainResponse>(train_remote).overlay_spam,
              std::get<TrainResponse>(train_local).overlay_spam);

    ClassifyBatchRequest c;
    c.user_id = 2;
    c.messages = msgs;
    const auto remote =
        std::get<ClassifyBatchResponse>(client.call(Request(c)));
    const auto local =
        std::get<ClassifyBatchResponse>(mirror.dispatch(Request(c)));
    ASSERT_EQ(remote.results.size(), local.results.size());
    for (std::size_t i = 0; i < remote.results.size(); ++i) {
      EXPECT_EQ(remote.results[i].score, local.results[i].score);
      EXPECT_EQ(remote.results[i].verdict, local.results[i].verdict);
    }

    // Request-level failure leaves the connection usable.
    UntrainRequest bad;
    bad.user_id = 3;
    bad.message = msgs[0];
    EXPECT_TRUE(std::holds_alternative<ErrorResponse>(
        client.call(Request(bad))));
    EXPECT_TRUE(std::holds_alternative<StatsResponse>(
        client.call(Request(StatsRequest{}))));

    EXPECT_TRUE(std::holds_alternative<ShutdownResponse>(
        client.call(Request(ShutdownRequest{}))));
  }
  serving.join();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sbx::serve
