// Crash-recovery tests: snapshot+WAL replay rebuilds a frontend whose
// classify scores are bit-identical to an uninterrupted run, torn tails
// are dropped (and repaired only when asked), dedup windows survive
// recovery, and the manifest round-trips.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "email/rfc2822.h"
#include "serve/base_model.h"
#include "serve/frontend.h"
#include "serve/recovery.h"
#include "serve/wal.h"
#include "util/error.h"
#include "util/random.h"

namespace sbx::serve {
namespace {

BaseModelConfig small_base() { return {/*base_size=*/200, 0.5, /*seed=*/5}; }

constexpr std::size_t kShards = 2;
constexpr std::size_t kUsers = 8;

/// A fresh data dir per test, removed on scope exit.
struct TempDataDir {
  std::string path;
  explicit TempDataDir(const std::string& tag)
      : path(testing::TempDir() + "sbx_recovery_" + tag + "_" +
             std::to_string(static_cast<unsigned>(::getpid()))) {
    std::filesystem::remove_all(path);
  }
  ~TempDataDir() { std::filesystem::remove_all(path); }
};

std::unique_ptr<ServeFrontend> durable_frontend(const std::string& data_dir,
                                                std::uint64_t snapshot_every) {
  DurabilityConfig dc;
  dc.data_dir = data_dir;
  dc.fsync = FsyncMode::kNone;  // page cache is durable enough for tests
  dc.snapshot_every = snapshot_every;
  return std::make_unique<ServeFrontend>(
      build_base_filter(small_base()), FrontendConfig{kShards, kUsers},
      std::make_unique<Durability>(dc, kShards));
}

std::unique_ptr<ServeFrontend> memory_frontend() {
  return std::make_unique<ServeFrontend>(build_base_filter(small_base()),
                                         FrontendConfig{kShards, kUsers});
}

std::vector<std::string> make_messages(int n, std::uint64_t seed) {
  corpus::TrecLikeGenerator generator;
  util::Rng rng(seed);
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(email::render_message(i % 2 == 0
                                            ? generator.generate_ham(rng)
                                            : generator.generate_spam(rng)));
  }
  return out;
}

/// Mixed deterministic mutation workload applied to any frontend.
void apply_workload(ServeFrontend& frontend, int mutations,
                    std::uint64_t seed) {
  const auto msgs = make_messages(mutations, seed);
  util::Rng rng(seed + 1);
  for (int i = 0; i < mutations; ++i) {
    TrainRequest t;
    t.user_id = rng.index(kUsers);
    t.as_spam = rng.bernoulli(0.5);
    t.copies = 1 + static_cast<std::uint32_t>(rng.index(2));
    t.message = msgs[static_cast<std::size_t>(i)];
    t.request_id = seed * 1000 + static_cast<std::uint64_t>(i) + 1;
    frontend.train(t);
    if (i % 5 == 4) {
      // Untrain something we just trained — exercises the untrain path
      // with counts that cannot go negative.
      UntrainRequest u;
      u.user_id = t.user_id;
      u.as_spam = t.as_spam;
      u.copies = 1;
      u.message = t.message;
      frontend.untrain(u);
    }
  }
}

/// Bit-exact classify comparison over every user.
void expect_bit_identical(ServeFrontend& got, ServeFrontend& want,
                          std::uint64_t probe_seed) {
  const auto probes = make_messages(6, probe_seed);
  for (std::uint64_t uid = 0; uid < kUsers; ++uid) {
    ClassifyBatchRequest c;
    c.user_id = uid;
    c.messages = probes;
    const auto a = got.classify_batch(c);
    const auto b = want.classify_batch(c);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      // operator== on doubles: identical bit patterns or bust (scores are
      // never NaN).
      ASSERT_EQ(a.results[i].score, b.results[i].score)
          << "user " << uid << " probe " << i;
      ASSERT_EQ(a.results[i].verdict, b.results[i].verdict);
    }
  }
}

TEST(Recovery, WalOnlyReplayIsBitIdenticalToUninterruptedRun) {
  TempDataDir dir("walonly");
  auto reference = memory_frontend();
  {
    auto durable = durable_frontend(dir.path, /*snapshot_every=*/0);
    apply_workload(*durable, 30, 11);
  }  // destructor = abrupt end; nothing flushed beyond the appends
  apply_workload(*reference, 30, 11);

  auto recovered = memory_frontend();
  const RecoveryStats rs = recover(*recovered, dir.path);
  EXPECT_EQ(rs.snapshot_users, 0u);
  EXPECT_EQ(rs.replayed_records, 36u);  // 30 trains + 6 untrains
  EXPECT_EQ(rs.torn_dropped, 0u);
  EXPECT_GT(rs.max_seqno, 0u);
  expect_bit_identical(*recovered, *reference, 77);
}

TEST(Recovery, SnapshotPlusTailReplayIsBitIdentical) {
  TempDataDir dir("snaptail");
  auto reference = memory_frontend();
  {
    // Snapshot every 10 records: the workload crosses several checkpoint
    // boundaries, leaving snapshot + a short WAL tail behind.
    auto durable = durable_frontend(dir.path, /*snapshot_every=*/10);
    apply_workload(*durable, 40, 13);
    ASSERT_GT(durable->durability()->snapshots_taken(), 0u);
  }
  apply_workload(*reference, 40, 13);

  auto recovered = memory_frontend();
  const RecoveryStats rs = recover(*recovered, dir.path);
  EXPECT_GT(rs.snapshot_users, 0u);
  // The snapshot folded most records away; only the tail replays.
  EXPECT_LT(rs.replayed_records, 48u);
  expect_bit_identical(*recovered, *reference, 78);
}

TEST(Recovery, RecoveredServerContinuesAndStaysIdentical) {
  TempDataDir dir("continue");
  auto reference = memory_frontend();
  {
    auto durable = durable_frontend(dir.path, 0);
    apply_workload(*durable, 20, 17);
  }
  apply_workload(*reference, 20, 17);

  // Second generation: recover into a *durable* frontend (as sbx_serve
  // does), keep mutating, crash again, recover again.
  {
    auto durable = durable_frontend(dir.path, 0);
    const RecoveryStats rs = recover(*durable, dir.path, true);
    durable->durability()->note_recovered_seqno(rs.max_seqno);
    apply_workload(*durable, 15, 19);
  }
  apply_workload(*reference, 15, 19);

  auto recovered = memory_frontend();
  recover(*recovered, dir.path);
  expect_bit_identical(*recovered, *reference, 79);
}

TEST(Recovery, TornTailIsDroppedAndRepairedOnlyWhenAsked) {
  TempDataDir dir("torn");
  {
    auto durable = durable_frontend(dir.path, 0);
    apply_workload(*durable, 10, 23);
  }
  const std::string wal0 = wal_path_in(dir.path, 0);
  const auto full_size = std::filesystem::file_size(wal0);
  // Tear the last record: chop 3 bytes off.
  std::filesystem::resize_file(wal0, full_size - 3);

  // Read-only recovery drops the tail but leaves the file alone.
  {
    auto mirror = memory_frontend();
    const RecoveryStats rs = recover(*mirror, dir.path, false);
    EXPECT_EQ(rs.torn_dropped, 1u);
    EXPECT_EQ(std::filesystem::file_size(wal0), full_size - 3);
  }
  // The serving daemon repairs: the file shrinks to the valid prefix so
  // future O_APPEND writes stay reachable.
  auto server = memory_frontend();
  const RecoveryStats rs = recover(*server, dir.path, true);
  EXPECT_EQ(rs.torn_dropped, 1u);
  EXPECT_LT(std::filesystem::file_size(wal0), full_size - 3);
  // The repaired log is whole again: no torn bytes remain past the valid
  // prefix.
  const WalReadStats after = read_wal(wal0, [](const WalRecord&) {});
  EXPECT_EQ(after.bytes_used, after.bytes_total);
  EXPECT_EQ(after.dropped_torn, 0u);

  // Both recoveries agree with each other (the torn record is gone from
  // both) — rerun read-only and compare.
  auto mirror = memory_frontend();
  recover(*mirror, dir.path, false);
  expect_bit_identical(*server, *mirror, 80);
}

TEST(Recovery, DedupAbsorbsRetriesBeforeAndAfterRecovery) {
  TempDataDir dir("dedup");
  const auto msgs = make_messages(2, 31);
  TrainRequest t;
  t.user_id = 3;
  t.as_spam = true;
  t.copies = 1;
  t.message = msgs[0];
  t.request_id = 555;

  std::uint64_t spam_after_first = 0;
  {
    auto durable = durable_frontend(dir.path, 0);
    const TrainResponse first = durable->train(t);
    spam_after_first = first.overlay_spam;
    // Same request id again = retry: counts must not move.
    const TrainResponse retry = durable->train(t);
    EXPECT_EQ(retry.overlay_spam, spam_after_first);
    EXPECT_EQ(durable->stats().deduped_mutations, 1u);
    EXPECT_EQ(durable->stats().train_requests, 2u);
  }

  // The dedup window is durable: a retry arriving *after* a crash+recover
  // (e.g. the client reconnected to the restarted server) is still
  // absorbed.
  auto recovered = durable_frontend(dir.path, 0);
  const RecoveryStats rs = recover(*recovered, dir.path, true);
  recovered->durability()->note_recovered_seqno(rs.max_seqno);
  EXPECT_EQ(rs.replayed_records, 1u);  // the dedup'd retry was never logged
  const TrainResponse late_retry = recovered->train(t);
  EXPECT_EQ(late_retry.overlay_spam, spam_after_first);
  EXPECT_EQ(recovered->stats().deduped_mutations, 1u);

  // A different request id applies normally.
  t.request_id = 556;
  t.message = msgs[1];
  const TrainResponse fresh = recovered->train(t);
  EXPECT_EQ(fresh.overlay_spam, spam_after_first + 1);
}

TEST(Recovery, DedupWindowSurvivesSnapshotting) {
  TempDataDir dir("dedupsnap");
  const auto msgs = make_messages(1, 37);
  TrainRequest t;
  t.user_id = 1;
  t.as_spam = false;
  t.copies = 1;
  t.message = msgs[0];
  t.request_id = 777;
  {
    // snapshot_every=1: the train is folded into a snapshot immediately
    // and the WAL truncated — the dedup entry must ride in the snapshot.
    auto durable = durable_frontend(dir.path, 1);
    durable->train(t);
    ASSERT_GT(durable->durability()->snapshots_taken(), 0u);
  }
  auto recovered = durable_frontend(dir.path, 1);
  const RecoveryStats rs = recover(*recovered, dir.path, true);
  recovered->durability()->note_recovered_seqno(rs.max_seqno);
  EXPECT_EQ(rs.replayed_records, 0u);
  EXPECT_GT(rs.snapshot_users, 0u);
  const TrainResponse retry = recovered->train(t);
  EXPECT_EQ(retry.overlay_ham, 1u);
  EXPECT_EQ(recovered->stats().deduped_mutations, 1u);
}

TEST(Recovery, ManifestRoundTripsAndRejectsCorruption) {
  TempDataDir dir("manifest");
  std::filesystem::create_directories(dir.path);
  EXPECT_FALSE(read_manifest(dir.path).has_value());

  Manifest m;
  m.users = 8;
  m.shards = 2;
  m.base_size = 200;
  m.spam_fraction = 0.3333333333333333;
  m.base_seed = 5;
  write_manifest(dir.path, m);
  const auto back = read_manifest(dir.path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == m);  // includes exact double equality

  std::ofstream(dir.path + "/MANIFEST", std::ios::trunc)
      << "SBXMANIFEST 1\nusers not_a_number\n";
  EXPECT_THROW(read_manifest(dir.path), ParseError);
}

TEST(Recovery, CorruptSnapshotFailsLoudly) {
  TempDataDir dir("badsnap");
  {
    auto durable = durable_frontend(dir.path, 1);
    apply_workload(*durable, 3, 41);
    ASSERT_GT(durable->durability()->snapshots_taken(), 0u);
  }
  // Checkpoints now build an incremental chain; the first segment is the
  // chain root. Damage its header: unlike a torn WAL tail this is NOT an
  // expected crash artifact, so recovery must refuse rather than serve
  // silently wrong state.
  std::string snap;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const std::string candidate = incremental_snapshot_path_in(dir.path,
                                                               shard, 1);
    if (std::filesystem::exists(candidate)) {
      snap = candidate;
      break;
    }
  }
  ASSERT_FALSE(snap.empty());
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXX", 4);
  }
  auto frontend = memory_frontend();
  EXPECT_THROW(recover(*frontend, dir.path), ParseError);
}

}  // namespace
}  // namespace sbx::serve
