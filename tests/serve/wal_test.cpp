// WAL framing tests: round trips, torn tails at every truncation offset,
// corrupt frames, fsync-mode byte identity, and truncation.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/wal.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "sbx_wal_" + tag + "_" +
         std::to_string(static_cast<unsigned>(::getpid()));
}

std::vector<WalRecord> sample_records() {
  std::vector<WalRecord> records;
  WalRecord a;
  a.op = kWalOpTrain;
  a.seqno = 1;
  a.user_id = 7;
  a.request_id = 0xDEADBEEFCAFEF00Dull;
  a.as_spam = true;
  a.copies = 3;
  a.message = "Subject: hello\n\nplain body";
  records.push_back(a);

  WalRecord b;
  b.op = kWalOpUntrain;
  b.seqno = 2;
  b.user_id = 0;
  b.request_id = 0;
  b.as_spam = false;
  b.copies = 1;
  b.message = std::string("embedded\0nul and\nnewlines\r\n", 27);
  records.push_back(b);

  WalRecord c;
  c.op = kWalOpTrain;
  c.seqno = 0xFFFFFFFFFFFFFFFFull;
  c.user_id = 0xFFFFFFFFFFFFFFFFull;
  c.request_id = 1;
  c.as_spam = true;
  c.copies = 0xFFFFFFFFu;
  c.message = "";  // empty body is legal
  records.push_back(c);
  return records;
}

void expect_equal(const WalRecord& got, const WalRecord& want) {
  EXPECT_EQ(got.op, want.op);
  EXPECT_EQ(got.seqno, want.seqno);
  EXPECT_EQ(got.user_id, want.user_id);
  EXPECT_EQ(got.request_id, want.request_id);
  EXPECT_EQ(got.as_spam, want.as_spam);
  EXPECT_EQ(got.copies, want.copies);
  EXPECT_EQ(got.message, want.message);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Wal, RoundTripsRecordsWithHostileContent) {
  const std::string path = temp_path("roundtrip");
  const auto want = sample_records();
  {
    WalWriter writer(path, FsyncMode::kNone);
    for (const WalRecord& r : want) writer.append(r);
    EXPECT_EQ(writer.records(), want.size());
    EXPECT_GT(writer.bytes(), 0u);
  }
  std::vector<WalRecord> got;
  const WalReadStats stats =
      read_wal(path, [&](const WalRecord& r) { got.push_back(r); });
  EXPECT_EQ(stats.records, want.size());
  EXPECT_EQ(stats.bytes_used, stats.bytes_total);
  EXPECT_EQ(stats.dropped_torn, 0u);
  EXPECT_EQ(stats.dropped_corrupt, 0u);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) expect_equal(got[i], want[i]);
  std::remove(path.c_str());
}

TEST(Wal, MissingFileReadsAsEmpty) {
  const WalReadStats stats = read_wal(
      temp_path("never_created"),
      [](const WalRecord&) { FAIL() << "sink called on missing file"; });
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.bytes_total, 0u);
}

TEST(Wal, TornTailAtEveryTruncationOffsetDropsOnlyTheTail) {
  const std::string path = temp_path("torn");
  const auto want = sample_records();
  {
    WalWriter writer(path, FsyncMode::kNone);
    for (const WalRecord& r : want) writer.append(r);
  }
  const std::string full = read_file(path);

  // Frame boundaries: prefix lengths at which exactly k records survive.
  std::vector<std::size_t> boundary = {0};
  for (const WalRecord& r : want) {
    boundary.push_back(boundary.back() + 8 + encode_wal_body(r).size());
  }
  ASSERT_EQ(boundary.back(), full.size());

  const std::string torn_path = temp_path("torn_cut");
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    write_file(torn_path, full.substr(0, cut));
    std::vector<WalRecord> got;
    WalReadStats stats;
    ASSERT_NO_THROW(stats = read_wal(
                        torn_path,
                        [&](const WalRecord& r) { got.push_back(r); }))
        << "cut at byte " << cut;
    std::size_t whole = 0;
    while (whole + 1 < boundary.size() && boundary[whole + 1] <= cut) ++whole;
    ASSERT_EQ(got.size(), whole) << "cut at byte " << cut;
    for (std::size_t i = 0; i < whole; ++i) expect_equal(got[i], want[i]);
    EXPECT_EQ(stats.bytes_used, boundary[whole]) << "cut at byte " << cut;
    EXPECT_EQ(stats.bytes_total, cut);
    if (cut != boundary[whole]) {
      EXPECT_EQ(stats.dropped_torn, 1u) << "cut at byte " << cut;
    }
  }
  std::remove(path.c_str());
  std::remove(torn_path.c_str());
}

TEST(Wal, CorruptByteAnywhereNeverPanicsAndKeepsThePrefix) {
  const std::string path = temp_path("corrupt");
  const auto want = sample_records();
  {
    WalWriter writer(path, FsyncMode::kNone);
    for (const WalRecord& r : want) writer.append(r);
  }
  const std::string full = read_file(path);
  const std::size_t first_frame = 8 + encode_wal_body(want[0]).size();

  const std::string bad_path = temp_path("corrupt_flip");
  for (std::size_t at = 0; at < full.size(); ++at) {
    std::string bent = full;
    bent[at] = static_cast<char>(bent[at] ^ 0x40);
    write_file(bad_path, bent);
    std::vector<WalRecord> got;
    ASSERT_NO_THROW(
        read_wal(bad_path, [&](const WalRecord& r) { got.push_back(r); }))
        << "flip at byte " << at;
    // A flip inside frame k can at most kill records k..end; everything
    // before the flipped frame must still decode exactly.
    if (at >= first_frame) {
      ASSERT_GE(got.size(), 1u) << "flip at byte " << at;
      expect_equal(got[0], want[0]);
    }
    // Never *more* records than were written, and any record that does
    // decode carries a valid CRC, so it must equal what was written.
    ASSERT_LE(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) expect_equal(got[i], want[i]);
  }
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(Wal, FsyncModesProduceByteIdenticalLogs) {
  const auto want = sample_records();
  std::vector<std::string> contents;
  for (const FsyncMode mode :
       {FsyncMode::kNone, FsyncMode::kBatch, FsyncMode::kAlways}) {
    const std::string path = temp_path("mode" + to_string(mode));
    {
      WalWriter writer(path, mode);
      for (const WalRecord& r : want) writer.append(r);
      writer.sync();
    }
    contents.push_back(read_file(path));
    std::remove(path.c_str());
  }
  EXPECT_EQ(contents[0], contents[1]);
  EXPECT_EQ(contents[1], contents[2]);
  EXPECT_GT(contents[0].size(), 0u);
}

TEST(Wal, TruncateEmptiesTheLogButKeepsCumulativeCounters) {
  const std::string path = temp_path("truncate");
  WalWriter writer(path, FsyncMode::kNone);
  for (const WalRecord& r : sample_records()) writer.append(r);
  EXPECT_EQ(writer.records_since_truncate(), 3u);

  writer.truncate();
  EXPECT_EQ(writer.records_since_truncate(), 0u);
  EXPECT_EQ(writer.records(), 3u);  // monotonic stats survive
  EXPECT_EQ(read_wal(path, [](const WalRecord&) {}).records, 0u);

  // Appends after a truncate land at offset 0 and read back.
  WalRecord again = sample_records()[0];
  again.seqno = 99;
  writer.append(again);
  std::vector<WalRecord> got;
  read_wal(path, [&](const WalRecord& r) { got.push_back(r); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seqno, 99u);
  std::remove(path.c_str());
}

TEST(Wal, FsyncModeStringsRoundTrip) {
  for (const FsyncMode mode :
       {FsyncMode::kNone, FsyncMode::kBatch, FsyncMode::kAlways}) {
    EXPECT_EQ(fsync_mode_from_string(to_string(mode)), mode);
  }
  EXPECT_THROW(fsync_mode_from_string("sometimes"), ParseError);
}

}  // namespace
}  // namespace sbx::serve
