// Strict-decode fuzzing: every truncation offset and every single-byte
// flip of every message type must either decode cleanly or throw
// ParseError — never crash, hang, or over-read (ASan enforces the latter).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  return {frame.begin() + 4, frame.end()};
}

std::vector<Request> sample_requests() {
  ClassifyBatchRequest c;
  c.user_id = 3;
  c.messages = {"Subject: a\n\nbody", "", std::string(300, 'x')};

  TrainRequest t;
  t.user_id = 0xABCDEF0123456789ull;
  t.as_spam = true;
  t.copies = 7;
  t.message = "Subject: t\n\ntrain me";
  t.request_id = 0x1122334455667788ull;

  UntrainRequest u;
  u.user_id = 1;
  u.as_spam = false;
  u.copies = 1;
  u.message = "m";
  u.request_id = 9;

  ReplicateBatchRequest rb;
  WalRecord r1;
  r1.op = kWalOpTrain;
  r1.seqno = 11;
  r1.user_id = 4;
  r1.request_id = 0xFEEDFACE;
  r1.as_spam = true;
  r1.copies = 2;
  r1.message = "Subject: shipped\n\nreplicated body";
  WalRecord r2;
  r2.op = kWalOpUntrain;
  r2.seqno = 12;
  r2.user_id = 4;
  r2.request_id = 0;
  r2.as_spam = true;
  r2.copies = 1;
  r2.message = std::string("nul\0inside", 10);
  rb.records = {{0, r1}, {1, r2}};

  return {Request(c), Request(t), Request(u), Request(StatsRequest{}),
          Request(ShutdownRequest{}), Request(rb),
          Request(PromoteRequest{})};
}

std::vector<Response> sample_responses() {
  ClassifyBatchResponse c;
  c.results = {{0.987654321, 2}, {0.01, 0}, {0.5, 1}};

  TrainResponse t;
  t.overlay_generation = 42;
  t.overlay_spam = 3;
  t.overlay_ham = 1;

  UntrainResponse u;
  u.overlay_generation = 43;
  u.overlay_spam = 2;
  u.overlay_ham = 1;

  StatsResponse s;
  s.users = 64;
  s.shards = 4;
  s.wal_records = 100;
  s.recovery_ms = 12;
  s.shed_connections = 2;
  s.repl_shipped_seqno = 900;
  s.repl_acked_seqno = 897;
  s.repl_lag_records = 3;
  s.standby_applied_records = 897;
  s.group_commit_windows = 55;
  s.incremental_snapshot_bytes = 4096;

  ErrorResponse e;
  e.message = "broken";
  e.code = static_cast<std::uint8_t>(ErrorCode::kOverloaded);

  ErrorResponse np;
  np.message = "standby refuses train";
  np.code = static_cast<std::uint8_t>(ErrorCode::kNotPrimary);
  np.redirect = "tcp:127.0.0.1:8725";

  ReplicateAckResponse ack;
  ack.acked_seqno = 900;
  ack.applied_records = 123;

  PromoteResponse p;
  p.last_applied_seqno = 900;

  return {Response(c),  Response(t), Response(u),   Response(s),
          Response(ShutdownResponse{}), Response(e), Response(np),
          Response(ack), Response(p)};
}

/// Decoding any mangled payload must end in a value or a ParseError —
/// nothing else escapes, nothing crashes.
template <typename DecodeFn>
void expect_contained(const std::vector<std::uint8_t>& payload,
                      const DecodeFn& decode, const std::string& what) {
  try {
    decode(payload);
  } catch (const ParseError&) {
    // expected for most mutations
  } catch (const std::exception& e) {
    FAIL() << what << ": escaped non-ParseError exception: " << e.what();
  }
}

TEST(ProtocolFuzz, RequestsRejectEveryTruncationOffset) {
  for (const Request& request : sample_requests()) {
    const auto payload = payload_of(encode_frame(request));
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const std::vector<std::uint8_t> cut(payload.begin(),
                                          payload.begin() + len);
      EXPECT_THROW(decode_request(cut), ParseError)
          << "type " << request.index() << " truncated to " << len << "/"
          << payload.size() << " bytes decoded anyway";
    }
    // Sanity: the untruncated payload still decodes.
    EXPECT_EQ(decode_request(payload).index(), request.index());
  }
}

TEST(ProtocolFuzz, ResponsesRejectEveryTruncationOffset) {
  for (const Response& response : sample_responses()) {
    const auto payload = payload_of(encode_frame(response));
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const std::vector<std::uint8_t> cut(payload.begin(),
                                          payload.begin() + len);
      EXPECT_THROW(decode_response(cut), ParseError)
          << "type " << response.index() << " truncated to " << len << " bytes";
    }
    EXPECT_EQ(decode_response(payload).index(), response.index());
  }
}

TEST(ProtocolFuzz, RequestsSurviveEverySingleByteFlip) {
  for (const Request& request : sample_requests()) {
    const auto payload = payload_of(encode_frame(request));
    for (std::size_t at = 0; at < payload.size(); ++at) {
      for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
        auto bent = payload;
        bent[at] = static_cast<std::uint8_t>(bent[at] ^ mask);
        expect_contained(
            bent, [](const std::vector<std::uint8_t>& p) { decode_request(p); },
            "request type " + std::to_string(request.index()) + " flip at " +
                std::to_string(at));
      }
    }
  }
}

TEST(ProtocolFuzz, ResponsesSurviveEverySingleByteFlip) {
  for (const Response& response : sample_responses()) {
    const auto payload = payload_of(encode_frame(response));
    for (std::size_t at = 0; at < payload.size(); ++at) {
      for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
        auto bent = payload;
        bent[at] = static_cast<std::uint8_t>(bent[at] ^ mask);
        expect_contained(
            bent,
            [](const std::vector<std::uint8_t>& p) { decode_response(p); },
            "response type " + std::to_string(response.index()) + " flip at " +
                std::to_string(at));
      }
    }
  }
}

TEST(ProtocolFuzz, TrailingGarbageIsRejected) {
  for (const Request& request : sample_requests()) {
    auto payload = payload_of(encode_frame(request));
    payload.push_back(0);
    EXPECT_THROW(decode_request(payload), ParseError)
        << "request type " << request.index() << " accepted a trailing byte";
  }
  for (const Response& response : sample_responses()) {
    auto payload = payload_of(encode_frame(response));
    payload.push_back(0xFF);
    EXPECT_THROW(decode_response(payload), ParseError)
        << "response type " << response.index() << " accepted a trailing byte";
  }
}

TEST(ProtocolFuzz, WrongVersionAndUnknownTypeAreRejected) {
  auto payload = payload_of(encode_frame(Request(StatsRequest{})));
  auto wrong_version = payload;
  wrong_version[0] = kProtocolVersion + 1;
  EXPECT_THROW(decode_request(wrong_version), ParseError);

  auto unknown_type = payload;
  unknown_type[1] = 0x7E;
  EXPECT_THROW(decode_request(unknown_type), ParseError);
  EXPECT_THROW(decode_response(unknown_type), ParseError);
}

}  // namespace
}  // namespace sbx::serve
