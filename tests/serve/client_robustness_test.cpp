// Server/Client robustness tests: byte-at-a-time frame delivery, stale
// unix-socket recovery, connection-cap load shedding, read timeouts,
// client deadlines, retry-with-reconnect, and graceful drain.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/base_model.h"
#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

BaseModelConfig small_base() { return {/*base_size=*/200, 0.5, /*seed=*/5}; }

std::string temp_sock(const std::string& tag) {
  return testing::TempDir() + "sbx_robust_" + tag + "_" +
         std::to_string(static_cast<unsigned>(::getpid())) + ".sock";
}

/// Frontend + server + serving thread, torn down in order.
struct LiveServer {
  ServeFrontend frontend;
  Server server;
  std::thread serving;

  explicit LiveServer(const std::string& endpoint, ServerConfig config = {})
      : frontend(build_base_filter(small_base()), {2, 8}),
        server(frontend, endpoint, config),
        serving([this] { server.run(); }) {}

  ~LiveServer() {
    server.request_drain();
    serving.join();
  }
};

/// Raw blocking unix-socket connection (no Client conveniences).
int raw_unix_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

TEST(ClientRobustness, ByteAtATimeRequestStillDecodes) {
  const std::string path = temp_sock("dribble");
  LiveServer live("unix:" + path);

  // Dribble a StatsRequest frame one byte at a time with pauses: every
  // read on the server side returns a single byte, so any code that
  // assumes read() delivers whole headers or bodies breaks here.
  const auto frame = encode_frame(Request(StatsRequest{}));
  const int fd = raw_unix_connect(path);
  for (const std::uint8_t byte : frame) {
    ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The response comes back framed; read it whole and decode.
  std::vector<std::uint8_t> header(4);
  ASSERT_EQ(::recv(fd, header.data(), 4, MSG_WAITALL), 4);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  std::vector<std::uint8_t> payload(len);
  ASSERT_EQ(::recv(fd, payload.data(), len, MSG_WAITALL),
            static_cast<ssize_t>(len));
  const Response response = decode_response(payload);
  ASSERT_TRUE(std::holds_alternative<StatsResponse>(response));
  EXPECT_EQ(std::get<StatsResponse>(response).users, 8u);
  ::close(fd);
  std::remove(path.c_str());
}

TEST(ClientRobustness, StaleUnixSocketIsUnlinkedLiveOneIsNot) {
  const std::string path = temp_sock("stale");
  // Fabricate a stale socket: bind creates the filesystem entry, closing
  // the fd (without unlink) leaves it behind — exactly what kill -9 does.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(
        ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(fd);
  }

  // A new server must detect the corpse and take the endpoint over...
  LiveServer live("unix:" + path);
  Client client("unix:" + path);
  EXPECT_TRUE(std::holds_alternative<StatsResponse>(
      client.call(Request(StatsRequest{}))));

  // ...but a second server must NOT steal the now-live socket.
  ServeFrontend other(build_base_filter(small_base()), {2, 8});
  EXPECT_THROW(Server(other, "unix:" + path), IoError);
  // The refused constructor didn't break the running server.
  EXPECT_TRUE(std::holds_alternative<StatsResponse>(
      client.call(Request(StatsRequest{}))));
  std::remove(path.c_str());
}

TEST(ClientRobustness, NonSocketFileAtUnixPathIsNeverDeleted) {
  const std::string path = temp_sock("regular_file");
  { std::FILE* f = std::fopen(path.c_str(), "w"); std::fclose(f); }
  ServeFrontend frontend(build_base_filter(small_base()), {2, 8});
  EXPECT_THROW(Server(frontend, "unix:" + path), IoError);
  // The regular file is still there — bind errors must not delete data.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ClientRobustness, ConnectionCapShedsWithOverloadedError) {
  const std::string path = temp_sock("shed");
  ServerConfig config;
  config.max_connections = 1;
  LiveServer live("unix:" + path, config);

  Client first("unix:" + path);  // occupies the only slot
  ASSERT_TRUE(std::holds_alternative<StatsResponse>(
      first.call(Request(StatsRequest{}))));

  // The second connection is accepted just long enough to be told to go
  // away. Depending on write/close timing the client sees either the
  // ErrorResponse{kOverloaded} frame or the closed connection as IoError.
  ClientOptions one_shot;
  one_shot.max_attempts = 1;
  bool shed_seen = false;
  try {
    Client second("unix:" + path, one_shot);
    const Response r = second.call(Request(StatsRequest{}));
    const auto* e = std::get_if<ErrorResponse>(&r);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->code, static_cast<std::uint8_t>(ErrorCode::kOverloaded));
    shed_seen = true;
  } catch (const IoError&) {
    shed_seen = true;
  }
  EXPECT_TRUE(shed_seen);
  EXPECT_GE(live.server.counters().shed.load(), 1u);
  EXPECT_GE(live.frontend.stats().shed_connections, 1u);

  // Releasing the first slot lets a new connection in.
  first.disconnect();
  ClientOptions patient;
  patient.max_attempts = 5;
  Client third("unix:" + path, patient);
  EXPECT_TRUE(std::holds_alternative<StatsResponse>(
      third.call(Request(StatsRequest{}))));
  std::remove(path.c_str());
}

TEST(ClientRobustness, ServerReadTimeoutDropsStalledMidFrameConnection) {
  const std::string path = temp_sock("stall");
  ServerConfig config;
  config.read_timeout_ms = 150;
  LiveServer live("unix:" + path, config);

  const int fd = raw_unix_connect(path);
  // Two bytes of frame header, then silence: the server must give up after
  // read_timeout_ms instead of wedging the connection thread forever.
  const std::uint8_t partial[2] = {0x08, 0x00};
  ASSERT_EQ(::send(fd, partial, 2, MSG_NOSIGNAL), 2);

  const auto start = std::chrono::steady_clock::now();
  std::uint8_t byte = 0;
  const ssize_t n = ::recv(fd, &byte, 1, 0);  // blocks until server closes
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LE(n, 0);  // EOF (or reset), never data
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited),
            std::chrono::milliseconds(5000));
  ::close(fd);

  // The stalled connection's demise didn't hurt anyone else.
  Client client("unix:" + path);
  EXPECT_TRUE(std::holds_alternative<StatsResponse>(
      client.call(Request(StatsRequest{}))));
  std::remove(path.c_str());
}

TEST(ClientRobustness, ClientDeadlineBoundsASilentServer) {
  // A listener that accepts and then says nothing, forever.
  const std::string path = temp_sock("silent");
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  std::thread accepting([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    // Hold the connection open but never respond.
    std::this_thread::sleep_for(std::chrono::seconds(2));
    if (fd >= 0) ::close(fd);
  });

  ClientOptions options;
  options.op_timeout_ms = 150;
  options.max_attempts = 1;
  Client client("unix:" + path, options);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.call(Request(StatsRequest{})), IoError);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited),
            std::chrono::milliseconds(5000));

  accepting.join();
  ::close(listen_fd);
  std::remove(path.c_str());
}

TEST(ClientRobustness, RetryReconnectsAfterServerSideClose) {
  const std::string path = temp_sock("retry");
  ServerConfig config;
  config.idle_timeout_ms = 100;  // server hangs up on idle connections
  LiveServer live("unix:" + path, config);

  ClientOptions options;
  options.max_attempts = 4;
  options.backoff_base_ms = 1;
  Client client("unix:" + path, options);
  ASSERT_TRUE(std::holds_alternative<StatsResponse>(
      client.call(Request(StatsRequest{}))));

  // Let the server reap the idle connection, then call again: the client
  // must notice the dead socket, reconnect, and succeed transparently.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(std::holds_alternative<StatsResponse>(
      client.call(Request(StatsRequest{}))));
  EXPECT_GE(client.retries(), 1u);
  std::remove(path.c_str());
}

TEST(ClientRobustness, DrainFinishesInFlightWorkAndStopsAccepting) {
  const std::string path = temp_sock("drain");
  auto frontend = std::make_unique<ServeFrontend>(
      build_base_filter(small_base()), FrontendConfig{2, 8});
  Server server(*frontend, "unix:" + path);
  std::thread serving([&] { server.run(); });

  Client client("unix:" + path);
  ASSERT_TRUE(std::holds_alternative<StatsResponse>(
      client.call(Request(StatsRequest{}))));

  server.request_drain();
  serving.join();  // run() returned: listener closed, threads joined

  // The endpoint is gone — a fresh connect must fail.
  ClientOptions one_shot;
  one_shot.max_attempts = 1;
  one_shot.connect_timeout_ms = 500;
  EXPECT_THROW(Client("unix:" + path, one_shot), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sbx::serve
