// ModelShard / UserModel / routing-layer unit tests, including the
// concurrent classify-during-mutation test the TSan build exercises.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/shard.h"
#include "util/error.h"
#include "util/sharding.h"

namespace sbx::serve {
namespace {

spambayes::TokenIdSet ids_for(std::initializer_list<spambayes::TokenId> ids) {
  return spambayes::TokenIdSet(ids);
}

TEST(Sharding, Mix64SpreadsSequentialKeys) {
  // Sequential user ids must not land on sequential shards; check the
  // splitmix64 route covers all shards for a small population.
  std::vector<int> hits(4, 0);
  for (std::uint64_t uid = 0; uid < 64; ++uid) {
    ++hits[util::shard_of(uid, 4)];
  }
  for (int h : hits) EXPECT_GT(h, 0);
  EXPECT_THROW(util::shard_of(1, 0), InvalidArgument);
}

TEST(ModelShard, RejectsZeroUsersAndOutOfRangeSlots) {
  EXPECT_THROW(ModelShard(0), InvalidArgument);
  ModelShard shard(2);
  EXPECT_THROW(shard.overlay(2), InvalidArgument);
}

TEST(ModelShard, TrainPublishesAndUntrainReverses) {
  ModelShard shard(3);
  EXPECT_EQ(shard.overlay(1), nullptr);

  shard.apply_train(1, ids_for({1, 2, 3}), /*as_spam=*/true, /*copies=*/2);
  const OverlaySnapshot snap = shard.overlay(1);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->spam_count(), 2u);
  EXPECT_EQ(snap->counts(2).spam, 2u);
  EXPECT_EQ(shard.overlay(0), nullptr);  // neighbors untouched

  shard.apply_untrain(1, ids_for({1, 2, 3}), /*as_spam=*/true, /*copies=*/2);
  const OverlaySnapshot after = shard.overlay(1);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->spam_count(), 0u);
  // The snapshot taken before the untrain is immutable: it still shows
  // the trained counts (this is what makes mid-batch reads safe).
  EXPECT_EQ(snap->spam_count(), 2u);
}

TEST(ModelShard, UntrainOfUntrainedUserThrowsAndChangesNothing) {
  ModelShard shard(1);
  EXPECT_THROW(shard.apply_untrain(0, ids_for({5}), true, 1), Error);
  EXPECT_EQ(shard.overlay(0), nullptr);

  shard.apply_train(0, ids_for({5}), /*as_spam=*/false, 1);
  const OverlaySnapshot published = shard.overlay(0);
  // Reversing a *different* message fails loudly and leaves the published
  // overlay exactly as it was.
  EXPECT_THROW(shard.apply_untrain(0, ids_for({6}), false, 1), Error);
  EXPECT_EQ(shard.overlay(0), published);
}

TEST(ModelShard, StatsAggregateUsersAndCounters) {
  ModelShard shard(4);
  shard.apply_train(0, ids_for({1}), true, 1);
  shard.apply_train(2, ids_for({2}), false, 1);
  shard.apply_train(2, ids_for({3}), false, 1);
  shard.record_classified(1, 10);
  const ShardStats s = shard.stats();
  EXPECT_EQ(s.users, 4u);
  EXPECT_EQ(s.overlay_users, 2u);
  EXPECT_EQ(s.classified_messages, 10u);
  EXPECT_EQ(s.mutations, 3u);
}

TEST(ModelShard, GenerationsStrictlyIncreaseAcrossPublishes) {
  ModelShard shard(1);
  std::uint64_t last = 0;
  for (int i = 0; i < 10; ++i) {
    shard.apply_train(0, ids_for({static_cast<spambayes::TokenId>(i)}), true,
                      1);
    const std::uint64_t gen = shard.overlay(0)->generation();
    EXPECT_GT(gen, last);
    last = gen;
  }
}

// The TSan target: lock-free snapshot reads racing copy-mutate-publish
// writers. Readers continuously acquire snapshots and walk their counts
// while two writer threads train/untrain through the shard lock.
TEST(ModelShard, ConcurrentSnapshotReadsDuringMutation) {
  ModelShard shard(2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const OverlaySnapshot snap = shard.overlay(0);
        if (snap) {
          // Touch the snapshot's data; TSan flags any write racing this.
          volatile std::uint32_t sink = snap->spam_count() + snap->counts(1).spam;
          (void)sink;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        shard.apply_train(0, ids_for({1, 2}), /*as_spam=*/w == 0, 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  const OverlaySnapshot final_snap = shard.overlay(0);
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->spam_count() + final_snap->ham_count(), 400u);
}

}  // namespace
}  // namespace sbx::serve
