// The serving layer's correctness bar (ISSUE PR 6): overlay scoring must
// be bit-identical to standalone filters.
//
//  1. Empty overlay == base: a user with no feedback classifies exactly
//     like the shared base filter.
//  2. Overlay-train == standalone-train: training messages M through the
//     serve API classifies exactly like one Filter trained on base + M.
//  3. Untrain exactly reverses train at the score-bit level.
//  4. Published overlay generations are strictly increasing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "email/rfc2822.h"
#include "serve/base_model.h"
#include "serve/frontend.h"
#include "util/error.h"
#include "util/random.h"

namespace sbx::serve {
namespace {

/// A small deterministic workload: the shared base plus probe/feedback
/// message pools.
struct Fixture {
  Fixture() {
    util::Rng rng(99);
    for (int i = 0; i < 20; ++i) {
      probes.push_back(email::render_message(
          i % 2 == 0 ? generator.generate_ham(rng)
                     : generator.generate_spam(rng)));
    }
    for (int i = 0; i < 8; ++i) {
      feedback.push_back(email::render_message(
          i % 2 == 0 ? generator.generate_spam(rng)
                     : generator.generate_ham(rng)));
    }
  }

  BaseModelConfig base_config{/*base_size=*/300, /*spam_fraction=*/0.5,
                              /*seed=*/11};
  corpus::TrecLikeGenerator generator;
  std::vector<std::string> probes;
  std::vector<std::string> feedback;
};

std::vector<ClassifyResult> classify_all(ServeFrontend& frontend,
                                         std::uint64_t user,
                                         const std::vector<std::string>& msgs) {
  ClassifyBatchRequest request;
  request.user_id = user;
  request.messages = msgs;
  return frontend.classify_batch(request).results;
}

TEST(OverlayEquivalence, EmptyOverlayMatchesBaseFilterBitwise) {
  Fixture fx;
  spambayes::Filter standalone = build_base_filter(fx.base_config);
  ServeFrontend frontend(build_base_filter(fx.base_config), {4, 16});

  const auto served = classify_all(frontend, 3, fx.probes);
  ASSERT_EQ(served.size(), fx.probes.size());
  for (std::size_t i = 0; i < fx.probes.size(); ++i) {
    const auto direct =
        standalone.classify(email::parse_message(fx.probes[i]));
    // EXPECT_EQ on doubles is exact equality — the bit-identity claim.
    EXPECT_EQ(served[i].score, direct.score) << "probe " << i;
    EXPECT_EQ(served[i].verdict, verdict_to_byte(direct.verdict))
        << "probe " << i;
  }
}

TEST(OverlayEquivalence, TrainedOverlayMatchesStandaloneTrainedCopyBitwise) {
  Fixture fx;
  ServeFrontend frontend(build_base_filter(fx.base_config), {4, 16});
  spambayes::Filter standalone = build_base_filter(fx.base_config);

  for (std::size_t i = 0; i < fx.feedback.size(); ++i) {
    const bool as_spam = i % 2 == 0;
    TrainRequest t;
    t.user_id = 5;
    t.as_spam = as_spam;
    t.copies = 1 + static_cast<std::uint32_t>(i % 3);
    t.message = fx.feedback[i];
    frontend.train(t);
    const email::Message parsed = email::parse_message(fx.feedback[i]);
    const spambayes::TokenIdSet ids = standalone.message_token_ids(parsed);
    if (as_spam) {
      standalone.train_spam_ids(ids, t.copies);
    } else {
      standalone.train_ham_ids(ids, t.copies);
    }
  }

  const auto served = classify_all(frontend, 5, fx.probes);
  for (std::size_t i = 0; i < fx.probes.size(); ++i) {
    const auto direct =
        standalone.classify(email::parse_message(fx.probes[i]));
    EXPECT_EQ(served[i].score, direct.score) << "probe " << i;
    EXPECT_EQ(served[i].verdict, verdict_to_byte(direct.verdict))
        << "probe " << i;
  }

  // Another user on the same frontend is unaffected by user 5's feedback.
  spambayes::Filter clean_base = build_base_filter(fx.base_config);
  const auto other = classify_all(frontend, 6, fx.probes);
  for (std::size_t i = 0; i < fx.probes.size(); ++i) {
    EXPECT_EQ(other[i].score,
              clean_base.classify(email::parse_message(fx.probes[i])).score);
  }
}

TEST(OverlayEquivalence, UntrainExactlyReversesTrain) {
  Fixture fx;
  ServeFrontend frontend(build_base_filter(fx.base_config), {2, 8});

  const auto before = classify_all(frontend, 1, fx.probes);
  TrainRequest t;
  t.user_id = 1;
  t.as_spam = true;
  t.copies = 2;
  t.message = fx.feedback[0];
  frontend.train(t);
  const auto during = classify_all(frontend, 1, fx.probes);

  UntrainRequest u;
  u.user_id = 1;
  u.as_spam = true;
  u.copies = 2;
  u.message = fx.feedback[0];
  const UntrainResponse reversed = frontend.untrain(u);
  EXPECT_EQ(reversed.overlay_spam, 0u);
  EXPECT_EQ(reversed.overlay_ham, 0u);

  const auto after = classify_all(frontend, 1, fx.probes);
  bool any_shift = false;
  for (std::size_t i = 0; i < fx.probes.size(); ++i) {
    EXPECT_EQ(before[i].score, after[i].score) << "probe " << i;
    if (during[i].score != before[i].score) any_shift = true;
  }
  // Sanity: the train actually moved at least one probe, so the
  // before==after equality above proves reversal, not a no-op.
  EXPECT_TRUE(any_shift);
}

TEST(OverlayEquivalence, PublishedGenerationsStrictlyIncrease) {
  Fixture fx;
  ServeFrontend frontend(build_base_filter(fx.base_config), {2, 8});

  std::uint64_t last = 0;
  for (std::size_t i = 0; i < fx.feedback.size(); ++i) {
    TrainRequest t;
    t.user_id = 2;
    t.as_spam = i % 2 == 0;
    t.copies = 1;
    t.message = fx.feedback[i];
    const TrainResponse r = frontend.train(t);
    EXPECT_GT(r.overlay_generation, last)
        << "publish " << i << " must draw a strictly larger generation";
    last = r.overlay_generation;
  }
}

TEST(OverlayEquivalence, UntrainWithoutOverlayFailsLoudly) {
  Fixture fx;
  ServeFrontend frontend(build_base_filter(fx.base_config), {2, 8});
  UntrainRequest u;
  u.user_id = 0;
  u.message = fx.feedback[0];
  EXPECT_THROW(frontend.untrain(u), InvalidArgument);
  // Through dispatch the same failure is a protocol-level ErrorResponse.
  const Response r = frontend.dispatch(Request(u));
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(r));
}

}  // namespace
}  // namespace sbx::serve
