// Wire-format round-trips and strict-decoding failure cases for the
// serving protocol.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

/// Strips the length prefix and checks it matched the payload size.
std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), 6u);  // u32 len + version + type
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data(), 4);  // little-endian host assumed in tests
  EXPECT_EQ(len, frame.size() - 4);
  return {frame.begin() + 4, frame.end()};
}

TEST(Protocol, ClassifyBatchRequestRoundTrip) {
  ClassifyBatchRequest req;
  req.user_id = 0x1122334455667788ULL;
  req.messages = {"Subject: a\n\nbody one", "", "Subject: b\n\nbody two"};
  const auto payload = payload_of(encode_frame(Request(req)));
  const Request back = decode_request(payload);
  const auto& got = std::get<ClassifyBatchRequest>(back);
  EXPECT_EQ(got.user_id, req.user_id);
  EXPECT_EQ(got.messages, req.messages);
}

TEST(Protocol, TrainAndUntrainRoundTrip) {
  TrainRequest t;
  t.user_id = 7;
  t.as_spam = false;
  t.copies = 3;
  t.message = "Subject: x\n\nhello";
  const auto tback =
      std::get<TrainRequest>(decode_request(payload_of(encode_frame(Request(t)))));
  EXPECT_EQ(tback.user_id, 7u);
  EXPECT_FALSE(tback.as_spam);
  EXPECT_EQ(tback.copies, 3u);
  EXPECT_EQ(tback.message, t.message);

  UntrainRequest u;
  u.user_id = 9;
  u.as_spam = true;
  u.copies = 1;
  u.message = "m";
  const auto uback = std::get<UntrainRequest>(
      decode_request(payload_of(encode_frame(Request(u)))));
  EXPECT_EQ(uback.user_id, 9u);
  EXPECT_TRUE(uback.as_spam);
}

TEST(Protocol, EmptyBodyRequestsRoundTrip) {
  EXPECT_TRUE(std::holds_alternative<StatsRequest>(
      decode_request(payload_of(encode_frame(Request(StatsRequest{}))))));
  EXPECT_TRUE(std::holds_alternative<ShutdownRequest>(
      decode_request(payload_of(encode_frame(Request(ShutdownRequest{}))))));
}

TEST(Protocol, ResponsesRoundTripWithScoreBitsIntact) {
  ClassifyBatchResponse c;
  c.results = {{0.123456789012345, 2}, {1.0, 0}, {5e-324, 1}};  // denormal too
  const auto cback = std::get<ClassifyBatchResponse>(
      decode_response(payload_of(encode_frame(Response(c)))));
  ASSERT_EQ(cback.results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cback.results[i].score, c.results[i].score);
    EXPECT_EQ(cback.results[i].verdict, c.results[i].verdict);
  }

  TrainResponse t{/*generation=*/42, /*spam=*/3, /*ham=*/1};
  const auto tback = std::get<TrainResponse>(
      decode_response(payload_of(encode_frame(Response(t)))));
  EXPECT_EQ(tback.overlay_generation, 42u);
  EXPECT_EQ(tback.overlay_spam, 3u);
  EXPECT_EQ(tback.overlay_ham, 1u);

  StatsResponse s;
  s.users = 64;
  s.shards = 4;
  s.classified_messages = 12345;
  const auto sback = std::get<StatsResponse>(
      decode_response(payload_of(encode_frame(Response(s)))));
  EXPECT_EQ(sback.users, 64u);
  EXPECT_EQ(sback.shards, 4u);
  EXPECT_EQ(sback.classified_messages, 12345u);

  ErrorResponse e{"boom"};
  EXPECT_EQ(std::get<ErrorResponse>(
                decode_response(payload_of(encode_frame(Response(e)))))
                .message,
            "boom");
}

TEST(Protocol, V2RequestIdsAndErrorCodesRoundTrip) {
  TrainRequest t;
  t.user_id = 7;
  t.message = "m";
  t.request_id = 0xFEEDFACE12345678ull;
  EXPECT_EQ(std::get<TrainRequest>(
                decode_request(payload_of(encode_frame(Request(t)))))
                .request_id,
            t.request_id);
  // Default (no id) is preserved as 0 = "not idempotent".
  t.request_id = 0;
  EXPECT_EQ(std::get<TrainRequest>(
                decode_request(payload_of(encode_frame(Request(t)))))
                .request_id,
            0u);

  UntrainRequest u;
  u.user_id = 7;
  u.message = "m";
  u.request_id = 99;
  EXPECT_EQ(std::get<UntrainRequest>(
                decode_request(payload_of(encode_frame(Request(u)))))
                .request_id,
            99u);

  ErrorResponse e{"slow down"};
  e.code = static_cast<std::uint8_t>(ErrorCode::kOverloaded);
  const auto eback = std::get<ErrorResponse>(
      decode_response(payload_of(encode_frame(Response(e)))));
  EXPECT_EQ(eback.message, "slow down");
  EXPECT_EQ(eback.code, static_cast<std::uint8_t>(ErrorCode::kOverloaded));
  // Aggregate-init without a code still means kGeneric.
  EXPECT_EQ(ErrorResponse{"boom"}.code,
            static_cast<std::uint8_t>(ErrorCode::kGeneric));
}

TEST(Protocol, V2StatsTelemetryRoundTrips) {
  StatsResponse s;
  s.uptime_ms = 1;
  s.wal_records = 2;
  s.wal_bytes = 3;
  s.wal_snapshots = 4;
  s.recovery_replayed_records = 5;
  s.recovery_torn_dropped = 6;
  s.recovery_ms = 7;
  s.recovery_snapshot_users = 8;
  s.deduped_mutations = 9;
  s.shed_connections = 10;
  s.active_connections = 11;
  const auto back = std::get<StatsResponse>(
      decode_response(payload_of(encode_frame(Response(s)))));
  EXPECT_EQ(back.uptime_ms, 1u);
  EXPECT_EQ(back.wal_records, 2u);
  EXPECT_EQ(back.wal_bytes, 3u);
  EXPECT_EQ(back.wal_snapshots, 4u);
  EXPECT_EQ(back.recovery_replayed_records, 5u);
  EXPECT_EQ(back.recovery_torn_dropped, 6u);
  EXPECT_EQ(back.recovery_ms, 7u);
  EXPECT_EQ(back.recovery_snapshot_users, 8u);
  EXPECT_EQ(back.deduped_mutations, 9u);
  EXPECT_EQ(back.shed_connections, 10u);
  EXPECT_EQ(back.active_connections, 11u);
}

TEST(Protocol, V3ReplicationMessagesRoundTrip) {
  ReplicateBatchRequest rb;
  WalRecord r;
  r.op = kWalOpTrain;
  r.seqno = 0xFFFFFFFFFFFFFFFEull;
  r.user_id = 5;
  r.request_id = 77;
  r.as_spam = true;
  r.copies = 3;
  r.message = std::string("hostile\0payload\r\n", 17);
  WalRecord r2;
  r2.op = kWalOpUntrain;
  r2.seqno = 1;
  r2.message = "";  // empty body is legal on the wire too
  rb.records = {{2, r}, {0, r2}};

  const auto back = std::get<ReplicateBatchRequest>(
      decode_request(payload_of(encode_frame(Request(rb)))));
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0].shard, 2u);
  EXPECT_EQ(back.records[0].record.op, kWalOpTrain);
  EXPECT_EQ(back.records[0].record.seqno, r.seqno);
  EXPECT_EQ(back.records[0].record.user_id, 5u);
  EXPECT_EQ(back.records[0].record.request_id, 77u);
  EXPECT_TRUE(back.records[0].record.as_spam);
  EXPECT_EQ(back.records[0].record.copies, 3u);
  EXPECT_EQ(back.records[0].record.message, r.message);
  EXPECT_EQ(back.records[1].shard, 0u);
  EXPECT_EQ(back.records[1].record.message, "");

  EXPECT_TRUE(std::holds_alternative<PromoteRequest>(
      decode_request(payload_of(encode_frame(Request(PromoteRequest{}))))));

  ReplicateAckResponse ack;
  ack.acked_seqno = 901;
  ack.applied_records = 345;
  const auto aback = std::get<ReplicateAckResponse>(
      decode_response(payload_of(encode_frame(Response(ack)))));
  EXPECT_EQ(aback.acked_seqno, 901u);
  EXPECT_EQ(aback.applied_records, 345u);

  PromoteResponse p;
  p.last_applied_seqno = 901;
  EXPECT_EQ(std::get<PromoteResponse>(
                decode_response(payload_of(encode_frame(Response(p)))))
                .last_applied_seqno,
            901u);

  // A corrupt embedded WAL body (CRC mismatch) must be a loud ParseError.
  auto bent = payload_of(encode_frame(Request(rb)));
  bent[bent.size() - 3] ^= 0x20;  // inside the last record's message bytes
  EXPECT_THROW(decode_request(bent), ParseError);
}

TEST(Protocol, V3StatsAndRedirectRoundTrip) {
  StatsResponse s;
  s.repl_shipped_seqno = 1;
  s.repl_acked_seqno = 2;
  s.repl_lag_records = 3;
  s.standby_applied_records = 4;
  s.group_commit_windows = 5;
  s.incremental_snapshot_bytes = 6;
  const auto back = std::get<StatsResponse>(
      decode_response(payload_of(encode_frame(Response(s)))));
  EXPECT_EQ(back.repl_shipped_seqno, 1u);
  EXPECT_EQ(back.repl_acked_seqno, 2u);
  EXPECT_EQ(back.repl_lag_records, 3u);
  EXPECT_EQ(back.standby_applied_records, 4u);
  EXPECT_EQ(back.group_commit_windows, 5u);
  EXPECT_EQ(back.incremental_snapshot_bytes, 6u);

  ErrorResponse e;
  e.message = "standby refuses train";
  e.code = static_cast<std::uint8_t>(ErrorCode::kNotPrimary);
  e.redirect = "unix:/tmp/primary.sock";
  const auto eback = std::get<ErrorResponse>(
      decode_response(payload_of(encode_frame(Response(e)))));
  EXPECT_EQ(eback.code, static_cast<std::uint8_t>(ErrorCode::kNotPrimary));
  EXPECT_EQ(eback.redirect, "unix:/tmp/primary.sock");
  // Pre-redirect encoders never existed for v3, but an empty redirect is
  // the common case and must stay empty through the wire.
  e.redirect.clear();
  EXPECT_EQ(std::get<ErrorResponse>(
                decode_response(payload_of(encode_frame(Response(e)))))
                .redirect,
            "");
}

TEST(Protocol, RejectsWrongVersion) {
  auto payload = payload_of(encode_frame(Request(StatsRequest{})));
  payload[0] = kProtocolVersion + 1;
  EXPECT_THROW(decode_request(payload), ParseError);
}

TEST(Protocol, RejectsUnknownType) {
  auto payload = payload_of(encode_frame(Request(StatsRequest{})));
  payload[1] = 200;
  EXPECT_THROW(decode_request(payload), ParseError);
}

TEST(Protocol, RejectsTruncatedBody) {
  TrainRequest t;
  t.message = "hello world";
  auto payload = payload_of(encode_frame(Request(t)));
  payload.resize(payload.size() - 4);
  EXPECT_THROW(decode_request(payload), ParseError);
}

TEST(Protocol, RejectsTrailingBytes) {
  auto payload = payload_of(encode_frame(Request(ShutdownRequest{})));
  payload.push_back(0);
  EXPECT_THROW(decode_request(payload), ParseError);
}

TEST(Protocol, RejectsRequestDecodedAsResponse) {
  const auto payload = payload_of(encode_frame(Request(StatsRequest{})));
  EXPECT_THROW(decode_response(payload), ParseError);
}

TEST(Protocol, VerdictByteMapping) {
  EXPECT_EQ(verdict_to_byte(spambayes::Verdict::ham), 0);
  EXPECT_EQ(verdict_to_byte(spambayes::Verdict::unsure), 1);
  EXPECT_EQ(verdict_to_byte(spambayes::Verdict::spam), 2);
  EXPECT_EQ(verdict_from_byte(2), spambayes::Verdict::spam);
  EXPECT_THROW(verdict_from_byte(3), ParseError);
}

}  // namespace
}  // namespace sbx::serve
