// make_corpus: export the synthetic TREC-like corpus as mbox files for use
// outside this repository (e.g. to train a real SpamBayes/BogoFilter
// installation against the same distribution, or to eyeball what the
// generator produces).
//
// Usage:
//   make_corpus [--ham N] [--spam N] [--seed S] [--out DIR]
// Defaults mirror the TREC 2005 class balance at 1/20 scale
// (ham 1,970 / spam 2,640 of the paper's 39,399 / 52,790).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "corpus/generator.h"
#include "email/mbox.h"
#include "util/error.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace sbx;

  std::size_t ham_count = 1'970;
  std::size_t spam_count = 2'640;
  std::uint64_t seed = 2005;
  std::string out_dir = "corpus_out";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--ham") == 0) {
      ham_count = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--spam") == 0) {
      spam_count = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_dir = argv[i + 1];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  try {
    corpus::TrecLikeGenerator generator;
    util::Rng rng(seed);

    std::filesystem::create_directories(out_dir);
    std::vector<email::Message> ham, spam;
    ham.reserve(ham_count);
    spam.reserve(spam_count);
    for (std::size_t i = 0; i < ham_count; ++i) {
      ham.push_back(generator.generate_ham(rng));
    }
    for (std::size_t i = 0; i < spam_count; ++i) {
      spam.push_back(generator.generate_spam(rng));
    }
    const std::string ham_path = out_dir + "/ham.mbox";
    const std::string spam_path = out_dir + "/spam.mbox";
    email::write_mbox_file(ham_path, ham);
    email::write_mbox_file(spam_path, spam);

    std::printf("wrote %zu ham -> %s\n", ham.size(), ham_path.c_str());
    std::printf("wrote %zu spam -> %s\n", spam.size(), spam_path.c_str());
    std::printf("\nround-trip check: ");
    std::size_t reloaded = email::read_mbox_file(ham_path).size() +
                           email::read_mbox_file(spam_path).size();
    std::printf("%zu messages reload cleanly.\n", reloaded);
    std::printf(
        "\ntrain a filter on these with:\n"
        "  sb_filter train --ham %s --spam %s --db tokens.db\n",
        ham_path.c_str(), spam_path.c_str());
    return 0;
  } catch (const sbx::Error& e) {
    std::fprintf(stderr, "make_corpus: %s\n", e.what());
    return 1;
  }
}
