// roni_defense_demo: §5.1's Reject On Negative Impact defense as a
// training-pipeline gatekeeper.
//
// Incoming training candidates — ordinary ham, ordinary spam and a
// dictionary-attack email — are assessed by measuring their marginal
// impact on held-out validation accuracy before they are allowed into the
// training set. The attack email craters validation accuracy and is
// rejected; real mail passes.
//
//   $ ./roni_defense_demo
#include <cstdio>

#include "core/dictionary_attack.h"
#include "core/roni.h"
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "util/random.h"

int main() {
  using namespace sbx;

  corpus::TrecLikeGenerator generator;
  util::Rng rng(4242);

  // The clean pool RONI samples its measurement sets from.
  std::printf("sampling a 600-message clean pool (50%% spam)...\n");
  corpus::Dataset pool_data = generator.sample_mailbox(600, 0.5, rng);
  spambayes::Tokenizer tokenizer;
  corpus::TokenizedDataset pool =
      corpus::tokenize_dataset(pool_data, tokenizer);

  core::RoniDefense defense(core::RoniConfig{}, spambayes::FilterOptions{});
  std::printf("RONI config: |T|=%zu, |V|=%zu, %zu resamples, reject when "
              "mean ham-as-ham decrease > %.1f\n\n",
              defense.config().train_size, defense.config().validation_size,
              defense.config().resamples,
              defense.config().rejection_threshold);

  auto assess = [&](const email::Message& msg, const char* tag) {
    auto ids = spambayes::unique_token_ids(tokenizer.tokenize_ids(msg));
    util::Rng assess_rng = rng.fork(ids.size());
    core::RoniAssessment a = defense.assess(ids, pool, assess_rng);
    std::printf("  %-26s impact %+6.2f ham-as-ham  ->  %s\n", tag,
                a.mean_ham_as_ham_decrease,
                a.rejected ? "REJECTED from training" : "admitted");
  };

  std::printf("assessing training candidates:\n");
  assess(generator.generate_ham(rng), "ordinary ham:");
  assess(generator.generate_ham(rng), "another ham:");
  assess(generator.generate_spam(rng), "ordinary spam:");
  assess(generator.generate_spam(rng), "another spam:");

  core::DictionaryAttack usenet =
      core::DictionaryAttack::usenet(generator.lexicons());
  assess(usenet.attack_message(), "usenet dictionary attack:");
  core::DictionaryAttack aspell =
      core::DictionaryAttack::aspell(generator.lexicons());
  assess(aspell.attack_message(), "aspell dictionary attack:");

  std::printf(
      "\nThe dictionary attacks stick out by an order of magnitude —\n"
      "training on a single one already knocks several validation ham\n"
      "messages into the spam folder. As the paper notes, RONI cannot\n"
      "catch the focused attack this way: its damage only shows on the\n"
      "one future target email, which is not in any validation set.\n");
  return 0;
}
