// quickstart: train a SpamBayes filter on a synthetic inbox, classify new
// mail, poison the filter with a dictionary attack and watch ham
// classifications collapse — the paper's headline result in ~60 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "core/attack_math.h"
#include "core/dictionary_attack.h"
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "util/random.h"

int main() {
  using namespace sbx;

  // 1. A victim inbox: 2,000 messages, half spam.
  corpus::TrecLikeGenerator generator;
  util::Rng rng(2008);
  corpus::Dataset inbox = generator.sample_mailbox(2'000, 0.5, rng);

  // 2. Train the filter the way SpamBayes would.
  spambayes::Filter filter;
  for (const auto& item : inbox.items) {
    if (item.label == corpus::TrueLabel::spam) {
      filter.train_spam(item.message);
    } else {
      filter.train_ham(item.message);
    }
  }

  // 3. Classify fresh mail: the clean filter is accurate.
  auto report = [&](const char* tag) {
    util::Rng probe_rng(777);  // same probes before/after the attack
    int ham_ok = 0, spam_ok = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      auto ham = generator.generate_ham(probe_rng);
      auto spam = generator.generate_spam(probe_rng);
      ham_ok += filter.classify(ham).verdict == spambayes::Verdict::ham;
      spam_ok += filter.classify(spam).verdict == spambayes::Verdict::spam;
    }
    std::printf("%-14s ham classified as ham: %3d/%d    "
                "spam classified as spam: %3d/%d\n",
                tag, ham_ok, n, spam_ok, n);
  };
  report("clean filter:");

  // 4. The attack: the victim trains on spam-labeled emails that contain an
  //    entire dictionary. 1% control of the training set suffices.
  core::DictionaryAttack attack =
      core::DictionaryAttack::usenet(generator.lexicons());
  std::size_t copies = core::attack_message_count(inbox.size(), 0.01);
  std::printf("\ninjecting %zu identical dictionary-attack emails "
              "(%zu-word dictionary, trained as spam)...\n\n",
              copies, attack.dictionary_size());
  filter.train_spam_copies(attack.attack_message(),
                           static_cast<std::uint32_t>(copies));

  // 5. Same probes, poisoned filter: legitimate mail no longer gets through.
  report("poisoned:");

  std::printf("\nThe filter is now useless for its owner: nearly every "
              "legitimate email lands in the spam/unsure folder.\n");
  return 0;
}
