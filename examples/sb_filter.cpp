// sb_filter: a command-line mbox filter in the spirit of SpamBayes'
// sb_filter.py — the operational face of the library.
//
// Train a database from ham/spam mboxes, then classify an mbox and write
// the verdicts (adding X-SBX-Classification headers) or print a summary.
// The token database persists between invocations via save/load.
//
// Usage:
//   sb_filter train --ham ham.mbox --spam spam.mbox --db tokens.db
//   sb_filter classify --db tokens.db --in incoming.mbox [--out tagged.mbox]
//   sb_filter demo     # end-to-end round trip on generated mail in /tmp
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "corpus/generator.h"
#include "email/mbox.h"
#include "spambayes/filter.h"
#include "util/error.h"
#include "util/random.h"

namespace {

using namespace sbx;

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw Error(std::string("expected --flag, got ") + argv[i]);
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

int cmd_train(const std::map<std::string, std::string>& args) {
  spambayes::Filter filter;
  std::size_t ham = 0, spam = 0;
  if (auto it = args.find("ham"); it != args.end()) {
    for (const auto& msg : email::read_mbox_file(it->second)) {
      filter.train_ham(msg);
      ++ham;
    }
  }
  if (auto it = args.find("spam"); it != args.end()) {
    for (const auto& msg : email::read_mbox_file(it->second)) {
      filter.train_spam(msg);
      ++spam;
    }
  }
  const std::string db = args.count("db") ? args.at("db") : "tokens.db";
  filter.database().save_file(db);
  std::printf("trained %zu ham + %zu spam; %zu tokens -> %s\n", ham, spam,
              filter.database().vocabulary_size(), db.c_str());
  return 0;
}

int cmd_classify(const std::map<std::string, std::string>& args) {
  if (!args.count("db") || !args.count("in")) {
    std::fprintf(stderr, "classify needs --db and --in\n");
    return 2;
  }
  spambayes::Filter filter;
  filter.mutable_database() =
      spambayes::TokenDatabase::load_file(args.at("db"));

  std::vector<email::Message> messages = email::read_mbox_file(args.at("in"));
  std::size_t counts[3] = {0, 0, 0};
  for (auto& msg : messages) {
    spambayes::ScoreResult r = filter.classify(msg);
    counts[static_cast<int>(r.verdict)] += 1;
    msg.remove_headers("X-SBX-Classification");
    msg.remove_headers("X-SBX-Score");
    msg.add_header("X-SBX-Classification",
                   std::string(spambayes::to_string(r.verdict)));
    char score[32];
    std::snprintf(score, sizeof(score), "%.6f", r.score);
    msg.add_header("X-SBX-Score", score);
  }
  if (auto it = args.find("out"); it != args.end()) {
    email::write_mbox_file(it->second, messages);
    std::printf("tagged mbox written to %s\n", it->second.c_str());
  }
  std::printf("%zu messages: %zu ham, %zu unsure, %zu spam\n",
              messages.size(), counts[0], counts[1], counts[2]);
  return 0;
}

int cmd_demo() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "sbx_sb_filter_demo";
  fs::create_directories(dir);

  corpus::TrecLikeGenerator generator;
  util::Rng rng(99);
  std::vector<email::Message> ham, spam, incoming;
  for (int i = 0; i < 300; ++i) {
    ham.push_back(generator.generate_ham(rng));
    spam.push_back(generator.generate_spam(rng));
  }
  for (int i = 0; i < 20; ++i) {
    incoming.push_back(generator.generate_ham(rng));
    incoming.push_back(generator.generate_spam(rng));
  }
  email::write_mbox_file((dir / "ham.mbox").string(), ham);
  email::write_mbox_file((dir / "spam.mbox").string(), spam);
  email::write_mbox_file((dir / "incoming.mbox").string(), incoming);
  std::printf("demo corpus in %s\n", dir.string().c_str());

  cmd_train({{"ham", (dir / "ham.mbox").string()},
             {"spam", (dir / "spam.mbox").string()},
             {"db", (dir / "tokens.db").string()}});
  return cmd_classify({{"db", (dir / "tokens.db").string()},
                       {"in", (dir / "incoming.mbox").string()},
                       {"out", (dir / "tagged.mbox").string()}});
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "train") == 0) {
      return cmd_train(parse_args(argc, argv));
    }
    if (argc >= 2 && std::strcmp(argv[1], "classify") == 0) {
      return cmd_classify(parse_args(argc, argv));
    }
    if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) {
      return cmd_demo();
    }
    std::fprintf(stderr,
                 "usage:\n"
                 "  sb_filter train --ham H.mbox --spam S.mbox --db DB\n"
                 "  sb_filter classify --db DB --in IN.mbox [--out OUT.mbox]\n"
                 "  sb_filter demo\n");
    return 2;
  } catch (const sbx::Error& e) {
    std::fprintf(stderr, "sb_filter: %s\n", e.what());
    return 1;
  }
}
