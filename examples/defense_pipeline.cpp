// defense_pipeline: composing both of the paper's defenses into a hardened
// retraining pipeline, then stress-testing it against the dictionary and
// focused attacks.
//
// The pipeline mirrors §2.1's weekly-retraining scenario:
//   1. candidate training mail arrives (user-labeled ham/spam);
//   2. RONI screens every spam-labeled candidate (§5.1);
//   3. the filter retrains on what survives;
//   4. classification thresholds are re-derived from the (possibly still
//      poisoned) training set (§5.2).
//
// The run shows exactly what the paper found: the combination stops the
// dictionary attack cold, while the focused attack slips through RONI.
//
//   $ ./defense_pipeline
#include <cstdio>
#include <vector>

#include "core/dictionary_attack.h"
#include "core/dynamic_threshold.h"
#include "core/focused_attack.h"
#include "core/roni.h"
#include "corpus/generator.h"
#include "eval/metrics.h"
#include "spambayes/filter.h"
#include "util/random.h"

namespace {

using namespace sbx;

struct Candidate {
  email::Message message;
  bool labeled_spam = false;
};

/// The hardened retraining pipeline.
class DefendedTrainer {
 public:
  DefendedTrainer(const corpus::TokenizedDataset& clean_pool, util::Rng rng)
      : roni_(core::RoniConfig{}, spambayes::FilterOptions{}),
        clean_pool_(clean_pool),
        rng_(rng) {}

  /// Returns true when the candidate was admitted to training. Takes the
  /// candidate's cached interned token set — each message is tokenized
  /// exactly once for the whole pipeline (RONI gate, training and the
  /// threshold derivation below all reuse it).
  bool offer(spambayes::Filter& filter, const corpus::TokenizedMessage& c) {
    if (c.label == corpus::TrueLabel::spam) {
      util::Rng assess_rng = rng_.fork(++counter_);
      if (roni_.assess(c.ids, clean_pool_, assess_rng).rejected) {
        ++rejected_;
        return false;
      }
      filter.train_spam_ids(c.ids);
    } else {
      filter.train_ham_ids(c.ids);
    }
    return true;
  }

  std::size_t rejected() const { return rejected_; }

 private:
  core::RoniDefense roni_;
  const corpus::TokenizedDataset& clean_pool_;
  util::Rng rng_;
  std::uint64_t counter_ = 0;
  std::size_t rejected_ = 0;
};

double ham_misclassified_pct(const corpus::TrecLikeGenerator& gen,
                             const spambayes::Filter& filter,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  int bad = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    if (filter.classify(gen.generate_ham(rng)).verdict !=
        spambayes::Verdict::ham) {
      ++bad;
    }
  }
  return 100.0 * bad / n;
}

}  // namespace

int main() {
  corpus::TrecLikeGenerator generator;
  util::Rng rng(31337);

  // Last week's vetted mail doubles as RONI's measurement pool.
  corpus::Dataset pool = generator.sample_mailbox(600, 0.5, rng);
  spambayes::Tokenizer tokenizer;
  corpus::TokenizedDataset tokenized_pool =
      corpus::tokenize_dataset(pool, tokenizer);

  // This week's inbound training batch: 1,000 legitimate candidates plus a
  // 1%-scale dictionary attack and a focused attack on one future email.
  std::vector<Candidate> batch;
  std::vector<email::Message> spam_headers;
  for (int i = 0; i < 500; ++i) {
    batch.push_back({generator.generate_ham(rng), false});
    email::Message s = generator.generate_spam(rng);
    if (spam_headers.size() < 40) spam_headers.push_back(s);
    batch.push_back({std::move(s), true});
  }
  core::DictionaryAttack dictionary =
      core::DictionaryAttack::usenet(generator.lexicons());
  for (int i = 0; i < 10; ++i) {
    batch.push_back({dictionary.attack_message(), true});
  }
  email::Message bid = generator.generate_ham(rng);  // the focused target
  core::FocusedAttack focused(
      {0.5, 0, false}, core::attackable_body_words(bid, tokenizer), rng);
  std::vector<const email::Message*> header_pool;
  for (const auto& s : spam_headers) header_pool.push_back(&s);
  for (auto& m : focused.generate(header_pool, 60, rng)) {
    batch.push_back({std::move(m), true});
  }
  util::Rng shuffle_rng = rng.fork(1);
  shuffle_rng.shuffle(batch);

  // Tokenize the whole batch once; every later stage (undefended training,
  // the RONI gate, defended training, threshold derivation) reuses these
  // interned sets instead of re-tokenizing the same messages.
  corpus::TokenizedDataset batch_tokens;
  std::vector<std::size_t> indices;
  for (const auto& c : batch) {
    batch_tokens.items.emplace_back(
        spambayes::unique_token_ids(tokenizer.tokenize_ids(c.message)),
        c.labeled_spam ? corpus::TrueLabel::spam : corpus::TrueLabel::ham);
    indices.push_back(batch_tokens.items.size() - 1);
  }

  // --- undefended retraining ---
  spambayes::Filter undefended;
  for (const auto& c : batch_tokens.items) {
    if (c.label == corpus::TrueLabel::spam) {
      undefended.train_spam_ids(c.ids);
    } else {
      undefended.train_ham_ids(c.ids);
    }
  }

  // --- defended retraining ---
  spambayes::Filter defended;
  DefendedTrainer trainer(tokenized_pool, rng.fork(2));
  for (const auto& c : batch_tokens.items) trainer.offer(defended, c);
  // Re-derive thresholds from this week's training batch (defense #2).
  util::Rng split_rng = rng.fork(3);
  core::ThresholdPair thresholds = core::compute_dynamic_thresholds(
      batch_tokens, indices, {}, spambayes::FilterOptions{}, {0.05, 0.95},
      split_rng);
  defended.set_cutoffs(thresholds.theta0, thresholds.theta1);

  std::size_t spam_labeled = 0;
  for (const auto& c : batch_tokens.items) {
    spam_labeled += c.label == corpus::TrueLabel::spam ? 1 : 0;
  }
  std::printf("RONI rejected %zu of %zu spam-labeled candidates "
              "(the batch hid 10 dictionary + 60 focused attack emails)\n",
              trainer.rejected(), spam_labeled);
  std::printf("dynamic thresholds: theta0=%.3f theta1=%.3f "
              "(static: 0.150/0.900)\n\n",
              thresholds.theta0, thresholds.theta1);

  std::printf("fresh ham misclassified (spam or unsure):\n");
  std::printf("  undefended filter: %5.1f%%\n",
              ham_misclassified_pct(generator, undefended, 555));
  std::printf("  defended filter:   %5.1f%%\n\n",
              ham_misclassified_pct(generator, defended, 555));

  auto report_bid = [&](const spambayes::Filter& f, const char* tag) {
    auto r = f.classify(bid);
    std::printf("  %-20s score %.3f -> %s\n", tag, r.score,
                std::string(spambayes::to_string(r.verdict)).c_str());
  };
  std::printf("the focused-attack target (a future bid email):\n");
  report_bid(undefended, "undefended filter:");
  report_bid(defended, "defended filter:");
  std::printf(
      "\nRONI caught every dictionary email but admitted all 60 focused\n"
      "attack emails — their damage is invisible on validation sets that\n"
      "do not contain the target (§5.1). The target's token scores remain\n"
      "poisoned in the defended filter; whether it survives depends on\n"
      "where the adaptive thresholds land for this batch. Run\n"
      "bench_fig3_focused_size for the systematic sweep.\n");
  return 0;
}
