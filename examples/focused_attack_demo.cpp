// focused_attack_demo: the paper's §3.3 motivating scenario.
//
// A malicious contractor ("Mallory Construction") wants to stop its
// competitor's bid from reaching the procurement officer. Mallory knows
// the kind of email the competitor will send — company names, product
// terms, a bid template — and mails the victim spam containing those
// words. SpamBayes trains on the spam, the target tokens turn spammy, and
// the real bid lands in the spam folder while the rest of the victim's
// mail flows normally.
//
//   $ ./focused_attack_demo
#include <cstdio>

#include "core/focused_attack.h"
#include "corpus/generator.h"
#include "spambayes/filter.h"
#include "util/random.h"

namespace {

void classify_and_print(const sbx::spambayes::Filter& filter,
                        const sbx::email::Message& msg, const char* tag) {
  auto result = filter.classify(msg);
  std::printf("  %-28s score %.3f -> filed as %s\n", tag, result.score,
              std::string(sbx::spambayes::to_string(result.verdict)).c_str());
}

}  // namespace

int main() {
  using namespace sbx;

  corpus::TrecLikeGenerator generator;
  util::Rng rng(1337);

  // The victim: a procurement office whose filter trained on 4,000 emails.
  std::printf("training the victim's SpamBayes filter on 4,000 emails...\n");
  spambayes::Filter filter;
  std::vector<email::Message> spam_pool;
  for (int i = 0; i < 2'000; ++i) {
    filter.train_ham(generator.generate_ham(rng));
    email::Message s = generator.generate_spam(rng);
    filter.train_spam(s);
    if (spam_pool.size() < 50) spam_pool.push_back(s);
  }

  // The competitor's bid email (a future message the attacker anticipates).
  email::Message bid = generator.generate_ham(rng);
  email::Message unrelated = generator.generate_ham(rng);

  std::printf("\nbefore the attack:\n");
  classify_and_print(filter, bid, "competitor's bid:");
  classify_and_print(filter, unrelated, "unrelated ham:");

  // Mallory guesses half of the bid's words (p = 0.5: a realistic level of
  // insider knowledge per Figure 2) and sends 150 spam emails carrying
  // them, with headers copied from ordinary spam so they blend in.
  spambayes::Tokenizer tokenizer;
  core::FocusedAttackConfig config;
  config.guess_probability = 0.5;
  core::FocusedAttack attack(
      config, core::attackable_body_words(bid, tokenizer), rng);
  std::printf("\nMallory guessed %zu of the bid's words; sending 150 attack "
              "emails (trained as spam)...\n",
              attack.guessed_words().size());

  std::vector<const email::Message*> headers;
  for (const auto& s : spam_pool) headers.push_back(&s);
  for (const auto& poison : attack.generate(headers, 150, rng)) {
    filter.train_spam(poison);
  }

  std::printf("\nafter the attack:\n");
  classify_and_print(filter, bid, "competitor's bid:");
  classify_and_print(filter, unrelated, "unrelated ham:");

  std::printf(
      "\nThe bid is gone from the inbox; everything else still flows.\n"
      "The victim has no reason to suspect the filter (this is the\n"
      "Causative Availability Targeted cell of the paper's taxonomy: %s).\n",
      core::FocusedAttack::properties().description().c_str());
  return 0;
}
