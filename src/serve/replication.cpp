#include "serve/replication.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "util/backoff.h"
#include "util/error.h"

namespace sbx::serve {

ReplAckPolicy repl_ack_policy_from_string(const std::string& s) {
  if (s == "none") return ReplAckPolicy::kNone;
  if (s == "async") return ReplAckPolicy::kAsync;
  if (s == "quorum") return ReplAckPolicy::kQuorum;
  throw ParseError("replication: unknown ack policy '" + s +
                   "' (expected none|async|quorum)");
}

std::string to_string(ReplAckPolicy policy) {
  switch (policy) {
    case ReplAckPolicy::kNone:
      return "none";
    case ReplAckPolicy::kAsync:
      return "async";
    case ReplAckPolicy::kQuorum:
      return "quorum";
  }
  return "none";
}

Replicator::Replicator(ReplicationConfig config) : config_(std::move(config)) {
  if (config_.target.empty()) {
    throw InvalidArgument("replication: target endpoint must not be empty");
  }
  if (config_.ack == ReplAckPolicy::kNone) {
    throw InvalidArgument(
        "replication: ack policy 'none' disables replication — do not "
        "construct a Replicator");
  }
  if (config_.batch_max == 0) {
    throw InvalidArgument("replication: batch_max must be greater than 0");
  }
  shipper_ = std::thread([this] { ship_loop(); });
}

Replicator::~Replicator() { stop(); }

std::uint64_t Replicator::enqueue(std::uint32_t shard,
                                  const WalRecord& record) {
  const util::MutexLock lock(mutex_);
  PendingRecord pending;
  pending.shard = shard;
  pending.record = record;
  pending.ticket = ++next_ticket_;
  queue_.push_back(std::move(pending));
  queue_cv_.notify_one();
  return next_ticket_;
}

void Replicator::wait_acked(std::uint64_t ticket) {
  if (ticket == 0 || config_.ack != ReplAckPolicy::kQuorum) return;
  util::MutexLock lock(mutex_);
  while (acked_ticket_ < ticket && !stopping()) {
    ack_cv_.wait(lock);
  }
}

bool Replicator::flush(long timeout_ms) {
  const util::Deadline deadline = util::Deadline::after_ms(timeout_ms);
  util::MutexLock lock(mutex_);
  while (!queue_.empty() && !stopping()) {
    const int slice = std::min(deadline.remaining_ms(), 100);
    if (deadline.expired()) return false;
    ack_cv_.wait_for_ms(lock, std::max(slice, 1));
  }
  return queue_.empty();
}

void Replicator::stop() {
  stopping_.store(true, std::memory_order_release);
  {
    const util::MutexLock lock(mutex_);
    queue_cv_.notify_all();
    ack_cv_.notify_all();
  }
  if (shipper_.joinable()) shipper_.join();
}

ReplicationStats Replicator::stats() const {
  ReplicationStats out;
  out.shipped_seqno = shipped_seqno_.load(std::memory_order_relaxed);
  out.acked_seqno = acked_seqno_.load(std::memory_order_relaxed);
  out.shipped_records = shipped_records_.load(std::memory_order_relaxed);
  out.acked_records = acked_records_.load(std::memory_order_relaxed);
  out.reconnects = reconnects_.load(std::memory_order_relaxed);
  {
    const util::MutexLock lock(mutex_);
    out.lag_records = queue_.size();
  }
  return out;
}

void Replicator::interruptible_sleep_ms(int ms) {
  const util::Deadline deadline = util::Deadline::after_ms(ms);
  util::MutexLock lock(mutex_);
  while (!stopping() && !deadline.expired()) {
    queue_cv_.wait_for_ms(lock, std::max(deadline.remaining_ms(), 1));
  }
}

void Replicator::ship_loop() {
  util::ExponentialBackoff backoff(config_.backoff_base_ms,
                                   config_.backoff_cap_ms,
                                   config_.jitter_seed);
  std::unique_ptr<Client> client;
  for (;;) {
    // Take (but do not pop) the next batch — the records stay queued
    // until acked, so a crash of this loop's connection never loses them.
    std::vector<PendingRecord> batch;
    {
      util::MutexLock lock(mutex_);
      while (queue_.empty() && !stopping()) {
        queue_cv_.wait(lock);
      }
      if (queue_.empty()) return;  // stopped and drained
      const std::size_t n = std::min<std::size_t>(
          queue_.size(), config_.batch_max);
      batch.assign(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(n));
    }

    ReplicateBatchRequest request;
    request.records.reserve(batch.size());
    std::uint64_t batch_max_seqno = 0;
    for (const PendingRecord& p : batch) {
      request.records.push_back(ReplicatedRecord{p.shard, p.record});
      batch_max_seqno = std::max(batch_max_seqno, p.record.seqno);
    }

    bool acked = false;
    int attempts = 0;
    while (!acked) {
      // During shutdown the in-flight batch gets one last attempt (a
      // graceful drain wants it delivered), then the loop exits instead
      // of backing off against a dead standby.
      if (stopping() && attempts > 0) return;
      ++attempts;
      try {
        if (client == nullptr) {
          ClientOptions options;
          options.connect_timeout_ms = config_.connect_timeout_ms;
          options.op_timeout_ms = config_.op_timeout_ms;
          options.max_attempts = 1;  // this loop owns retry and backoff
          client = std::make_unique<Client>(config_.target, options);
        }
        shipped_records_.fetch_add(batch.size(), std::memory_order_relaxed);
        if (batch_max_seqno >
            shipped_seqno_.load(std::memory_order_relaxed)) {
          shipped_seqno_.store(batch_max_seqno, std::memory_order_relaxed);
        }
        const Response response = client->call(Request{request});
        if (const auto* ack = std::get_if<ReplicateAckResponse>(&response)) {
          if (ack->acked_seqno < batch_max_seqno) {
            // A standby that acks below what we shipped applied a partial
            // batch — protocol-impossible today; resend to be safe.
            client.reset();
          } else {
            acked = true;
            acked_seqno_.store(ack->acked_seqno, std::memory_order_relaxed);
            backoff.reset();
          }
        } else {
          // ErrorResponse (e.g. the peer is itself a primary, or is
          // draining) or an unexpected type: drop the connection and keep
          // trying — in a failover the old standby becomes primary and
          // this process is about to be retired anyway.
          client.reset();
        }
      } catch (const ParseError&) {
        client.reset();
      } catch (const IoError&) {
        client.reset();
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!acked) {
        if (stopping()) return;
        interruptible_sleep_ms(backoff.next_delay_ms());
      }
    }

    acked_records_.fetch_add(batch.size(), std::memory_order_relaxed);
    {
      util::MutexLock lock(mutex_);
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(batch.size()));
      acked_ticket_ = batch.back().ticket;
      ack_cv_.notify_all();
    }
  }
}

}  // namespace sbx::serve
