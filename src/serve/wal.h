// sbx/serve/wal.h
//
// Per-shard write-ahead log for serving mutations (Train/Untrain). Each
// record is framed [u32 body_len][u32 crc32(body)][body] and the body is
// encoded with the same wire codec as the socket protocol:
//
//   body := u8 wal_version (=1), u8 op (1=train, 2=untrain), u64 seqno,
//           u64 user_id, u64 request_id, u8 as_spam, u32 copies,
//           string message
//
// The log stores the *raw message text*, not token ids: interner ids are
// assigned in first-seen order and are not stable across process restarts,
// so replay re-tokenizes through the same pipeline the live request took.
//
// Durability contract: a record is appended (and optionally fsynced, per
// FsyncMode) BEFORE the mutation publishes to readers, and under kBatch
// the client ack is withheld until a group-commit fsync covers the record
// (Durability::await_durable) — so any state a client ever observed is
// reconstructible from snapshot + log. seqnos are drawn from one
// process-global counter, which lets recovery skip records already folded
// into a snapshot.
//
// Torn-write handling: read_wal() verifies length bounds and CRC per
// record and stops at the first frame that doesn't check out — a torn or
// corrupt tail (the expected state after kill -9 mid-append) is dropped,
// never replayed, and the next append truncates it away. A missing log
// file reads as empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace sbx::serve {

inline constexpr std::uint8_t kWalFormatVersion = 1;
inline constexpr std::uint8_t kWalOpTrain = 1;
inline constexpr std::uint8_t kWalOpUntrain = 2;

/// When appends reach the disk platter.
///   kNone   never fsync (page cache only; survives kill -9, not power loss)
///   kBatch  group commit: appends only count; sync() fsyncs when anything
///           is pending, and acks wait for the covering sync
///   kAlways fsync after every record
enum class FsyncMode : std::uint8_t { kNone = 0, kBatch = 1, kAlways = 2 };

FsyncMode fsync_mode_from_string(const std::string& s);
std::string to_string(FsyncMode mode);

/// One logged mutation. `seqno` orders records across all shards.
struct WalRecord {
  std::uint8_t op = kWalOpTrain;
  std::uint64_t seqno = 0;
  std::uint64_t user_id = 0;
  std::uint64_t request_id = 0;
  bool as_spam = true;
  std::uint32_t copies = 1;
  std::string message;
};

/// Append-only writer over one shard's log file. The owning ModelShard
/// already serializes append/truncate under its mutation mutex, but sync()
/// may arrive from a different thread (the group-commit leader or the
/// server's final drain flush), so the file offset and pending-fsync state
/// are additionally serialized by an internal io mutex. Counter reads are
/// safe from any thread.
class WalWriter {
 public:
  WalWriter(std::string path, FsyncMode mode);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Encodes, CRC-frames and appends one record, then applies the fsync
  /// policy (kAlways fsyncs inline; kBatch defers to the next sync()).
  /// Throws IoError on any write/fsync failure (a mutation that cannot be
  /// logged must not publish).
  void append(const WalRecord& record) SBX_EXCLUDES(io_mutex_);

  /// Flushes pending batched writes to disk. No-op for kNone, and skips
  /// the fsync entirely when nothing was appended since the last sync —
  /// that makes a group-commit window over many shards pay only for the
  /// logs it actually dirtied. Safe to call concurrently with append.
  void sync() SBX_EXCLUDES(io_mutex_);

  /// Empties the log (after its records were folded into a snapshot).
  void truncate() SBX_EXCLUDES(io_mutex_);

  const std::string& path() const { return path_; }

  /// Cumulative counters since construction (truncate does not reset
  /// them — they feed monotonic stats).
  std::uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

  /// Records appended since the last truncate() — the snapshot trigger.
  std::uint64_t records_since_truncate() const {
    return since_truncate_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  FsyncMode mode_;
  int fd_ = -1;  // const after the constructor
  util::Mutex io_mutex_{util::LockRank::kWal, "WalWriter::io_mutex_"};
  // Records appended since the last fsync (kBatch bookkeeping).
  std::uint32_t unsynced_ SBX_GUARDED_BY(io_mutex_) = 0;
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> since_truncate_{0};
};

/// Outcome of a log scan. `bytes_used` covers the valid prefix;
/// `bytes_total` the whole file — the difference is the dropped tail.
struct WalReadStats {
  std::uint64_t records = 0;
  std::uint64_t bytes_used = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t dropped_torn = 0;     // truncated mid-frame
  std::uint64_t dropped_corrupt = 0;  // framed but failed CRC/decode
};

/// Scans `path`, invoking `sink` for each valid record in order. Stops at
/// the first torn or corrupt frame (everything after is dropped — records
/// are only meaningful in seqno order). A missing file yields zero stats.
/// Throws IoError only on filesystem-level read failures.
WalReadStats read_wal(const std::string& path,
                      const std::function<void(const WalRecord&)>& sink);

/// Encodes a record body (without the [len][crc] frame) — exposed for
/// tests that craft corrupt logs byte-by-byte and for the replication
/// shipper, which sends the same bytes the log stores.
std::vector<std::uint8_t> encode_wal_body(const WalRecord& record);

/// Strictly decodes a record body (the inverse of encode_wal_body).
/// Throws ParseError on version/op/layout mismatch or trailing bytes.
WalRecord decode_wal_body(std::span<const std::uint8_t> body);

}  // namespace sbx::serve
