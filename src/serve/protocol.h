// sbx/serve/protocol.h
//
// The versioned, length-prefixed request/response protocol of the serving
// API. The structs below ARE the API: ServeFrontend consumes and produces
// them in-process, and the TCP/UDS front-end (server.h) is a thin framing
// layer over the same structs — a client linking the library skips the
// socket entirely and calls ServeFrontend::dispatch with identical
// semantics.
//
// Wire format (all integers little-endian):
//
//   frame    := u32 payload_len, payload            (len counts the payload)
//   payload  := u8 version (=3), u8 msg_type, body
//   string   := u32 byte_len, bytes                 (raw UTF-8/RFC2822 text)
//
// Message bodies (v3):
//
//   ClassifyBatchRequest  u64 user_id, u32 count, count x string
//   TrainRequest          u64 user_id, u64 request_id, u8 as_spam,
//                         u32 copies, string msg
//   UntrainRequest        same body as TrainRequest
//   StatsRequest          (empty)
//   ShutdownRequest       (empty)
//   ReplicateBatchRequest u32 count, count x { u32 shard, u32 body_len,
//                         u32 crc32(body), body } — each entry embeds one
//                         WAL record body verbatim in the same
//                         [len][crc][bytes] shape the log file stores
//   PromoteRequest        (empty)
//   ClassifyBatchResponse u32 count, count x { f64 score, u8 verdict }
//   TrainResponse         u64 overlay_generation, u32 spam, u32 ham
//   UntrainResponse       same body as TrainResponse
//   StatsResponse         27 x u64 (see struct order)
//   ShutdownResponse      (empty)
//   ReplicateAckResponse  u64 acked_seqno, u64 applied_records
//   PromoteResponse       u64 last_applied_seqno
//   ErrorResponse         u8 code, string message, string redirect
//
// Verdict bytes: 0 = ham, 1 = unsure, 2 = spam.
//
// v2 over v1: Train/Untrain carry a client-generated request_id (0 = none)
// that the server logs in its WAL and dedups against, making retries after
// an ambiguous failure idempotent; ErrorResponse carries a machine-readable
// code so clients can tell overload (retry elsewhere/later) from a request
// that will never succeed; StatsResponse adds durability, recovery and
// load-shedding telemetry.
//
// v3 over v2: ReplicateBatch/ReplicateAck ship committed WAL records from
// a primary to a warm standby (shard id + seqno watermark; the record
// bytes reuse the WAL's own CRC-framed codec); Promote flips a standby to
// primary; ErrorResponse carries a redirect endpoint so a standby can
// bounce writers to the primary (ErrorCode kNotPrimary); StatsResponse
// adds replication, group-commit and incremental-snapshot telemetry.
//
// Decoding is strict: unknown version, unknown type, trailing bytes and
// truncated bodies all throw sbx::ParseError (fail loudly, never guess).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "serve/wal.h"
#include "spambayes/classifier.h"

namespace sbx::serve {

inline constexpr std::uint8_t kProtocolVersion = 3;

/// Frames larger than this are rejected before allocation (a corrupt or
/// hostile length prefix must not drive a multi-gigabyte resize).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kClassifyBatchRequest = 1,
  kTrainRequest = 2,
  kUntrainRequest = 3,
  kStatsRequest = 4,
  kShutdownRequest = 5,
  kReplicateBatchRequest = 6,
  kPromoteRequest = 7,
  kClassifyBatchResponse = 129,
  kTrainResponse = 130,
  kUntrainResponse = 131,
  kStatsResponse = 132,
  kShutdownResponse = 133,
  kReplicateAckResponse = 134,
  kPromoteResponse = 135,
  kErrorResponse = 255,
};

/// Machine-readable failure class carried by ErrorResponse.
enum class ErrorCode : std::uint8_t {
  kGeneric = 0,       // request-level failure; retrying won't help
  kOverloaded = 1,    // connection cap hit; retry after backoff
  kShuttingDown = 2,  // server draining; reconnect elsewhere/later
  kNotPrimary = 3,    // standby refuses writes; follow `redirect` if set
};

// --- Requests --------------------------------------------------------------

/// Classify `messages` (raw RFC2822 text) under `user_id`'s model. The
/// whole batch scores against one overlay snapshot.
struct ClassifyBatchRequest {
  std::uint64_t user_id = 0;
  std::vector<std::string> messages;
};

/// Train `copies` identical copies of `message` as spam/ham feedback into
/// the user's overlay. A non-zero `request_id` makes the mutation
/// idempotent: the server remembers recent ids per user and replays the
/// recorded outcome instead of double-applying a retried request.
struct TrainRequest {
  std::uint64_t user_id = 0;
  bool as_spam = true;
  std::uint32_t copies = 1;
  std::string message;
  std::uint64_t request_id = 0;
};

/// Exactly reverses a TrainRequest with the same fields.
struct UntrainRequest {
  std::uint64_t user_id = 0;
  bool as_spam = true;
  std::uint32_t copies = 1;
  std::string message;
  std::uint64_t request_id = 0;
};

struct StatsRequest {};

/// Asks the server to stop accepting connections and return from run().
struct ShutdownRequest {};

/// One shipped WAL record plus the shard whose log it belongs to. The
/// record crosses the wire in the WAL's own body encoding, CRC-checked on
/// decode, so the standby appends byte-identical frames to its own log.
struct ReplicatedRecord {
  std::uint32_t shard = 0;
  WalRecord record;
};

/// A batch of committed WAL records streamed primary -> standby, in the
/// order the primary committed them (per-shard seqnos ascend within the
/// batch). Resends after a reconnect are safe: the standby skips records
/// at or below each shard's last applied seqno.
struct ReplicateBatchRequest {
  std::vector<ReplicatedRecord> records;
};

/// Flips a standby to primary (idempotent on an existing primary). Also
/// triggered out-of-band by SIGUSR1 on the standby process.
struct PromoteRequest {};

// --- Responses -------------------------------------------------------------

/// One scored message: the Fisher score I(E) and the thresholded verdict.
struct ClassifyResult {
  double score = 0.5;
  std::uint8_t verdict = 1;  // 0 ham, 1 unsure, 2 spam
};

struct ClassifyBatchResponse {
  std::vector<ClassifyResult> results;
};

/// Post-mutation overlay summary. `overlay_generation` values for one user
/// are strictly increasing across publishes (the snapshot-consistency
/// proof riding TokenDatabase's process-global generation counter).
struct TrainResponse {
  std::uint64_t overlay_generation = 0;
  std::uint32_t overlay_spam = 0;
  std::uint32_t overlay_ham = 0;
};

struct UntrainResponse {
  std::uint64_t overlay_generation = 0;
  std::uint32_t overlay_spam = 0;
  std::uint32_t overlay_ham = 0;
};

struct StatsResponse {
  std::uint64_t users = 0;
  std::uint64_t shards = 0;
  std::uint64_t overlay_users = 0;
  std::uint64_t classify_requests = 0;
  std::uint64_t classified_messages = 0;
  std::uint64_t train_requests = 0;
  std::uint64_t untrain_requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t base_spam_count = 0;
  std::uint64_t base_ham_count = 0;
  // v2: durability / recovery / robustness telemetry.
  std::uint64_t uptime_ms = 0;
  std::uint64_t wal_records = 0;          // appended since process start
  std::uint64_t wal_bytes = 0;            // ditto
  std::uint64_t wal_snapshots = 0;        // snapshot+truncate cycles
  std::uint64_t recovery_replayed_records = 0;
  std::uint64_t recovery_torn_dropped = 0;
  std::uint64_t recovery_ms = 0;
  std::uint64_t recovery_snapshot_users = 0;
  std::uint64_t deduped_mutations = 0;    // retries absorbed by request_id
  std::uint64_t shed_connections = 0;     // refused at the connection cap
  std::uint64_t active_connections = 0;
  // v3: replication / group-commit / incremental-snapshot telemetry.
  std::uint64_t repl_shipped_seqno = 0;   // highest seqno handed to the wire
  std::uint64_t repl_acked_seqno = 0;     // highest seqno acked by the standby
  std::uint64_t repl_lag_records = 0;     // queued but not yet acked
  std::uint64_t standby_applied_records = 0;  // records applied as a standby
  std::uint64_t group_commit_windows = 0;     // fsync windows closed
  std::uint64_t incremental_snapshot_bytes = 0;
};

struct ShutdownResponse {};

/// Acknowledges a ReplicateBatch: every shipped record with seqno <=
/// `acked_seqno` is applied AND durable on the standby (per its fsync
/// policy). `applied_records` is the standby's cumulative apply counter.
struct ReplicateAckResponse {
  std::uint64_t acked_seqno = 0;
  std::uint64_t applied_records = 0;
};

struct PromoteResponse {
  std::uint64_t last_applied_seqno = 0;
};

/// Any request-level failure (unknown user, untrain of an untrained
/// message, malformed message text). The connection stays usable unless
/// `code` says otherwise. For kNotPrimary, `redirect` optionally names the
/// endpoint writes should go to instead (empty = unknown).
struct ErrorResponse {
  std::string message;
  std::uint8_t code = 0;  // an ErrorCode value
  std::string redirect{};  // kNotPrimary: where writes should go (may be "")
};

// New v3 alternatives are appended so the v2 variant indices stay stable.
using Request =
    std::variant<ClassifyBatchRequest, TrainRequest, UntrainRequest,
                 StatsRequest, ShutdownRequest, ReplicateBatchRequest,
                 PromoteRequest>;
using Response =
    std::variant<ClassifyBatchResponse, TrainResponse, UntrainResponse,
                 StatsResponse, ShutdownResponse, ErrorResponse,
                 ReplicateAckResponse, PromoteResponse>;

/// Serializes a full frame (length prefix included).
std::vector<std::uint8_t> encode_frame(const Request& request);
std::vector<std::uint8_t> encode_frame(const Response& response);

/// Parses a payload (a frame minus its length prefix). Throws ParseError
/// on version/type/body mismatch.
Request decode_request(std::span<const std::uint8_t> payload);
Response decode_response(std::span<const std::uint8_t> payload);

/// Verdict <-> wire byte (0 ham, 1 unsure, 2 spam).
std::uint8_t verdict_to_byte(spambayes::Verdict v);
spambayes::Verdict verdict_from_byte(std::uint8_t b);

}  // namespace sbx::serve
