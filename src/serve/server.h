// sbx/serve/server.h
//
// Thin socket front-end over ServeFrontend: one frame in, one frame out,
// same request/response structs as the in-process API. Endpoints are
// spelled as strings:
//
//   "unix:/tmp/sbx.sock"   UNIX domain stream socket at that path
//   "tcp:8725"             TCP on 127.0.0.1:8725 (loopback only)
//   "tcp:0"                TCP on an OS-assigned loopback port
//
// Each connection gets a service thread; request-level failures become
// ErrorResponse frames and the connection survives, while framing/protocol
// violations close it.
//
// Robustness contract (PR 7):
//
//  * all socket I/O is non-blocking + poll-driven (framing.h), so a peer
//    that dribbles bytes or stalls mid-frame trips `read_timeout_ms`
//    instead of wedging a thread forever;
//  * `max_connections` caps concurrent connections — the overflow
//    connection gets an ErrorResponse{kOverloaded} and an immediate
//    close (load shedding, not queueing);
//  * request_drain() is async-signal-safe (one write(2) to a self-pipe):
//    the accept loop stops, in-flight requests finish, connection threads
//    join, and the final WAL fsync runs before run() returns — the
//    SIGTERM path of sbx_serve;
//  * a stale unix socket file (a previous process killed without cleanup)
//    is detected by a probe connect and unlinked; a *live* socket makes
//    the constructor throw instead of yanking the running server's
//    endpoint from under it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/frontend.h"
#include "serve/protocol.h"
#include "util/thread_annotations.h"

namespace sbx::serve {

struct ServerConfig {
  /// Concurrent connection cap; 0 = unlimited. The connection over the
  /// cap is answered with ErrorResponse{kOverloaded} and closed.
  std::size_t max_connections = 0;
  /// Per-frame read deadline once a frame has started arriving (and the
  /// response write deadline). <= 0 = no deadline.
  long read_timeout_ms = 10'000;
  /// How long a connection may sit idle between frames. <= 0 = forever.
  long idle_timeout_ms = 0;
};

class Server {
 public:
  /// Binds and listens immediately (throws IoError on failure), but
  /// accepts nothing until run(). The frontend must outlive the server.
  Server(ServeFrontend& frontend, const std::string& endpoint,
         ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The resolved endpoint — for "tcp:0" this is the real port, e.g.
  /// "tcp:127.0.0.1:40613", printed by sbx_serve for clients to connect
  /// to.
  const std::string& endpoint() const { return endpoint_; }

  /// Serves until a ShutdownRequest or request_drain()/stop() arrives,
  /// finishes in-flight requests, joins connection threads, and flushes
  /// the frontend's WAL.
  void run() SBX_EXCLUDES(threads_mutex_);

  /// Asynchronously initiates a graceful drain (idempotent, thread-safe,
  /// async-signal-safe — callable from a SIGTERM handler).
  void request_drain();

  /// Asynchronously asks the accept loop to promote the frontend to
  /// primary (idempotent, async-signal-safe — the SIGUSR1 path of a
  /// standby sbx_serve). Same self-pipe as request_drain, different byte.
  void request_promote();

  /// Synonym for request_drain(), kept for existing callers.
  void stop() { request_drain(); }

  const ServerCounters& counters() const { return counters_; }

 private:
  void bind_unix(const std::string& path);
  void bind_tcp(std::uint16_t port);
  void serve_connection(int fd);
  void shed_connection(int fd);

  ServeFrontend& frontend_;
  ServerConfig config_;
  std::string endpoint_;
  std::string unix_path_;  // unlinked on drain/destruction when non-empty
  int listen_fd_ = -1;
  int drain_pipe_[2] = {-1, -1};  // self-pipe; [1] written by request_drain
  std::atomic<bool> stopping_{false};
  ServerCounters counters_;
  // Connection table: the accept loop appends while the destructor (a
  // different thread when run() lives on its own) joins.
  util::Mutex threads_mutex_{util::LockRank::kServer,
                             "Server::threads_mutex_"};
  std::vector<std::thread> threads_ SBX_GUARDED_BY(threads_mutex_);
};

}  // namespace sbx::serve
