// sbx/serve/server.h
//
// Thin socket front-end over ServeFrontend: one frame in, one frame out,
// same request/response structs as the in-process API. Endpoints are
// spelled as strings:
//
//   "unix:/tmp/sbx.sock"   UNIX domain stream socket at that path
//   "tcp:8725"             TCP on 127.0.0.1:8725 (loopback only)
//   "tcp:0"                TCP on an OS-assigned loopback port
//
// The server accepts connections until a ShutdownRequest arrives (the
// response is sent before the accept loop stops). Each connection gets a
// service thread; request-level failures become ErrorResponse frames and
// the connection survives, while framing/protocol violations close it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/frontend.h"
#include "serve/protocol.h"

namespace sbx::serve {

class Server {
 public:
  /// Binds and listens immediately (throws IoError on failure), but
  /// accepts nothing until run(). The frontend must outlive the server.
  Server(ServeFrontend& frontend, const std::string& endpoint);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The resolved endpoint — for "tcp:0" this is the real port, e.g.
  /// "tcp:127.0.0.1:40613", printed by sbx_serve for clients to connect
  /// to.
  const std::string& endpoint() const { return endpoint_; }

  /// Serves until a ShutdownRequest (or stop()) arrives, then joins all
  /// connection threads.
  void run();

  /// Asynchronously stops the accept loop (idempotent, thread-safe).
  void stop();

 private:
  void serve_connection(int fd);

  ServeFrontend& frontend_;
  std::string endpoint_;
  std::string unix_path_;  // unlinked on destruction when non-empty
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
};

/// Blocking client for the framed protocol (used by sbx_loadgen and the
/// tests; handy for ad-hoc poking from other tools too).
class Client {
 public:
  /// Connects to an endpoint in the Server spelling ("unix:PATH",
  /// "tcp:PORT" or "tcp:HOST:PORT"). Throws IoError on failure.
  explicit Client(const std::string& endpoint);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round-trip: encode, send, receive, decode.
  Response call(const Request& request);

 private:
  int fd_ = -1;
};

}  // namespace sbx::serve
