#include "serve/shard.h"

#include <algorithm>
#include <string>
#include <utility>

#include "serve/recovery.h"
#include "serve/replication.h"
#include "serve/wal.h"
#include "util/error.h"

namespace sbx::serve {

ModelShard::ModelShard(std::size_t user_count)
    : user_count_(user_count),
      users_(std::make_unique<UserModel[]>(user_count)) {
  if (user_count == 0) {
    throw InvalidArgument("ModelShard: user_count must be greater than 0");
  }
}

void ModelShard::configure_dedup(std::size_t dedup_window) {
  const util::MutexLock lock(mutation_mutex_);
  dedup_window_ = dedup_window;
  if (uid_of_local_.empty()) uid_of_local_.assign(user_count_, 0);
  dedup_.assign(user_count_, {});
}

void ModelShard::attach_durability(Durability* durability,
                                   std::size_t shard_index) {
  const util::MutexLock lock(mutation_mutex_);
  durability_ = durability;
  shard_index_ = shard_index;
  if (uid_of_local_.empty()) uid_of_local_.assign(user_count_, 0);
  if (dedup_.empty()) dedup_.assign(user_count_, {});
  if (dirty_.empty()) dirty_.assign(user_count_, 0);
}

void ModelShard::attach_replicator(Replicator* replicator) {
  const util::MutexLock lock(mutation_mutex_);
  if (replicator != nullptr && durability_ == nullptr) {
    throw InvalidArgument(
        "ModelShard: attach_replicator requires an attached Durability "
        "(replication ships WAL records)");
  }
  replicator_ = replicator;
}

void ModelShard::set_uid_of_local(std::size_t local, std::uint64_t uid) {
  user(local);  // range check
  const util::MutexLock lock(mutation_mutex_);
  if (uid_of_local_.empty()) uid_of_local_.assign(user_count_, 0);
  uid_of_local_[local] = uid;
}

UserModel& ModelShard::user(std::size_t local) {
  if (local >= user_count_) {
    throw InvalidArgument("ModelShard: user slot " + std::to_string(local) +
                          " out of range (shard owns " +
                          std::to_string(user_count_) + ")");
  }
  return users_[local];
}

const UserModel& ModelShard::user(std::size_t local) const {
  return const_cast<ModelShard*>(this)->user(local);
}

OverlaySnapshot ModelShard::overlay(std::size_t local) const {
  return user(local).snapshot();
}

const DedupEntry* ModelShard::find_dedup(std::size_t local,
                                         std::uint64_t request_id) const {
  if (request_id == 0 || dedup_.empty()) return nullptr;
  for (const DedupEntry& e : dedup_[local]) {
    if (e.request_id == request_id) return &e;
  }
  return nullptr;
}

void ModelShard::remember_dedup(std::size_t local, DedupEntry entry) {
  if (dedup_window_ == 0 || entry.request_id == 0) return;
  std::deque<DedupEntry>& window = dedup_[local];
  window.push_back(entry);
  while (window.size() > dedup_window_) window.pop_front();
}

MutationResult ModelShard::apply_mutation(std::size_t local,
                                          const MutationRequest& req,
                                          const spambayes::TokenIdSet& ids) {
  UserModel& model = user(local);
  const util::MutexLock lock(mutation_mutex_);

  if (const DedupEntry* hit = find_dedup(local, req.request_id)) {
    deduped_.fetch_add(1, std::memory_order_relaxed);
    const OverlaySnapshot now = model.snapshot();
    MutationResult replayed{now ? now->generation() : 0, hit->spam, hit->ham,
                            true};
    if (durability_ != nullptr) {
      // The retried original may still sit in an open commit window, so
      // the replayed ack draws a fresh ticket: awaiting it flushes every
      // record appended so far, the original included.
      replayed.commit_ticket = durability_->note_append();
    }
    return replayed;
  }

  // Prepare first: a mutation that cannot apply (bad untrain) must fail
  // before anything reaches the log.
  OverlaySnapshot next = model.prepare(ids, req.as_spam, req.copies,
                                       req.op == kWalOpTrain, mutation_mutex_);

  MutationResult result{0, 0, 0, false};
  if (durability_ != nullptr) {
    WalRecord record;
    record.op = req.op;
    record.seqno = durability_->draw_seqno();
    record.user_id = req.user_id;
    record.request_id = req.request_id;
    record.as_spam = req.as_spam;
    record.copies = req.copies;
    record.message = *req.message;
    durability_->wal(shard_index_).append(record);
    result.commit_ticket = durability_->note_append();
    last_seqno_ = record.seqno;
    if (!dirty_.empty()) dirty_[local] = 1;
    if (replicator_ != nullptr) {
      // Enqueued under the shard lock, right after the append: the ship
      // queue sees each shard's records in seqno order, which is what
      // lets the standby dedup resends by per-shard seqno alone.
      result.repl_ticket = replicator_->enqueue(
          static_cast<std::uint32_t>(shard_index_), record);
    }
  }

  result.generation = next->generation();
  result.spam = next->spam_count();
  result.ham = next->ham_count();
  model.publish(std::move(next), mutation_mutex_);
  remember_dedup(local, DedupEntry{req.request_id, req.op, result.spam,
                                   result.ham});
  if (durability_ != nullptr) maybe_snapshot();
  return result;
}

ReplicatedApplyResult ModelShard::apply_replicated(
    std::size_t local, const WalRecord& record,
    const spambayes::TokenIdSet& ids) {
  UserModel& model = user(local);
  const util::MutexLock lock(mutation_mutex_);
  if (record.seqno <= last_seqno_) return {};  // resend of an applied record

  OverlaySnapshot next = model.prepare(ids, record.as_spam, record.copies,
                                       record.op == kWalOpTrain,
                                       mutation_mutex_);
  ReplicatedApplyResult result;
  if (durability_ != nullptr) {
    // Keep the primary's seqno: the standby's log must replay to the same
    // watermark the ack names.
    durability_->wal(shard_index_).append(record);
    result.commit_ticket = durability_->note_append();
  }
  const std::uint32_t spam = next->spam_count();
  const std::uint32_t ham = next->ham_count();
  model.publish(std::move(next), mutation_mutex_);
  remember_dedup(local, DedupEntry{record.request_id, record.op, spam, ham});
  last_seqno_ = record.seqno;
  if (!dirty_.empty()) dirty_[local] = 1;
  result.applied = true;
  if (durability_ != nullptr) maybe_snapshot();
  return result;
}

std::uint64_t ModelShard::last_seqno() const {
  const util::MutexLock lock(mutation_mutex_);
  return last_seqno_;
}

MutationResult ModelShard::replay_mutation(std::size_t local,
                                           const MutationRequest& req,
                                           const spambayes::TokenIdSet& ids) {
  UserModel& model = user(local);
  const util::MutexLock lock(mutation_mutex_);
  OverlaySnapshot next = model.prepare(ids, req.as_spam, req.copies,
                                       req.op == kWalOpTrain, mutation_mutex_);
  const MutationResult result{next->generation(), next->spam_count(),
                              next->ham_count(), false};
  model.publish(std::move(next), mutation_mutex_);
  remember_dedup(local, DedupEntry{req.request_id, req.op, result.spam,
                                   result.ham});
  if (req.seqno > last_seqno_) last_seqno_ = req.seqno;
  if (!dirty_.empty()) dirty_[local] = 1;
  return result;
}

void ModelShard::replay_install(std::size_t local, OverlaySnapshot overlay,
                                std::vector<DedupEntry> dedup) {
  user(local);  // range check
  const util::MutexLock lock(mutation_mutex_);
  users_[local].install(std::move(overlay));
  if (!dedup_.empty()) {
    std::deque<DedupEntry>& window = dedup_[local];
    window.assign(dedup.begin(), dedup.end());
    while (dedup_window_ != 0 && window.size() > dedup_window_) {
      window.pop_front();
    }
  }
}

void ModelShard::maybe_snapshot() {
  const std::uint64_t every = durability_->snapshot_every();
  if (every == 0) return;
  WalWriter& wal = durability_->wal(shard_index_);
  if (wal.records_since_truncate() < every) return;

  if (durability_->snapshot_wants_full(shard_index_)) {
    // Compaction: fold the whole chain into a fresh full snapshot.
    std::vector<UserSnapshotState> state;
    state.reserve(user_count_);
    for (std::size_t i = 0; i < user_count_; ++i) {
      UserSnapshotState u;
      u.uid = uid_of_local_[i];
      u.overlay = users_[i].snapshot();
      u.dedup.assign(dedup_[i].begin(), dedup_[i].end());
      if (u.overlay != nullptr || !u.dedup.empty()) {
        state.push_back(std::move(u));
      }
    }
    durability_->write_full_snapshot(shard_index_, last_seqno_, state);
  } else {
    // Incremental: only the users dirtied since the last checkpoint.
    std::vector<UserSnapshotState> dirty;
    for (std::size_t i = 0; i < user_count_; ++i) {
      if (dirty_.empty() || dirty_[i] == 0) continue;
      UserSnapshotState u;
      u.uid = uid_of_local_[i];
      u.overlay = users_[i].snapshot();
      u.dedup.assign(dedup_[i].begin(), dedup_[i].end());
      dirty.push_back(std::move(u));
    }
    durability_->write_incremental_snapshot(shard_index_, last_seqno_,
                                            std::move(dirty));
  }
  std::fill(dirty_.begin(), dirty_.end(), 0);
  wal.truncate();
  durability_->note_snapshot();
}

void ModelShard::apply_train(std::size_t local,
                             const spambayes::TokenIdSet& ids, bool as_spam,
                             std::uint32_t copies) {
  UserModel& model = user(local);
  const util::MutexLock lock(mutation_mutex_);
  // durability_ is read under the lock: attach_durability may race this
  // call, and the WAL-bypass check must see the attached state.
  if (durability_ != nullptr) {
    throw InvalidArgument(
        "ModelShard: apply_train bypasses the WAL; use apply_mutation on a "
        "durable shard");
  }
  model.train(ids, as_spam, copies, mutation_mutex_);
}

void ModelShard::apply_untrain(std::size_t local,
                               const spambayes::TokenIdSet& ids, bool as_spam,
                               std::uint32_t copies) {
  UserModel& model = user(local);
  const util::MutexLock lock(mutation_mutex_);
  if (durability_ != nullptr) {
    throw InvalidArgument(
        "ModelShard: apply_untrain bypasses the WAL; use apply_mutation on a "
        "durable shard");
  }
  model.untrain(ids, as_spam, copies, mutation_mutex_);
}

void ModelShard::record_classified(std::size_t local, std::uint64_t messages) {
  user(local).record_classified(messages);
}

ShardStats ModelShard::stats() const {
  ShardStats out;
  out.users = user_count_;
  for (std::size_t i = 0; i < user_count_; ++i) {
    const UserModel& model = users_[i];
    if (model.snapshot() != nullptr) ++out.overlay_users;
    out.classified_messages += model.classified();
    out.mutations += model.mutations();
  }
  out.deduped = deduped_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sbx::serve
