#include "serve/shard.h"

#include <string>

#include "util/error.h"

namespace sbx::serve {

ModelShard::ModelShard(std::size_t user_count)
    : user_count_(user_count),
      users_(std::make_unique<UserModel[]>(user_count)) {
  if (user_count == 0) {
    throw InvalidArgument("ModelShard: user_count must be greater than 0");
  }
}

UserModel& ModelShard::user(std::size_t local) {
  if (local >= user_count_) {
    throw InvalidArgument("ModelShard: user slot " + std::to_string(local) +
                          " out of range (shard owns " +
                          std::to_string(user_count_) + ")");
  }
  return users_[local];
}

const UserModel& ModelShard::user(std::size_t local) const {
  return const_cast<ModelShard*>(this)->user(local);
}

OverlaySnapshot ModelShard::overlay(std::size_t local) const {
  return user(local).snapshot();
}

void ModelShard::apply_train(std::size_t local,
                             const spambayes::TokenIdSet& ids, bool as_spam,
                             std::uint32_t copies) {
  UserModel& model = user(local);
  const std::lock_guard<std::mutex> lock(mutation_mutex_);
  model.train(ids, as_spam, copies);
}

void ModelShard::apply_untrain(std::size_t local,
                               const spambayes::TokenIdSet& ids, bool as_spam,
                               std::uint32_t copies) {
  UserModel& model = user(local);
  const std::lock_guard<std::mutex> lock(mutation_mutex_);
  model.untrain(ids, as_spam, copies);
}

void ModelShard::record_classified(std::size_t local, std::uint64_t messages) {
  user(local).record_classified(messages);
}

ShardStats ModelShard::stats() const {
  ShardStats out;
  out.users = user_count_;
  for (std::size_t i = 0; i < user_count_; ++i) {
    const UserModel& model = users_[i];
    if (model.snapshot() != nullptr) ++out.overlay_users;
    out.classified_messages += model.classified();
    out.mutations += model.mutations();
  }
  return out;
}

}  // namespace sbx::serve
