#include "serve/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/framing.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError("serve client: " + what + ": " + std::strerror(errno));
}

/// True when an ErrorResponse signals a transient server condition that a
/// retry (against the same or a recovered server) can fix.
bool is_retryable(const Response& response) {
  const auto* e = std::get_if<ErrorResponse>(&response);
  return e != nullptr &&
         (e->code == static_cast<std::uint8_t>(ErrorCode::kOverloaded) ||
          e->code == static_cast<std::uint8_t>(ErrorCode::kShuttingDown));
}

/// Non-null when a kNotPrimary rejection names the endpoint to try
/// instead. A bare kNotPrimary (no redirect) is final — the caller must
/// decide where the primary went.
const std::string* redirect_target(const Response& response) {
  const auto* e = std::get_if<ErrorResponse>(&response);
  if (e == nullptr ||
      e->code != static_cast<std::uint8_t>(ErrorCode::kNotPrimary) ||
      e->redirect.empty()) {
    return nullptr;
  }
  return &e->redirect;
}

}  // namespace

Client::Client(const std::string& endpoint, ClientOptions options)
    : endpoint_(endpoint),
      options_(options),
      backoff_(options.backoff_base_ms, options.backoff_cap_ms,
               options.jitter_seed) {
  if (options_.max_attempts < 1) {
    throw InvalidArgument("serve client: max_attempts must be at least 1");
  }
  // Fail fast on an unreachable endpoint — but honor the retry budget, so
  // a client racing a restarting server (the chaos harness) can outwait
  // the recovery window.
  for (int attempt = 1;; ++attempt) {
    try {
      connect_with_deadline();
      return;
    } catch (const IoError&) {
      if (attempt >= options_.max_attempts) throw;
      ++retries_;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff_.next_delay_ms()));
    }
  }
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect_with_deadline() {
  disconnect();
  const io::ParsedEndpoint ep = io::parse_endpoint(endpoint_);
  const util::Deadline deadline =
      util::Deadline::after_ms(options_.connect_timeout_ms);

  sockaddr_un uaddr{};
  sockaddr_in taddr{};
  const sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  if (ep.is_unix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw_errno("socket(AF_UNIX)");
    uaddr.sun_family = AF_UNIX;
    std::strncpy(uaddr.sun_path, ep.path.c_str(), sizeof(uaddr.sun_path) - 1);
    addr = reinterpret_cast<const sockaddr*>(&uaddr);
    addr_len = sizeof(uaddr);
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw_errno("socket(AF_INET)");
    taddr.sin_family = AF_INET;
    taddr.sin_port = htons(ep.port);
    const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
    if (::inet_pton(AF_INET, host.c_str(), &taddr.sin_addr) != 1) {
      disconnect();
      throw InvalidArgument("serve client: bad tcp host '" + host + "'");
    }
    addr = reinterpret_cast<const sockaddr*>(&taddr);
    addr_len = sizeof(taddr);
  }

  try {
    io::set_nonblocking(fd_);
    if (::connect(fd_, addr, addr_len) == 0) return;
    if (errno != EINPROGRESS && errno != EAGAIN) {
      throw_errno("connect(" + endpoint_ + ")");
    }
    // Non-blocking connect: wait for writability, then read the verdict
    // out of SO_ERROR.
    for (;;) {
      if (deadline.expired()) {
        throw IoError("serve client: connect(" + endpoint_ + ") timed out");
      }
      struct pollfd pfd {};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      const int rc = ::poll(&pfd, 1, deadline.remaining_ms());
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll(connect)");
      }
      if (rc > 0) break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      throw_errno("connect(" + endpoint_ + ")");
    }
  } catch (...) {
    disconnect();
    throw;
  }
}

void Client::ensure_connected() {
  if (fd_ < 0) connect_with_deadline();
}

Response Client::call(const Request& request) {
  const auto frame = encode_frame(request);
  for (int attempt = 1;; ++attempt) {
    try {
      ensure_connected();
      const util::Deadline deadline =
          util::Deadline::after_ms(options_.op_timeout_ms);
      io::write_frame(fd_, frame, deadline);
      std::vector<std::uint8_t> payload;
      if (!io::read_frame(fd_, payload, deadline)) {
        throw IoError("serve client: server closed the connection");
      }
      const Response response = decode_response(payload);
      if (const std::string* redirect = redirect_target(response)) {
        // A standby bounced us and named the primary: re-point the client
        // and retry there immediately (no backoff — the redirect IS the
        // recovery). Counts against the attempt budget like any retry.
        if (attempt < options_.max_attempts) {
          endpoint_ = *redirect;
          disconnect();
          ++retries_;
          continue;
        }
        return response;
      }
      if (!is_retryable(response) || attempt >= options_.max_attempts) {
        return response;
      }
      // Overloaded/draining: the connection may be closing under us —
      // reconnect fresh after the backoff.
      disconnect();
    } catch (const ParseError&) {
      // A protocol violation will not improve with repetition.
      disconnect();
      throw;
    } catch (const IoError&) {
      disconnect();
      if (attempt >= options_.max_attempts) throw;
    }
    ++retries_;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_.next_delay_ms()));
  }
}

}  // namespace sbx::serve
