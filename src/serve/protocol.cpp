#include "serve/protocol.h"

#include <string>

#include "serve/wire.h"
#include "util/crc32.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

using wire::Reader;
using wire::Writer;

Writer body_writer() { return Writer(kMaxFrameBytes); }

// --- Body codecs -----------------------------------------------------------

// TrainRequest and UntrainRequest share one body layout.
template <typename T>
void encode_feedback_body(Writer& w, const T& r) {
  w.u64(r.user_id);
  w.u64(r.request_id);
  w.u8(r.as_spam ? 1 : 0);
  w.u32(r.copies);
  w.str(r.message);
}

template <typename T>
T decode_feedback_body(Reader& r) {
  T out;
  out.user_id = r.u64();
  out.request_id = r.u64();
  out.as_spam = r.u8() != 0;
  out.copies = r.u32();
  out.message = r.str();
  return out;
}

template <typename T>
void encode_feedback_response_body(Writer& w, const T& r) {
  w.u64(r.overlay_generation);
  w.u32(r.overlay_spam);
  w.u32(r.overlay_ham);
}

template <typename T>
T decode_feedback_response_body(Reader& r) {
  T out;
  out.overlay_generation = r.u64();
  out.overlay_spam = r.u32();
  out.overlay_ham = r.u32();
  return out;
}

std::vector<std::uint8_t> finish_frame(MsgType type, Writer&& body) {
  const std::vector<std::uint8_t> payload_body = std::move(body).take();
  Writer frame;
  const std::size_t payload_len = payload_body.size() + 2;  // version + type
  if (payload_len > kMaxFrameBytes) {
    throw InvalidArgument("serve protocol: frame exceeds " +
                          std::to_string(kMaxFrameBytes) + " bytes");
  }
  frame.u32(static_cast<std::uint32_t>(payload_len));
  frame.u8(kProtocolVersion);
  frame.u8(static_cast<std::uint8_t>(type));
  std::vector<std::uint8_t> out = std::move(frame).take();
  out.insert(out.end(), payload_body.begin(), payload_body.end());
  return out;
}

MsgType read_header(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersion) {
    throw ParseError("serve protocol: unsupported version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(kProtocolVersion) + ")");
  }
  return static_cast<MsgType>(r.u8());
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Request& request) {
  Writer w = body_writer();
  MsgType type;
  if (const auto* c = std::get_if<ClassifyBatchRequest>(&request)) {
    type = MsgType::kClassifyBatchRequest;
    w.u64(c->user_id);
    if (c->messages.size() > kMaxFrameBytes) {
      throw InvalidArgument("serve protocol: batch too large");
    }
    w.u32(static_cast<std::uint32_t>(c->messages.size()));
    for (const std::string& m : c->messages) w.str(m);
  } else if (const auto* t = std::get_if<TrainRequest>(&request)) {
    type = MsgType::kTrainRequest;
    encode_feedback_body(w, *t);
  } else if (const auto* u = std::get_if<UntrainRequest>(&request)) {
    type = MsgType::kUntrainRequest;
    encode_feedback_body(w, *u);
  } else if (std::holds_alternative<StatsRequest>(request)) {
    type = MsgType::kStatsRequest;
  } else if (const auto* b = std::get_if<ReplicateBatchRequest>(&request)) {
    type = MsgType::kReplicateBatchRequest;
    if (b->records.size() > kMaxFrameBytes) {
      throw InvalidArgument("serve protocol: replicate batch too large");
    }
    w.u32(static_cast<std::uint32_t>(b->records.size()));
    for (const ReplicatedRecord& rr : b->records) {
      // Ship the WAL's own [len][crc][body] frame, prefixed by the shard
      // that owns it — the standby can append these bytes verbatim.
      const std::vector<std::uint8_t> body = encode_wal_body(rr.record);
      w.u32(rr.shard);
      w.u32(static_cast<std::uint32_t>(body.size()));
      w.u32(util::crc32(body.data(), body.size()));
      w.bytes(body);
    }
  } else if (std::holds_alternative<PromoteRequest>(request)) {
    type = MsgType::kPromoteRequest;
  } else {
    type = MsgType::kShutdownRequest;
  }
  return finish_frame(type, std::move(w));
}

std::vector<std::uint8_t> encode_frame(const Response& response) {
  Writer w = body_writer();
  MsgType type;
  if (const auto* c = std::get_if<ClassifyBatchResponse>(&response)) {
    type = MsgType::kClassifyBatchResponse;
    w.u32(static_cast<std::uint32_t>(c->results.size()));
    for (const ClassifyResult& r : c->results) {
      w.f64(r.score);
      w.u8(r.verdict);
    }
  } else if (const auto* t = std::get_if<TrainResponse>(&response)) {
    type = MsgType::kTrainResponse;
    encode_feedback_response_body(w, *t);
  } else if (const auto* u = std::get_if<UntrainResponse>(&response)) {
    type = MsgType::kUntrainResponse;
    encode_feedback_response_body(w, *u);
  } else if (const auto* s = std::get_if<StatsResponse>(&response)) {
    type = MsgType::kStatsResponse;
    w.u64(s->users);
    w.u64(s->shards);
    w.u64(s->overlay_users);
    w.u64(s->classify_requests);
    w.u64(s->classified_messages);
    w.u64(s->train_requests);
    w.u64(s->untrain_requests);
    w.u64(s->errors);
    w.u64(s->base_spam_count);
    w.u64(s->base_ham_count);
    w.u64(s->uptime_ms);
    w.u64(s->wal_records);
    w.u64(s->wal_bytes);
    w.u64(s->wal_snapshots);
    w.u64(s->recovery_replayed_records);
    w.u64(s->recovery_torn_dropped);
    w.u64(s->recovery_ms);
    w.u64(s->recovery_snapshot_users);
    w.u64(s->deduped_mutations);
    w.u64(s->shed_connections);
    w.u64(s->active_connections);
    w.u64(s->repl_shipped_seqno);
    w.u64(s->repl_acked_seqno);
    w.u64(s->repl_lag_records);
    w.u64(s->standby_applied_records);
    w.u64(s->group_commit_windows);
    w.u64(s->incremental_snapshot_bytes);
  } else if (std::holds_alternative<ShutdownResponse>(response)) {
    type = MsgType::kShutdownResponse;
  } else if (const auto* a = std::get_if<ReplicateAckResponse>(&response)) {
    type = MsgType::kReplicateAckResponse;
    w.u64(a->acked_seqno);
    w.u64(a->applied_records);
  } else if (const auto* p = std::get_if<PromoteResponse>(&response)) {
    type = MsgType::kPromoteResponse;
    w.u64(p->last_applied_seqno);
  } else {
    type = MsgType::kErrorResponse;
    const auto& e = std::get<ErrorResponse>(response);
    w.u8(e.code);
    w.str(e.message);
    w.str(e.redirect);
  }
  return finish_frame(type, std::move(w));
}

Request decode_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const MsgType type = read_header(r);
  Request out;
  switch (type) {
    case MsgType::kClassifyBatchRequest: {
      ClassifyBatchRequest req;
      req.user_id = r.u64();
      const std::uint32_t count = r.u32();
      // Each message costs at least its 4-byte length prefix, so a count
      // the remaining bytes cannot hold is corrupt — reject it before the
      // reserve, not via bad_alloc.
      if (count > r.remaining() / 4) {
        throw ParseError("serve protocol: message count exceeds frame size");
      }
      req.messages.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) req.messages.push_back(r.str());
      out = std::move(req);
      break;
    }
    case MsgType::kTrainRequest:
      out = decode_feedback_body<TrainRequest>(r);
      break;
    case MsgType::kUntrainRequest:
      out = decode_feedback_body<UntrainRequest>(r);
      break;
    case MsgType::kStatsRequest:
      out = StatsRequest{};
      break;
    case MsgType::kShutdownRequest:
      out = ShutdownRequest{};
      break;
    case MsgType::kReplicateBatchRequest: {
      ReplicateBatchRequest req;
      const std::uint32_t count = r.u32();
      // Each entry costs at least shard + len + crc (12 bytes) plus the
      // 35-byte minimum WAL body — reject hostile counts before reserve.
      if (count > r.remaining() / 47) {
        throw ParseError("serve protocol: replicate count exceeds frame size");
      }
      req.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ReplicatedRecord rr;
        rr.shard = r.u32();
        const std::uint32_t body_len = r.u32();
        const std::uint32_t stored_crc = r.u32();
        if (body_len == 0 || body_len > kMaxFrameBytes) {
          throw ParseError("serve protocol: replicate record length corrupt");
        }
        const std::span<const std::uint8_t> body = r.bytes(body_len);
        if (util::crc32(body.data(), body.size()) != stored_crc) {
          throw ParseError("serve protocol: replicate record crc mismatch");
        }
        rr.record = decode_wal_body(body);
        req.records.push_back(std::move(rr));
      }
      out = std::move(req);
      break;
    }
    case MsgType::kPromoteRequest:
      out = PromoteRequest{};
      break;
    default:
      throw ParseError("serve protocol: unknown request type " +
                       std::to_string(static_cast<int>(type)));
  }
  r.expect_done();
  return out;
}

Response decode_response(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const MsgType type = read_header(r);
  Response out;
  switch (type) {
    case MsgType::kClassifyBatchResponse: {
      ClassifyBatchResponse resp;
      const std::uint32_t count = r.u32();
      if (count > r.remaining() / 9) {  // f64 score + u8 verdict
        throw ParseError("serve protocol: result count exceeds frame size");
      }
      resp.results.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ClassifyResult cr;
        cr.score = r.f64();
        cr.verdict = r.u8();
        resp.results.push_back(cr);
      }
      out = std::move(resp);
      break;
    }
    case MsgType::kTrainResponse:
      out = decode_feedback_response_body<TrainResponse>(r);
      break;
    case MsgType::kUntrainResponse:
      out = decode_feedback_response_body<UntrainResponse>(r);
      break;
    case MsgType::kStatsResponse: {
      StatsResponse s;
      s.users = r.u64();
      s.shards = r.u64();
      s.overlay_users = r.u64();
      s.classify_requests = r.u64();
      s.classified_messages = r.u64();
      s.train_requests = r.u64();
      s.untrain_requests = r.u64();
      s.errors = r.u64();
      s.base_spam_count = r.u64();
      s.base_ham_count = r.u64();
      s.uptime_ms = r.u64();
      s.wal_records = r.u64();
      s.wal_bytes = r.u64();
      s.wal_snapshots = r.u64();
      s.recovery_replayed_records = r.u64();
      s.recovery_torn_dropped = r.u64();
      s.recovery_ms = r.u64();
      s.recovery_snapshot_users = r.u64();
      s.deduped_mutations = r.u64();
      s.shed_connections = r.u64();
      s.active_connections = r.u64();
      s.repl_shipped_seqno = r.u64();
      s.repl_acked_seqno = r.u64();
      s.repl_lag_records = r.u64();
      s.standby_applied_records = r.u64();
      s.group_commit_windows = r.u64();
      s.incremental_snapshot_bytes = r.u64();
      out = s;
      break;
    }
    case MsgType::kShutdownResponse:
      out = ShutdownResponse{};
      break;
    case MsgType::kReplicateAckResponse: {
      ReplicateAckResponse a;
      a.acked_seqno = r.u64();
      a.applied_records = r.u64();
      out = a;
      break;
    }
    case MsgType::kPromoteResponse: {
      PromoteResponse p;
      p.last_applied_seqno = r.u64();
      out = p;
      break;
    }
    case MsgType::kErrorResponse: {
      ErrorResponse e;
      e.code = r.u8();
      e.message = r.str();
      e.redirect = r.str();
      out = std::move(e);
      break;
    }
    default:
      throw ParseError("serve protocol: unknown response type " +
                       std::to_string(static_cast<int>(type)));
  }
  r.expect_done();
  return out;
}

std::uint8_t verdict_to_byte(spambayes::Verdict v) {
  switch (v) {
    case spambayes::Verdict::ham:
      return 0;
    case spambayes::Verdict::unsure:
      return 1;
    case spambayes::Verdict::spam:
      return 2;
  }
  return 1;
}

spambayes::Verdict verdict_from_byte(std::uint8_t b) {
  switch (b) {
    case 0:
      return spambayes::Verdict::ham;
    case 1:
      return spambayes::Verdict::unsure;
    case 2:
      return spambayes::Verdict::spam;
    default:
      throw ParseError("serve protocol: bad verdict byte " + std::to_string(b));
  }
}

}  // namespace sbx::serve
