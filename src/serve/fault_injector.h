// sbx/serve/fault_injector.h
//
// Deterministic fault injection for the serving layer's I/O paths. The
// singleton is a set of cheap hooks threaded through framing.cpp (socket
// reads/writes) and wal.cpp (log appends); unconfigured, every hook is a
// single relaxed load. Configured — programmatically in tests or via the
// SBX_FAULT environment variable in sbx_serve — it turns the happy path
// into the failure matrix the robustness tests assert against:
//
//   short_write_every=N   every Nth write call transfers at most 1 byte
//                         (exercises every partial-write loop)
//   delay_read_every=N    sleep delay_ms before every Nth read (stalls
//                         that read timeouts / client deadlines must catch)
//   delay_ms=MS           the delay for delay_read_every (default 50)
//   close_write_at=N      shut the socket down instead of performing the
//                         Nth write (mid-operation connection loss)
//   crash_after_wal=N     _Exit(42) immediately after the Nth WAL record
//                         is appended (the kill -9 analogue with a
//                         deterministic crash point)
//
// Example: SBX_FAULT=short_write_every=7,crash_after_wal=100 sbx_serve ...
//
// Counters are process-global and monotonically increasing; reset() rearms
// everything (tests only — the daemon configures once at startup).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sbx::serve {

class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Parses the comma-separated key=value spec above. Throws ParseError on
  /// unknown keys or malformed values. An empty spec is a no-op.
  void configure(const std::string& spec);

  /// Reads $SBX_FAULT (absent/empty = no faults).
  void configure_from_env();

  /// Disarms all faults and zeroes the trigger counters.
  void reset();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // --- Hooks (called from framing.cpp / wal.cpp) ---------------------------

  /// Clamp for the next write(2)'s length (short-write injection).
  std::size_t clamp_write_len(std::size_t len);

  /// True when the caller should shut the connection down instead of
  /// writing (close injection).
  bool should_close_instead_of_write();

  /// Possibly sleeps before a read (delay injection).
  void before_read();

  /// Called after each WAL record append; may _Exit(42) (crash injection).
  void after_wal_record();

 private:
  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> write_ops_{0};
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<std::uint64_t> wal_records_{0};

  // 0 = disarmed for every trigger below.
  std::atomic<std::uint64_t> short_write_every_{0};
  std::atomic<std::uint64_t> delay_read_every_{0};
  std::atomic<std::uint64_t> delay_ms_{50};
  std::atomic<std::uint64_t> close_write_at_{0};
  std::atomic<std::uint64_t> crash_after_wal_{0};
};

}  // namespace sbx::serve
