// sbx/serve/user_model.h
//
// Per-user training state for the multi-tenant serving layer: a
// copy-on-write delta overlay on a shared immutable base TokenDatabase.
//
// Every user starts with a null overlay — classification then runs
// directly against the base through the generation-cached ScoreEngine, so
// an idle fleet of a million users costs one database, one memo, zero
// per-user bytes beyond the slot itself. The first train/untrain call
// materializes a private delta database holding only that user's
// feedback; classification merges it with the base on the fly
// (Classifier's overlay-aware score_ids), which is bit-identical to a
// standalone filter trained on base + overlay messages.
//
// Publication protocol (the lock-free read contract): mutations never
// modify a published overlay. They copy it, mutate the copy, and publish
// the copy with a release store into an atomic shared_ptr; readers
// acquire-load a snapshot and score against it for as long as they like —
// the snapshot is immutable and refcount-kept. TokenDatabase's
// process-globally monotonic generation stamp (PR 4) then proves snapshot
// consistency: a copy keeps the stamp, the first mutation of the copy
// draws a strictly larger one, so successive published overlays carry
// strictly increasing generations and `generation() == cached` still
// proves bit-identical contents to any reader's cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "spambayes/interner.h"
#include "spambayes/token_db.h"
#include "util/thread_annotations.h"

namespace sbx::serve {

/// An immutable published overlay state. Null = empty overlay (the user
/// has no feedback of their own; classify against the base directly).
using OverlaySnapshot = std::shared_ptr<const spambayes::TokenDatabase>;

/// One user's slot: the published overlay plus relaxed usage counters.
/// Reads (snapshot, counters) are safe from any thread at any time;
/// mutations must be serialized externally — the owning ModelShard applies
/// them single-threaded under its mutation lock.
class UserModel {
 public:
  UserModel() = default;
  UserModel(const UserModel&) = delete;
  UserModel& operator=(const UserModel&) = delete;

  /// The last published overlay (acquire). Scoring against the returned
  /// snapshot is race-free regardless of concurrent mutations: a mutation
  /// publishes a new database, it never touches this one.
  OverlaySnapshot snapshot() const {
    return overlay_.load(std::memory_order_acquire);
  }

  // Mutations take the owning shard's mutation mutex as an explicit
  // capability parameter: "caller holds the shard mutation lock" is not a
  // comment here, it is SBX_REQUIRES(mu) — a clang build refuses call
  // sites that do not provably hold the lock they pass.

  /// Copy-on-write train: copies the current overlay (or starts an empty
  /// one), trains `copies` messages with token set `ids`, publishes the
  /// copy (release). Caller holds `mu`, the shard mutation lock.
  void train(const spambayes::TokenIdSet& ids, bool as_spam,
             std::uint32_t copies, util::Mutex& mu) SBX_REQUIRES(mu);

  /// Copy-on-write untrain, exactly reversing a train with the same
  /// arguments. Throws sbx::InvalidArgument when the overlay does not
  /// contain the message (never trained, or already untrained) — the
  /// published overlay is untouched in that case. Caller holds `mu`, the
  /// shard mutation lock.
  void untrain(const spambayes::TokenIdSet& ids, bool as_spam,
               std::uint32_t copies, util::Mutex& mu) SBX_REQUIRES(mu);

  /// The prepare half of a mutation: builds (but does not publish) the
  /// next overlay state. Splitting prepare from publish is what lets the
  /// shard write-ahead-log the mutation in between — a prepare failure
  /// (bad untrain) leaves both the log and the published overlay
  /// untouched. Caller holds `mu`, the shard mutation lock.
  OverlaySnapshot prepare(const spambayes::TokenIdSet& ids, bool as_spam,
                          std::uint32_t copies, bool is_train,
                          util::Mutex& mu) SBX_REQUIRES(mu);

  /// The publish half: release-stores a prepared overlay and counts the
  /// mutation. Caller holds `mu`, the shard mutation lock.
  void publish(OverlaySnapshot next, util::Mutex& mu) SBX_REQUIRES(mu);

  /// Recovery-only: installs an overlay verbatim (no mutation counting —
  /// restored state is not new feedback).
  void install(OverlaySnapshot snapshot) {
    overlay_.store(std::move(snapshot), std::memory_order_release);
  }

  /// Relaxed counters, exported through the stats endpoint.
  void record_classified(std::uint64_t messages) {
    classified_.fetch_add(messages, std::memory_order_relaxed);
  }
  std::uint64_t classified() const {
    return classified_.load(std::memory_order_relaxed);
  }
  std::uint64_t mutations() const {
    return mutations_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<OverlaySnapshot> overlay_{nullptr};
  std::atomic<std::uint64_t> classified_{0};
  std::atomic<std::uint64_t> mutations_{0};
};

}  // namespace sbx::serve
