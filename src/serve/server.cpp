#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "serve/framing.h"
#include "util/backoff.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError("serve: " + what + ": " + std::strerror(errno));
}

void fill_unix_addr(sockaddr_un& addr, const std::string& path) {
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
}

/// True when a stream socket file at `path` has a live listener behind it.
bool unix_socket_alive(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  fill_unix_addr(addr, path);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  ::close(fd);
  return rc == 0;
}

}  // namespace

Server::Server(ServeFrontend& frontend, const std::string& endpoint,
               ServerConfig config)
    : frontend_(frontend), config_(config) {
  const io::ParsedEndpoint ep = io::parse_endpoint(endpoint);
  if (ep.is_unix) {
    bind_unix(ep.path);
  } else {
    bind_tcp(ep.port);
  }
  if (::listen(listen_fd_, 64) < 0) throw_errno("listen");
  if (::pipe2(drain_pipe_, O_CLOEXEC | O_NONBLOCK) < 0) throw_errno("pipe2");
  frontend_.attach_server_counters(&counters_);
}

void Server::bind_unix(const std::string& path) {
  // A socket file left behind by a crashed predecessor would make bind()
  // fail with EADDRINUSE forever. Probe it: refused = stale, unlink and
  // take over; accepted = a live server owns this endpoint, refuse to
  // yank it out from under them.
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      throw IoError("serve: " + path + " exists and is not a socket");
    }
    if (unix_socket_alive(path)) {
      throw IoError("serve: endpoint unix:" + path +
                    " is in use by a running server");
    }
    ::unlink(path.c_str());
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  fill_unix_addr(addr, path);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind(" + path + ")");
  }
  unix_path_ = path;
  endpoint_ = "unix:" + path;
}

void Server::bind_tcp(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind(tcp:" + std::to_string(port) + ")");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    throw_errno("getsockname");
  }
  endpoint_ = "tcp:127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
}

Server::~Server() {
  request_drain();
  frontend_.attach_server_counters(nullptr);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  {
    const util::MutexLock lock(threads_mutex_);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
  for (int fd : drain_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfds[2];
    pfds[0] = {listen_fd_, POLLIN, 0};
    pfds[1] = {drain_pipe_[0], POLLIN, 0};
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(accept)");
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      // The self-pipe carries commands, one byte each: 1 = drain (stop),
      // 2 = promote. Drain wins over anything else in the pipe.
      char bytes[16];
      ssize_t n = 0;
      bool drain = false;
      bool promote = false;
      while ((n = ::read(drain_pipe_[0], bytes, sizeof(bytes))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
          if (bytes[i] == 1) drain = true;
          if (bytes[i] == 2) promote = true;
        }
      }
      if (drain) break;
      if (promote) frontend_.promote();
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      if (stopping_.load(std::memory_order_acquire)) break;
      throw_errno("accept");
    }
    if (config_.max_connections != 0 &&
        counters_.active.load(std::memory_order_acquire) >=
            config_.max_connections) {
      shed_connection(fd);
      continue;
    }
    counters_.active.fetch_add(1, std::memory_order_acq_rel);
    const util::MutexLock lock(threads_mutex_);
    threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  // Drain: no new connections. The listening socket closes now so the
  // endpoint disappears immediately; in-flight requests complete because
  // connection threads only observe the stop flag between frames.
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  {
    const util::MutexLock lock(threads_mutex_);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
  // Everything a client was told is durable before run() returns.
  frontend_.sync_durability();
}

void Server::request_drain() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // One write(2) to the self-pipe: the only async-signal-safe way to kick
  // a poll()-based accept loop from a SIGTERM handler.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
}

void Server::request_promote() {
  // Promotion must not race the accept loop's dispatches, so it runs on
  // the loop thread; this just enqueues the command byte.
  const char byte = 2;
  [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
}

void Server::shed_connection(int fd) {
  counters_.shed.fetch_add(1, std::memory_order_relaxed);
  try {
    io::set_nonblocking(fd);
    const auto frame = encode_frame(Response(ErrorResponse{
        "serve: connection limit reached, try again later",
        static_cast<std::uint8_t>(ErrorCode::kOverloaded)}));
    // Short deadline: shedding must not tie up the accept loop.
    io::write_frame(fd, frame, util::Deadline::after_ms(250));
  } catch (const Error&) {
    // Best effort — the peer learns from the close either way.
  }
  ::close(fd);
}

void Server::serve_connection(int fd) {
  std::vector<std::uint8_t> payload;
  try {
    io::set_nonblocking(fd);
    for (;;) {
      const io::Waited w =
          io::wait_readable(fd, config_.idle_timeout_ms, &stopping_);
      if (w != io::Waited::kReadable) break;  // drain or idle timeout
      const util::Deadline deadline =
          util::Deadline::after_ms(config_.read_timeout_ms);
      if (!io::read_frame(fd, payload, deadline)) break;  // clean EOF
      Request request;
      try {
        request = decode_request(payload);
      } catch (const ParseError& e) {
        // A framing violation is unrecoverable: answer and hang up.
        const auto frame = encode_frame(Response(ErrorResponse{e.what()}));
        io::write_frame(fd, frame, deadline);
        break;
      }
      const Response response = frontend_.dispatch(request);
      const auto frame = encode_frame(response);
      io::write_frame(fd, frame,
                      util::Deadline::after_ms(config_.read_timeout_ms));
      if (std::holds_alternative<ShutdownRequest>(request)) {
        request_drain();
        break;
      }
    }
  } catch (const Error&) {
    // Peer vanished or stalled past the deadline; nothing to answer.
  }
  ::close(fd);
  counters_.active.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace sbx::serve
