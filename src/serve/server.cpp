#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.h"

namespace sbx::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError("serve: " + what + ": " + std::strerror(errno));
}

/// Reads exactly `len` bytes; returns false on clean EOF at a frame
/// boundary (len consumed == 0), throws IoError on mid-read EOF/error.
bool read_full(int fd, std::uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n == 0) {
      if (got == 0) return false;
      throw IoError("serve: connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_full(int fd, const std::uint8_t* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads one frame payload (length prefix stripped). False on clean EOF.
bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t len_bytes[4];
  if (!read_full(fd, len_bytes, 4)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
  if (len < 2 || len > kMaxFrameBytes) {
    throw ParseError("serve protocol: bad frame length " + std::to_string(len));
  }
  payload.resize(len);
  if (!read_full(fd, payload.data(), len)) {
    throw IoError("serve: connection closed mid-frame");
  }
  return true;
}

struct ParsedEndpoint {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp (empty = loopback)
  std::uint16_t port = 0;
};

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  ParsedEndpoint out;
  if (endpoint.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = endpoint.substr(5);
    if (out.path.empty()) {
      throw InvalidArgument("serve: empty unix socket path in '" + endpoint +
                            "'");
    }
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw InvalidArgument("serve: unix socket path too long: " + out.path);
    }
    return out;
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      out.host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    try {
      const unsigned long port = std::stoul(rest);
      if (port > 65535) throw std::out_of_range("port");
      out.port = static_cast<std::uint16_t>(port);
    } catch (const std::exception&) {
      throw InvalidArgument("serve: bad tcp port in '" + endpoint + "'");
    }
    return out;
  }
  throw InvalidArgument(
      "serve: endpoint must be unix:PATH or tcp:PORT, got '" + endpoint + "'");
}

}  // namespace

Server::Server(ServeFrontend& frontend, const std::string& endpoint)
    : frontend_(frontend) {
  const ParsedEndpoint ep = parse_endpoint(endpoint);
  if (ep.is_unix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(ep.path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind(" + ep.path + ")");
    }
    unix_path_ = ep.path;
    endpoint_ = "unix:" + ep.path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(ep.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind(tcp:" + std::to_string(ep.port) + ")");
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) < 0) {
      throw_errno("getsockname");
    }
    endpoint_ = "tcp:127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 64) < 0) throw_errno("listen");
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Server::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() shuts the listening socket down; accept then fails and the
      // loop exits cleanly.
      if (stopping_.load(std::memory_order_acquire)) break;
      throw_errno("accept");
    }
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::serve_connection(int fd) {
  std::vector<std::uint8_t> payload;
  try {
    while (read_frame(fd, payload)) {
      Request request;
      try {
        request = decode_request(payload);
      } catch (const ParseError& e) {
        // A framing violation is unrecoverable: answer and hang up.
        const auto frame = encode_frame(Response(ErrorResponse{e.what()}));
        write_full(fd, frame.data(), frame.size());
        break;
      }
      const Response response = frontend_.dispatch(request);
      const auto frame = encode_frame(response);
      write_full(fd, frame.data(), frame.size());
      if (std::holds_alternative<ShutdownRequest>(request)) {
        stop();
        break;
      }
    }
  } catch (const Error&) {
    // Peer vanished mid-frame; nothing to answer.
  }
  ::close(fd);
}

Client::Client(const std::string& endpoint) {
  const ParsedEndpoint ep = parse_endpoint(endpoint);
  if (ep.is_unix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      throw_errno("connect(" + ep.path + ")");
    }
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw InvalidArgument("serve: bad tcp host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      throw_errno("connect(tcp:" + host + ":" + std::to_string(ep.port) + ")");
    }
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::call(const Request& request) {
  const auto frame = encode_frame(request);
  write_full(fd_, frame.data(), frame.size());
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, payload)) {
    throw IoError("serve: server closed the connection");
  }
  return decode_response(payload);
}

}  // namespace sbx::serve
