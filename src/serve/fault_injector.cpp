#include "serve/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/config.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec) {
  if (spec.empty()) return;
  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw ParseError("fault injector: expected key=value, got '" + item +
                       "'");
    }
    const std::string key = item.substr(0, eq);
    const std::uint64_t value = util::parse_uint(item.substr(eq + 1), key);
    if (key == "short_write_every") {
      short_write_every_.store(value, std::memory_order_relaxed);
    } else if (key == "delay_read_every") {
      delay_read_every_.store(value, std::memory_order_relaxed);
    } else if (key == "delay_ms") {
      delay_ms_.store(value, std::memory_order_relaxed);
    } else if (key == "close_write_at") {
      close_write_at_.store(value, std::memory_order_relaxed);
    } else if (key == "crash_after_wal") {
      crash_after_wal_.store(value, std::memory_order_relaxed);
    } else {
      throw ParseError("fault injector: unknown fault '" + key + "'");
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::configure_from_env() {
  const char* spec = std::getenv("SBX_FAULT");
  if (spec != nullptr && spec[0] != '\0') configure(spec);
}

void FaultInjector::reset() {
  enabled_.store(false, std::memory_order_relaxed);
  write_ops_.store(0, std::memory_order_relaxed);
  read_ops_.store(0, std::memory_order_relaxed);
  wal_records_.store(0, std::memory_order_relaxed);
  short_write_every_.store(0, std::memory_order_relaxed);
  delay_read_every_.store(0, std::memory_order_relaxed);
  delay_ms_.store(50, std::memory_order_relaxed);
  close_write_at_.store(0, std::memory_order_relaxed);
  crash_after_wal_.store(0, std::memory_order_relaxed);
}

std::size_t FaultInjector::clamp_write_len(std::size_t len) {
  if (!enabled()) return len;
  const std::uint64_t every = short_write_every_.load(std::memory_order_relaxed);
  if (every == 0 || len <= 1) return len;
  const std::uint64_t op = write_ops_.load(std::memory_order_relaxed);
  return op % every == 0 ? 1 : len;
}

bool FaultInjector::should_close_instead_of_write() {
  if (!enabled()) return false;
  const std::uint64_t op =
      write_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t at = close_write_at_.load(std::memory_order_relaxed);
  return at != 0 && op == at;
}

void FaultInjector::before_read() {
  if (!enabled()) return;
  const std::uint64_t every = delay_read_every_.load(std::memory_order_relaxed);
  if (every == 0) return;
  const std::uint64_t op = read_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (op % every == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        delay_ms_.load(std::memory_order_relaxed)));
  }
}

void FaultInjector::after_wal_record() {
  if (!enabled()) return;
  const std::uint64_t at = crash_after_wal_.load(std::memory_order_relaxed);
  if (at == 0) return;
  const std::uint64_t n =
      wal_records_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n >= at) {
    // The deterministic kill -9: no destructors, no atexit, no buffered-IO
    // flush — exactly what recovery must survive.
    std::_Exit(42);
  }
}

}  // namespace sbx::serve
