// sbx/serve/framing.h
//
// Deadline-aware, partial-I/O-safe frame transport shared by the server's
// connection loop and the client. Every fd handed to these helpers is
// switched to non-blocking; progress is made under poll(2), so a peer that
// dribbles one byte at a time, stalls mid-frame, or raises EINTR storms is
// handled identically everywhere. Fault-injection hooks (fault_injector.h)
// sit inside the read/write loops, which is what lets the chaos tests force
// short writes and stalls without a special build.
//
// Timeout semantics: read_exact/write_all/read_frame throw sbx::IoError
// when the Deadline expires mid-transfer. read_exact returns false only on
// a clean EOF at byte 0 (peer closed between frames); EOF mid-frame is an
// IoError. wait_readable separates the idle wait (no frame in flight,
// interruptible by a stop flag) from the mid-frame read timeout.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/backoff.h"

namespace sbx::serve::io {

/// Puts `fd` into O_NONBLOCK mode (throws IoError on fcntl failure).
void set_nonblocking(int fd);

enum class Waited {
  kReadable,     // data (or EOF) is available
  kStop,         // the stop flag flipped while waiting
  kIdleTimeout,  // idle_timeout_ms elapsed with no data
};

/// Blocks until `fd` is readable, `stop` becomes true, or `idle_timeout_ms`
/// elapses (<= 0 = wait forever). Polls in short slices so a stop flag is
/// honored promptly even without a timeout.
Waited wait_readable(int fd, long idle_timeout_ms,
                     const std::atomic<bool>* stop);

/// Reads exactly `len` bytes. Returns false on clean EOF before the first
/// byte; throws IoError on mid-transfer EOF, socket errors, or deadline
/// expiry.
bool read_exact(int fd, void* buf, std::size_t len,
                const util::Deadline& deadline);

/// Writes all `len` bytes (short writes retried). Throws IoError on socket
/// errors or deadline expiry.
void write_all(int fd, const void* buf, std::size_t len,
               const util::Deadline& deadline);

/// Reads one [u32 len][payload] frame into `payload`. Returns false on
/// clean EOF between frames; throws ParseError on an out-of-range length
/// and IoError on timeout/socket failure.
bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                const util::Deadline& deadline);

/// Writes one already-encoded frame (length prefix included).
void write_frame(int fd, const std::vector<std::uint8_t>& frame,
                 const util::Deadline& deadline);

/// The endpoint spelling shared by Server and Client:
///   "unix:/tmp/sbx.sock"  UNIX stream socket
///   "tcp:8725"            loopback TCP
///   "tcp:HOST:8725"       explicit host
struct ParsedEndpoint {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp (empty = loopback)
  std::uint16_t port = 0;
};

ParsedEndpoint parse_endpoint(const std::string& endpoint);

}  // namespace sbx::serve::io
