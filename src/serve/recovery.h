// sbx/serve/recovery.h
//
// Crash-safe persistence for the serving layer: the data-directory layout,
// the per-shard overlay snapshots (full + incremental chain), the startup
// manifest, the group-commit fsync window, and the recovery replay that
// rebuilds a ServeFrontend to the exact state an uninterrupted run would
// hold.
//
// Data directory layout:
//
//   <data-dir>/MANIFEST            topology fingerprint (text)
//   <data-dir>/shard-NNNN/wal.log  mutation log (wal.h framing)
//   <data-dir>/shard-NNNN/snapshot.db
//                                  last full checkpoint of the shard
//   <data-dir>/shard-NNNN/snap-NNNNNN.inc
//                                  incremental segments: only the users
//                                  dirtied since the previous checkpoint,
//                                  CRC-chained parent -> child
//
// Recovery invariant (the tentpole's correctness bar): overlay contents
// after `recover()` are bit-identical to an uninterrupted process that
// applied the same mutations — snapshots embed exact TokenDatabase::save()
// bytes, and WAL replay re-tokenizes the logged raw message text through
// the identical pipeline the live request took. (Overlay *generation*
// stamps are process-local and differ across restarts by design; nothing
// durable depends on them.)
//
// Snapshot atomicity: snapshots are written tmp → fsync → rename → fsync
// parent dir, then the WAL is truncated. A crash between rename and
// truncate is safe because the snapshot records the highest folded seqno
// and replay skips WAL records at or below it.
//
// Incremental chain: each segment stores its parent's content CRC, so
// recovery can prove the chain is unbroken (full snapshot → seg 1 → … →
// seg N). A segment that fails its own CRC or breaks the parent link is
// unrecoverable corruption and throws — EXCEPT segments provably older
// than the full snapshot (seqno at or below the full's), which are
// leftovers of a compaction interrupted mid-delete and are skipped.
//
// Group commit (fsync=batch): appends mark their log dirty and draw a
// commit ticket; Durability::await_durable makes the first waiter in a
// commit window fsync every dirty log once, covering every ticket drawn
// before the fsync — later waiters in the same window return without
// touching the disk.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/shard.h"
#include "serve/wal.h"
#include "util/thread_annotations.h"

namespace sbx::serve {

class ServeFrontend;

/// How the serving layer persists mutations.
struct DurabilityConfig {
  std::string data_dir;
  FsyncMode fsync = FsyncMode::kBatch;
  /// Snapshot a shard (and truncate its log) once this many records
  /// accumulate since the last snapshot; 0 = never snapshot automatically.
  std::uint64_t snapshot_every = 0;
};

/// An incremental chain longer than this is compacted into a fresh full
/// snapshot at the next checkpoint (bounds recovery's segment walk).
inline constexpr std::uint64_t kCompactChainAfterSegments = 8;

// --- Paths -----------------------------------------------------------------

std::string shard_dir(const std::string& data_dir, std::size_t shard);
std::string wal_path_in(const std::string& data_dir, std::size_t shard);
std::string snapshot_path_in(const std::string& data_dir, std::size_t shard);
std::string incremental_snapshot_path_in(const std::string& data_dir,
                                         std::size_t shard,
                                         std::uint64_t index);

// --- Manifest --------------------------------------------------------------

/// The topology fingerprint persisted next to the logs. Recovery only
/// makes sense into an identically-shaped frontend (routing and the base
/// model derive deterministically from these), so sbx_serve refuses to
/// start when the manifest disagrees with its flags.
struct Manifest {
  std::uint64_t users = 0;
  std::uint64_t shards = 0;
  std::uint64_t base_size = 0;
  double spam_fraction = 0.5;
  std::uint64_t base_seed = 0;

  bool operator==(const Manifest&) const = default;
};

void write_manifest(const std::string& data_dir, const Manifest& manifest);

/// nullopt when no manifest exists; throws ParseError on a corrupt one.
std::optional<Manifest> read_manifest(const std::string& data_dir);

// --- Shard snapshots -------------------------------------------------------

/// One user's durable state inside a shard snapshot.
struct UserSnapshotState {
  std::uint64_t uid = 0;
  OverlaySnapshot overlay;          // null = user has no overlay
  std::vector<DedupEntry> dedup;    // oldest first
};

struct ShardSnapshot {
  std::uint64_t seqno = 0;  // highest seqno folded into this snapshot
  std::vector<UserSnapshotState> users;
};

/// Atomically replaces the snapshot at `path` (tmp + fsync + rename +
/// parent dir fsync). Users with a null overlay and no dedup entries are
/// skipped. Returns the CRC32 of the written file content — the chain
/// anchor for subsequent incremental segments.
std::uint32_t write_shard_snapshot(const std::string& path,
                                   std::uint64_t seqno,
                                   const std::vector<UserSnapshotState>& users);

/// nullopt when the file does not exist; throws ParseError on corruption
/// (a damaged snapshot is unrecoverable state loss and must fail loudly,
/// unlike a torn WAL tail which is expected after a crash).
std::optional<ShardSnapshot> read_shard_snapshot(const std::string& path);

/// One incremental segment: the users dirtied since the parent checkpoint.
struct IncrementalSnapshot {
  std::uint64_t index = 0;       // position in the chain file name
  std::uint64_t seqno = 0;       // highest seqno folded into this segment
  std::uint32_t parent_crc = 0;  // content CRC of the predecessor
  std::vector<UserSnapshotState> users;
};

struct IncrementalWriteResult {
  std::uint32_t crc = 0;    // content CRC (the next segment's parent)
  std::uint64_t bytes = 0;  // file size written
};

/// Atomically writes one chain segment; its trailing `crc` line commits
/// the content CRC the next segment must name as parent.
IncrementalWriteResult write_incremental_snapshot_file(
    const std::string& path, const IncrementalSnapshot& snap);

/// nullopt when the file does not exist; throws ParseError when the
/// trailing CRC does not cover the bytes (corruption is loud). On success
/// `out_crc`, if non-null, receives the validated content CRC.
std::optional<IncrementalSnapshot> read_incremental_snapshot_file(
    const std::string& path, std::uint32_t* out_crc = nullptr);

/// Everything recovery (and Durability's constructor) needs to know about
/// one shard's checkpoint chain on disk.
struct SnapshotChainScan {
  std::optional<ShardSnapshot> full;
  std::vector<IncrementalSnapshot> segments;  // live chain, ascending index
  std::uint64_t snapshot_seqno = 0;  // effective checkpoint watermark
  std::uint32_t tail_crc = 0;        // CRC the next segment chains onto
  std::uint64_t next_index = 1;      // 1 + highest segment index on disk
  std::uint64_t oldest_index = 1;    // lowest segment index on disk
  std::vector<std::string> stale_paths;  // pre-compaction leftovers
};

/// Loads and validates one shard's full snapshot + incremental chain.
/// Throws ParseError on a broken chain that cannot be explained as
/// compaction leftovers (see the header comment).
SnapshotChainScan scan_snapshot_chain(const std::string& data_dir,
                                      std::size_t shard);

// --- Durability (live write side) ------------------------------------------

/// Owns the open WAL writers, the global mutation seqno counter, the
/// group-commit window and the per-shard snapshot chains for a serving
/// process. Constructed once, attached to the frontend's shards.
class Durability {
 public:
  /// Creates the data-dir layout, opens one WalWriter per shard, and scans
  /// each shard's existing snapshot chain to find the tail it extends.
  Durability(DurabilityConfig config, std::size_t shard_count);

  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  const DurabilityConfig& config() const { return config_; }
  std::size_t shard_count() const { return wals_.size(); }
  WalWriter& wal(std::size_t shard) { return *wals_.at(shard); }
  std::string snapshot_path(std::size_t shard) const {
    return snapshot_path_in(config_.data_dir, shard);
  }
  std::uint64_t snapshot_every() const { return config_.snapshot_every; }

  /// Next global mutation seqno (strictly increasing across all shards).
  std::uint64_t draw_seqno() {
    return next_seqno_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Advances the seqno counter past everything recovery replayed.
  void note_recovered_seqno(std::uint64_t max_seen);

  // --- Group commit --------------------------------------------------------

  /// Draws a commit ticket for a record just appended to a WAL. The
  /// release order pairs with await_durable's acquire load: a ticket a
  /// window leader observes covers a write() that already happened.
  std::uint64_t note_append() {
    return appended_.fetch_add(1, std::memory_order_release) + 1;
  }

  /// Blocks until `ticket` is covered by an fsync (fsync=batch only; the
  /// other modes are durable — or explicitly not — at append time). The
  /// first caller into an open window becomes its leader: it fsyncs every
  /// dirty log once and releases every ticket drawn before its fsync;
  /// concurrent callers queue on the window mutex and find their ticket
  /// already committed.
  void await_durable(std::uint64_t ticket) SBX_EXCLUDES(commit_mutex_);

  std::uint64_t group_commit_windows() const {
    return windows_.load(std::memory_order_relaxed);
  }

  // --- Snapshot chain ------------------------------------------------------

  /// True when the next checkpoint of `shard` must be a full snapshot
  /// (chain too long, time to compact).
  bool snapshot_wants_full(std::size_t shard) SBX_EXCLUDES(chain_mutex_);

  /// Writes a full snapshot and deletes the shard's segment files (the
  /// compaction step). The caller still owns WAL truncation.
  void write_full_snapshot(std::size_t shard, std::uint64_t seqno,
                           const std::vector<UserSnapshotState>& users)
      SBX_EXCLUDES(chain_mutex_);

  /// Appends one incremental segment (the users dirtied since the last
  /// checkpoint) to the shard's chain. The caller still owns WAL
  /// truncation.
  void write_incremental_snapshot(std::size_t shard, std::uint64_t seqno,
                                  std::vector<UserSnapshotState> dirty_users)
      SBX_EXCLUDES(chain_mutex_);

  std::uint64_t incremental_snapshot_bytes() const {
    return inc_bytes_.load(std::memory_order_relaxed);
  }

  // --- Shutdown / stats ----------------------------------------------------

  /// Final flush (graceful shutdown / drain).
  void sync_all();

  std::uint64_t total_records() const;
  std::uint64_t total_bytes() const;
  std::uint64_t snapshots_taken() const {
    return snapshots_.load(std::memory_order_relaxed);
  }
  void note_snapshot() {
    snapshots_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  /// One shard's checkpoint-chain tail, extended under chain_mutex_.
  struct ChainState {
    std::uint64_t next_index = 1;
    std::uint32_t last_crc = 0;
    std::uint64_t segments = 0;
    std::uint64_t oldest_index = 1;  // lowest segment file still on disk
  };

  // config_ and wals_ are const after the constructor (the WalWriters
  // themselves serialize their file state behind their own io mutex);
  // counters are atomics; the commit window and the snapshot chains have
  // their own mutexes below.
  DurabilityConfig config_;
  std::vector<std::unique_ptr<WalWriter>> wals_;
  std::atomic<std::uint64_t> next_seqno_{1};
  std::atomic<std::uint64_t> snapshots_{0};

  // Group-commit window. committed_ is the highest ticket covered by an
  // fsync; appended_ is the highest ticket drawn.
  std::atomic<std::uint64_t> appended_{0};
  util::Mutex commit_mutex_{util::LockRank::kCommit,
                            "Durability::commit_mutex_"};
  std::uint64_t committed_ SBX_GUARDED_BY(commit_mutex_) = 0;
  std::atomic<std::uint64_t> windows_{0};

  // Snapshot chains, one per shard. File writes happen under the mutex —
  // checkpoints are rare and per-shard callers already hold their shard's
  // mutation lock, so contention here is a non-event.
  util::Mutex chain_mutex_{util::LockRank::kChain,
                           "Durability::chain_mutex_"};
  std::vector<ChainState> chains_ SBX_GUARDED_BY(chain_mutex_);
  std::atomic<std::uint64_t> inc_bytes_{0};
};

// --- Recovery --------------------------------------------------------------

struct RecoveryStats {
  std::uint64_t snapshot_users = 0;      // user entries restored from the chain
  std::uint64_t snapshot_segments = 0;   // incremental segments applied
  std::uint64_t replayed_records = 0;    // WAL records re-applied
  std::uint64_t torn_dropped = 0;        // torn/corrupt tail frames dropped
  std::uint64_t wal_bytes = 0;           // valid WAL bytes consumed
  std::uint64_t duration_ms = 0;
  std::uint64_t max_seqno = 0;           // highest seqno observed
};

/// Rebuilds `frontend` from `data_dir`: per shard, installs the full
/// snapshot (if any), folds the incremental chain over it (later segments
/// override earlier users), then replays WAL records with seqno above the
/// chain's watermark. With `repair_torn_tail` (the serving daemon), a
/// dropped WAL tail is truncated off the log file and stale pre-compaction
/// segments are deleted; a read-only mirror (sbx_loadgen
/// --verify-data-dir) leaves files alone. The frontend must be freshly
/// constructed with the manifest's topology.
RecoveryStats recover(ServeFrontend& frontend, const std::string& data_dir,
                      bool repair_torn_tail = false);

}  // namespace sbx::serve
