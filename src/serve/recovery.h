// sbx/serve/recovery.h
//
// Crash-safe persistence for the serving layer: the data-directory layout,
// the per-shard overlay snapshots, the startup manifest, and the recovery
// replay that rebuilds a ServeFrontend to the exact state an uninterrupted
// run would hold.
//
// Data directory layout:
//
//   <data-dir>/MANIFEST            topology fingerprint (text)
//   <data-dir>/shard-NNNN/wal.log  mutation log (wal.h framing)
//   <data-dir>/shard-NNNN/snapshot.db
//                                  last checkpoint of the shard's overlays
//
// Recovery invariant (the tentpole's correctness bar): overlay contents
// after `recover()` are bit-identical to an uninterrupted process that
// applied the same mutations — snapshots embed exact TokenDatabase::save()
// bytes, and WAL replay re-tokenizes the logged raw message text through
// the identical pipeline the live request took. (Overlay *generation*
// stamps are process-local and differ across restarts by design; nothing
// durable depends on them.)
//
// Snapshot atomicity: snapshots are written tmp → fsync → rename → fsync
// parent dir, then the WAL is truncated. A crash between rename and
// truncate is safe because the snapshot records the highest folded seqno
// and replay skips WAL records at or below it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/shard.h"
#include "serve/wal.h"

namespace sbx::serve {

class ServeFrontend;

/// How the serving layer persists mutations.
struct DurabilityConfig {
  std::string data_dir;
  FsyncMode fsync = FsyncMode::kBatch;
  std::uint32_t fsync_batch_every = 64;
  /// Snapshot a shard (and truncate its log) once this many records
  /// accumulate since the last snapshot; 0 = never snapshot automatically.
  std::uint64_t snapshot_every = 0;
};

// --- Paths -----------------------------------------------------------------

std::string shard_dir(const std::string& data_dir, std::size_t shard);
std::string wal_path_in(const std::string& data_dir, std::size_t shard);
std::string snapshot_path_in(const std::string& data_dir, std::size_t shard);

// --- Manifest --------------------------------------------------------------

/// The topology fingerprint persisted next to the logs. Recovery only
/// makes sense into an identically-shaped frontend (routing and the base
/// model derive deterministically from these), so sbx_serve refuses to
/// start when the manifest disagrees with its flags.
struct Manifest {
  std::uint64_t users = 0;
  std::uint64_t shards = 0;
  std::uint64_t base_size = 0;
  double spam_fraction = 0.5;
  std::uint64_t base_seed = 0;

  bool operator==(const Manifest&) const = default;
};

void write_manifest(const std::string& data_dir, const Manifest& manifest);

/// nullopt when no manifest exists; throws ParseError on a corrupt one.
std::optional<Manifest> read_manifest(const std::string& data_dir);

// --- Shard snapshots -------------------------------------------------------

/// One user's durable state inside a shard snapshot.
struct UserSnapshotState {
  std::uint64_t uid = 0;
  OverlaySnapshot overlay;          // null = user has no overlay
  std::vector<DedupEntry> dedup;    // oldest first
};

struct ShardSnapshot {
  std::uint64_t seqno = 0;  // highest seqno folded into this snapshot
  std::vector<UserSnapshotState> users;
};

/// Atomically replaces the snapshot at `path` (tmp + fsync + rename +
/// parent dir fsync). Users with a null overlay and no dedup entries are
/// skipped.
void write_shard_snapshot(const std::string& path, std::uint64_t seqno,
                          const std::vector<UserSnapshotState>& users);

/// nullopt when the file does not exist; throws ParseError on corruption
/// (a damaged snapshot is unrecoverable state loss and must fail loudly,
/// unlike a torn WAL tail which is expected after a crash).
std::optional<ShardSnapshot> read_shard_snapshot(const std::string& path);

// --- Durability (live write side) ------------------------------------------

/// Owns the open WAL writers and the global mutation seqno counter for a
/// serving process. Constructed once, attached to the frontend's shards.
class Durability {
 public:
  /// Creates the data-dir layout and opens one WalWriter per shard.
  Durability(DurabilityConfig config, std::size_t shard_count);

  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  const DurabilityConfig& config() const { return config_; }
  std::size_t shard_count() const { return wals_.size(); }
  WalWriter& wal(std::size_t shard) { return *wals_.at(shard); }
  std::string snapshot_path(std::size_t shard) const {
    return snapshot_path_in(config_.data_dir, shard);
  }
  std::uint64_t snapshot_every() const { return config_.snapshot_every; }

  /// Next global mutation seqno (strictly increasing across all shards).
  std::uint64_t draw_seqno() {
    return next_seqno_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Advances the seqno counter past everything recovery replayed.
  void note_recovered_seqno(std::uint64_t max_seen);

  /// Final flush (graceful shutdown / drain).
  void sync_all();

  std::uint64_t total_records() const;
  std::uint64_t total_bytes() const;
  std::uint64_t snapshots_taken() const {
    return snapshots_.load(std::memory_order_relaxed);
  }
  void note_snapshot() {
    snapshots_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  // No mutex here on purpose: config_ and wals_ are const after the
  // constructor (the WalWriters themselves serialize their file state
  // behind their own io mutex), and the counters are atomics. There is no
  // member left for SBX_GUARDED_BY to protect.
  DurabilityConfig config_;
  std::vector<std::unique_ptr<WalWriter>> wals_;
  std::atomic<std::uint64_t> next_seqno_{1};
  std::atomic<std::uint64_t> snapshots_{0};
};

// --- Recovery --------------------------------------------------------------

struct RecoveryStats {
  std::uint64_t snapshot_users = 0;      // users restored from snapshots
  std::uint64_t replayed_records = 0;    // WAL records re-applied
  std::uint64_t torn_dropped = 0;        // torn/corrupt tail frames dropped
  std::uint64_t wal_bytes = 0;           // valid WAL bytes consumed
  std::uint64_t duration_ms = 0;
  std::uint64_t max_seqno = 0;           // highest seqno observed
};

/// Rebuilds `frontend` from `data_dir`: per shard, installs the snapshot
/// (if any), then replays WAL records with seqno above the snapshot's.
/// With `repair_torn_tail` (the serving daemon), a dropped tail is also
/// truncated off the log file so future appends stay readable; a
/// read-only mirror (sbx_loadgen --verify-data-dir) leaves files alone.
/// The frontend must be freshly constructed with the manifest's topology.
RecoveryStats recover(ServeFrontend& frontend, const std::string& data_dir,
                      bool repair_torn_tail = false);

}  // namespace sbx::serve
