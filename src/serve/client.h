// sbx/serve/client.h
//
// Deadline- and retry-aware client for the framed serving protocol (used
// by sbx_loadgen and the tests; handy for ad-hoc poking from other tools
// too).
//
// Robustness semantics:
//
//  * connect and every call() run under explicit deadlines — a dead or
//    wedged server costs a bounded wait, never a hang;
//  * transport failures (connection refused/reset, timeout, mid-frame
//    close) and ErrorResponse{kOverloaded} load-shed answers are retried
//    up to `max_attempts` times with exponential backoff and full jitter,
//    reconnecting between attempts;
//  * ParseError is never retried — a protocol violation will not improve
//    with repetition;
//  * ErrorResponse{kNotPrimary} with a non-empty redirect re-points the
//    client at the named endpoint and retries there immediately (failover
//    following); without a redirect the error is returned as-is;
//  * retrying a Train/Untrain is only idempotent when the request carries
//    a request_id (the server's dedup window absorbs the duplicate); the
//    caller owns id assignment, the client just resends the frame
//    verbatim.
//
// Backoff jitter draws from a deterministic util::Rng seeded by
// `jitter_seed`, keeping retry schedules reproducible in tests and
// loadgen runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/backoff.h"

namespace sbx::serve {

struct ClientOptions {
  long connect_timeout_ms = 5'000;
  /// Deadline for one call() attempt (request write + response read).
  long op_timeout_ms = 10'000;
  /// Total attempts per call() (1 = no retries).
  int max_attempts = 1;
  int backoff_base_ms = 10;
  int backoff_cap_ms = 1'000;
  std::uint64_t jitter_seed = 1;
};

class Client {
 public:
  /// Connects to an endpoint in the Server spelling ("unix:PATH",
  /// "tcp:PORT" or "tcp:HOST:PORT"). Throws IoError on failure (after
  /// retries, when configured).
  explicit Client(const std::string& endpoint, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round-trip: encode, send, receive, decode — with deadline,
  /// reconnect and backoff per the options.
  Response call(const Request& request);

  /// Retries performed across all call()s so far (telemetry).
  std::uint64_t retries() const { return retries_; }

  /// The endpoint the next call() targets — changes when a kNotPrimary
  /// redirect re-points the client.
  const std::string& endpoint() const { return endpoint_; }

  /// Closes the connection (idempotent). The next call() reconnects.
  void disconnect();

 private:
  void connect_with_deadline();
  void ensure_connected();

  std::string endpoint_;
  ClientOptions options_;
  util::ExponentialBackoff backoff_;
  int fd_ = -1;
  std::uint64_t retries_ = 0;
};

}  // namespace sbx::serve
