#include "serve/base_model.h"

#include "corpus/generator.h"
#include "util/random.h"

namespace sbx::serve {

spambayes::Filter build_base_filter(const BaseModelConfig& config) {
  const corpus::TrecLikeGenerator generator;
  util::Rng rng(config.seed);
  const corpus::Dataset mailbox =
      generator.sample_mailbox(config.base_size, config.spam_fraction, rng);
  spambayes::Filter filter;
  for (const corpus::LabeledMessage& item : mailbox.items) {
    if (item.label == corpus::TrueLabel::spam) {
      filter.train_spam(item.message);
    } else {
      filter.train_ham(item.message);
    }
  }
  return filter;
}

}  // namespace sbx::serve
