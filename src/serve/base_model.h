// sbx/serve/base_model.h
//
// Deterministic construction of the shared base filter sbx_serve starts
// from. Factored out so the daemon and sbx_loadgen --verify (which mirrors
// every request into an in-process frontend and compares score bits) build
// the exact same base from the same (size, spam_fraction, seed) triple.
#pragma once

#include <cstddef>
#include <cstdint>

#include "spambayes/filter.h"

namespace sbx::serve {

struct BaseModelConfig {
  std::size_t base_size = 2000;       // messages trained into the base
  double spam_fraction = 0.5;
  std::uint64_t seed = 42;
};

/// Samples a TREC-like mailbox and trains it into a fresh filter. Equal
/// configs produce bit-identical filters (generator, sampling and training
/// are all deterministic in the seed).
spambayes::Filter build_base_filter(const BaseModelConfig& config);

}  // namespace sbx::serve
