#include "serve/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <cstdio>
#include <vector>

#include "serve/fault_injector.h"
#include "serve/wire.h"
#include "util/crc32.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

/// Per-record cap: a train message is bounded by the protocol's frame
/// limit, so anything bigger in the log is corruption, not data.
constexpr std::uint32_t kMaxWalBodyBytes = 80u << 20;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void write_file_all(int fd, const std::uint8_t* data, std::size_t len,
                    const std::string& path) {
  std::size_t sent = 0;
  while (sent < len) {
    const std::size_t chunk =
        FaultInjector::instance().clamp_write_len(len - sent);
    const ssize_t n = ::write(fd, data + sent, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wal: write " + path);
    }
    sent += static_cast<std::size_t>(n);
  }
}

// fdatasync, not fsync: an append-only log needs the data and the size
// extension required to retrieve it (POSIX guarantees fdatasync covers
// both); flushing the rest of the inode metadata would only stretch the
// group-commit window for nothing recovery reads.
void fsync_or_throw(int fd, const std::string& path) {
  if (::fdatasync(fd) < 0) throw_errno("wal: fdatasync " + path);
}

std::uint32_t le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

FsyncMode fsync_mode_from_string(const std::string& s) {
  if (s == "none") return FsyncMode::kNone;
  if (s == "batch") return FsyncMode::kBatch;
  if (s == "always") return FsyncMode::kAlways;
  throw ParseError("wal: unknown fsync mode '" + s +
                   "' (expected none|batch|always)");
}

std::string to_string(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kNone:
      return "none";
    case FsyncMode::kBatch:
      return "batch";
    case FsyncMode::kAlways:
      return "always";
  }
  return "batch";
}

std::vector<std::uint8_t> encode_wal_body(const WalRecord& record) {
  wire::Writer w(kMaxWalBodyBytes);
  w.u8(kWalFormatVersion);
  w.u8(record.op);
  w.u64(record.seqno);
  w.u64(record.user_id);
  w.u64(record.request_id);
  w.u8(record.as_spam ? 1 : 0);
  w.u32(record.copies);
  w.str(record.message);
  return std::move(w).take();
}

WalRecord decode_wal_body(std::span<const std::uint8_t> body) {
  wire::Reader r(body);
  const std::uint8_t version = r.u8();
  if (version != kWalFormatVersion) {
    throw ParseError("wal: unknown format version " + std::to_string(version));
  }
  WalRecord record;
  record.op = r.u8();
  if (record.op != kWalOpTrain && record.op != kWalOpUntrain) {
    throw ParseError("wal: unknown op " + std::to_string(record.op));
  }
  record.seqno = r.u64();
  record.user_id = r.u64();
  record.request_id = r.u64();
  record.as_spam = r.u8() != 0;
  record.copies = r.u32();
  record.message = r.str();
  r.expect_done();
  return record;
}

WalWriter::WalWriter(std::string path, FsyncMode mode)
    : path_(std::move(path)), mode_(mode) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_APPEND | O_WRONLY | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("wal: open " + path_);
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::append(const WalRecord& record) {
  const std::vector<std::uint8_t> body = encode_wal_body(record);
  wire::Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.u32(util::crc32(body.data(), body.size()));
  std::vector<std::uint8_t> out = std::move(frame).take();
  out.insert(out.end(), body.begin(), body.end());

  const util::MutexLock lock(io_mutex_);
  write_file_all(fd_, out.data(), out.size(), path_);
  records_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(out.size(), std::memory_order_relaxed);
  since_truncate_.fetch_add(1, std::memory_order_relaxed);
  FaultInjector::instance().after_wal_record();

  switch (mode_) {
    case FsyncMode::kNone:
      break;
    case FsyncMode::kAlways:
      fsync_or_throw(fd_, path_);
      break;
    case FsyncMode::kBatch:
      // Group commit: the covering fsync comes from the next sync() call
      // (the commit-window leader in Durability::await_durable, or the
      // drain flush). Appends only mark the log dirty.
      ++unsynced_;
      break;
  }
}

void WalWriter::sync() {
  if (mode_ == FsyncMode::kNone) return;
  const util::MutexLock lock(io_mutex_);
  if (unsynced_ == 0 && mode_ == FsyncMode::kBatch) return;
  fsync_or_throw(fd_, path_);
  unsynced_ = 0;
}

void WalWriter::truncate() {
  const util::MutexLock lock(io_mutex_);
  if (::ftruncate(fd_, 0) < 0) throw_errno("wal: truncate " + path_);
  fsync_or_throw(fd_, path_);
  unsynced_ = 0;
  since_truncate_.store(0, std::memory_order_relaxed);
}

WalReadStats read_wal(const std::string& path,
                      const std::function<void(const WalRecord&)>& sink) {
  WalReadStats stats;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no log yet = empty log
    throw_errno("wal: open " + path);
  }

  std::vector<std::uint8_t> data;
  {
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("wal: read " + path);
      }
      if (n == 0) break;
      data.insert(data.end(), buf, buf + n);
    }
  }
  ::close(fd);
  stats.bytes_total = data.size();

  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      stats.dropped_torn = 1;
      break;
    }
    const std::uint32_t body_len = le32(data.data() + pos);
    const std::uint32_t stored_crc = le32(data.data() + pos + 4);
    if (body_len == 0 || body_len > kMaxWalBodyBytes) {
      stats.dropped_corrupt = 1;
      break;
    }
    if (data.size() - pos - 8 < body_len) {
      stats.dropped_torn = 1;
      break;
    }
    const std::uint8_t* body = data.data() + pos + 8;
    if (util::crc32(body, body_len) != stored_crc) {
      stats.dropped_corrupt = 1;
      break;
    }
    WalRecord record;
    try {
      record = decode_wal_body(std::span<const std::uint8_t>(body, body_len));
    } catch (const ParseError&) {
      // CRC matched but the body doesn't decode — treat as corruption, not
      // a crash (a bad record poisons everything after it).
      stats.dropped_corrupt = 1;
      break;
    }
    sink(record);
    ++stats.records;
    pos += 8 + body_len;
    stats.bytes_used = pos;
  }
  return stats;
}

}  // namespace sbx::serve
