#include "serve/framing.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "serve/fault_injector.h"
#include "util/error.h"

namespace sbx::serve::io {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Polls `fd` for `events` until ready or the deadline expires. Throws on
/// deadline expiry; EINTR restarts the wait.
void poll_or_throw(int fd, short events, const util::Deadline& deadline,
                   const char* what) {
  for (;;) {
    if (deadline.expired()) {
      throw IoError(std::string(what) + ": timed out");
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, deadline.remaining_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno(std::string(what) + ": poll");
    }
    if (rc > 0) return;  // ready (or error/hup — let read/write report it)
  }
}

}  // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("serve io: fcntl(F_GETFL)");
  if ((flags & O_NONBLOCK) == 0 &&
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("serve io: fcntl(F_SETFL, O_NONBLOCK)");
  }
}

Waited wait_readable(int fd, long idle_timeout_ms,
                     const std::atomic<bool>* stop) {
  const util::Deadline deadline = util::Deadline::after_ms(idle_timeout_ms);
  const bool unlimited = idle_timeout_ms <= 0;
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      return Waited::kStop;
    }
    if (!unlimited && deadline.expired()) return Waited::kIdleTimeout;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    // Short slices keep the stop flag responsive on an otherwise idle
    // connection.
    int slice = unlimited ? 100 : deadline.remaining_ms();
    if (slice > 100) slice = 100;
    const int rc = ::poll(&pfd, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve io: poll");
    }
    if (rc > 0) return Waited::kReadable;
  }
}

bool read_exact(int fd, void* buf, std::size_t len,
                const util::Deadline& deadline) {
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < len) {
    FaultInjector::instance().before_read();
    const ssize_t n = ::read(fd, out + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw IoError("serve io: connection closed mid-frame (" +
                    std::to_string(got) + "/" + std::to_string(len) +
                    " bytes)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poll_or_throw(fd, POLLIN, deadline, "serve io: read");
      continue;
    }
    throw_errno("serve io: read");
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t len,
               const util::Deadline& deadline) {
  const auto* in = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    FaultInjector& faults = FaultInjector::instance();
    if (faults.should_close_instead_of_write()) {
      ::shutdown(fd, SHUT_RDWR);
      throw IoError("serve io: connection closed by fault injection");
    }
    const std::size_t chunk = faults.clamp_write_len(len - sent);
    // send() instead of write(): MSG_NOSIGNAL turns a peer-closed socket
    // into EPIPE (an IoError the caller can retry) instead of SIGPIPE
    // killing the process.
    const ssize_t n = ::send(fd, in + sent, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        poll_or_throw(fd, POLLOUT, deadline, "serve io: write");
        continue;
      }
      throw_errno("serve io: write");
    }
  }
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                const util::Deadline& deadline) {
  std::uint8_t len_bytes[4];
  if (!read_exact(fd, len_bytes, sizeof(len_bytes), deadline)) return false;
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
  }
  if (payload_len < 2 || payload_len > kMaxFrameBytes) {
    throw ParseError("serve io: bad frame length " +
                     std::to_string(payload_len));
  }
  payload.resize(payload_len);
  if (!read_exact(fd, payload.data(), payload.size(), deadline)) {
    throw IoError("serve io: connection closed after frame header");
  }
  return true;
}

void write_frame(int fd, const std::vector<std::uint8_t>& frame,
                 const util::Deadline& deadline) {
  write_all(fd, frame.data(), frame.size(), deadline);
}

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  ParsedEndpoint out;
  if (endpoint.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = endpoint.substr(5);
    if (out.path.empty()) {
      throw InvalidArgument("serve: empty unix socket path in '" + endpoint +
                            "'");
    }
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw InvalidArgument("serve: unix socket path too long: " + out.path);
    }
    return out;
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      out.host = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    }
    try {
      const unsigned long port = std::stoul(rest);
      if (port > 65535) throw std::out_of_range("port");
      out.port = static_cast<std::uint16_t>(port);
    } catch (const std::exception&) {
      throw InvalidArgument("serve: bad tcp port in '" + endpoint + "'");
    }
    return out;
  }
  throw InvalidArgument(
      "serve: endpoint must be unix:PATH or tcp:PORT, got '" + endpoint + "'");
}

}  // namespace sbx::serve::io
