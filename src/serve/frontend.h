// sbx/serve/frontend.h
//
// ServeFrontend is the in-process serving API: it owns the shared base
// filter, the shard array, and the user-id routing table, and maps
// protocol requests to responses. The socket server (server.h) and any
// embedded caller (tests, sbx_loadgen --verify) use the exact same
// dispatch path, so "what the daemon answers" is defined here once.
//
// Consistency contract (the ISSUE's correctness bar):
//
//  * a user with an empty overlay classifies bit-identically to the base
//    filter — the classify path pumps the base through the
//    generation-cached ScoreEngine batch API, the same code path batch
//    experiments use;
//  * a user whose overlay was trained on messages M classifies
//    bit-identically to a standalone Filter copy trained on M — merged
//    counts are exact uint32 sums, so Classifier::score_ids(base, overlay)
//    sees the same doubles as a merged database would;
//  * one classify batch reads one overlay snapshot: mutations that land
//    mid-batch affect later requests, never a half-scored batch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/protocol.h"
#include "serve/shard.h"
#include "spambayes/filter.h"

namespace sbx::serve {

struct FrontendConfig {
  std::size_t shard_count = 4;
  std::size_t user_count = 64;
};

class ServeFrontend {
 public:
  /// Takes ownership of the shared base filter (immutable from here on)
  /// and builds the shard/user routing table. Throws InvalidArgument on a
  /// zero shard or user count.
  ServeFrontend(spambayes::Filter base, FrontendConfig config);

  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  ClassifyBatchResponse classify_batch(const ClassifyBatchRequest& request);
  TrainResponse train(const TrainRequest& request);
  UntrainResponse untrain(const UntrainRequest& request);
  StatsResponse stats() const;

  /// Maps any request to its response, converting sbx::Error into
  /// ErrorResponse (the connection-level catch-all). ShutdownRequest gets
  /// a ShutdownResponse; acting on it is the server's job.
  Response dispatch(const Request& request);

  /// Scores many batches concurrently: requests are grouped by shard and
  /// the groups run on the shared process-wide pool
  /// (util::parallel_over_shards), one ScoreEngine per worker thread.
  /// Response order matches request order.
  std::vector<Response> classify_many(
      const std::vector<ClassifyBatchRequest>& requests);

  const spambayes::Filter& base() const { return base_; }
  std::size_t user_count() const { return route_.size(); }
  std::size_t shard_count() const { return shards_.size(); }

  /// The routed (shard, local slot) of a user id — exposed so tests can
  /// target users that share / don't share a shard.
  struct RouteEntry {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;
  };
  RouteEntry route(std::uint64_t user_id) const;

 private:
  const RouteEntry& route_checked(std::uint64_t user_id) const;

  spambayes::Filter base_;
  std::vector<std::unique_ptr<ModelShard>> shards_;
  std::vector<RouteEntry> route_;  // indexed by user id
  std::atomic<std::uint64_t> classify_requests_{0};
  std::atomic<std::uint64_t> train_requests_{0};
  std::atomic<std::uint64_t> untrain_requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace sbx::serve
