// sbx/serve/frontend.h
//
// ServeFrontend is the in-process serving API: it owns the shared base
// filter, the shard array, and the user-id routing table, and maps
// protocol requests to responses. The socket server (server.h) and any
// embedded caller (tests, sbx_loadgen --verify) use the exact same
// dispatch path, so "what the daemon answers" is defined here once.
//
// Consistency contract (the ISSUE's correctness bar):
//
//  * a user with an empty overlay classifies bit-identically to the base
//    filter — the classify path pumps the base through the
//    generation-cached ScoreEngine batch API, the same code path batch
//    experiments use;
//  * a user whose overlay was trained on messages M classifies
//    bit-identically to a standalone Filter copy trained on M — merged
//    counts are exact uint32 sums, so Classifier::score_ids(base, overlay)
//    sees the same doubles as a merged database would;
//  * one classify batch reads one overlay snapshot: mutations that land
//    mid-batch affect later requests, never a half-scored batch.
//
// Durability (PR 7): constructed with a Durability, every Train/Untrain is
// WAL-logged before it publishes, and recover() (recovery.h) rebuilds the
// frontend from snapshot + log to a state bit-identical to an
// uninterrupted run. Without one, the frontend is the same in-memory
// structure as before — that is what sbx_loadgen's verification mirror
// embeds.
//
// Replication (PR 9): the frontend carries a Role. A primary with an
// attached Replicator ships every committed WAL record to the standby; a
// standby (set_standby) refuses Classify/Train/Untrain over dispatch with
// ErrorCode::kNotPrimary (+ optional redirect endpoint) and instead
// absorbs ReplicateBatch frames through the shards' replay-equivalent
// apply_replicated path. promote() flips a standby to primary with no
// replay gap: every shipped record was applied (and logged) as it
// arrived, so promotion only has to advance the seqno counter past the
// replicated watermark.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/protocol.h"
#include "serve/recovery.h"
#include "serve/shard.h"
#include "serve/wal.h"
#include "spambayes/filter.h"

namespace sbx::serve {

class Replicator;

/// What this node answers for. Standbys refuse writes (and classify —
/// their models trail the primary by the ship lag) until promoted.
enum class Role : std::uint8_t { kPrimary = 0, kStandby = 1 };

struct FrontendConfig {
  std::size_t shard_count = 4;
  std::size_t user_count = 64;
  /// Request-id dedup window per user (0 disables idempotent retries).
  std::size_t dedup_window = 64;
};

/// Connection-level counters owned by the socket server but reported
/// through the frontend's stats endpoint. Atomics, so the stats path reads
/// them without touching server locks.
struct ServerCounters {
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> active{0};
};

class ServeFrontend {
 public:
  /// Takes ownership of the shared base filter (immutable from here on)
  /// and builds the shard/user routing table. With a Durability, the
  /// shards log every mutation to their WAL before publishing. Throws
  /// InvalidArgument on a zero shard or user count.
  ServeFrontend(spambayes::Filter base, FrontendConfig config,
                std::unique_ptr<Durability> durability = nullptr);
  ~ServeFrontend();

  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  ClassifyBatchResponse classify_batch(const ClassifyBatchRequest& request);
  TrainResponse train(const TrainRequest& request);
  UntrainResponse untrain(const UntrainRequest& request);
  StatsResponse stats() const;

  // --- Replication / roles ------------------------------------------------

  Role role() const { return role_.load(std::memory_order_acquire); }

  /// Marks this node a standby before serving starts. `redirect_hint` (may
  /// be empty) is the endpoint kNotPrimary rejections point writers at.
  /// Not safe to call once requests are in flight — standbys start as
  /// standbys; the only live transition is promote().
  void set_standby(std::string redirect_hint);

  /// Flips this node to primary and advances the durability seqno counter
  /// past everything absorbed as a standby, so freshly drawn seqnos never
  /// collide with replicated ones. Idempotent; returns the watermark.
  PromoteResponse promote();

  /// Standby side of WAL shipping: applies each shipped record through the
  /// shards' replay-equivalent path (skipping per-shard seqnos already
  /// applied — resends are idempotent), waits for the covering fsync, then
  /// acks the batch's highest seqno. The ack therefore implies standby
  /// durability under the standby's own fsync policy.
  ReplicateAckResponse replicate_batch(const ReplicateBatchRequest& request);

  /// Primary side: owns the shipper and wires it into every shard. Call
  /// after construction (and after recovery), before serving.
  void attach_replicator(std::unique_ptr<Replicator> replicator);

  Replicator* replicator() { return replicator_.get(); }

  /// Maps any request to its response, converting sbx::Error into
  /// ErrorResponse (the connection-level catch-all). ShutdownRequest gets
  /// a ShutdownResponse; acting on it is the server's job.
  Response dispatch(const Request& request);

  /// Scores many batches concurrently: requests are grouped by shard and
  /// the groups run on the shared process-wide pool
  /// (util::parallel_over_shards), one ScoreEngine per worker thread.
  /// Response order matches request order.
  std::vector<Response> classify_many(
      const std::vector<ClassifyBatchRequest>& requests);

  const spambayes::Filter& base() const { return base_; }
  std::size_t user_count() const { return route_.size(); }
  std::size_t shard_count() const { return shards_.size(); }

  /// The routed (shard, local slot) of a user id — exposed so tests can
  /// target users that share / don't share a shard.
  struct RouteEntry {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;
  };
  RouteEntry route(std::uint64_t user_id) const;

  // --- Durability / recovery wiring ---------------------------------------

  /// Null when running in-memory only.
  Durability* durability() { return durability_.get(); }

  /// Final WAL flush (graceful drain). With a replicator attached, drains
  /// the ship queue (bounded wait) and stops the shipper first.
  void sync_durability();

  /// Recovery-only: installs one user's snapshot state (recovery.h's
  /// recover() is the caller). Throws InvalidArgument for an unknown uid.
  void replay_install_user(std::uint64_t uid, OverlaySnapshot overlay,
                           std::vector<DedupEntry> dedup);

  /// Recovery-only: re-applies one logged mutation (tokenizing the logged
  /// raw text through the same pipeline the live request took) without
  /// re-logging it.
  void replay_wal_record(const WalRecord& record);

  /// Surfaces recovery telemetry through stats().
  void set_recovery_stats(const RecoveryStats& stats) {
    recovery_stats_ = stats;
  }

  /// Points stats() at the socket server's connection counters (the server
  /// detaches on destruction).
  void attach_server_counters(const ServerCounters* counters) {
    server_counters_.store(counters, std::memory_order_release);
  }

 private:
  const RouteEntry& route_checked(std::uint64_t user_id) const;
  MutationResult apply(std::uint8_t op, std::uint64_t user_id,
                       std::uint64_t request_id, bool as_spam,
                       std::uint32_t copies, const std::string& message);
  ErrorResponse not_primary(const char* what);

  spambayes::Filter base_;
  std::unique_ptr<Durability> durability_;
  std::unique_ptr<Replicator> replicator_;
  std::atomic<Role> role_{Role::kPrimary};
  // Written once by set_standby before serving starts; read-only after.
  std::string redirect_hint_;
  std::vector<std::unique_ptr<ModelShard>> shards_;
  std::vector<RouteEntry> route_;  // indexed by user id
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  RecoveryStats recovery_stats_;
  std::atomic<const ServerCounters*> server_counters_{nullptr};
  std::atomic<std::uint64_t> classify_requests_{0};
  std::atomic<std::uint64_t> train_requests_{0};
  std::atomic<std::uint64_t> untrain_requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> standby_applied_records_{0};
};

}  // namespace sbx::serve
