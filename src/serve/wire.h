// sbx/serve/wire.h
//
// The little-endian byte codec shared by every framed format in the
// serving layer: the socket protocol (protocol.cpp) and the write-ahead
// log records (wal.cpp) encode through the same Writer/Reader, so "how a
// u64 or a length-prefixed string looks in bytes" is defined exactly once.
// Reader is strict: reading past the end of the buffer throws ParseError,
// never reads out of bounds, and expect_done() rejects trailing bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace sbx::serve::wire {

/// Appends little-endian scalars and length-prefixed strings to a byte
/// buffer. `limit` guards string sizes (a corrupt in-memory length must
/// not drive a multi-gigabyte buffer).
class Writer {
 public:
  explicit Writer(std::uint32_t string_limit = 0xFFFFFFFFu)
      : string_limit_(string_limit) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    if (s.size() > string_limit_) {
      throw InvalidArgument("serve wire: string exceeds frame limit");
    }
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  /// Raw byte append (no length prefix) — for embedding an already-framed
  /// blob such as a WAL record body whose length/CRC were written above.
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }

  std::size_t size() const { return out_.size(); }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::uint32_t string_limit_;
  std::vector<std::uint8_t> out_;
};

/// Strict little-endian reader over a borrowed byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  /// Raw byte read (no length prefix) — the strict counterpart of
  /// Writer::bytes. The returned span borrows the Reader's buffer.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    const std::span<const std::uint8_t> s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == data_.size(); }
  /// Bytes left to read — bounds any element-count a decoder trusts for
  /// pre-allocation (a hostile count must not drive a huge reserve).
  std::size_t remaining() const { return data_.size() - pos_; }
  void expect_done() const {
    if (!done()) {
      throw ParseError("serve wire: " + std::to_string(data_.size() - pos_) +
                       " trailing bytes after message body");
    }
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw ParseError("serve wire: truncated message body");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace sbx::serve::wire
