#include "serve/recovery.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "serve/frontend.h"
#include "spambayes/token_db.h"
#include "util/crc32.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Writes `content` to `path` atomically and durably: tmp file + fsync +
/// rename + parent-directory fsync. The rename is the commit point.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("recovery: open " + tmp);
  std::size_t sent = 0;
  while (sent < content.size()) {
    const ssize_t n = ::write(fd, content.data() + sent, content.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("recovery: write " + tmp);
    }
    sent += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("recovery: fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    throw_errno("recovery: rename " + tmp + " -> " + path);
  }
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dirfd = ::open(dir.empty() ? "." : dir.c_str(),
                           O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);  // best effort: makes the rename itself durable
    ::close(dirfd);
  }
}

/// nullopt when the file does not exist; throws IoError on read failures.
std::optional<std::string> read_file_to_string(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw IoError("recovery: read " + path);
  return std::move(out).str();
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Strict "key value..." line splitter for the text headers.
std::istringstream line_fields(std::istream& in, const std::string& expect_key,
                               const std::string& what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError(what + ": truncated (expected '" + expect_key + "' line)");
  }
  std::istringstream fields(line);
  std::string key;
  fields >> key;
  if (key != expect_key) {
    throw ParseError(what + ": expected '" + expect_key + "', got '" + line +
                     "'");
  }
  return fields;
}

std::uint64_t read_u64_field(std::istringstream& fields,
                             const std::string& what) {
  std::uint64_t v = 0;
  if (!(fields >> v)) throw ParseError(what + ": malformed numeric field");
  return v;
}

/// Serializes user states in the line format shared by full snapshots and
/// incremental segments.
void append_user_states(std::ostream& out,
                        const std::vector<UserSnapshotState>& users) {
  for (const UserSnapshotState& u : users) {
    out << "user " << u.uid << " " << u.dedup.size() << " "
        << (u.overlay != nullptr ? 1 : 0) << "\n";
    for (const DedupEntry& d : u.dedup) {
      out << "dedup " << d.request_id << " "
          << static_cast<unsigned>(d.op) << " " << d.spam << " " << d.ham
          << "\n";
    }
    if (u.overlay != nullptr) {
      // TokenDatabase::load reads to end-of-stream, so the embedded block
      // needs an explicit byte count to know where this user's database
      // ends and the next header line begins.
      std::ostringstream db;
      u.overlay->save(db);
      const std::string bytes = db.str();
      out << "dbbytes " << bytes.size() << "\n" << bytes << "\n";
    }
  }
}

/// Filters out users that carry no durable state (nothing to restore).
std::vector<UserSnapshotState> prune_empty_users(
    const std::vector<UserSnapshotState>& users) {
  std::vector<UserSnapshotState> kept;
  kept.reserve(users.size());
  for (const UserSnapshotState& u : users) {
    if (u.overlay != nullptr || !u.dedup.empty()) kept.push_back(u);
  }
  return kept;
}

std::vector<UserSnapshotState> parse_user_states(std::istream& in,
                                                 std::uint64_t user_count,
                                                 const std::string& what) {
  std::vector<UserSnapshotState> users;
  users.reserve(user_count);
  for (std::uint64_t i = 0; i < user_count; ++i) {
    UserSnapshotState u;
    std::uint64_t dedup_count = 0;
    std::uint64_t db_present = 0;
    {
      auto f = line_fields(in, "user", what);
      u.uid = read_u64_field(f, what);
      dedup_count = read_u64_field(f, what);
      db_present = read_u64_field(f, what);
    }
    u.dedup.reserve(dedup_count);
    for (std::uint64_t d = 0; d < dedup_count; ++d) {
      auto f = line_fields(in, "dedup", what);
      DedupEntry e;
      e.request_id = read_u64_field(f, what);
      e.op = static_cast<std::uint8_t>(read_u64_field(f, what));
      e.spam = static_cast<std::uint32_t>(read_u64_field(f, what));
      e.ham = static_cast<std::uint32_t>(read_u64_field(f, what));
      u.dedup.push_back(e);
    }
    if (db_present != 0) {
      std::uint64_t nbytes = 0;
      {
        auto f = line_fields(in, "dbbytes", what);
        nbytes = read_u64_field(f, what);
      }
      std::string bytes(nbytes, '\0');
      if (!in.read(bytes.data(), static_cast<std::streamsize>(nbytes))) {
        throw ParseError(what + ": truncated database block");
      }
      if (in.get() != '\n') {
        throw ParseError(what + ": database block not newline-terminated");
      }
      std::istringstream db(bytes);
      u.overlay = std::make_shared<spambayes::TokenDatabase>(
          spambayes::TokenDatabase::load(db));
    }
    users.push_back(std::move(u));
  }
  return users;
}

ShardSnapshot parse_shard_snapshot(std::istream& in, const std::string& what) {
  std::string magic;
  if (!std::getline(in, magic) || magic != "SBXSNAP 1") {
    throw ParseError(what + ": bad magic");
  }
  ShardSnapshot snap;
  {
    auto f = line_fields(in, "seqno", what);
    snap.seqno = read_u64_field(f, what);
  }
  std::uint64_t user_count = 0;
  {
    auto f = line_fields(in, "users", what);
    user_count = read_u64_field(f, what);
  }
  snap.users = parse_user_states(in, user_count, what);
  return snap;
}

}  // namespace

// --- Paths -----------------------------------------------------------------

std::string shard_dir(const std::string& data_dir, std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", shard);
  return data_dir + "/" + buf;
}

std::string wal_path_in(const std::string& data_dir, std::size_t shard) {
  return shard_dir(data_dir, shard) + "/wal.log";
}

std::string snapshot_path_in(const std::string& data_dir, std::size_t shard) {
  return shard_dir(data_dir, shard) + "/snapshot.db";
}

std::string incremental_snapshot_path_in(const std::string& data_dir,
                                         std::size_t shard,
                                         std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%06llu.inc",
                static_cast<unsigned long long>(index));
  return shard_dir(data_dir, shard) + "/" + buf;
}

// --- Manifest --------------------------------------------------------------

void write_manifest(const std::string& data_dir, const Manifest& manifest) {
  std::ostringstream out;
  out << "SBXMANIFEST 1\n";
  out << "users " << manifest.users << "\n";
  out << "shards " << manifest.shards << "\n";
  out << "base_size " << manifest.base_size << "\n";
  out << "spam_fraction " << format_double(manifest.spam_fraction) << "\n";
  out << "base_seed " << manifest.base_seed << "\n";
  write_file_atomic(data_dir + "/MANIFEST", out.str());
}

std::optional<Manifest> read_manifest(const std::string& data_dir) {
  const std::string path = data_dir + "/MANIFEST";
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  const std::string what = "manifest " + path;
  std::string magic;
  if (!std::getline(in, magic) || magic != "SBXMANIFEST 1") {
    throw ParseError(what + ": bad magic");
  }
  Manifest m;
  {
    auto f = line_fields(in, "users", what);
    m.users = read_u64_field(f, what);
  }
  {
    auto f = line_fields(in, "shards", what);
    m.shards = read_u64_field(f, what);
  }
  {
    auto f = line_fields(in, "base_size", what);
    m.base_size = read_u64_field(f, what);
  }
  {
    auto f = line_fields(in, "spam_fraction", what);
    if (!(f >> m.spam_fraction)) {
      throw ParseError(what + ": malformed spam_fraction");
    }
  }
  {
    auto f = line_fields(in, "base_seed", what);
    m.base_seed = read_u64_field(f, what);
  }
  return m;
}

// --- Shard snapshots -------------------------------------------------------

std::uint32_t write_shard_snapshot(
    const std::string& path, std::uint64_t seqno,
    const std::vector<UserSnapshotState>& users) {
  const std::vector<UserSnapshotState> kept = prune_empty_users(users);
  std::ostringstream out;
  out << "SBXSNAP 1\n";
  out << "seqno " << seqno << "\n";
  out << "users " << kept.size() << "\n";
  append_user_states(out, kept);
  const std::string content = std::move(out).str();
  write_file_atomic(path, content);
  return util::crc32(reinterpret_cast<const std::uint8_t*>(content.data()),
                     content.size());
}

std::optional<ShardSnapshot> read_shard_snapshot(const std::string& path) {
  const std::optional<std::string> content = read_file_to_string(path);
  if (!content.has_value()) return std::nullopt;
  std::istringstream in(*content);
  return parse_shard_snapshot(in, "snapshot " + path);
}

IncrementalWriteResult write_incremental_snapshot_file(
    const std::string& path, const IncrementalSnapshot& snap) {
  const std::vector<UserSnapshotState> kept = prune_empty_users(snap.users);
  std::ostringstream out;
  out << "SBXSNAPINC 1\n";
  out << "index " << snap.index << "\n";
  out << "parent_crc " << snap.parent_crc << "\n";
  out << "seqno " << snap.seqno << "\n";
  out << "users " << kept.size() << "\n";
  append_user_states(out, kept);
  std::string content = std::move(out).str();
  IncrementalWriteResult result;
  result.crc = util::crc32(
      reinterpret_cast<const std::uint8_t*>(content.data()), content.size());
  content += "crc " + std::to_string(result.crc) + "\n";
  write_file_atomic(path, content);
  result.bytes = content.size();
  return result;
}

std::optional<IncrementalSnapshot> read_incremental_snapshot_file(
    const std::string& path, std::uint32_t* out_crc) {
  const std::optional<std::string> content = read_file_to_string(path);
  if (!content.has_value()) return std::nullopt;
  const std::string what = "incremental snapshot " + path;
  std::istringstream in(*content);
  std::string magic;
  if (!std::getline(in, magic) || magic != "SBXSNAPINC 1") {
    throw ParseError(what + ": bad magic");
  }
  IncrementalSnapshot snap;
  {
    auto f = line_fields(in, "index", what);
    snap.index = read_u64_field(f, what);
  }
  {
    auto f = line_fields(in, "parent_crc", what);
    snap.parent_crc = static_cast<std::uint32_t>(read_u64_field(f, what));
  }
  {
    auto f = line_fields(in, "seqno", what);
    snap.seqno = read_u64_field(f, what);
  }
  std::uint64_t user_count = 0;
  {
    auto f = line_fields(in, "users", what);
    user_count = read_u64_field(f, what);
  }
  snap.users = parse_user_states(in, user_count, what);
  // Everything consumed so far is the content the trailing crc line signs.
  const std::streampos pos = in.tellg();
  if (pos < 0) throw ParseError(what + ": truncated before crc line");
  const std::uint32_t computed = util::crc32(
      reinterpret_cast<const std::uint8_t*>(content->data()),
      static_cast<std::size_t>(pos));
  std::uint32_t stored = 0;
  {
    auto f = line_fields(in, "crc", what);
    stored = static_cast<std::uint32_t>(read_u64_field(f, what));
  }
  if (stored != computed) {
    throw ParseError(what + ": content crc mismatch (stored " +
                     std::to_string(stored) + ", computed " +
                     std::to_string(computed) + ")");
  }
  if (out_crc != nullptr) *out_crc = computed;
  return snap;
}

SnapshotChainScan scan_snapshot_chain(const std::string& data_dir,
                                      std::size_t shard) {
  SnapshotChainScan scan;
  const std::string full_path = snapshot_path_in(data_dir, shard);
  std::uint32_t full_crc = 0;
  if (const std::optional<std::string> bytes = read_file_to_string(full_path)) {
    full_crc = util::crc32(
        reinterpret_cast<const std::uint8_t*>(bytes->data()), bytes->size());
    std::istringstream in(*bytes);
    scan.full = parse_shard_snapshot(in, "snapshot " + full_path);
    scan.snapshot_seqno = scan.full->seqno;
  }
  scan.tail_crc = full_crc;

  // Enumerate snap-NNNNNN.inc segments (a missing shard dir = no chain).
  struct Loaded {
    IncrementalSnapshot snap;
    std::uint32_t crc = 0;
    std::string path;
  };
  std::map<std::uint64_t, Loaded> by_index;
  const std::string dir = shard_dir(data_dir, shard);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.rfind("snap-", 0) != 0 ||
        name.compare(name.size() - 4, 4, ".inc") != 0) {
      continue;
    }
    Loaded loaded;
    loaded.path = entry.path().string();
    std::optional<IncrementalSnapshot> snap =
        read_incremental_snapshot_file(loaded.path, &loaded.crc);
    if (!snap.has_value()) continue;  // raced away; treat as absent
    loaded.snap = std::move(*snap);
    const std::uint64_t index = loaded.snap.index;
    if (by_index.count(index) != 0) {
      throw ParseError("incremental snapshot " + loaded.path +
                       ": duplicate chain index " + std::to_string(index));
    }
    by_index.emplace(index, std::move(loaded));
  }
  if (by_index.empty()) return scan;

  scan.oldest_index = by_index.begin()->first;
  scan.next_index = by_index.rbegin()->first + 1;

  // Walk the chain backwards from the newest segment: consecutive indices
  // whose parent_crc names the predecessor's content crc form the live
  // suffix; its root must chain onto the full snapshot (or 0 when none).
  std::uint64_t root = by_index.rbegin()->first;
  while (by_index.count(root - 1) != 0 &&
         by_index.at(root).snap.parent_crc == by_index.at(root - 1).crc) {
    --root;
  }
  const bool rooted = by_index.at(root).snap.parent_crc == full_crc;
  const std::uint64_t full_seqno = scan.full ? scan.full->seqno : 0;
  for (auto& [index, loaded] : by_index) {
    const bool live = rooted && index >= root;
    if (!live) {
      // Only segments the full snapshot already covers may dangle — those
      // are leftovers of a compaction interrupted between the full-snapshot
      // rename and the segment deletes. Anything newer is lost state.
      if (loaded.snap.seqno > full_seqno) {
        throw ParseError("incremental snapshot " + loaded.path +
                         ": chain broken (parent crc mismatch at seqno " +
                         std::to_string(loaded.snap.seqno) +
                         " beyond full snapshot seqno " +
                         std::to_string(full_seqno) + ")");
      }
      scan.stale_paths.push_back(loaded.path);
      continue;
    }
    if (loaded.snap.seqno < scan.snapshot_seqno) {
      throw ParseError("incremental snapshot " + loaded.path +
                       ": seqno regressed along the chain");
    }
    scan.snapshot_seqno = loaded.snap.seqno;
    scan.tail_crc = loaded.crc;
    scan.segments.push_back(std::move(loaded.snap));
  }
  return scan;
}

// --- Durability ------------------------------------------------------------

Durability::Durability(DurabilityConfig config, std::size_t shard_count)
    : config_(std::move(config)) {
  if (config_.data_dir.empty()) {
    throw InvalidArgument("durability: data_dir must not be empty");
  }
  if (shard_count == 0) {
    throw InvalidArgument("durability: shard_count must be greater than 0");
  }
  std::error_code ec;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::string dir = shard_dir(config_.data_dir, s);
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      throw IoError("durability: mkdir " + dir + ": " + ec.message());
    }
  }
  wals_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    wals_.push_back(std::make_unique<WalWriter>(
        wal_path_in(config_.data_dir, s), config_.fsync));
  }
  const util::MutexLock lock(chain_mutex_);
  chains_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const SnapshotChainScan scan = scan_snapshot_chain(config_.data_dir, s);
    chains_[s].next_index = scan.next_index;
    chains_[s].last_crc = scan.tail_crc;
    chains_[s].segments = scan.segments.size();
    chains_[s].oldest_index = scan.oldest_index;
  }
}

void Durability::note_recovered_seqno(std::uint64_t max_seen) {
  std::uint64_t current = next_seqno_.load(std::memory_order_relaxed);
  while (current <= max_seen &&
         !next_seqno_.compare_exchange_weak(current, max_seen + 1,
                                            std::memory_order_relaxed)) {
  }
}

void Durability::await_durable(std::uint64_t ticket) {
  if (config_.fsync != FsyncMode::kBatch || ticket == 0) return;
  const util::MutexLock lock(commit_mutex_);
  while (committed_ < ticket) {
    // This thread leads the open commit window: one pass over the logs
    // (WalWriter::sync skips the clean ones) covers every ticket drawn
    // before the loads below. Waiters blocked on commit_mutex_ meanwhile
    // pile into the window and find committed_ past their ticket.
    const std::uint64_t target = appended_.load(std::memory_order_acquire);
    for (const auto& wal : wals_) wal->sync();
    committed_ = target;
    windows_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Durability::snapshot_wants_full(std::size_t shard) {
  const util::MutexLock lock(chain_mutex_);
  return chains_.at(shard).segments >= kCompactChainAfterSegments;
}

void Durability::write_full_snapshot(
    std::size_t shard, std::uint64_t seqno,
    const std::vector<UserSnapshotState>& users) {
  const util::MutexLock lock(chain_mutex_);
  ChainState& chain = chains_.at(shard);
  const std::uint32_t crc =
      write_shard_snapshot(snapshot_path(shard), seqno, users);
  // The full snapshot now covers every segment; delete them. A crash
  // mid-loop leaves stale segments that recovery recognizes (seqno at or
  // below the full's) and skips.
  for (std::uint64_t i = chain.oldest_index; i < chain.next_index; ++i) {
    ::unlink(
        incremental_snapshot_path_in(config_.data_dir, shard, i).c_str());
  }
  chain.last_crc = crc;
  chain.segments = 0;
  chain.oldest_index = chain.next_index;
}

void Durability::write_incremental_snapshot(
    std::size_t shard, std::uint64_t seqno,
    std::vector<UserSnapshotState> dirty_users) {
  const util::MutexLock lock(chain_mutex_);
  ChainState& chain = chains_.at(shard);
  IncrementalSnapshot snap;
  snap.index = chain.next_index;
  snap.parent_crc = chain.last_crc;
  snap.seqno = seqno;
  snap.users = std::move(dirty_users);
  const IncrementalWriteResult result = write_incremental_snapshot_file(
      incremental_snapshot_path_in(config_.data_dir, shard, snap.index), snap);
  ++chain.next_index;
  chain.last_crc = result.crc;
  ++chain.segments;
  inc_bytes_.fetch_add(result.bytes, std::memory_order_relaxed);
}

void Durability::sync_all() {
  for (const auto& wal : wals_) wal->sync();
}

std::uint64_t Durability::total_records() const {
  std::uint64_t total = 0;
  for (const auto& wal : wals_) total += wal->records();
  return total;
}

std::uint64_t Durability::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& wal : wals_) total += wal->bytes();
  return total;
}

// --- Recovery --------------------------------------------------------------

RecoveryStats recover(ServeFrontend& frontend, const std::string& data_dir,
                      bool repair_torn_tail) {
  const auto started = std::chrono::steady_clock::now();
  RecoveryStats stats;
  for (std::size_t s = 0; s < frontend.shard_count(); ++s) {
    SnapshotChainScan scan = scan_snapshot_chain(data_dir, s);
    const std::uint64_t snapshot_seqno = scan.snapshot_seqno;
    if (snapshot_seqno > stats.max_seqno) stats.max_seqno = snapshot_seqno;
    if (scan.full.has_value()) {
      for (UserSnapshotState& u : scan.full->users) {
        frontend.replay_install_user(u.uid, std::move(u.overlay),
                                     std::move(u.dedup));
        ++stats.snapshot_users;
      }
    }
    for (IncrementalSnapshot& seg : scan.segments) {
      // Later segments override earlier state for the same user — each
      // segment stores a dirtied user's complete overlay, not a delta.
      for (UserSnapshotState& u : seg.users) {
        frontend.replay_install_user(u.uid, std::move(u.overlay),
                                     std::move(u.dedup));
        ++stats.snapshot_users;
      }
      ++stats.snapshot_segments;
    }
    if (repair_torn_tail) {
      for (const std::string& stale : scan.stale_paths) {
        ::unlink(stale.c_str());
      }
    }
    const std::string wal_path = wal_path_in(data_dir, s);
    const WalReadStats rs = read_wal(wal_path, [&](const WalRecord& record) {
      if (record.seqno > stats.max_seqno) stats.max_seqno = record.seqno;
      if (record.seqno <= snapshot_seqno) return;  // folded into the chain
      frontend.replay_wal_record(record);
      ++stats.replayed_records;
    });
    stats.torn_dropped += rs.dropped_torn + rs.dropped_corrupt;
    stats.wal_bytes += rs.bytes_used;
    if (repair_torn_tail && rs.bytes_used < rs.bytes_total) {
      // Chop the torn tail off so future appends land where the scan
      // stops — otherwise every record after the tear stays unreadable.
      const int fd = ::open(wal_path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) throw_errno("recovery: open " + wal_path);
      if (::ftruncate(fd, static_cast<off_t>(rs.bytes_used)) < 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("recovery: truncate " + wal_path);
      }
      ::fsync(fd);
      ::close(fd);
    }
  }
  stats.duration_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return stats;
}

}  // namespace sbx::serve
