#include "serve/recovery.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "serve/frontend.h"
#include "spambayes/token_db.h"
#include "util/error.h"

namespace sbx::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Writes `content` to `path` atomically and durably: tmp file + fsync +
/// rename + parent-directory fsync. The rename is the commit point.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("recovery: open " + tmp);
  std::size_t sent = 0;
  while (sent < content.size()) {
    const ssize_t n = ::write(fd, content.data() + sent, content.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("recovery: write " + tmp);
    }
    sent += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("recovery: fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    throw_errno("recovery: rename " + tmp + " -> " + path);
  }
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dirfd = ::open(dir.empty() ? "." : dir.c_str(),
                           O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);  // best effort: makes the rename itself durable
    ::close(dirfd);
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Strict "key value..." line splitter for the text headers.
std::istringstream line_fields(std::istream& in, const std::string& expect_key,
                               const std::string& what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError(what + ": truncated (expected '" + expect_key + "' line)");
  }
  std::istringstream fields(line);
  std::string key;
  fields >> key;
  if (key != expect_key) {
    throw ParseError(what + ": expected '" + expect_key + "', got '" + line +
                     "'");
  }
  return fields;
}

std::uint64_t read_u64_field(std::istringstream& fields,
                             const std::string& what) {
  std::uint64_t v = 0;
  if (!(fields >> v)) throw ParseError(what + ": malformed numeric field");
  return v;
}

}  // namespace

// --- Paths -----------------------------------------------------------------

std::string shard_dir(const std::string& data_dir, std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", shard);
  return data_dir + "/" + buf;
}

std::string wal_path_in(const std::string& data_dir, std::size_t shard) {
  return shard_dir(data_dir, shard) + "/wal.log";
}

std::string snapshot_path_in(const std::string& data_dir, std::size_t shard) {
  return shard_dir(data_dir, shard) + "/snapshot.db";
}

// --- Manifest --------------------------------------------------------------

void write_manifest(const std::string& data_dir, const Manifest& manifest) {
  std::ostringstream out;
  out << "SBXMANIFEST 1\n";
  out << "users " << manifest.users << "\n";
  out << "shards " << manifest.shards << "\n";
  out << "base_size " << manifest.base_size << "\n";
  out << "spam_fraction " << format_double(manifest.spam_fraction) << "\n";
  out << "base_seed " << manifest.base_seed << "\n";
  write_file_atomic(data_dir + "/MANIFEST", out.str());
}

std::optional<Manifest> read_manifest(const std::string& data_dir) {
  const std::string path = data_dir + "/MANIFEST";
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  const std::string what = "manifest " + path;
  std::string magic;
  if (!std::getline(in, magic) || magic != "SBXMANIFEST 1") {
    throw ParseError(what + ": bad magic");
  }
  Manifest m;
  {
    auto f = line_fields(in, "users", what);
    m.users = read_u64_field(f, what);
  }
  {
    auto f = line_fields(in, "shards", what);
    m.shards = read_u64_field(f, what);
  }
  {
    auto f = line_fields(in, "base_size", what);
    m.base_size = read_u64_field(f, what);
  }
  {
    auto f = line_fields(in, "spam_fraction", what);
    if (!(f >> m.spam_fraction)) {
      throw ParseError(what + ": malformed spam_fraction");
    }
  }
  {
    auto f = line_fields(in, "base_seed", what);
    m.base_seed = read_u64_field(f, what);
  }
  return m;
}

// --- Shard snapshots -------------------------------------------------------

void write_shard_snapshot(const std::string& path, std::uint64_t seqno,
                          const std::vector<UserSnapshotState>& users) {
  std::ostringstream out;
  out << "SBXSNAP 1\n";
  out << "seqno " << seqno << "\n";
  out << "users " << users.size() << "\n";
  for (const UserSnapshotState& u : users) {
    out << "user " << u.uid << " " << u.dedup.size() << " "
        << (u.overlay != nullptr ? 1 : 0) << "\n";
    for (const DedupEntry& d : u.dedup) {
      out << "dedup " << d.request_id << " "
          << static_cast<unsigned>(d.op) << " " << d.spam << " " << d.ham
          << "\n";
    }
    if (u.overlay != nullptr) {
      // TokenDatabase::load reads to end-of-stream, so the embedded block
      // needs an explicit byte count to know where this user's database
      // ends and the next header line begins.
      std::ostringstream db;
      u.overlay->save(db);
      const std::string bytes = db.str();
      out << "dbbytes " << bytes.size() << "\n" << bytes << "\n";
    }
  }
  write_file_atomic(path, out.str());
}

std::optional<ShardSnapshot> read_shard_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  const std::string what = "snapshot " + path;
  std::string magic;
  if (!std::getline(in, magic) || magic != "SBXSNAP 1") {
    throw ParseError(what + ": bad magic");
  }
  ShardSnapshot snap;
  {
    auto f = line_fields(in, "seqno", what);
    snap.seqno = read_u64_field(f, what);
  }
  std::uint64_t user_count = 0;
  {
    auto f = line_fields(in, "users", what);
    user_count = read_u64_field(f, what);
  }
  snap.users.reserve(user_count);
  for (std::uint64_t i = 0; i < user_count; ++i) {
    UserSnapshotState u;
    std::uint64_t dedup_count = 0;
    std::uint64_t db_present = 0;
    {
      auto f = line_fields(in, "user", what);
      u.uid = read_u64_field(f, what);
      dedup_count = read_u64_field(f, what);
      db_present = read_u64_field(f, what);
    }
    u.dedup.reserve(dedup_count);
    for (std::uint64_t d = 0; d < dedup_count; ++d) {
      auto f = line_fields(in, "dedup", what);
      DedupEntry e;
      e.request_id = read_u64_field(f, what);
      e.op = static_cast<std::uint8_t>(read_u64_field(f, what));
      e.spam = static_cast<std::uint32_t>(read_u64_field(f, what));
      e.ham = static_cast<std::uint32_t>(read_u64_field(f, what));
      u.dedup.push_back(e);
    }
    if (db_present != 0) {
      std::uint64_t nbytes = 0;
      {
        auto f = line_fields(in, "dbbytes", what);
        nbytes = read_u64_field(f, what);
      }
      std::string bytes(nbytes, '\0');
      if (!in.read(bytes.data(), static_cast<std::streamsize>(nbytes))) {
        throw ParseError(what + ": truncated database block");
      }
      if (in.get() != '\n') {
        throw ParseError(what + ": database block not newline-terminated");
      }
      std::istringstream db(bytes);
      u.overlay = std::make_shared<spambayes::TokenDatabase>(
          spambayes::TokenDatabase::load(db));
    }
    snap.users.push_back(std::move(u));
  }
  return snap;
}

// --- Durability ------------------------------------------------------------

Durability::Durability(DurabilityConfig config, std::size_t shard_count)
    : config_(std::move(config)) {
  if (config_.data_dir.empty()) {
    throw InvalidArgument("durability: data_dir must not be empty");
  }
  if (shard_count == 0) {
    throw InvalidArgument("durability: shard_count must be greater than 0");
  }
  std::error_code ec;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::string dir = shard_dir(config_.data_dir, s);
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      throw IoError("durability: mkdir " + dir + ": " + ec.message());
    }
  }
  wals_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    wals_.push_back(std::make_unique<WalWriter>(
        wal_path_in(config_.data_dir, s), config_.fsync,
        config_.fsync_batch_every));
  }
}

void Durability::note_recovered_seqno(std::uint64_t max_seen) {
  std::uint64_t current = next_seqno_.load(std::memory_order_relaxed);
  while (current <= max_seen &&
         !next_seqno_.compare_exchange_weak(current, max_seen + 1,
                                            std::memory_order_relaxed)) {
  }
}

void Durability::sync_all() {
  for (const auto& wal : wals_) wal->sync();
}

std::uint64_t Durability::total_records() const {
  std::uint64_t total = 0;
  for (const auto& wal : wals_) total += wal->records();
  return total;
}

std::uint64_t Durability::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& wal : wals_) total += wal->bytes();
  return total;
}

// --- Recovery --------------------------------------------------------------

RecoveryStats recover(ServeFrontend& frontend, const std::string& data_dir,
                      bool repair_torn_tail) {
  const auto started = std::chrono::steady_clock::now();
  RecoveryStats stats;
  for (std::size_t s = 0; s < frontend.shard_count(); ++s) {
    std::uint64_t snapshot_seqno = 0;
    if (std::optional<ShardSnapshot> snap =
            read_shard_snapshot(snapshot_path_in(data_dir, s))) {
      snapshot_seqno = snap->seqno;
      if (snap->seqno > stats.max_seqno) stats.max_seqno = snap->seqno;
      for (UserSnapshotState& u : snap->users) {
        frontend.replay_install_user(u.uid, std::move(u.overlay),
                                     std::move(u.dedup));
        ++stats.snapshot_users;
      }
    }
    const std::string wal_path = wal_path_in(data_dir, s);
    const WalReadStats rs = read_wal(wal_path, [&](const WalRecord& record) {
      if (record.seqno > stats.max_seqno) stats.max_seqno = record.seqno;
      if (record.seqno <= snapshot_seqno) return;  // folded into snapshot
      frontend.replay_wal_record(record);
      ++stats.replayed_records;
    });
    stats.torn_dropped += rs.dropped_torn + rs.dropped_corrupt;
    stats.wal_bytes += rs.bytes_used;
    if (repair_torn_tail && rs.bytes_used < rs.bytes_total) {
      // Chop the torn tail off so future appends land where the scan
      // stops — otherwise every record after the tear stays unreadable.
      const int fd = ::open(wal_path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) throw_errno("recovery: open " + wal_path);
      if (::ftruncate(fd, static_cast<off_t>(rs.bytes_used)) < 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("recovery: truncate " + wal_path);
      }
      ::fsync(fd);
      ::close(fd);
    }
  }
  stats.duration_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return stats;
}

}  // namespace sbx::serve
