// sbx/serve/shard.h
//
// A ModelShard owns a fixed set of UserModel slots and enforces the
// serving layer's concurrency contract:
//
//  * classify reads are lock-free — overlay(local) acquire-loads the last
//    published snapshot and never blocks, no matter how many trains are
//    in flight;
//  * train/untrain mutations are applied single-threaded per shard — one
//    mutation mutex serializes them, so UserModel's copy-mutate-publish
//    sequence never races with itself and per-user feedback is applied in
//    a well-defined order.
//
// The shard is the unit of mutation parallelism: with S shards, up to S
// feedback streams commit concurrently while any number of classify
// readers proceed untouched.
//
// Durability (PR 7): with a Durability attached, apply_mutation runs the
// crash-safe sequence under the mutation lock — dedup check, prepare the
// new overlay (may throw; nothing logged), append to the shard's WAL,
// publish, record the dedup entry, maybe checkpoint. The WAL append sits
// strictly between prepare and publish: a state no reader ever saw is
// never logged, and a state any reader saw is always recoverable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "serve/user_model.h"
#include "util/thread_annotations.h"

namespace sbx::serve {

class Durability;
class Replicator;
struct WalRecord;

/// Aggregate shard counters (relaxed reads; exact once mutations quiesce).
struct ShardStats {
  std::uint64_t users = 0;
  std::uint64_t overlay_users = 0;  // users with a non-empty overlay
  std::uint64_t classified_messages = 0;
  std::uint64_t mutations = 0;
  std::uint64_t deduped = 0;  // retries absorbed by the request-id window
};

/// One remembered mutation outcome, keyed by client request id. Replaying
/// the stored counts (instead of re-applying) is what makes Train/Untrain
/// retries idempotent.
struct DedupEntry {
  std::uint64_t request_id = 0;
  std::uint8_t op = 0;  // kWalOpTrain / kWalOpUntrain
  std::uint32_t spam = 0;  // overlay counts right after the mutation
  std::uint32_t ham = 0;
};

/// One mutation as the shard applies (and logs) it. `message` borrows the
/// request's raw text — valid for the duration of the call only.
struct MutationRequest {
  std::uint8_t op = 0;  // kWalOpTrain / kWalOpUntrain
  std::uint64_t user_id = 0;
  std::uint64_t request_id = 0;  // 0 = no idempotency requested
  bool as_spam = true;
  std::uint32_t copies = 1;
  const std::string* message = nullptr;
  std::uint64_t seqno = 0;  // set only on replay (live path draws its own)
};

struct MutationResult {
  std::uint64_t generation = 0;
  std::uint32_t spam = 0;
  std::uint32_t ham = 0;
  bool deduped = false;
  /// Group-commit ticket the ack must wait on (0 = nothing to wait for).
  std::uint64_t commit_ticket = 0;
  /// Replication ship ticket the ack must wait on under --repl-ack=quorum
  /// (0 = nothing enqueued).
  std::uint64_t repl_ticket = 0;
};

/// Outcome of applying one shipped WAL record on a standby.
struct ReplicatedApplyResult {
  bool applied = false;  // false = seqno already applied (resend skipped)
  std::uint64_t commit_ticket = 0;
};

class ModelShard {
 public:
  explicit ModelShard(std::size_t user_count);

  ModelShard(const ModelShard&) = delete;
  ModelShard& operator=(const ModelShard&) = delete;

  std::size_t user_count() const { return user_count_; }

  /// Sizes the per-user request-id dedup windows (0 disables dedup). A
  /// WAL-less mirror configures dedup too, so it absorbs retried requests
  /// exactly like the durable server it verifies against. Taken under the
  /// mutation lock, so a late reconfigure cannot tear a concurrent
  /// mutation's dedup window out from under it.
  void configure_dedup(std::size_t dedup_window)
      SBX_EXCLUDES(mutation_mutex_);

  /// Wires this shard to its WAL (durability->wal(shard_index)). Taken
  /// under the mutation lock (same reasoning as configure_dedup).
  void attach_durability(Durability* durability, std::size_t shard_index)
      SBX_EXCLUDES(mutation_mutex_);

  /// Wires this shard to the primary-side WAL shipper. Call after
  /// attach_durability — replication ships the same records the WAL
  /// stores, so a replicator without a WAL is a configuration error.
  void attach_replicator(Replicator* replicator)
      SBX_EXCLUDES(mutation_mutex_);

  /// Records the global user id behind a local slot (snapshots persist
  /// global ids; routing is rebuilt from the manifest on recovery).
  void set_uid_of_local(std::size_t local, std::uint64_t uid)
      SBX_EXCLUDES(mutation_mutex_);

  /// Lock-free read of user `local`'s published overlay (null = empty).
  /// Throws InvalidArgument for an out-of-range slot.
  OverlaySnapshot overlay(std::size_t local) const;

  /// Applies one mutation under the shard mutation lock: dedup → prepare
  /// → WAL append → publish → remember → maybe checkpoint. Throws
  /// InvalidArgument for a bad mutation (e.g. untrain of an untrained
  /// message; nothing is logged or published) and IoError when the WAL
  /// cannot be written (ditto).
  MutationResult apply_mutation(std::size_t local, const MutationRequest& req,
                                const spambayes::TokenIdSet& ids)
      SBX_EXCLUDES(mutation_mutex_);

  /// Recovery path: applies a logged mutation without re-logging it (and
  /// without checkpointing), and remembers its request id for post-restart
  /// retry dedup. Throws if the logged mutation no longer applies — a
  /// record was only ever logged after a successful prepare, so failure
  /// here means corrupted state and must be loud.
  MutationResult replay_mutation(std::size_t local, const MutationRequest& req,
                                 const spambayes::TokenIdSet& ids)
      SBX_EXCLUDES(mutation_mutex_);

  /// Recovery path: installs a snapshot's overlay and dedup window
  /// verbatim (no WAL, no counters).
  void replay_install(std::size_t local, OverlaySnapshot overlay,
                      std::vector<DedupEntry> dedup)
      SBX_EXCLUDES(mutation_mutex_);

  /// Standby path: applies one WAL record shipped from the primary —
  /// appends it verbatim to this node's own log (keeping the primary's
  /// seqno), publishes the overlay, remembers the dedup entry, and may
  /// checkpoint. Records at or below the shard's last applied seqno are
  /// skipped (a reconnecting primary resends its unacked batch).
  ReplicatedApplyResult apply_replicated(std::size_t local,
                                         const WalRecord& record,
                                         const spambayes::TokenIdSet& ids)
      SBX_EXCLUDES(mutation_mutex_);

  /// Highest seqno applied or logged here (promotion reads this to seed
  /// the seqno counter past everything the standby absorbed).
  std::uint64_t last_seqno() const SBX_EXCLUDES(mutation_mutex_);

  /// Applies one training mutation under the shard mutation lock.
  /// (Durability-free compatibility path; throws when a WAL is attached —
  /// callers must go through apply_mutation so the mutation is logged.)
  void apply_train(std::size_t local, const spambayes::TokenIdSet& ids,
                   bool as_spam, std::uint32_t copies)
      SBX_EXCLUDES(mutation_mutex_);

  /// Applies one untraining mutation under the shard mutation lock.
  /// Throws InvalidArgument when the user's overlay does not contain the
  /// message (fail loudly instead of silently corrupting counts).
  void apply_untrain(std::size_t local, const spambayes::TokenIdSet& ids,
                     bool as_spam, std::uint32_t copies)
      SBX_EXCLUDES(mutation_mutex_);

  /// Attributes `messages` classified messages to user `local`.
  void record_classified(std::size_t local, std::uint64_t messages);

  ShardStats stats() const;

 private:
  UserModel& user(std::size_t local);
  const UserModel& user(std::size_t local) const;

  /// Dedup window lookup (caller holds the mutation lock).
  const DedupEntry* find_dedup(std::size_t local, std::uint64_t request_id)
      const SBX_REQUIRES(mutation_mutex_);
  void remember_dedup(std::size_t local, DedupEntry entry)
      SBX_REQUIRES(mutation_mutex_);

  /// Checkpoint when enough records accumulated (caller holds the lock).
  void maybe_snapshot() SBX_REQUIRES(mutation_mutex_);

  std::size_t user_count_;
  // UserModel slots are internally safe for lock-free reads; their
  // mutation methods take mutation_mutex_ as a REQUIRES() capability
  // parameter, so the single-writer half of the contract is checked at
  // the UserModel boundary rather than by guarding the array.
  std::unique_ptr<UserModel[]> users_;
  mutable util::Mutex mutation_mutex_{util::LockRank::kShard,
                                      "ModelShard::mutation_mutex_"};

  // Durability wiring (null = in-memory only, the pre-PR-7 behavior).
  // Everything below changes only under the mutation lock — including
  // the setup calls (configure_dedup / attach_durability), which used to
  // rely on a prose "call before any mutation" contract.
  Durability* durability_ SBX_GUARDED_BY(mutation_mutex_) = nullptr;
  Replicator* replicator_ SBX_GUARDED_BY(mutation_mutex_) = nullptr;
  std::size_t shard_index_ SBX_GUARDED_BY(mutation_mutex_) = 0;
  std::size_t dedup_window_ SBX_GUARDED_BY(mutation_mutex_) = 0;
  // Highest seqno applied or logged here.
  std::uint64_t last_seqno_ SBX_GUARDED_BY(mutation_mutex_) = 0;
  std::vector<std::uint64_t> uid_of_local_ SBX_GUARDED_BY(mutation_mutex_);
  // Per local slot, FIFO.
  std::vector<std::deque<DedupEntry>> dedup_ SBX_GUARDED_BY(mutation_mutex_);
  // Per local slot: mutated since the last checkpoint (feeds incremental
  // snapshots; snapshot installs are clean by definition).
  std::vector<std::uint8_t> dirty_ SBX_GUARDED_BY(mutation_mutex_);
  std::atomic<std::uint64_t> deduped_{0};
};

}  // namespace sbx::serve
