// sbx/serve/shard.h
//
// A ModelShard owns a fixed set of UserModel slots and enforces the
// serving layer's concurrency contract:
//
//  * classify reads are lock-free — overlay(local) acquire-loads the last
//    published snapshot and never blocks, no matter how many trains are
//    in flight;
//  * train/untrain mutations are applied single-threaded per shard — one
//    mutation mutex serializes them, so UserModel's copy-mutate-publish
//    sequence never races with itself and per-user feedback is applied in
//    a well-defined order.
//
// The shard is the unit of mutation parallelism: with S shards, up to S
// feedback streams commit concurrently while any number of classify
// readers proceed untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "serve/user_model.h"

namespace sbx::serve {

/// Aggregate shard counters (relaxed reads; exact once mutations quiesce).
struct ShardStats {
  std::uint64_t users = 0;
  std::uint64_t overlay_users = 0;  // users with a non-empty overlay
  std::uint64_t classified_messages = 0;
  std::uint64_t mutations = 0;
};

class ModelShard {
 public:
  explicit ModelShard(std::size_t user_count);

  ModelShard(const ModelShard&) = delete;
  ModelShard& operator=(const ModelShard&) = delete;

  std::size_t user_count() const { return user_count_; }

  /// Lock-free read of user `local`'s published overlay (null = empty).
  /// Throws InvalidArgument for an out-of-range slot.
  OverlaySnapshot overlay(std::size_t local) const;

  /// Applies one training mutation under the shard mutation lock.
  void apply_train(std::size_t local, const spambayes::TokenIdSet& ids,
                   bool as_spam, std::uint32_t copies);

  /// Applies one untraining mutation under the shard mutation lock.
  /// Throws InvalidArgument when the user's overlay does not contain the
  /// message (fail loudly instead of silently corrupting counts).
  void apply_untrain(std::size_t local, const spambayes::TokenIdSet& ids,
                     bool as_spam, std::uint32_t copies);

  /// Attributes `messages` classified messages to user `local`.
  void record_classified(std::size_t local, std::uint64_t messages);

  ShardStats stats() const;

 private:
  UserModel& user(std::size_t local);
  const UserModel& user(std::size_t local) const;

  std::size_t user_count_;
  std::unique_ptr<UserModel[]> users_;
  std::mutex mutation_mutex_;
};

}  // namespace sbx::serve
