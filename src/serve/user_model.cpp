#include "serve/user_model.h"

#include <utility>

#include "util/error.h"

namespace sbx::serve {

OverlaySnapshot UserModel::prepare(const spambayes::TokenIdSet& ids,
                                   bool as_spam, std::uint32_t copies,
                                   bool is_train, util::Mutex& mu) {
  (void)mu;  // capability parameter: consumed by SBX_REQUIRES(mu)
  const OverlaySnapshot current = snapshot();
  if (!is_train && !current) {
    throw InvalidArgument(
        "untrain: user has no trained messages (empty overlay)");
  }
  auto next = current
                  ? std::make_shared<spambayes::TokenDatabase>(*current)
                  : std::make_shared<spambayes::TokenDatabase>();
  // TokenDatabase throws InvalidArgument when an untrained message is
  // untrained; the unpublished copy is discarded and the published overlay
  // stays as it was.
  if (is_train) {
    if (as_spam) {
      next->train_spam_ids(ids, copies);
    } else {
      next->train_ham_ids(ids, copies);
    }
  } else {
    if (as_spam) {
      next->untrain_spam_ids(ids, copies);
    } else {
      next->untrain_ham_ids(ids, copies);
    }
  }
  return next;
}

void UserModel::publish(OverlaySnapshot next, util::Mutex& mu) {
  (void)mu;
  overlay_.store(std::move(next), std::memory_order_release);
  mutations_.fetch_add(1, std::memory_order_relaxed);
}

void UserModel::train(const spambayes::TokenIdSet& ids, bool as_spam,
                      std::uint32_t copies, util::Mutex& mu) {
  publish(prepare(ids, as_spam, copies, /*is_train=*/true, mu), mu);
}

void UserModel::untrain(const spambayes::TokenIdSet& ids, bool as_spam,
                        std::uint32_t copies, util::Mutex& mu) {
  publish(prepare(ids, as_spam, copies, /*is_train=*/false, mu), mu);
}

}  // namespace sbx::serve
