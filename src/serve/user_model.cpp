#include "serve/user_model.h"

#include <utility>

#include "util/error.h"

namespace sbx::serve {

void UserModel::train(const spambayes::TokenIdSet& ids, bool as_spam,
                      std::uint32_t copies) {
  const OverlaySnapshot current = snapshot();
  auto next = current
                  ? std::make_shared<spambayes::TokenDatabase>(*current)
                  : std::make_shared<spambayes::TokenDatabase>();
  if (as_spam) {
    next->train_spam_ids(ids, copies);
  } else {
    next->train_ham_ids(ids, copies);
  }
  overlay_.store(OverlaySnapshot(std::move(next)),
                 std::memory_order_release);
  mutations_.fetch_add(1, std::memory_order_relaxed);
}

void UserModel::untrain(const spambayes::TokenIdSet& ids, bool as_spam,
                        std::uint32_t copies) {
  const OverlaySnapshot current = snapshot();
  if (!current) {
    throw InvalidArgument(
        "untrain: user has no trained messages (empty overlay)");
  }
  auto next = std::make_shared<spambayes::TokenDatabase>(*current);
  // TokenDatabase throws InvalidArgument when the message was never
  // trained; the unpublished copy is discarded and the published overlay
  // stays as it was.
  if (as_spam) {
    next->untrain_spam_ids(ids, copies);
  } else {
    next->untrain_ham_ids(ids, copies);
  }
  overlay_.store(OverlaySnapshot(std::move(next)),
                 std::memory_order_release);
  mutations_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sbx::serve
