#include "serve/frontend.h"

#include <span>
#include <string>
#include <utility>

#include "email/rfc2822.h"
#include "spambayes/score_engine.h"
#include "util/error.h"
#include "util/sharding.h"

namespace sbx::serve {
namespace {

/// Per-shard work item for classify_many: index into the request (and
/// response) vector.
using ShardPlan = std::vector<std::vector<std::size_t>>;

}  // namespace

ServeFrontend::ServeFrontend(spambayes::Filter base, FrontendConfig config)
    : base_(std::move(base)) {
  if (config.shard_count == 0) {
    throw InvalidArgument("ServeFrontend: shard_count must be greater than 0");
  }
  if (config.user_count == 0) {
    throw InvalidArgument("ServeFrontend: user_count must be greater than 0");
  }
  // Route every user id up front: shard by splitmix64 hash, then assign
  // dense local slots per shard so each ModelShard only allocates the
  // users it actually owns.
  route_.resize(config.user_count);
  std::vector<std::uint32_t> next_local(config.shard_count, 0);
  for (std::uint64_t uid = 0; uid < config.user_count; ++uid) {
    const std::size_t shard = util::shard_of(uid, config.shard_count);
    route_[uid] = {static_cast<std::uint32_t>(shard), next_local[shard]++};
  }
  shards_.reserve(config.shard_count);
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    // A hash-unlucky shard may own zero users; give it one slot so the
    // shard array stays dense and addressable.
    const std::size_t owned = next_local[s] > 0 ? next_local[s] : 1;
    shards_.push_back(std::make_unique<ModelShard>(owned));
  }
}

ServeFrontend::RouteEntry ServeFrontend::route(std::uint64_t user_id) const {
  return route_checked(user_id);
}

const ServeFrontend::RouteEntry& ServeFrontend::route_checked(
    std::uint64_t user_id) const {
  if (user_id >= route_.size()) {
    throw InvalidArgument("serve: unknown user " + std::to_string(user_id) +
                          " (serving " + std::to_string(route_.size()) +
                          " users)");
  }
  return route_[user_id];
}

ClassifyBatchResponse ServeFrontend::classify_batch(
    const ClassifyBatchRequest& request) {
  const RouteEntry at = route_checked(request.user_id);
  ModelShard& shard = *shards_[at.shard];

  // Tokenize the whole batch first; scoring then runs over pure id sets.
  std::vector<spambayes::TokenIdSet> ids;
  ids.reserve(request.messages.size());
  for (const std::string& raw : request.messages) {
    ids.push_back(base_.message_token_ids(email::parse_message(raw)));
  }

  // One snapshot for the whole batch: mutations landing mid-batch are
  // seen by the next request, never by a half-scored batch.
  const OverlaySnapshot overlay = shard.overlay(at.local);

  ClassifyBatchResponse response;
  response.results.resize(ids.size());
  if (!overlay) {
    // Empty overlay: the base filter IS this user's model. Pump the
    // generation-cached zero-alloc batch path — bit-identical to the
    // batch experiments' classify path.
    spambayes::ScoreEngine::for_current_thread(base_.options().classifier)
        .score_ids_batch(
            base_.database(), std::span<const spambayes::TokenIdList>(ids),
            [&](std::size_t i, const spambayes::BatchScore& s) {
              response.results[i] = {s.score, verdict_to_byte(s.verdict)};
            });
  } else {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const spambayes::ScoreIdResult r =
          base_.classifier().score_ids(base_.database(), *overlay, ids[i]);
      response.results[i] = {r.score, verdict_to_byte(r.verdict)};
    }
  }
  shard.record_classified(at.local, ids.size());
  classify_requests_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

TrainResponse ServeFrontend::train(const TrainRequest& request) {
  if (request.copies == 0) {
    throw InvalidArgument("serve: train copies must be greater than 0");
  }
  const RouteEntry at = route_checked(request.user_id);
  ModelShard& shard = *shards_[at.shard];
  const spambayes::TokenIdSet ids =
      base_.message_token_ids(email::parse_message(request.message));
  shard.apply_train(at.local, ids, request.as_spam, request.copies);
  const OverlaySnapshot now = shard.overlay(at.local);
  train_requests_.fetch_add(1, std::memory_order_relaxed);
  return {now->generation(), now->spam_count(), now->ham_count()};
}

UntrainResponse ServeFrontend::untrain(const UntrainRequest& request) {
  if (request.copies == 0) {
    throw InvalidArgument("serve: untrain copies must be greater than 0");
  }
  const RouteEntry at = route_checked(request.user_id);
  ModelShard& shard = *shards_[at.shard];
  const spambayes::TokenIdSet ids =
      base_.message_token_ids(email::parse_message(request.message));
  shard.apply_untrain(at.local, ids, request.as_spam, request.copies);
  const OverlaySnapshot now = shard.overlay(at.local);
  untrain_requests_.fetch_add(1, std::memory_order_relaxed);
  return {now->generation(), now->spam_count(), now->ham_count()};
}

StatsResponse ServeFrontend::stats() const {
  StatsResponse out;
  out.users = route_.size();
  out.shards = shards_.size();
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    out.overlay_users += s.overlay_users;
    out.classified_messages += s.classified_messages;
  }
  out.classify_requests = classify_requests_.load(std::memory_order_relaxed);
  out.train_requests = train_requests_.load(std::memory_order_relaxed);
  out.untrain_requests = untrain_requests_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.base_spam_count = base_.database().spam_count();
  out.base_ham_count = base_.database().ham_count();
  return out;
}

Response ServeFrontend::dispatch(const Request& request) {
  try {
    if (const auto* c = std::get_if<ClassifyBatchRequest>(&request)) {
      return classify_batch(*c);
    }
    if (const auto* t = std::get_if<TrainRequest>(&request)) {
      return train(*t);
    }
    if (const auto* u = std::get_if<UntrainRequest>(&request)) {
      return untrain(*u);
    }
    if (std::holds_alternative<StatsRequest>(request)) {
      return stats();
    }
    return ShutdownResponse{};
  } catch (const Error& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse{e.what()};
  }
}

std::vector<Response> ServeFrontend::classify_many(
    const std::vector<ClassifyBatchRequest>& requests) {
  std::vector<Response> responses(requests.size());
  ShardPlan plan(shards_.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].user_id >= route_.size()) {
      responses[i] = ErrorResponse{"serve: unknown user " +
                                   std::to_string(requests[i].user_id) +
                                   " (serving " +
                                   std::to_string(route_.size()) + " users)"};
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    plan[route_[requests[i].user_id].shard].push_back(i);
  }
  util::parallel_over_shards(shards_.size(), [&](std::size_t shard) {
    for (const std::size_t i : plan[shard]) {
      responses[i] = dispatch(Request(requests[i]));
    }
  });
  return responses;
}

}  // namespace sbx::serve
