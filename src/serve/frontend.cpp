#include "serve/frontend.h"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "email/rfc2822.h"
#include "serve/replication.h"
#include "spambayes/score_engine.h"
#include "util/error.h"
#include "util/sharding.h"

namespace sbx::serve {
namespace {

/// Per-shard work item for classify_many: index into the request (and
/// response) vector.
using ShardPlan = std::vector<std::vector<std::size_t>>;

}  // namespace

ServeFrontend::ServeFrontend(spambayes::Filter base, FrontendConfig config,
                             std::unique_ptr<Durability> durability)
    : base_(std::move(base)), durability_(std::move(durability)) {
  if (config.shard_count == 0) {
    throw InvalidArgument("ServeFrontend: shard_count must be greater than 0");
  }
  if (config.user_count == 0) {
    throw InvalidArgument("ServeFrontend: user_count must be greater than 0");
  }
  if (durability_ != nullptr &&
      durability_->shard_count() != config.shard_count) {
    throw InvalidArgument(
        "ServeFrontend: durability shard count does not match config");
  }
  // Route every user id up front: shard by splitmix64 hash, then assign
  // dense local slots per shard so each ModelShard only allocates the
  // users it actually owns.
  route_.resize(config.user_count);
  std::vector<std::uint32_t> next_local(config.shard_count, 0);
  for (std::uint64_t uid = 0; uid < config.user_count; ++uid) {
    const std::size_t shard = util::shard_of(uid, config.shard_count);
    route_[uid] = {static_cast<std::uint32_t>(shard), next_local[shard]++};
  }
  shards_.reserve(config.shard_count);
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    // A hash-unlucky shard may own zero users; give it one slot so the
    // shard array stays dense and addressable.
    const std::size_t owned = next_local[s] > 0 ? next_local[s] : 1;
    shards_.push_back(std::make_unique<ModelShard>(owned));
    shards_.back()->configure_dedup(config.dedup_window);
    if (durability_ != nullptr) {
      shards_.back()->attach_durability(durability_.get(), s);
    }
  }
  for (std::uint64_t uid = 0; uid < config.user_count; ++uid) {
    shards_[route_[uid].shard]->set_uid_of_local(route_[uid].local, uid);
  }
}

ServeFrontend::~ServeFrontend() = default;

ServeFrontend::RouteEntry ServeFrontend::route(std::uint64_t user_id) const {
  return route_checked(user_id);
}

const ServeFrontend::RouteEntry& ServeFrontend::route_checked(
    std::uint64_t user_id) const {
  if (user_id >= route_.size()) {
    throw InvalidArgument("serve: unknown user " + std::to_string(user_id) +
                          " (serving " + std::to_string(route_.size()) +
                          " users)");
  }
  return route_[user_id];
}

ClassifyBatchResponse ServeFrontend::classify_batch(
    const ClassifyBatchRequest& request) {
  const RouteEntry at = route_checked(request.user_id);
  ModelShard& shard = *shards_[at.shard];

  // Tokenize the whole batch first; scoring then runs over pure id sets.
  std::vector<spambayes::TokenIdSet> ids;
  ids.reserve(request.messages.size());
  for (const std::string& raw : request.messages) {
    ids.push_back(base_.message_token_ids(email::parse_message(raw)));
  }

  // One snapshot for the whole batch: mutations landing mid-batch are
  // seen by the next request, never by a half-scored batch.
  const OverlaySnapshot overlay = shard.overlay(at.local);

  ClassifyBatchResponse response;
  response.results.resize(ids.size());
  if (!overlay) {
    // Empty overlay: the base filter IS this user's model. Pump the
    // generation-cached zero-alloc batch path — bit-identical to the
    // batch experiments' classify path.
    spambayes::ScoreEngine::for_current_thread(base_.options().classifier)
        .score_ids_batch(
            base_.database(), std::span<const spambayes::TokenIdList>(ids),
            [&](std::size_t i, const spambayes::BatchScore& s) {
              response.results[i] = {s.score, verdict_to_byte(s.verdict)};
            });
  } else {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const spambayes::ScoreIdResult r =
          base_.classifier().score_ids(base_.database(), *overlay, ids[i]);
      response.results[i] = {r.score, verdict_to_byte(r.verdict)};
    }
  }
  shard.record_classified(at.local, ids.size());
  classify_requests_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

MutationResult ServeFrontend::apply(std::uint8_t op, std::uint64_t user_id,
                                    std::uint64_t request_id, bool as_spam,
                                    std::uint32_t copies,
                                    const std::string& message) {
  if (copies == 0) {
    throw InvalidArgument("serve: mutation copies must be greater than 0");
  }
  const RouteEntry at = route_checked(user_id);
  const spambayes::TokenIdSet ids =
      base_.message_token_ids(email::parse_message(message));
  MutationRequest req;
  req.op = op;
  req.user_id = user_id;
  req.request_id = request_id;
  req.as_spam = as_spam;
  req.copies = copies;
  req.message = &message;
  const MutationResult result =
      shards_[at.shard]->apply_mutation(at.local, req, ids);
  // Both waits run after the shard lock is released: group commit and
  // quorum acks gate THIS request's response, never another user's
  // mutation throughput.
  if (durability_ != nullptr) durability_->await_durable(result.commit_ticket);
  if (replicator_ != nullptr) replicator_->wait_acked(result.repl_ticket);
  return result;
}

TrainResponse ServeFrontend::train(const TrainRequest& request) {
  const MutationResult r =
      apply(kWalOpTrain, request.user_id, request.request_id, request.as_spam,
            request.copies, request.message);
  train_requests_.fetch_add(1, std::memory_order_relaxed);
  return {r.generation, r.spam, r.ham};
}

UntrainResponse ServeFrontend::untrain(const UntrainRequest& request) {
  const MutationResult r = apply(kWalOpUntrain, request.user_id,
                                 request.request_id, request.as_spam,
                                 request.copies, request.message);
  untrain_requests_.fetch_add(1, std::memory_order_relaxed);
  return {r.generation, r.spam, r.ham};
}

void ServeFrontend::set_standby(std::string redirect_hint) {
  redirect_hint_ = std::move(redirect_hint);
  role_.store(Role::kStandby, std::memory_order_release);
}

PromoteResponse ServeFrontend::promote() {
  std::uint64_t watermark = 0;
  for (const auto& shard : shards_) {
    watermark = std::max(watermark, shard->last_seqno());
  }
  if (durability_ != nullptr) {
    // Seqnos drawn as a primary must land strictly above everything
    // replicated in — otherwise the promoted node's first mutation would
    // collide with an applied record and be skipped on the next failover.
    durability_->note_recovered_seqno(watermark);
  }
  role_.store(Role::kPrimary, std::memory_order_release);
  return PromoteResponse{watermark};
}

ReplicateAckResponse ServeFrontend::replicate_batch(
    const ReplicateBatchRequest& request) {
  std::uint64_t max_ticket = 0;
  std::uint64_t max_seqno = 0;
  std::uint64_t applied = 0;
  for (const ReplicatedRecord& entry : request.records) {
    const RouteEntry at = route_checked(entry.record.user_id);
    if (at.shard != entry.shard) {
      // Primary and standby derive routing from the same manifest; a
      // disagreement means they are not replicas of one topology.
      throw InvalidArgument(
          "serve: replicated record routes user " +
          std::to_string(entry.record.user_id) + " to shard " +
          std::to_string(at.shard) + " here, shard " +
          std::to_string(entry.shard) + " on the primary (topology mismatch)");
    }
    const spambayes::TokenIdSet ids =
        base_.message_token_ids(email::parse_message(entry.record.message));
    const ReplicatedApplyResult r =
        shards_[at.shard]->apply_replicated(at.local, entry.record, ids);
    if (r.applied) {
      ++applied;
      max_ticket = std::max(max_ticket, r.commit_ticket);
    }
    max_seqno = std::max(max_seqno, entry.record.seqno);
  }
  // The ack promises durability: every applied record is fsync-covered
  // (per this node's own policy) before the primary hears the watermark.
  if (durability_ != nullptr) durability_->await_durable(max_ticket);
  standby_applied_records_.fetch_add(applied, std::memory_order_relaxed);
  ReplicateAckResponse ack;
  ack.acked_seqno = max_seqno;
  ack.applied_records =
      standby_applied_records_.load(std::memory_order_relaxed);
  return ack;
}

void ServeFrontend::attach_replicator(std::unique_ptr<Replicator> replicator) {
  replicator_ = std::move(replicator);
  for (const auto& shard : shards_) {
    shard->attach_replicator(replicator_.get());
  }
}

void ServeFrontend::sync_durability() {
  if (replicator_ != nullptr) {
    replicator_->flush(2'000);
    replicator_->stop();
  }
  if (durability_ != nullptr) durability_->sync_all();
}

void ServeFrontend::replay_install_user(std::uint64_t uid,
                                        OverlaySnapshot overlay,
                                        std::vector<DedupEntry> dedup) {
  const RouteEntry at = route_checked(uid);
  shards_[at.shard]->replay_install(at.local, std::move(overlay),
                                    std::move(dedup));
}

void ServeFrontend::replay_wal_record(const WalRecord& record) {
  const RouteEntry at = route_checked(record.user_id);
  const spambayes::TokenIdSet ids =
      base_.message_token_ids(email::parse_message(record.message));
  MutationRequest req;
  req.op = record.op;
  req.user_id = record.user_id;
  req.request_id = record.request_id;
  req.as_spam = record.as_spam;
  req.copies = record.copies;
  req.message = &record.message;
  req.seqno = record.seqno;
  shards_[at.shard]->replay_mutation(at.local, req, ids);
}

StatsResponse ServeFrontend::stats() const {
  StatsResponse out;
  out.users = route_.size();
  out.shards = shards_.size();
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    out.overlay_users += s.overlay_users;
    out.classified_messages += s.classified_messages;
    out.deduped_mutations += s.deduped;
  }
  out.classify_requests = classify_requests_.load(std::memory_order_relaxed);
  out.train_requests = train_requests_.load(std::memory_order_relaxed);
  out.untrain_requests = untrain_requests_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.base_spam_count = base_.database().spam_count();
  out.base_ham_count = base_.database().ham_count();
  out.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (durability_ != nullptr) {
    out.wal_records = durability_->total_records();
    out.wal_bytes = durability_->total_bytes();
    out.wal_snapshots = durability_->snapshots_taken();
    out.group_commit_windows = durability_->group_commit_windows();
    out.incremental_snapshot_bytes = durability_->incremental_snapshot_bytes();
  }
  if (replicator_ != nullptr) {
    const ReplicationStats repl = replicator_->stats();
    out.repl_shipped_seqno = repl.shipped_seqno;
    out.repl_acked_seqno = repl.acked_seqno;
    out.repl_lag_records = repl.lag_records;
  }
  out.standby_applied_records =
      standby_applied_records_.load(std::memory_order_relaxed);
  out.recovery_replayed_records = recovery_stats_.replayed_records;
  out.recovery_torn_dropped = recovery_stats_.torn_dropped;
  out.recovery_ms = recovery_stats_.duration_ms;
  out.recovery_snapshot_users = recovery_stats_.snapshot_users;
  if (const ServerCounters* counters =
          server_counters_.load(std::memory_order_acquire)) {
    out.shed_connections = counters->shed.load(std::memory_order_relaxed);
    out.active_connections = counters->active.load(std::memory_order_relaxed);
  }
  return out;
}

ErrorResponse ServeFrontend::not_primary(const char* what) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  ErrorResponse out;
  out.message = std::string("serve: standby refuses ") + what +
                (redirect_hint_.empty() ? "" : "; primary is at " +
                                                   redirect_hint_);
  out.code = static_cast<std::uint8_t>(ErrorCode::kNotPrimary);
  out.redirect = redirect_hint_;
  return out;
}

Response ServeFrontend::dispatch(const Request& request) {
  try {
    const bool standby = role() == Role::kStandby;
    if (const auto* c = std::get_if<ClassifyBatchRequest>(&request)) {
      // Classify is refused too: a standby's models trail the primary by
      // the ship lag, and "reads may be stale by an unbounded amount" is
      // not a contract any caller opted into.
      if (standby) return not_primary("classify");
      return classify_batch(*c);
    }
    if (const auto* t = std::get_if<TrainRequest>(&request)) {
      if (standby) return not_primary("train");
      return train(*t);
    }
    if (const auto* u = std::get_if<UntrainRequest>(&request)) {
      if (standby) return not_primary("untrain");
      return untrain(*u);
    }
    if (const auto* r = std::get_if<ReplicateBatchRequest>(&request)) {
      if (!standby) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse{
            "serve: this node is a primary; it does not accept replicated "
            "records (two primaries shipping at each other is a split "
            "brain, not a topology)",
            static_cast<std::uint8_t>(ErrorCode::kGeneric)};
      }
      return replicate_batch(*r);
    }
    if (std::holds_alternative<PromoteRequest>(request)) {
      return promote();
    }
    if (std::holds_alternative<StatsRequest>(request)) {
      return stats();
    }
    return ShutdownResponse{};
  } catch (const Error& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse{e.what()};
  }
}

std::vector<Response> ServeFrontend::classify_many(
    const std::vector<ClassifyBatchRequest>& requests) {
  std::vector<Response> responses(requests.size());
  ShardPlan plan(shards_.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].user_id >= route_.size()) {
      responses[i] = ErrorResponse{"serve: unknown user " +
                                   std::to_string(requests[i].user_id) +
                                   " (serving " +
                                   std::to_string(route_.size()) + " users)"};
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    plan[route_[requests[i].user_id].shard].push_back(i);
  }
  util::parallel_over_shards(shards_.size(), [&](std::size_t shard) {
    for (const std::size_t i : plan[shard]) {
      responses[i] = dispatch(Request(requests[i]));
    }
  });
  return responses;
}

}  // namespace sbx::serve
