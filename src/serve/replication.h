// sbx/serve/replication.h
//
// Primary-side WAL shipping to a warm standby. The shipper is a single
// background thread draining a ticket-ordered queue of committed WAL
// records into protocol-v3 ReplicateBatch frames; the standby (a second
// sbx_serve started with --standby) applies each record through the same
// replay path recovery uses and acks with a seqno watermark — so the
// standby is provably bit-identical to the primary at every acked
// watermark, and promotion (--promote / SIGUSR1) has no replay gap.
//
// Ordering contract: ModelShard::apply_mutation enqueues under its shard
// mutation lock, immediately after the local WAL append. That guarantees
// the queue holds each shard's records in ascending seqno order (the
// global interleave across shards is whatever the commit interleave was,
// which is exactly what the standby needs: per-shard order is the only
// order replay depends on).
//
// Delivery contract: records stay queued until the standby acks the batch
// containing them. A transport failure reconnects with backoff and
// resends the same batch; the standby skips records at or below each
// shard's last applied seqno, so resends are idempotent. Tickets are
// queue positions (assigned at enqueue), NOT seqnos — concurrent shards
// can draw seqnos in one order and enqueue in another, and quorum waiting
// must follow queue order to be correct.
//
// Ack policies (--repl-ack):
//   kNone    ship nothing (replication disabled; the default off state)
//   kAsync   ship in the background; client acks never wait
//   kQuorum  a mutation's ack waits until the standby acked its record
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>

#include "serve/wal.h"
#include "util/thread_annotations.h"

namespace sbx::serve {

enum class ReplAckPolicy : std::uint8_t { kNone = 0, kAsync = 1, kQuorum = 2 };

ReplAckPolicy repl_ack_policy_from_string(const std::string& s);
std::string to_string(ReplAckPolicy policy);

struct ReplicationConfig {
  /// Standby endpoint in the Server spelling ("unix:PATH", "tcp:PORT",
  /// "tcp:HOST:PORT").
  std::string target;
  ReplAckPolicy ack = ReplAckPolicy::kAsync;
  long connect_timeout_ms = 5'000;
  long op_timeout_ms = 10'000;
  /// Records per ReplicateBatch frame (the ship window).
  std::uint32_t batch_max = 64;
  int backoff_base_ms = 10;
  int backoff_cap_ms = 2'000;
  std::uint64_t jitter_seed = 1;
};

/// Relaxed-read telemetry (exact once shipping quiesces).
struct ReplicationStats {
  std::uint64_t shipped_seqno = 0;   // highest seqno handed to the wire
  std::uint64_t acked_seqno = 0;     // highest seqno the standby acked
  std::uint64_t lag_records = 0;     // enqueued, not yet acked
  std::uint64_t shipped_records = 0; // cumulative, resends included
  std::uint64_t acked_records = 0;   // cumulative
  std::uint64_t reconnects = 0;
};

class Replicator {
 public:
  /// Starts the shipper thread immediately. Throws InvalidArgument on an
  /// empty target or kNone policy (a disabled replicator is a null
  /// pointer, not an object).
  explicit Replicator(ReplicationConfig config);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  const ReplicationConfig& config() const { return config_; }

  /// Queues one committed WAL record for shipping and returns its ship
  /// ticket. Called by ModelShard under its mutation lock (see the
  /// ordering contract above).
  std::uint64_t enqueue(std::uint32_t shard, const WalRecord& record)
      SBX_EXCLUDES(mutex_);

  /// Blocks until the standby has acked `ticket` (kQuorum only; a no-op
  /// for other policies or ticket 0). Released without the ack when the
  /// replicator stops mid-wait — shutdown must not strand request
  /// threads; the client sees the connection close and retries.
  void wait_acked(std::uint64_t ticket) SBX_EXCLUDES(mutex_);

  /// Best-effort drain for graceful shutdown: waits until the queue is
  /// empty or `timeout_ms` passes. Returns true when fully acked.
  bool flush(long timeout_ms) SBX_EXCLUDES(mutex_);

  /// Stops the shipper thread (one final send attempt for an in-flight
  /// batch, no backoff loops) and releases every wait_acked caller.
  /// Idempotent.
  void stop() SBX_EXCLUDES(mutex_);

  ReplicationStats stats() const SBX_EXCLUDES(mutex_);

 private:
  struct PendingRecord {
    std::uint32_t shard = 0;
    WalRecord record;
    std::uint64_t ticket = 0;
  };

  void ship_loop() SBX_EXCLUDES(mutex_);
  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }
  /// Backoff sleep that wakes early on stop().
  void interruptible_sleep_ms(int ms) SBX_EXCLUDES(mutex_);

  ReplicationConfig config_;

  mutable util::Mutex mutex_{util::LockRank::kReplicator,
                              "Replicator::mutex_"};
  util::CondVar queue_cv_ ;  // signaled on enqueue and stop
  util::CondVar ack_cv_;     // signaled on ack progress, drain and stop
  std::deque<PendingRecord> queue_ SBX_GUARDED_BY(mutex_);
  std::uint64_t next_ticket_ SBX_GUARDED_BY(mutex_) = 0;
  std::uint64_t acked_ticket_ SBX_GUARDED_BY(mutex_) = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> shipped_seqno_{0};
  std::atomic<std::uint64_t> acked_seqno_{0};
  std::atomic<std::uint64_t> shipped_records_{0};
  std::atomic<std::uint64_t> acked_records_{0};
  std::atomic<std::uint64_t> reconnects_{0};

  std::thread shipper_;  // last member: joined by stop(), started in ctor
};

}  // namespace sbx::serve
