// sbx/spambayes/scoring_math.h
//
// The single definition of Eq. 1-2 (per-token spam score smoothed toward
// the prior) shared by Classifier and ScoreEngine. Both evaluate the exact
// same sequence of floating-point operations, which is what lets the
// engine memoize per-token values and still produce bit-identical message
// scores (tests/spambayes/score_engine_test.cpp holds it to EXPECT_EQ on
// doubles).
#pragma once

#include "spambayes/options.h"
#include "spambayes/token_db.h"

namespace sbx::spambayes::detail {

/// Eq. 1-2 over raw presence counts. Expressed through per-class presence
/// ratios, which is exactly NH*NS(w) / (NH*NS(w) + NS*NH(w)) when both
/// class counts are nonzero and degrades gracefully when one class is
/// empty; Eq. 2 then shrinks toward the prior x with strength s.
inline double score_from_counts(TokenCounts c, double ns, double nh,
                                const ClassifierOptions& opts) {
  const double spam_ratio = ns > 0 ? c.spam / ns : 0.0;
  const double ham_ratio = nh > 0 ? c.ham / nh : 0.0;
  double ps = 0.5;
  if (spam_ratio + ham_ratio > 0) {
    ps = spam_ratio / (spam_ratio + ham_ratio);
  }
  const double n_w = static_cast<double>(c.spam) + static_cast<double>(c.ham);
  const double s = opts.unknown_word_strength;
  const double x = opts.unknown_word_prob;
  return (s * x + n_w * ps) / (s + n_w);
}

}  // namespace sbx::spambayes::detail
