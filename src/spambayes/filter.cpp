#include "spambayes/filter.h"

#include "util/error.h"

namespace sbx::spambayes {

Filter::Filter(FilterOptions opts)
    : opts_(opts), tokenizer_(opts.tokenizer), classifier_(opts.classifier) {}

TokenSet Filter::message_tokens(const email::Message& msg) const {
  return unique_tokens(tokenizer_.tokenize(msg));
}

TokenIdSet Filter::message_token_ids(const email::Message& msg) const {
  return unique_token_ids(tokenizer_.tokenize_ids(msg));
}

void Filter::train_ham(const email::Message& msg) {
  db_.train_ham_ids(message_token_ids(msg));
}

void Filter::train_spam(const email::Message& msg) {
  db_.train_spam_ids(message_token_ids(msg));
}

void Filter::train_spam_copies(const email::Message& msg,
                               std::uint32_t copies) {
  db_.train_spam_ids(message_token_ids(msg), copies);
}

void Filter::untrain_ham(const email::Message& msg) {
  db_.untrain_ham_ids(message_token_ids(msg));
}

void Filter::untrain_spam(const email::Message& msg) {
  db_.untrain_spam_ids(message_token_ids(msg));
}

void Filter::train_ham_tokens(const TokenSet& tokens, std::uint32_t copies) {
  db_.train_ham(tokens, copies);
}

void Filter::train_spam_tokens(const TokenSet& tokens, std::uint32_t copies) {
  db_.train_spam(tokens, copies);
}

void Filter::untrain_ham_tokens(const TokenSet& tokens,
                                std::uint32_t copies) {
  db_.untrain_ham(tokens, copies);
}

void Filter::untrain_spam_tokens(const TokenSet& tokens,
                                 std::uint32_t copies) {
  db_.untrain_spam(tokens, copies);
}

void Filter::train_ham_ids(const TokenIdSet& ids, std::uint32_t copies) {
  db_.train_ham_ids(ids, copies);
}

void Filter::train_spam_ids(const TokenIdSet& ids, std::uint32_t copies) {
  db_.train_spam_ids(ids, copies);
}

void Filter::untrain_ham_ids(const TokenIdSet& ids, std::uint32_t copies) {
  db_.untrain_ham_ids(ids, copies);
}

void Filter::untrain_spam_ids(const TokenIdSet& ids, std::uint32_t copies) {
  db_.untrain_spam_ids(ids, copies);
}

ScoreResult Filter::classify(const email::Message& msg) const {
  return classifier_.score(db_, message_tokens(msg));
}

ScoreResult Filter::classify_tokens(const TokenSet& tokens) const {
  return classifier_.score(db_, tokens);
}

ScoreIdResult Filter::classify_ids(const TokenIdSet& ids) const {
  return ScoreEngine::for_current_thread(opts_.classifier)
      .score_ids(db_, ids);
}

void Filter::set_cutoffs(double ham_cutoff, double spam_cutoff) {
  if (ham_cutoff < 0 || spam_cutoff > 1 || ham_cutoff > spam_cutoff) {
    throw InvalidArgument("Filter::set_cutoffs: invalid thresholds");
  }
  opts_.classifier.ham_cutoff = ham_cutoff;
  opts_.classifier.spam_cutoff = spam_cutoff;
  classifier_ = Classifier(opts_.classifier);
}

}  // namespace sbx::spambayes
