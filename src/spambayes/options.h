// sbx/spambayes/options.h
//
// Tunable parameters of the SpamBayes learner, with the upstream defaults
// the paper attacks. Section 2.3 of the paper defines the math; the names
// here mirror SpamBayes' Options.py where one exists.
#pragma once

#include <cstddef>

namespace sbx::spambayes {

/// Classifier hyperparameters (Eq. 1-4 of the paper).
struct ClassifierOptions {
  /// Prior strength `s` in Eq. 2 (SpamBayes: unknown_word_strength).
  double unknown_word_strength = 0.45;

  /// Prior belief `x` in Eq. 2 (SpamBayes: unknown_word_prob).
  double unknown_word_prob = 0.5;

  /// Maximum number of significant tokens |delta(E)| combined by Fisher's
  /// method (SpamBayes: max_discriminators).
  std::size_t max_discriminators = 150;

  /// Tokens with |f(w) - 0.5| <= this value are ignored, i.e. scores inside
  /// [0.4, 0.6] carry no evidence (SpamBayes: minimum_prob_strength).
  double minimum_prob_strength = 0.1;

  /// theta_0: messages with I(E) in [0, ham_cutoff] are labeled ham.
  double ham_cutoff = 0.15;

  /// theta_1: messages with I(E) in (spam_cutoff, 1] are labeled spam;
  /// everything between the cutoffs is unsure.
  double spam_cutoff = 0.9;
};

/// Tokenizer parameters (see tokenizer.h for semantics).
struct TokenizerOptions {
  /// Tokens shorter than this many characters are dropped.
  std::size_t min_token_length = 3;

  /// Tokens longer than this many characters become "skip" pseudo-tokens.
  std::size_t max_token_length = 12;

  /// Emit "skip:<first-char> <bucketed-length>" pseudo-tokens for
  /// over-length words, as SpamBayes does.
  bool generate_skip_tokens = true;

  /// Tokenize the Subject/From/To/Reply-To headers.
  bool tokenize_headers = true;

  /// Prefix header tokens with their field name ("subject:offer"). When
  /// false, header words enter the same token space as body words — which
  /// removes the header "safe zone" that body-only poisoning cannot touch.
  bool prefix_header_tokens = true;

  /// Emit "url:<component>" pseudo-tokens for http(s) URLs in the body.
  bool tokenize_urls = true;
};

/// Tokenizer presets modeling the filters the paper names (footnote 1:
/// "The primary difference between the learning elements of these three
/// filters is in their tokenization methods"). The presets capture the
/// differences that matter to the attacks: token-length windows, skip
/// tokens and header handling.
struct TokenizerFlavors {
  /// SpamBayes defaults (the paper's target system).
  static TokenizerOptions spambayes() { return TokenizerOptions{}; }

  /// BogoFilter-style: a much wider token-length window, no skip
  /// pseudo-tokens, and header words not segregated by field prefixes.
  static TokenizerOptions bogofilter() {
    TokenizerOptions opts;
    opts.max_token_length = 30;
    opts.generate_skip_tokens = false;
    opts.prefix_header_tokens = false;
    return opts;
  }

  /// SpamAssassin's Bayes component: mid-sized window, header prefixes,
  /// no skip tokens.
  static TokenizerOptions spamassassin() {
    TokenizerOptions opts;
    opts.max_token_length = 15;
    opts.generate_skip_tokens = false;
    return opts;
  }
};

/// Bundle used by Filter.
struct FilterOptions {
  ClassifierOptions classifier;
  TokenizerOptions tokenizer;
};

}  // namespace sbx::spambayes
