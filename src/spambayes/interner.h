// sbx/spambayes/interner.h
//
// Token interning: a process-wide string -> TokenId table with arena-backed
// storage. Every distinct token spelling is stored exactly once and mapped
// to a dense uint32 id; the hot paths (TokenDatabase train/untrain,
// Classifier::score_ids) then operate on flat id arrays with no string
// hashing and no per-token allocation. The id -> spelling direction is a
// lock-free chunked lookup, so reporting and the classifier's deterministic
// tie-break (compare spellings only on an exact score-distance tie) stay
// cheap.
//
// Concurrency contract:
//  * intern() is safe from any thread. The warm path (token already
//    interned) is entirely lock-free: one probe of an open-addressing table
//    whose slots publish ids with release semantics. Only first-time
//    insertions and table growth take the writer mutex; superseded tables
//    are retired, never freed, so stale readers stay safe (the table is
//    append-only — no deletions, ever).
//  * find() is lock-free on hit; a miss re-checks under the writer mutex so
//    an id published by another thread is never spuriously reported absent.
//  * spelling(id) is lock-free and wait-free for any id previously returned
//    by intern(): ids are published with release semantics into chunks that
//    never move once allocated.
//  * ids are assigned in first-intern order. Nothing in the system may
//    depend on the numeric order of ids (it varies with thread scheduling);
//    determinism always comes from comparing spellings.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace sbx::spambayes {

/// Dense token identifier assigned by a TokenInterner.
using TokenId = std::uint32_t;

/// A list of token ids in occurrence order (may contain duplicates).
using TokenIdList = std::vector<TokenId>;

/// A deduplicated, ascending-sorted id set — the interned counterpart of
/// TokenSet and the canonical hot-path message representation.
using TokenIdSet = std::vector<TokenId>;

/// Append-only string interning table. See the header comment for the
/// concurrency contract.
class TokenInterner {
 public:
  TokenInterner();
  ~TokenInterner();
  TokenInterner(const TokenInterner&) = delete;
  TokenInterner& operator=(const TokenInterner&) = delete;

  /// Returns the id for `token`, inserting it on first sight. The spelling
  /// is copied into the interner's arena; the caller's buffer may die.
  TokenId intern(std::string_view token) SBX_EXCLUDES(write_mutex_);

  /// Returns the id for `token` if it was ever interned; does not insert.
  std::optional<TokenId> find(std::string_view token) const
      SBX_EXCLUDES(write_mutex_);

  /// The spelling of an interned id. Lock-free; the returned view lives as
  /// long as the interner. Throws InvalidArgument for ids never returned by
  /// intern().
  std::string_view spelling(TokenId id) const;

  /// Number of distinct tokens interned so far.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Total arena bytes reserved for spellings (capacity, not live bytes).
  std::size_t arena_bytes() const SBX_EXCLUDES(write_mutex_);

 private:
  // id -> spelling chunks: 4096 entries each, up to 16.7M ids. Chunks are
  // allocated on demand and never move, which is what makes spelling()
  // lock-free.
  static constexpr std::size_t kChunkBits = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 12;
  static constexpr std::size_t kArenaBlockBytes = std::size_t{1} << 16;
  static constexpr std::size_t kInitialTableCapacity = 1024;

  struct Chunk {
    std::array<std::string_view, kChunkSize> entries;
  };

  /// Open-addressing hash table over interned ids. Slots hold id + 1 (0 =
  /// empty) and are published with release stores; lookups linear-probe and
  /// compare spellings. Append-only: capacity doubles by building a new
  /// table and atomically swapping the pointer; old tables are retired.
  struct Table {
    explicit Table(std::size_t capacity_in);
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
  };

  /// Spelling lookup without the public bounds check — valid for any id
  /// read from a published table slot.
  std::string_view spelling_unchecked(TokenId id) const {
    const Chunk* chunk =
        chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return chunk->entries[id & (kChunkSize - 1)];
  }

  /// Lock-free probe of `table`; nullopt when `token` has no slot there.
  std::optional<TokenId> probe(const Table& table, std::size_t hash,
                               std::string_view token) const;

  /// Inserts an id into `table` at its hash position. Static and
  /// annotation-free on purpose: it also runs against not-yet-published
  /// grow tables that no thread can see.
  static void place(Table& table, std::size_t hash, TokenId id);

  /// Copies `token` into the arena (writer mutex held — compiler-checked).
  std::string_view store(std::string_view token) SBX_REQUIRES(write_mutex_);

  // Lock-free read side: the current table pointer, the id -> spelling
  // chunks and the published size are atomics with release/acquire
  // pairing; they are deliberately NOT guarded by the writer mutex.
  std::atomic<Table*> table_;
  mutable util::Mutex write_mutex_{util::LockRank::kLeaf,
                                   "TokenInterner::write_mutex_"};
  // Writer-side growth state: every table ever built (retired tables stay
  // readable), the spelling arena and its fill cursor.
  std::vector<std::unique_ptr<Table>> tables_ SBX_GUARDED_BY(write_mutex_);
  std::vector<std::unique_ptr<char[]>> arena_ SBX_GUARDED_BY(write_mutex_);
  std::size_t arena_block_used_ SBX_GUARDED_BY(write_mutex_) = 0;
  std::size_t arena_block_size_ SBX_GUARDED_BY(write_mutex_) = 0;
  std::size_t arena_total_ SBX_GUARDED_BY(write_mutex_) = 0;
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> size_{0};
};

/// The process-wide interner every Filter/TokenDatabase shares. Using one
/// table means a TokenizedDataset interned once is valid for every filter
/// copy an experiment makes.
TokenInterner& global_interner();

}  // namespace sbx::spambayes
