// sbx/spambayes/classifier.h
//
// The Robinson/Fisher scoring core of SpamBayes (paper §2.3, Eq. 1-4):
// per-token spam scores smoothed toward a prior, combined across the most
// significant tokens with Fisher's method, thresholded into
// ham / unsure / spam.
//
// Two entry points share one arithmetic core and produce bit-identical
// scores:
//  * score_ids() — the hot path. Runs entirely over interned id arrays:
//    per-token counts are indexed loads, no string hashing, no per-token
//    allocation. Token spellings are consulted only to break an exact
//    score-distance tie deterministically (rare, lock-free lookup).
//  * score() — the string-set wrapper, kept for the public API and tests.
//    Evidence entries carry spellings and appear in the input (sorted
//    string) order, exactly as before the interning refactor.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "spambayes/interner.h"
#include "spambayes/options.h"
#include "spambayes/token_db.h"
#include "spambayes/tokenizer.h"

namespace sbx::spambayes {

/// Three-way SpamBayes verdict.
enum class Verdict { ham, unsure, spam };

/// Human-readable verdict name ("ham" / "unsure" / "spam").
std::string_view to_string(Verdict v);

/// True when `v` is no spammier than `goal` under the ordering
/// ham < unsure < spam — the success test every Exploratory (evasion)
/// attack applies to its goal verdict.
bool verdict_at_most(Verdict v, Verdict goal);

/// One token's contribution to a score, exposed for analysis (Figure 4
/// plots these before/after an attack).
struct TokenEvidence {
  std::string token;
  double score = 0.5;  // f(w) from Eq. 2
  bool used = false;   // selected into delta(E)?
};

/// Interned counterpart of TokenEvidence (resolve spellings on demand via
/// TokenInterner::spelling).
struct TokenIdEvidence {
  TokenId id = 0;
  double score = 0.5;
  bool used = false;
};

/// Full scoring breakdown for one message.
struct ScoreResult {
  double score = 0.5;          // I(E) in [0,1], Eq. 3
  double spam_evidence = 0.0;  // H(E) in the paper's notation, Eq. 4
  double ham_evidence = 0.0;   // S(E)
  std::size_t tokens_used = 0;  // n = |delta(E)|
  Verdict verdict = Verdict::unsure;
  std::vector<TokenEvidence> evidence;  // one entry per distinct token
};

/// Scoring breakdown over interned ids; numerically identical to the
/// ScoreResult the string path produces for the same token set.
struct ScoreIdResult {
  double score = 0.5;
  double spam_evidence = 0.0;
  double ham_evidence = 0.0;
  std::size_t tokens_used = 0;
  Verdict verdict = Verdict::unsure;
  std::vector<TokenIdEvidence> evidence;  // in input-id order
};

/// Stateless scorer over a TokenDatabase snapshot.
class Classifier {
 public:
  explicit Classifier(ClassifierOptions opts = {});

  /// f(w) per Eq. 1-2 against the given database.
  double token_score(const TokenDatabase& db, std::string_view token) const;

  /// f(w) for an interned token (the hot-path form).
  double token_score(const TokenDatabase& db, TokenId id) const;

  /// Scores a deduplicated token set; fills the full breakdown.
  ScoreResult score(const TokenDatabase& db, const TokenSet& tokens) const;

  /// Scores a deduplicated id set. `ids` may be in any order (the score is
  /// order-independent; evidence entries follow the input order). The
  /// deterministic tie-break compares interned spellings, never raw id
  /// values, so results do not depend on interning order.
  ScoreIdResult score_ids(const TokenDatabase& db,
                          const TokenIdList& ids) const;

  /// Overlay-aware scoring view: scores `ids` against the virtual merge of
  /// a shared immutable `base` database and a per-user `overlay` delta,
  /// without materializing the merge. Per-token counts are the uint32 sums
  /// base + overlay and the class totals NS/NH are summed the same way —
  /// exactly the values a database trained on both message sets would hold
  /// (counts are additive, TokenDatabase::merge does the same additions) —
  /// so every score is bit-identical to score_ids() on such a merged
  /// database. This is the serving layer's classify path for users with a
  /// non-empty copy-on-write overlay (src/serve/).
  ScoreIdResult score_ids(const TokenDatabase& base,
                          const TokenDatabase& overlay,
                          const TokenIdList& ids) const;

  /// Maps a score I(E) to a verdict using the configured cutoffs:
  /// ham for [0, theta0], unsure for (theta0, theta1], spam for (theta1, 1].
  Verdict verdict_for(double score) const;

  /// Verdict with explicit cutoffs (the dynamic-threshold defense swaps
  /// thresholds without re-scoring).
  static Verdict verdict_for(double score, double ham_cutoff,
                             double spam_cutoff);

  const ClassifierOptions& options() const { return opts_; }

 private:
  ClassifierOptions opts_;
};

}  // namespace sbx::spambayes
