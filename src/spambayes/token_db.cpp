#include "spambayes/token_db.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace sbx::spambayes {

std::uint64_t TokenDatabase::next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void TokenDatabase::add(const TokenIdSet& ids, std::uint32_t copies,
                        bool spam) {
  if (copies == 0) return;
  // TokenIdSet is sorted, so one resize covers the whole set; the in-loop
  // guard keeps an unsorted caller (the typedefs cannot forbid one) at
  // worst slow, never out of bounds.
  if (!ids.empty() && ids.back() >= counts_.size()) {
    counts_.resize(ids.back() + 1);
  }
  for (TokenId id : ids) {
    if (id >= counts_.size()) counts_.resize(id + 1);
    TokenCounts& c = counts_[id];
    if (c.spam == 0 && c.ham == 0) ++vocab_;
    (spam ? c.spam : c.ham) += copies;
  }
  (spam ? nspam_ : nham_) += copies;
  generation_ = next_generation();
}

void TokenDatabase::remove(const TokenIdSet& ids, std::uint32_t copies,
                           bool spam) {
  if (copies == 0) return;
  std::uint32_t& total = spam ? nspam_ : nham_;
  if (total < copies) {
    throw InvalidArgument("TokenDatabase: untraining more emails than known");
  }
  // Validate everything before mutating anything: a partial decrement that
  // then threw would change the contents without moving generation_,
  // breaking the "equal generation proves equal contents" invariant
  // ScoreEngine's memoization rests on.
  for (TokenId id : ids) {
    const std::uint32_t have =
        id < counts_.size() ? (spam ? counts_[id].spam : counts_[id].ham) : 0;
    if (have < copies) {
      throw InvalidArgument(
          "TokenDatabase: untraining unknown token '" +
          std::string(global_interner().spelling(id)) + "'");
    }
  }
  for (TokenId id : ids) {
    TokenCounts& c = counts_[id];
    (spam ? c.spam : c.ham) -= copies;
    if (c.spam == 0 && c.ham == 0) --vocab_;
  }
  total -= copies;
  generation_ = next_generation();
}

void TokenDatabase::train_spam_ids(const TokenIdSet& ids,
                                   std::uint32_t copies) {
  add(ids, copies, /*spam=*/true);
}

void TokenDatabase::train_ham_ids(const TokenIdSet& ids,
                                  std::uint32_t copies) {
  add(ids, copies, /*spam=*/false);
}

void TokenDatabase::untrain_spam_ids(const TokenIdSet& ids,
                                     std::uint32_t copies) {
  remove(ids, copies, /*spam=*/true);
}

void TokenDatabase::untrain_ham_ids(const TokenIdSet& ids,
                                    std::uint32_t copies) {
  remove(ids, copies, /*spam=*/false);
}

void TokenDatabase::train_spam(const TokenSet& tokens, std::uint32_t copies) {
  train_spam_ids(intern_tokens(tokens), copies);
}

void TokenDatabase::train_ham(const TokenSet& tokens, std::uint32_t copies) {
  train_ham_ids(intern_tokens(tokens), copies);
}

void TokenDatabase::untrain_spam(const TokenSet& tokens,
                                 std::uint32_t copies) {
  untrain_spam_ids(intern_tokens(tokens), copies);
}

void TokenDatabase::untrain_ham(const TokenSet& tokens,
                                std::uint32_t copies) {
  untrain_ham_ids(intern_tokens(tokens), copies);
}

TokenCounts TokenDatabase::counts(std::string_view token) const {
  const auto id = global_interner().find(token);
  return id ? counts(*id) : TokenCounts{};
}

void TokenDatabase::merge(const TokenDatabase& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size());
  }
  for (TokenId id = 0; id < other.counts_.size(); ++id) {
    const TokenCounts& theirs = other.counts_[id];
    if (theirs.spam == 0 && theirs.ham == 0) continue;
    TokenCounts& mine = counts_[id];
    if (mine.spam == 0 && mine.ham == 0) ++vocab_;
    mine.spam += theirs.spam;
    mine.ham += theirs.ham;
  }
  nspam_ += other.nspam_;
  nham_ += other.nham_;
  generation_ = next_generation();
}

std::vector<std::pair<std::string, TokenCounts>> TokenDatabase::tokens()
    const {
  const TokenInterner& interner = global_interner();
  std::vector<std::pair<std::string, TokenCounts>> out;
  out.reserve(vocab_);
  for (TokenId id = 0; id < counts_.size(); ++id) {
    const TokenCounts& c = counts_[id];
    if (c.spam == 0 && c.ham == 0) continue;
    out.emplace_back(std::string(interner.spelling(id)), c);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void TokenDatabase::save(std::ostream& out) const {
  out << "SBXDB 1\n" << nspam_ << ' ' << nham_ << '\n';
  // Spelling order: stable across runs regardless of id assignment, which
  // also makes save -> load -> save a byte-identical round trip.
  for (const auto& [token, c] : tokens()) {
    out << c.spam << ' ' << c.ham << ' ' << token << '\n';
  }
}

TokenDatabase TokenDatabase::load(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "SBXDB" || version != 1) {
    throw ParseError("TokenDatabase: bad header");
  }
  TokenDatabase db;
  if (!(in >> db.nspam_ >> db.nham_)) {
    throw ParseError("TokenDatabase: bad counts line");
  }
  std::string line;
  std::getline(in, line);  // consume rest of counts line
  TokenInterner& interner = global_interner();
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TokenCounts c;
    if (!(ls >> c.spam >> c.ham)) {
      throw ParseError("TokenDatabase: bad token line: " + line);
    }
    std::string token;
    std::getline(ls, token);
    if (!token.empty() && token.front() == ' ') token.erase(0, 1);
    if (token.empty()) {
      throw ParseError("TokenDatabase: empty token in line: " + line);
    }
    if (c.spam == 0 && c.ham == 0) {
      throw ParseError("TokenDatabase: zero-count token: " + token);
    }
    const TokenId id = interner.intern(token);
    if (id >= db.counts_.size()) db.counts_.resize(id + 1);
    TokenCounts& mine = db.counts_[id];
    if (mine.spam == 0 && mine.ham == 0) ++db.vocab_;
    mine = c;
  }
  db.generation_ = next_generation();
  return db;
}

void TokenDatabase::save_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw IoError("TokenDatabase: cannot open for write: " + path);
  save(f);
  if (!f) throw IoError("TokenDatabase: write failed: " + path);
}

TokenDatabase TokenDatabase::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("TokenDatabase: cannot open: " + path);
  return load(f);
}

}  // namespace sbx::spambayes
