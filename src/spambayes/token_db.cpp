#include "spambayes/token_db.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace sbx::spambayes {

void TokenDatabase::add(const TokenSet& tokens, std::uint32_t copies,
                        bool spam) {
  if (copies == 0) return;
  for (const auto& t : tokens) {
    TokenCounts& c = counts_[t];
    (spam ? c.spam : c.ham) += copies;
  }
  (spam ? nspam_ : nham_) += copies;
}

void TokenDatabase::remove(const TokenSet& tokens, std::uint32_t copies,
                           bool spam) {
  if (copies == 0) return;
  std::uint32_t& total = spam ? nspam_ : nham_;
  if (total < copies) {
    throw InvalidArgument("TokenDatabase: untraining more emails than known");
  }
  for (const auto& t : tokens) {
    auto it = counts_.find(t);
    std::uint32_t have = it == counts_.end() ? 0 : (spam ? it->second.spam
                                                         : it->second.ham);
    if (have < copies) {
      throw InvalidArgument("TokenDatabase: untraining unknown token '" + t +
                            "'");
    }
    std::uint32_t& field = spam ? it->second.spam : it->second.ham;
    field -= copies;
    if (it->second.spam == 0 && it->second.ham == 0) counts_.erase(it);
  }
  total -= copies;
}

void TokenDatabase::train_spam(const TokenSet& tokens, std::uint32_t copies) {
  add(tokens, copies, /*spam=*/true);
}

void TokenDatabase::train_ham(const TokenSet& tokens, std::uint32_t copies) {
  add(tokens, copies, /*spam=*/false);
}

void TokenDatabase::untrain_spam(const TokenSet& tokens,
                                 std::uint32_t copies) {
  remove(tokens, copies, /*spam=*/true);
}

void TokenDatabase::untrain_ham(const TokenSet& tokens, std::uint32_t copies) {
  remove(tokens, copies, /*spam=*/false);
}

TokenCounts TokenDatabase::counts(std::string_view token) const {
  auto it = counts_.find(std::string(token));
  return it == counts_.end() ? TokenCounts{} : it->second;
}

void TokenDatabase::merge(const TokenDatabase& other) {
  for (const auto& [token, c] : other.counts_) {
    TokenCounts& mine = counts_[token];
    mine.spam += c.spam;
    mine.ham += c.ham;
  }
  nspam_ += other.nspam_;
  nham_ += other.nham_;
}

void TokenDatabase::save(std::ostream& out) const {
  out << "SBXDB 1\n" << nspam_ << ' ' << nham_ << '\n';
  for (const auto& [token, c] : counts_) {
    out << c.spam << ' ' << c.ham << ' ' << token << '\n';
  }
}

TokenDatabase TokenDatabase::load(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "SBXDB" || version != 1) {
    throw ParseError("TokenDatabase: bad header");
  }
  TokenDatabase db;
  if (!(in >> db.nspam_ >> db.nham_)) {
    throw ParseError("TokenDatabase: bad counts line");
  }
  std::string line;
  std::getline(in, line);  // consume rest of counts line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TokenCounts c;
    if (!(ls >> c.spam >> c.ham)) {
      throw ParseError("TokenDatabase: bad token line: " + line);
    }
    std::string token;
    std::getline(ls, token);
    if (!token.empty() && token.front() == ' ') token.erase(0, 1);
    if (token.empty()) {
      throw ParseError("TokenDatabase: empty token in line: " + line);
    }
    if (c.spam == 0 && c.ham == 0) {
      throw ParseError("TokenDatabase: zero-count token: " + token);
    }
    db.counts_[token] = c;
  }
  return db;
}

void TokenDatabase::save_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw IoError("TokenDatabase: cannot open for write: " + path);
  save(f);
  if (!f) throw IoError("TokenDatabase: write failed: " + path);
}

TokenDatabase TokenDatabase::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("TokenDatabase: cannot open: " + path);
  return load(f);
}

}  // namespace sbx::spambayes
