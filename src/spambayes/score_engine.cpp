#include "spambayes/score_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "spambayes/scoring_math.h"
#include "util/error.h"
#include "util/stats.h"

namespace sbx::spambayes {
namespace {

/// First 8 bytes of a spelling as a big-endian integer (zero-padded).
/// Ordering by this key agrees with bytewise lexicographic order whenever
/// the keys differ; equal keys defer to the full comparison.
std::uint64_t spelling_prefix(std::string_view spelling) {
  std::uint64_t key = 0;
  const std::size_t n = std::min<std::size_t>(spelling.size(), 8);
  for (std::size_t i = 0; i < n; ++i) {
    key |= static_cast<std::uint64_t>(static_cast<unsigned char>(spelling[i]))
           << (56 - 8 * i);
  }
  return key;
}

}  // namespace

ScoreEngine::ScoreEngine(ClassifierOptions opts) : opts_(opts) {}

void ScoreEngine::rebind_options(const ClassifierOptions& opts) {
  if (opts.unknown_word_strength != opts_.unknown_word_strength ||
      opts.unknown_word_prob != opts_.unknown_word_prob ||
      opts.minimum_prob_strength != opts_.minimum_prob_strength) {
    ++epoch_;
  }
  opts_ = opts;
}

void ScoreEngine::bind(const TokenDatabase& db) {
  const std::uint64_t gen = db.generation();
  if (gen != generation_) {
    generation_ = gen;
    ns_ = db.spam_count();
    nh_ = db.ham_count();
    ++epoch_;
  }
}

void ScoreEngine::check_generation(const TokenDatabase& db,
                                   std::uint64_t bound) const {
  if (db.generation() != bound) {
    throw InvalidArgument(
        "ScoreEngine::score_batch: TokenDatabase mutated mid-batch "
        "(generation moved; a batch scores one database snapshot)");
  }
}

const ScoreEngine::TokenMemo& ScoreEngine::memo_for(const TokenDatabase& db,
                                                    TokenId id) {
  if (id >= memo_.size()) {
    memo_.resize(std::max<std::size_t>(id + 1, memo_.size() * 2));
  }
  TokenMemo& m = memo_[id];
  if (m.epoch != epoch_) {
    const double f = detail::score_from_counts(db.counts(id), ns_, nh_, opts_);
    m.f = f;
    m.distance = std::fabs(f - 0.5);
    m.strong = m.distance > opts_.minimum_prob_strength;
    if (m.strong) {
      // Identical clamp + libm calls to Classifier's combine step, just
      // evaluated once per (token, generation) instead of per message.
      const double clamped = std::clamp(f, 1e-300, 1.0 - 1e-15);
      m.log_f = std::log(clamped);
      m.log_1mf = std::log1p(-clamped);
      m.spell_prefix = spelling_prefix(global_interner().spelling(id));
    }
    m.epoch = epoch_;
  }
  return m;
}

void ScoreEngine::score_into(const TokenDatabase& db, const TokenIdList& ids,
                             BatchScore& out) {
  evidence_.clear();
  candidates_.clear();
  for (TokenId id : ids) {
    const TokenMemo& m = memo_for(db, id);
    evidence_.push_back({id, m.f, false});
    if (m.strong) {
      const SortKey key =
          (static_cast<SortKey>(~std::bit_cast<std::uint64_t>(m.distance))
           << 64) |
          m.spell_prefix;
      candidates_.push_back(
          {key, static_cast<std::uint32_t>(evidence_.size() - 1)});
    }
  }

  // Delta(E) selection in the exact (distance desc, spelling asc) total
  // order Classifier uses — one packed-integer compare stands in for the
  // (distance, spelling) pair (see Candidate::key; distance ties are
  // common in small corpora and full string compares are the expensive
  // part of the sort), and only a prefix collision falls back to the
  // interner. Same strict total order, so the selected set, its order,
  // and with it every floating-point summation are identical.
  const TokenInterner& interner = global_interner();
  const auto stronger = [&](const Candidate& a, const Candidate& b) {
    if (a.key != b.key) return a.key < b.key;
    return interner.spelling(evidence_[a.index].id) <
           interner.spelling(evidence_[b.index].id);
  };
  if (candidates_.size() > opts_.max_discriminators) {
    const auto cut = candidates_.begin() +
                     static_cast<std::ptrdiff_t>(opts_.max_discriminators);
    std::nth_element(candidates_.begin(), cut, candidates_.end(), stronger);
    candidates_.resize(opts_.max_discriminators);
    std::sort(candidates_.begin(), candidates_.end(), stronger);
  } else {
    std::sort(candidates_.begin(), candidates_.end(), stronger);
  }

  const std::size_t n = candidates_.size();
  out.tokens_used = n;
  if (n == 0) {
    out.score = 0.5;
    out.spam_evidence = out.ham_evidence = 0.5;
    out.verdict = Classifier::verdict_for(out.score, opts_.ham_cutoff,
                                          opts_.spam_cutoff);
    out.evidence = {evidence_.data(), evidence_.size()};
    return;
  }

  double sum_log_f = 0.0;
  double sum_log_1mf = 0.0;
  for (const Candidate& candidate : candidates_) {
    TokenIdEvidence& ev = evidence_[candidate.index];
    ev.used = true;
    const TokenMemo& m = memo_[ev.id];  // filled above, same epoch
    sum_log_f += m.log_f;
    sum_log_1mf += m.log_1mf;
  }

  double h;
  double s;
  util::chi2q_even_dof_pair(-2.0 * sum_log_f, -2.0 * sum_log_1mf, n, &h, &s);
  out.spam_evidence = h;
  out.ham_evidence = s;
  out.score = (1.0 + h - s) / 2.0;
  out.verdict = Classifier::verdict_for(out.score, opts_.ham_cutoff,
                                        opts_.spam_cutoff);
  out.evidence = {evidence_.data(), evidence_.size()};
}

ScoreIdResult ScoreEngine::score_ids(const TokenDatabase& db,
                                     const TokenIdList& ids) {
  bind(db);
  BatchScore scored;
  score_into(db, ids, scored);
  ScoreIdResult result;
  result.score = scored.score;
  result.spam_evidence = scored.spam_evidence;
  result.ham_evidence = scored.ham_evidence;
  result.tokens_used = scored.tokens_used;
  result.verdict = scored.verdict;
  result.evidence.assign(scored.evidence.begin(), scored.evidence.end());
  return result;
}

ScoreEngine& ScoreEngine::for_current_thread(const ClassifierOptions& opts) {
  thread_local ScoreEngine engine;
  engine.rebind_options(opts);
  return engine;
}

}  // namespace sbx::spambayes
