#include "spambayes/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "email/mime.h"
#include "util/strings.h"

namespace sbx::spambayes {
namespace {

bool is_word_char(char c) {
  auto uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) != 0 || c == '\'' || c == '-' || c == '$' ||
         c == '!';
}

bool looks_like_url(std::string_view w) {
  return util::istarts_with(w, "http://") || util::istarts_with(w, "https://") ||
         util::istarts_with(w, "www.");
}

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Output adapters. Both receive each token spelling exactly once, in
/// emission order; the buffers they are handed are transient scratch, so
/// they must copy (string sink) or intern (id sink) immediately.
struct StringSink {
  TokenList* out;
  void add(std::string_view token) { out->emplace_back(token); }
};

struct IdSink {
  TokenInterner* interner;
  TokenIdList* out;
  void add(std::string_view token) { out->push_back(interner->intern(token)); }
};

/// One tokenization pass over a message/text, generic over the output sink.
/// All lower-casing and prefixing goes through a reused scratch buffer so
/// the id path performs no per-token allocation. The emitted byte streams
/// are identical for every sink.
template <typename Sink>
class Emitter {
 public:
  Emitter(const TokenizerOptions& opts, Sink sink) : opts_(opts), sink_(sink) {
    scratch_.reserve(64);
  }

  void word(std::string_view word) {
    std::string_view w = strip_punct(word);
    if (w.empty()) return;
    if (w.size() < opts_.min_token_length) return;
    if (w.size() <= opts_.max_token_length) {
      add_lower("", w);
      return;
    }
    // Over-length word: SpamBayes emits a "skip" pseudo-token recording the
    // first character and the length bucketed to 10, then retokenizes the
    // pieces between punctuation so embedded words still count.
    if (opts_.generate_skip_tokens) {
      scratch_ = "skip:";
      scratch_ +=
          static_cast<char>(std::tolower(static_cast<unsigned char>(w[0])));
      scratch_ += ' ';
      scratch_ += std::to_string(w.size() / 10 * 10);
      sink_.add(scratch_);
    }
    std::size_t start = 0;
    for (std::size_t i = 0; i <= w.size(); ++i) {
      bool boundary = i == w.size() ||
                      !(std::isalnum(static_cast<unsigned char>(w[i])) != 0);
      if (boundary) {
        if (i > start) {
          std::string_view piece = w.substr(start, i - start);
          if (piece.size() >= opts_.min_token_length &&
              piece.size() <= opts_.max_token_length &&
              piece.size() < w.size()) {
            add_lower("", piece);
          }
        }
        start = i + 1;
      }
    }
  }

  void url(std::string_view url) {
    // Normalize: strip scheme, then split host/path on separators.
    std::string_view rest = url;
    if (util::istarts_with(rest, "http://")) {
      sink_.add("url:http");
      rest.remove_prefix(7);
    } else if (util::istarts_with(rest, "https://")) {
      sink_.add("url:https");
      rest.remove_prefix(8);
    }
    std::size_t path_start = rest.find('/');
    std::string_view host = path_start == std::string_view::npos
                                ? rest
                                : rest.substr(0, path_start);
    for_each_field(host, '.', [&](std::string_view label) {
      auto piece = strip_punct(label);
      if (!piece.empty()) add_lower("url:", piece);
    });
    if (path_start != std::string_view::npos) {
      std::string_view path = rest.substr(path_start + 1);
      for_each_field(path, '/', [&](std::string_view seg) {
        auto piece = strip_punct(seg);
        if (piece.size() >= opts_.min_token_length &&
            piece.size() <= opts_.max_token_length) {
          add_lower("url:", piece);
        }
      });
    }
  }

  void header_value(std::string_view field, std::string_view value) {
    prefix_.clear();
    if (opts_.prefix_header_tokens) {
      for (char c : field) prefix_.push_back(ascii_lower(c));
      prefix_.push_back(':');
    }
    // Address-ish headers split on whitespace and on @/<>/" characters so
    // the local part and domain labels become separate tokens.
    cleaned_.clear();
    cleaned_.reserve(value.size());
    for (char c : value) {
      cleaned_.push_back((c == '@' || c == '<' || c == '>' || c == '"' ||
                          c == ',' || c == '(' || c == ')')
                             ? ' '
                             : c);
    }
    // Prefixed header tokens keep even short words ("RE:" in a subject is
    // evidence); unprefixed ones share the body token space and follow its
    // minimum length.
    const std::size_t min_len =
        opts_.prefix_header_tokens ? 2 : opts_.min_token_length;
    for_each_whitespace_word(cleaned_, [&](std::string_view word) {
      std::string_view w = strip_punct(word);
      if (w.empty()) return;
      if (w.size() > opts_.max_token_length) {
        // Split long header atoms (e.g. message-ids) on dots.
        for_each_field(w, '.', [&](std::string_view piece) {
          auto p = strip_punct(piece);
          if (p.size() >= min_len && p.size() <= opts_.max_token_length) {
            add_lower(prefix_, p);
          }
        });
        return;
      }
      if (w.size() >= min_len) add_lower(prefix_, w);
    });
  }

  void text(std::string_view text) {
    std::size_t i = 0;
    while (i < text.size()) {
      while (i < text.size() && util::is_space(text[i])) ++i;
      std::size_t start = i;
      while (i < text.size() && !util::is_space(text[i])) ++i;
      if (i == start) continue;
      std::string_view chunk = text.substr(start, i - start);
      if (opts_.tokenize_urls && looks_like_url(chunk)) {
        url(strip_punct(chunk));
      } else {
        word(chunk);
      }
    }
  }

  void message(const email::Message& msg) {
    if (opts_.tokenize_headers) {
      static constexpr std::string_view kFields[] = {"Subject", "From", "To",
                                                     "Reply-To"};
      for (auto field : kFields) {
        for (const auto& value : msg.all_headers(field)) {
          header_value(field, value);
        }
      }
    }
    text(email::extract_text(msg));
  }

 private:
  /// Emits prefix + ascii_lower(body) through the scratch buffer.
  void add_lower(std::string_view prefix, std::string_view body) {
    scratch_.assign(prefix.data(), prefix.size());
    for (char c : body) scratch_.push_back(ascii_lower(c));
    sink_.add(scratch_);
  }

  /// Visits every '.'-/'/'-separated field, keeping empty fields —
  /// identical semantics to util::split, without the allocations.
  template <typename Fn>
  static void for_each_field(std::string_view s, char sep, Fn&& fn) {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == sep) {
        fn(s.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  /// Visits maximal non-whitespace runs (util::split_whitespace semantics).
  template <typename Fn>
  static void for_each_whitespace_word(std::string_view s, Fn&& fn) {
    std::size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && util::is_space(s[i])) ++i;
      std::size_t start = i;
      while (i < s.size() && !util::is_space(s[i])) ++i;
      if (i > start) fn(s.substr(start, i - start));
    }
  }

  const TokenizerOptions& opts_;
  Sink sink_;
  std::string scratch_;
  std::string prefix_;
  std::string cleaned_;
};

}  // namespace

// Strips characters that are not word characters from both ends.
std::string_view strip_punct(std::string_view w) {
  std::size_t b = 0;
  std::size_t e = w.size();
  while (b < e && !is_word_char(w[b])) ++b;
  while (e > b && !is_word_char(w[e - 1])) --e;
  return w.substr(b, e - b);
}

Tokenizer::Tokenizer(TokenizerOptions opts) : opts_(opts) {}

TokenList Tokenizer::tokenize(const email::Message& msg) const {
  TokenList out;
  Emitter<StringSink> emitter(opts_, StringSink{&out});
  emitter.message(msg);
  return out;
}

TokenList Tokenizer::tokenize_text(std::string_view text) const {
  TokenList out;
  Emitter<StringSink> emitter(opts_, StringSink{&out});
  emitter.text(text);
  return out;
}

TokenIdList Tokenizer::tokenize_ids(const email::Message& msg,
                                    TokenInterner& interner) const {
  TokenIdList out;
  Emitter<IdSink> emitter(opts_, IdSink{&interner, &out});
  emitter.message(msg);
  return out;
}

TokenIdList Tokenizer::tokenize_text_ids(std::string_view text,
                                         TokenInterner& interner) const {
  TokenIdList out;
  Emitter<IdSink> emitter(opts_, IdSink{&interner, &out});
  emitter.text(text);
  return out;
}

TokenSet unique_tokens(const TokenList& tokens) {
  TokenSet set = tokens;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

TokenIdSet unique_token_ids(TokenIdList ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TokenIdSet intern_tokens(const TokenSet& tokens, TokenInterner& interner) {
  TokenIdList ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(interner.intern(t));
  // A deduplicated string set maps to distinct ids; only the order changes.
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace sbx::spambayes
