#include "spambayes/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "email/mime.h"
#include "util/strings.h"

namespace sbx::spambayes {
namespace {

bool is_word_char(char c) {
  auto uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) != 0 || c == '\'' || c == '-' || c == '$' ||
         c == '!';
}

// Strips characters that are not word characters from both ends.
std::string_view strip_punct(std::string_view w) {
  std::size_t b = 0;
  std::size_t e = w.size();
  while (b < e && !is_word_char(w[b])) ++b;
  while (e > b && !is_word_char(w[e - 1])) --e;
  return w.substr(b, e - b);
}

bool looks_like_url(std::string_view w) {
  return util::istarts_with(w, "http://") || util::istarts_with(w, "https://") ||
         util::istarts_with(w, "www.");
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions opts) : opts_(opts) {}

void Tokenizer::emit_word(std::string_view word, TokenList& out) const {
  std::string_view w = strip_punct(word);
  if (w.empty()) return;
  if (w.size() < opts_.min_token_length) return;
  if (w.size() <= opts_.max_token_length) {
    out.push_back(util::to_lower(w));
    return;
  }
  // Over-length word: SpamBayes emits a "skip" pseudo-token recording the
  // first character and the length bucketed to 10, then retokenizes the
  // pieces between punctuation so embedded words still count.
  if (opts_.generate_skip_tokens) {
    std::string skip = "skip:";
    skip += static_cast<char>(std::tolower(static_cast<unsigned char>(w[0])));
    skip += ' ';
    skip += std::to_string(w.size() / 10 * 10);
    out.push_back(std::move(skip));
  }
  std::size_t start = 0;
  for (std::size_t i = 0; i <= w.size(); ++i) {
    bool boundary = i == w.size() || !(std::isalnum(static_cast<unsigned char>(
                                           w[i])) != 0);
    if (boundary) {
      if (i > start) {
        std::string_view piece = w.substr(start, i - start);
        if (piece.size() >= opts_.min_token_length &&
            piece.size() <= opts_.max_token_length && piece.size() < w.size()) {
          out.push_back(util::to_lower(piece));
        }
      }
      start = i + 1;
    }
  }
}

void Tokenizer::emit_url(std::string_view url, TokenList& out) const {
  // Normalize: strip scheme, then split host/path on separators.
  std::string_view rest = url;
  if (util::istarts_with(rest, "http://")) {
    out.push_back("url:http");
    rest.remove_prefix(7);
  } else if (util::istarts_with(rest, "https://")) {
    out.push_back("url:https");
    rest.remove_prefix(8);
  }
  std::size_t path_start = rest.find('/');
  std::string_view host =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  for (const auto& label : util::split(std::string(host), '.')) {
    auto piece = strip_punct(label);
    if (!piece.empty()) out.push_back("url:" + util::to_lower(piece));
  }
  if (path_start != std::string_view::npos) {
    std::string_view path = rest.substr(path_start + 1);
    for (const auto& seg : util::split(std::string(path), '/')) {
      auto piece = strip_punct(seg);
      if (piece.size() >= opts_.min_token_length &&
          piece.size() <= opts_.max_token_length) {
        out.push_back("url:" + util::to_lower(piece));
      }
    }
  }
}

void Tokenizer::tokenize_header_value(std::string_view field,
                                      std::string_view value,
                                      TokenList& out) const {
  std::string prefix =
      opts_.prefix_header_tokens ? util::to_lower(field) + ":" : "";
  // Address-ish headers split on whitespace and on @/<>/" characters so the
  // local part and domain labels become separate tokens.
  std::string cleaned;
  cleaned.reserve(value.size());
  for (char c : value) {
    cleaned.push_back((c == '@' || c == '<' || c == '>' || c == '"' ||
                       c == ',' || c == '(' || c == ')')
                          ? ' '
                          : c);
  }
  // Prefixed header tokens keep even short words ("RE:" in a subject is
  // evidence); unprefixed ones share the body token space and follow its
  // minimum length.
  const std::size_t min_len =
      opts_.prefix_header_tokens ? 2 : opts_.min_token_length;
  for (const auto& word : util::split_whitespace(cleaned)) {
    std::string_view w = strip_punct(word);
    if (w.empty()) continue;
    if (w.size() > opts_.max_token_length) {
      // Split long header atoms (e.g. message-ids) on dots.
      for (const auto& piece : util::split(std::string(w), '.')) {
        auto p = strip_punct(piece);
        if (p.size() >= min_len && p.size() <= opts_.max_token_length) {
          out.push_back(prefix + util::to_lower(p));
        }
      }
      continue;
    }
    if (w.size() >= min_len) out.push_back(prefix + util::to_lower(w));
  }
}

TokenList Tokenizer::tokenize(const email::Message& msg) const {
  TokenList out;
  if (opts_.tokenize_headers) {
    static constexpr std::string_view kFields[] = {"Subject", "From", "To",
                                                   "Reply-To"};
    for (auto field : kFields) {
      for (const auto& value : msg.all_headers(field)) {
        tokenize_header_value(field, value, out);
      }
    }
  }
  std::string text = email::extract_text(msg);
  TokenList body = tokenize_text(text);
  out.insert(out.end(), std::make_move_iterator(body.begin()),
             std::make_move_iterator(body.end()));
  return out;
}

TokenList Tokenizer::tokenize_text(std::string_view text) const {
  TokenList out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && util::is_space(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && !util::is_space(text[i])) ++i;
    if (i == start) continue;
    std::string_view word = text.substr(start, i - start);
    if (opts_.tokenize_urls && looks_like_url(word)) {
      emit_url(strip_punct(word), out);
    } else {
      emit_word(word, out);
    }
  }
  return out;
}

TokenSet unique_tokens(const TokenList& tokens) {
  TokenSet set = tokens;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

}  // namespace sbx::spambayes
