// sbx/spambayes/token_db.h
//
// The SpamBayes training state: per-token email-presence counts
// (NS(w), NH(w)) plus the global email counts (NS, NH). Supports exact
// untraining (required by the RONI defense, which measures the marginal
// impact of individual messages) and batched training of identical messages
// (the dictionary attack sends thousands of identical emails; adding them
// with one O(|tokens|) update is mathematically identical because all
// counts are additive).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>

#include "spambayes/tokenizer.h"

namespace sbx::spambayes {

/// Per-token presence counts.
struct TokenCounts {
  std::uint32_t spam = 0;  // NS(w): spam emails containing w
  std::uint32_t ham = 0;   // NH(w): ham emails containing w
};

/// Mutable training database. Copyable (experiments snapshot a clean
/// database, then graft attacks onto copies).
class TokenDatabase {
 public:
  TokenDatabase() = default;

  /// Records `copies` spam emails, each containing exactly the tokens in
  /// `tokens` (a deduplicated set, see unique_tokens()).
  void train_spam(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Records `copies` ham emails with the given token set.
  void train_ham(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Exactly reverses a train_spam call with the same arguments.
  /// Throws InvalidArgument if the counts would go negative (i.e. the
  /// message was never trained).
  void untrain_spam(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Exactly reverses a train_ham call with the same arguments.
  void untrain_ham(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Number of spam / ham training emails (NS, NH).
  std::uint32_t spam_count() const { return nspam_; }
  std::uint32_t ham_count() const { return nham_; }

  /// Counts for one token; zeros if unseen.
  TokenCounts counts(std::string_view token) const;

  /// Number of distinct tokens with nonzero counts.
  std::size_t vocabulary_size() const { return counts_.size(); }

  /// Merges another database into this one (counts add; used to combine
  /// per-shard training).
  void merge(const TokenDatabase& other);

  /// Serializes to a line-oriented text format:
  ///   SBXDB 1
  ///   <nspam> <nham>
  ///   <spam> <ham> <token...>   (one line per token; token may contain
  ///                              spaces and extends to end of line)
  void save(std::ostream& out) const;

  /// Parses the save() format. Throws ParseError on malformed input.
  static TokenDatabase load(std::istream& in);

  /// Convenience file wrappers; throw IoError on filesystem failure.
  void save_file(const std::string& path) const;
  static TokenDatabase load_file(const std::string& path);

  /// Read-only iteration over (token, counts).
  const std::unordered_map<std::string, TokenCounts>& tokens() const {
    return counts_;
  }

 private:
  void add(const TokenSet& tokens, std::uint32_t copies, bool spam);
  void remove(const TokenSet& tokens, std::uint32_t copies, bool spam);

  std::unordered_map<std::string, TokenCounts> counts_;
  std::uint32_t nspam_ = 0;
  std::uint32_t nham_ = 0;
};

}  // namespace sbx::spambayes
