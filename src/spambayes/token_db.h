// sbx/spambayes/token_db.h
//
// The SpamBayes training state: per-token email-presence counts
// (NS(w), NH(w)) plus the global email counts (NS, NH). Supports exact
// untraining (required by the RONI defense, which measures the marginal
// impact of individual messages) and batched training of identical messages
// (the dictionary attack sends thousands of identical emails; adding them
// with one O(|tokens|) update is mathematically identical because all
// counts are additive).
//
// Counts live in a flat std::vector<TokenCounts> indexed by interned
// TokenId (see interner.h): train/untrain/lookup are raw array accesses
// with no string hashing, and snapshotting a database (experiments copy a
// clean filter, then graft attacks onto the copy) is a single memcpy-style
// vector copy instead of a rehash. The string-keyed API and the save()/
// load() wire format are preserved through the process-wide interner.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "spambayes/interner.h"
#include "spambayes/tokenizer.h"

namespace sbx::spambayes {

/// Per-token presence counts.
struct TokenCounts {
  std::uint32_t spam = 0;  // NS(w): spam emails containing w
  std::uint32_t ham = 0;   // NH(w): ham emails containing w

  bool operator==(const TokenCounts&) const = default;
};

/// Mutable training database. Copyable (experiments snapshot a clean
/// database, then graft attacks onto copies).
class TokenDatabase {
 public:
  TokenDatabase() = default;

  /// Records `copies` spam emails, each containing exactly the tokens in
  /// `ids` (a deduplicated id set, see unique_token_ids()). The *_ids
  /// methods are the hot path; the string-set methods intern and forward.
  /// (Distinct names, not overloads: a two-element braced string list would
  /// otherwise ambiguously match vector<uint32_t>'s iterator-pair
  /// constructor.)
  void train_spam_ids(const TokenIdSet& ids, std::uint32_t copies = 1);
  void train_spam(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Records `copies` ham emails with the given token set.
  void train_ham_ids(const TokenIdSet& ids, std::uint32_t copies = 1);
  void train_ham(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Exactly reverses a train_spam call with the same arguments.
  /// Throws InvalidArgument if the counts would go negative (i.e. the
  /// message was never trained).
  void untrain_spam_ids(const TokenIdSet& ids, std::uint32_t copies = 1);
  void untrain_spam(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Exactly reverses a train_ham call with the same arguments.
  void untrain_ham_ids(const TokenIdSet& ids, std::uint32_t copies = 1);
  void untrain_ham(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Number of spam / ham training emails (NS, NH).
  std::uint32_t spam_count() const { return nspam_; }
  std::uint32_t ham_count() const { return nham_; }

  /// Counts for one interned token; zeros if the id was never trained here.
  /// The classifier's per-token inner loop — a bounds check and an indexed
  /// load.
  TokenCounts counts(TokenId id) const {
    return id < counts_.size() ? counts_[id] : TokenCounts{};
  }

  /// Counts for one token spelling; zeros if unseen.
  TokenCounts counts(std::string_view token) const;

  /// Number of distinct tokens with nonzero counts.
  std::size_t vocabulary_size() const { return vocab_; }

  /// Cache-invalidation stamp with a process-wide uniqueness guarantee:
  /// every mutation (train_*/untrain_*, merge, load) assigns a value drawn
  /// from one process-global monotonic counter, so *no two distinct
  /// database states ever share a generation*. Copies keep the stamp (a
  /// copy IS the same state); the first mutation of either side moves the
  /// mutated one to a value never used before. Hence `generation() ==
  /// cached_generation` proves the contents are bit-identical to what was
  /// cached — the invariant ScoreEngine's memoization rests on. No-op
  /// calls (copies == 0) do not bump.
  std::uint64_t generation() const { return generation_; }

  /// Merges another database into this one (counts add; used to combine
  /// per-shard training).
  void merge(const TokenDatabase& other);

  /// Serializes to a line-oriented text format (string-keyed; independent
  /// of interner id assignment — entries are written in spelling order):
  ///   SBXDB 1
  ///   <nspam> <nham>
  ///   <spam> <ham> <token...>   (one line per token; token may contain
  ///                              spaces and extends to end of line)
  void save(std::ostream& out) const;

  /// Parses the save() format. Throws ParseError on malformed input.
  static TokenDatabase load(std::istream& in);

  /// Convenience file wrappers; throw IoError on filesystem failure.
  void save_file(const std::string& path) const;
  static TokenDatabase load_file(const std::string& path);

  /// Snapshot of (token, counts) for every token with nonzero counts,
  /// sorted by spelling. Materialized per call; iterate the flat
  /// id_counts() table for hot loops.
  std::vector<std::pair<std::string, TokenCounts>> tokens() const;

  /// The raw id-indexed table (ids at or past the end are all-zero).
  const std::vector<TokenCounts>& id_counts() const { return counts_; }

 private:
  void add(const TokenIdSet& ids, std::uint32_t copies, bool spam);
  void remove(const TokenIdSet& ids, std::uint32_t copies, bool spam);

  /// Next value of the process-global generation counter (atomic, starts
  /// at 1 so 0 can mean "nothing observed yet" in caches).
  static std::uint64_t next_generation();

  std::vector<TokenCounts> counts_;  // indexed by TokenId
  std::size_t vocab_ = 0;            // entries with nonzero counts
  std::uint32_t nspam_ = 0;
  std::uint32_t nham_ = 0;
  std::uint64_t generation_ = next_generation();
};

}  // namespace sbx::spambayes
