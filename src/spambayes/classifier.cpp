#include "spambayes/classifier.h"

#include <algorithm>
#include <cmath>

#include "spambayes/scoring_math.h"
#include "util/error.h"
#include "util/stats.h"

namespace sbx::spambayes {
namespace {

// Eq. 1-2 lives in scoring_math.h (shared with ScoreEngine so both paths
// perform the identical sequence of floating-point operations).
using detail::score_from_counts;

/// Delta(E) selection and Fisher combination, shared by score() and
/// score_ids(). `Result` provides .evidence (with .score/.used members) and
/// the aggregate fields; `spelling_of(i)` yields the spelling of evidence
/// entry i for the deterministic tie-break. Candidate order — and with it
/// every floating-point summation — is a strict total order on
/// (distance-from-0.5 desc, spelling asc), so the outcome is bit-identical
/// regardless of evidence/input order.
template <typename Result, typename SpellingFn>
void select_and_combine(Result& result, const ClassifierOptions& opts,
                        const SpellingFn& spelling_of) {
  // Select delta(E): up to max_discriminators tokens whose scores are
  // strictly outside [0.5 - strength, 0.5 + strength], ordered by distance
  // from 0.5 (ties broken by token spelling for determinism). Distances are
  // precomputed and only the leading max_discriminators entries are sorted;
  // because (distance desc, spelling asc) is a strict total order,
  // partial_sort yields exactly the prefix a full sort would.
  struct Candidate {
    double distance;
    std::size_t index;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(result.evidence.size());
  for (std::size_t i = 0; i < result.evidence.size(); ++i) {
    const double distance = std::fabs(result.evidence[i].score - 0.5);
    if (distance > opts.minimum_prob_strength) {
      candidates.push_back({distance, i});
    }
  }
  const auto stronger = [&](const Candidate& a, const Candidate& b) {
    if (a.distance != b.distance) return a.distance > b.distance;
    return spelling_of(a.index) < spelling_of(b.index);
  };
  if (candidates.size() > opts.max_discriminators) {
    // nth_element + prefix sort picks exactly the prefix a full sort
    // would (strict total order) at a fraction of partial_sort's
    // heap-maintenance cost on these sizes.
    const auto cut = candidates.begin() +
                     static_cast<std::ptrdiff_t>(opts.max_discriminators);
    std::nth_element(candidates.begin(), cut, candidates.end(), stronger);
    candidates.resize(opts.max_discriminators);
    std::sort(candidates.begin(), candidates.end(), stronger);
  } else {
    std::sort(candidates.begin(), candidates.end(), stronger);
  }

  const std::size_t n = candidates.size();
  result.tokens_used = n;
  if (n == 0) {
    // No evidence: I = 0.5, which the default thresholds call unsure.
    result.score = 0.5;
    result.spam_evidence = result.ham_evidence = 0.5;
    result.verdict =
        Classifier::verdict_for(result.score, opts.ham_cutoff,
                                opts.spam_cutoff);
    return;
  }

  double sum_log_f = 0.0;
  double sum_log_1mf = 0.0;
  for (const Candidate& candidate : candidates) {
    auto& ev = result.evidence[candidate.index];
    ev.used = true;
    // With s > 0 the smoothed score is strictly inside (0,1); clamp anyway
    // so a degenerate configuration (s == 0) cannot produce log(0).
    double f = std::clamp(ev.score, 1e-300, 1.0 - 1e-15);
    sum_log_f += std::log(f);
    sum_log_1mf += std::log1p(-f);
  }

  // Eq. 4 (survival form): H = Q(-2 sum log f; 2n), S = Q(-2 sum log(1-f)).
  // The pair form interleaves the two independent Erlang folds
  // (bit-identical to two single calls, roughly half the wall clock).
  double h;
  double s;
  util::chi2q_even_dof_pair(-2.0 * sum_log_f, -2.0 * sum_log_1mf, n, &h, &s);
  result.spam_evidence = h;
  result.ham_evidence = s;
  result.score = (1.0 + h - s) / 2.0;  // Eq. 3
  result.verdict = Classifier::verdict_for(result.score, opts.ham_cutoff,
                                           opts.spam_cutoff);
}

}  // namespace

std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::ham:
      return "ham";
    case Verdict::unsure:
      return "unsure";
    case Verdict::spam:
      return "spam";
  }
  return "unsure";
}

bool verdict_at_most(Verdict v, Verdict goal) {
  auto rank = [](Verdict x) {
    switch (x) {
      case Verdict::ham:
        return 0;
      case Verdict::unsure:
        return 1;
      case Verdict::spam:
        return 2;
    }
    return 1;
  };
  return rank(v) <= rank(goal);
}

Classifier::Classifier(ClassifierOptions opts) : opts_(opts) {
  if (opts_.ham_cutoff < 0 || opts_.spam_cutoff > 1 ||
      opts_.ham_cutoff > opts_.spam_cutoff) {
    throw InvalidArgument("Classifier: cutoffs must satisfy 0 <= theta0 <= "
                          "theta1 <= 1");
  }
}

double Classifier::token_score(const TokenDatabase& db,
                               std::string_view token) const {
  return score_from_counts(db.counts(token), db.spam_count(), db.ham_count(),
                           opts_);
}

double Classifier::token_score(const TokenDatabase& db, TokenId id) const {
  return score_from_counts(db.counts(id), db.spam_count(), db.ham_count(),
                           opts_);
}

ScoreResult Classifier::score(const TokenDatabase& db,
                              const TokenSet& tokens) const {
  ScoreResult result;
  result.evidence.reserve(tokens.size());
  const double ns = db.spam_count();
  const double nh = db.ham_count();
  for (const auto& t : tokens) {
    result.evidence.push_back(
        {t, score_from_counts(db.counts(t), ns, nh, opts_), false});
  }
  select_and_combine(result, opts_, [&](std::size_t i) {
    return std::string_view(result.evidence[i].token);
  });
  return result;
}

ScoreIdResult Classifier::score_ids(const TokenDatabase& db,
                                    const TokenIdList& ids) const {
  ScoreIdResult result;
  result.evidence.reserve(ids.size());
  const double ns = db.spam_count();
  const double nh = db.ham_count();
  for (TokenId id : ids) {
    result.evidence.push_back(
        {id, score_from_counts(db.counts(id), ns, nh, opts_), false});
  }
  const TokenInterner& interner = global_interner();
  select_and_combine(result, opts_, [&](std::size_t i) {
    return interner.spelling(result.evidence[i].id);
  });
  return result;
}

ScoreIdResult Classifier::score_ids(const TokenDatabase& base,
                                    const TokenDatabase& overlay,
                                    const TokenIdList& ids) const {
  ScoreIdResult result;
  result.evidence.reserve(ids.size());
  // uint32 sums, then the same uint32 -> double conversion score_ids()
  // performs: bit-identical inputs to score_from_counts versus a database
  // trained on base's and overlay's message sets together.
  const double ns =
      static_cast<double>(base.spam_count() + overlay.spam_count());
  const double nh = static_cast<double>(base.ham_count() + overlay.ham_count());
  for (TokenId id : ids) {
    const TokenCounts b = base.counts(id);
    const TokenCounts o = overlay.counts(id);
    const TokenCounts merged{b.spam + o.spam, b.ham + o.ham};
    result.evidence.push_back(
        {id, score_from_counts(merged, ns, nh, opts_), false});
  }
  const TokenInterner& interner = global_interner();
  select_and_combine(result, opts_, [&](std::size_t i) {
    return interner.spelling(result.evidence[i].id);
  });
  return result;
}

Verdict Classifier::verdict_for(double score) const {
  return verdict_for(score, opts_.ham_cutoff, opts_.spam_cutoff);
}

Verdict Classifier::verdict_for(double score, double ham_cutoff,
                                double spam_cutoff) {
  if (score <= ham_cutoff) return Verdict::ham;
  if (score <= spam_cutoff) return Verdict::unsure;
  return Verdict::spam;
}

}  // namespace sbx::spambayes
