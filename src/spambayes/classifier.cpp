#include "spambayes/classifier.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace sbx::spambayes {

std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::ham:
      return "ham";
    case Verdict::unsure:
      return "unsure";
    case Verdict::spam:
      return "spam";
  }
  return "unsure";
}

Classifier::Classifier(ClassifierOptions opts) : opts_(opts) {
  if (opts_.ham_cutoff < 0 || opts_.spam_cutoff > 1 ||
      opts_.ham_cutoff > opts_.spam_cutoff) {
    throw InvalidArgument("Classifier: cutoffs must satisfy 0 <= theta0 <= "
                          "theta1 <= 1");
  }
}

double Classifier::token_score(const TokenDatabase& db,
                               std::string_view token) const {
  const TokenCounts c = db.counts(token);
  const double ns = db.spam_count();
  const double nh = db.ham_count();
  // Eq. 1. Expressed through per-class presence ratios, which is exactly
  // NH*NS(w) / (NH*NS(w) + NS*NH(w)) when both class counts are nonzero and
  // degrades gracefully when one class is empty.
  const double spam_ratio = ns > 0 ? c.spam / ns : 0.0;
  const double ham_ratio = nh > 0 ? c.ham / nh : 0.0;
  double ps = 0.5;
  if (spam_ratio + ham_ratio > 0) {
    ps = spam_ratio / (spam_ratio + ham_ratio);
  }
  // Eq. 2: shrink toward the prior x with strength s.
  const double n_w = static_cast<double>(c.spam) + static_cast<double>(c.ham);
  const double s = opts_.unknown_word_strength;
  const double x = opts_.unknown_word_prob;
  return (s * x + n_w * ps) / (s + n_w);
}

ScoreResult Classifier::score(const TokenDatabase& db,
                              const TokenSet& tokens) const {
  ScoreResult result;
  result.evidence.reserve(tokens.size());
  for (const auto& t : tokens) {
    result.evidence.push_back({t, token_score(db, t), false});
  }

  // Select delta(E): up to max_discriminators tokens whose scores are
  // strictly outside [0.5 - strength, 0.5 + strength], ordered by distance
  // from 0.5 (ties broken by token text for determinism).
  std::vector<std::size_t> candidates;
  candidates.reserve(result.evidence.size());
  for (std::size_t i = 0; i < result.evidence.size(); ++i) {
    if (std::fabs(result.evidence[i].score - 0.5) >
        opts_.minimum_prob_strength) {
      candidates.push_back(i);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              double da = std::fabs(result.evidence[a].score - 0.5);
              double db_ = std::fabs(result.evidence[b].score - 0.5);
              if (da != db_) return da > db_;
              return result.evidence[a].token < result.evidence[b].token;
            });
  if (candidates.size() > opts_.max_discriminators) {
    candidates.resize(opts_.max_discriminators);
  }

  const std::size_t n = candidates.size();
  result.tokens_used = n;
  if (n == 0) {
    // No evidence: I = 0.5, which the default thresholds call unsure.
    result.score = 0.5;
    result.spam_evidence = result.ham_evidence = 0.5;
    result.verdict = verdict_for(result.score);
    return result;
  }

  double sum_log_f = 0.0;
  double sum_log_1mf = 0.0;
  for (std::size_t idx : candidates) {
    TokenEvidence& ev = result.evidence[idx];
    ev.used = true;
    // With s > 0 the smoothed score is strictly inside (0,1); clamp anyway
    // so a degenerate configuration (s == 0) cannot produce log(0).
    double f = std::clamp(ev.score, 1e-300, 1.0 - 1e-15);
    sum_log_f += std::log(f);
    sum_log_1mf += std::log1p(-f);
  }

  // Eq. 4 (survival form): H = Q(-2 sum log f; 2n), S = Q(-2 sum log(1-f)).
  const double h = util::chi2q_even_dof(-2.0 * sum_log_f, n);
  const double s = util::chi2q_even_dof(-2.0 * sum_log_1mf, n);
  result.spam_evidence = h;
  result.ham_evidence = s;
  result.score = (1.0 + h - s) / 2.0;  // Eq. 3
  result.verdict = verdict_for(result.score);
  return result;
}

Verdict Classifier::verdict_for(double score) const {
  return verdict_for(score, opts_.ham_cutoff, opts_.spam_cutoff);
}

Verdict Classifier::verdict_for(double score, double ham_cutoff,
                                double spam_cutoff) {
  if (score <= ham_cutoff) return Verdict::ham;
  if (score <= spam_cutoff) return Verdict::unsure;
  return Verdict::spam;
}

}  // namespace sbx::spambayes
