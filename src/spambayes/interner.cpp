#include "spambayes/interner.h"

#include <cstring>
#include <functional>

#include "util/error.h"

namespace sbx::spambayes {

TokenInterner::Table::Table(std::size_t capacity_in)
    : capacity(capacity_in),
      mask(capacity_in - 1),
      slots(new std::atomic<std::uint32_t>[capacity_in]) {
  for (std::size_t i = 0; i < capacity; ++i) {
    slots[i].store(0, std::memory_order_relaxed);
  }
}

TokenInterner::TokenInterner() {
  tables_.push_back(std::make_unique<Table>(kInitialTableCapacity));
  table_.store(tables_.back().get(), std::memory_order_release);
}

TokenInterner::~TokenInterner() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

std::optional<TokenId> TokenInterner::probe(const Table& table,
                                            std::size_t hash,
                                            std::string_view token) const {
  for (std::size_t i = hash & table.mask;; i = (i + 1) & table.mask) {
    const std::uint32_t value = table.slots[i].load(std::memory_order_acquire);
    if (value == 0) return std::nullopt;
    const TokenId id = value - 1;
    if (spelling_unchecked(id) == token) return id;
  }
}

void TokenInterner::place(Table& table, std::size_t hash, TokenId id) {
  for (std::size_t i = hash & table.mask;; i = (i + 1) & table.mask) {
    if (table.slots[i].load(std::memory_order_relaxed) == 0) {
      table.slots[i].store(id + 1, std::memory_order_release);
      return;
    }
  }
}

std::string_view TokenInterner::store(std::string_view token) {
  if (token.size() > arena_block_size_ - arena_block_used_ ||
      arena_.empty()) {
    // Oversized tokens get a dedicated block so normal blocks stay densely
    // packed.
    const std::size_t block =
        token.size() > kArenaBlockBytes / 4 ? token.size() : kArenaBlockBytes;
    arena_.push_back(std::make_unique<char[]>(block));
    arena_block_size_ = block;
    arena_block_used_ = 0;
    arena_total_ += block;
  }
  char* dst = arena_.back().get() + arena_block_used_;
  std::memcpy(dst, token.data(), token.size());
  arena_block_used_ += token.size();
  return {dst, token.size()};
}

TokenId TokenInterner::intern(std::string_view token) {
  const std::size_t hash = std::hash<std::string_view>{}(token);
  // Warm path: completely lock-free.
  if (const auto id = probe(*table_.load(std::memory_order_acquire), hash,
                            token)) {
    return *id;
  }

  const util::MutexLock lock(write_mutex_);
  Table* table = table_.load(std::memory_order_relaxed);
  if (const auto id = probe(*table, hash, token)) {
    return *id;  // raced with another inserter
  }

  const std::uint32_t id = size_.load(std::memory_order_relaxed);
  if (id >= kMaxChunks * kChunkSize) {
    throw InvalidArgument("TokenInterner: id space exhausted");
  }
  const std::string_view stored = store(token);
  auto& chunk_slot = chunks_[id >> kChunkBits];
  Chunk* chunk = chunk_slot.load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunk_slot.store(chunk, std::memory_order_release);
  }
  chunk->entries[id & (kChunkSize - 1)] = stored;
  // Publish the spelling before any table slot can hand the id out.
  size_.store(id + 1, std::memory_order_release);

  // Grow at 50% load: rebuild into a double-size table and swap. The old
  // table is retired, not freed — a reader still probing it sees a correct
  // (if slightly stale) view and falls through to the mutex on a miss.
  if ((static_cast<std::size_t>(id) + 1) * 2 >= table->capacity) {
    auto grown = std::make_unique<Table>(table->capacity * 2);
    for (TokenId existing = 0; existing < id; ++existing) {
      place(*grown, std::hash<std::string_view>{}(spelling_unchecked(existing)),
            existing);
    }
    table = grown.get();
    tables_.push_back(std::move(grown));
    table_.store(table, std::memory_order_release);
  }
  place(*table, hash, id);
  return id;
}

std::optional<TokenId> TokenInterner::find(std::string_view token) const {
  const std::size_t hash = std::hash<std::string_view>{}(token);
  if (const auto id = probe(*table_.load(std::memory_order_acquire), hash,
                            token)) {
    return id;
  }
  // A lock-free miss may race an in-flight insert; confirm under the writer
  // mutex against the newest table before reporting absence.
  const util::MutexLock lock(write_mutex_);
  return probe(*table_.load(std::memory_order_relaxed), hash, token);
}

std::string_view TokenInterner::spelling(TokenId id) const {
  if (id >= size_.load(std::memory_order_acquire)) {
    throw InvalidArgument("TokenInterner::spelling: unknown id");
  }
  return spelling_unchecked(id);
}

std::size_t TokenInterner::arena_bytes() const {
  const util::MutexLock lock(write_mutex_);
  return arena_total_;
}

TokenInterner& global_interner() {
  static TokenInterner interner;
  return interner;
}

}  // namespace sbx::spambayes
