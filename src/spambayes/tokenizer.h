// sbx/spambayes/tokenizer.h
//
// SpamBayes-style tokenization. The paper (footnote 1) notes tokenization is
// the main difference between SpamBayes, BogoFilter and SpamAssassin's
// learner; we reimplement the SpamBayes flavour:
//
//  * The MIME-decoded body is split on whitespace; each chunk is stripped of
//    surrounding punctuation and lower-cased.
//  * Words of length [min, max] become tokens verbatim.
//  * Longer words become "skip:<c> <n>" pseudo-tokens (first character plus
//    length bucketed to 10) and are additionally split on punctuation so
//    embedded words still contribute.
//  * http/https URLs yield "url:<component>" pseudo-tokens for the scheme,
//    host labels and path segments.
//  * Subject/From/To/Reply-To header values are tokenized with a
//    "<field>:" prefix so header evidence is distinct from body evidence
//    (this is why the focused attack clones real spam headers: they carry
//    spammy header tokens).
//
// Tokens are returned with duplicates; the classifier counts *presence*, so
// TokenDatabase consumes the deduplicated set (unique_tokens()).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "email/message.h"
#include "spambayes/options.h"

namespace sbx::spambayes {

/// A list of tokens in occurrence order (may contain duplicates).
using TokenList = std::vector<std::string>;

/// A deduplicated, sorted token set (what training/classification uses).
using TokenSet = std::vector<std::string>;

/// Stateless tokenizer; cheap to copy.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions opts = {});

  /// Tokenizes a full message (headers per options + MIME-decoded body).
  TokenList tokenize(const email::Message& msg) const;

  /// Tokenizes a plain text blob (no header handling).
  TokenList tokenize_text(std::string_view text) const;

  const TokenizerOptions& options() const { return opts_; }

 private:
  void emit_word(std::string_view word, TokenList& out) const;
  void emit_url(std::string_view url, TokenList& out) const;
  void tokenize_header_value(std::string_view field, std::string_view value,
                             TokenList& out) const;

  TokenizerOptions opts_;
};

/// Deduplicates a token list into a sorted set. Classification and training
/// operate on token presence (Eq. 1 counts emails containing w, not
/// occurrences), so this is the canonical form.
TokenSet unique_tokens(const TokenList& tokens);

}  // namespace sbx::spambayes
