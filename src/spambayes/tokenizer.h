// sbx/spambayes/tokenizer.h
//
// SpamBayes-style tokenization. The paper (footnote 1) notes tokenization is
// the main difference between SpamBayes, BogoFilter and SpamAssassin's
// learner; we reimplement the SpamBayes flavour:
//
//  * The MIME-decoded body is split on whitespace; each chunk is stripped of
//    surrounding punctuation and lower-cased.
//  * Words of length [min, max] become tokens verbatim.
//  * Longer words become "skip:<c> <n>" pseudo-tokens (first character plus
//    length bucketed to 10) and are additionally split on punctuation so
//    embedded words still contribute.
//  * http/https URLs yield "url:<component>" pseudo-tokens for the scheme,
//    host labels and path segments.
//  * Subject/From/To/Reply-To header values are tokenized with a
//    "<field>:" prefix so header evidence is distinct from body evidence
//    (this is why the focused attack clones real spam headers: they carry
//    spammy header tokens).
//
// Tokens are returned with duplicates; the classifier counts *presence*, so
// TokenDatabase consumes the deduplicated set (unique_tokens()).
//
// Two output forms share one emission pass: the legacy string form
// (TokenList, one std::string per token) and the interned form (TokenIdList,
// each token interned into a TokenInterner with zero per-token allocation
// once the vocabulary is warm). The streams are byte-identical:
// spelling(tokenize_ids(m)[i]) == tokenize(m)[i] for all i.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "email/message.h"
#include "spambayes/interner.h"
#include "spambayes/options.h"

namespace sbx::spambayes {

/// A list of tokens in occurrence order (may contain duplicates).
using TokenList = std::vector<std::string>;

/// A deduplicated, sorted token set (what training/classification uses).
using TokenSet = std::vector<std::string>;

/// Stateless tokenizer; cheap to copy.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions opts = {});

  /// Tokenizes a full message (headers per options + MIME-decoded body).
  TokenList tokenize(const email::Message& msg) const;

  /// Tokenizes a plain text blob (no header handling).
  TokenList tokenize_text(std::string_view text) const;

  /// Interned counterparts: the same token stream, emitted as ids. The hot
  /// path for training/classification — no per-token string allocation.
  TokenIdList tokenize_ids(const email::Message& msg,
                           TokenInterner& interner = global_interner()) const;
  TokenIdList tokenize_text_ids(
      std::string_view text,
      TokenInterner& interner = global_interner()) const;

  const TokenizerOptions& options() const { return opts_; }

 private:
  TokenizerOptions opts_;
};

/// Deduplicates a token list into a sorted set. Classification and training
/// operate on token presence (Eq. 1 counts emails containing w, not
/// occurrences), so this is the canonical form.
TokenSet unique_tokens(const TokenList& tokens);

/// Deduplicates an id list into an ascending TokenIdSet (same presence
/// semantics; dedup by id equals dedup by spelling since interning is
/// injective).
TokenIdSet unique_token_ids(TokenIdList ids);

/// Interns an already-deduplicated string set into an id set.
TokenIdSet intern_tokens(const TokenSet& tokens,
                         TokenInterner& interner = global_interner());

/// Strips non-word characters (anything outside the tokenizer's word-char
/// set: alnum, ', -, $, !) from both ends of `word` — the normalization
/// every body word gets before it becomes a token. Exposed so attacks that
/// rank raw text chunks by per-token score can look up the same spelling
/// the filter trained on.
std::string_view strip_punct(std::string_view word);

}  // namespace sbx::spambayes
