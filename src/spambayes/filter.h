// sbx/spambayes/filter.h
//
// End-to-end SpamBayes filter: tokenizer + training database + classifier.
// This is the library's primary user-facing class and the system the
// paper's attacks poison.
//
// Typical use:
//   Filter filter;
//   filter.train_ham(msg1);
//   filter.train_spam(msg2);
//   auto result = filter.classify(incoming);
//   if (result.verdict == Verdict::spam) { ... }
//
// Hot paths: the *_ids methods operate on interned TokenIdSet message
// representations (see interner.h) — tokenize a message once with
// message_token_ids(), then train/untrain/classify with pure id arrays.
// The string-set methods are thin wrappers kept for API compatibility.
#pragma once

#include <cstdint>

#include "email/message.h"
#include "spambayes/classifier.h"
#include "spambayes/interner.h"
#include "spambayes/options.h"
#include "spambayes/score_engine.h"
#include "spambayes/token_db.h"
#include "spambayes/tokenizer.h"

namespace sbx::spambayes {

/// Trained spam filter. Copyable: experiments snapshot a clean filter and
/// graft attack training onto the copy (with the flat TokenDatabase this is
/// a plain vector copy).
class Filter {
 public:
  explicit Filter(FilterOptions opts = {});

  /// Tokenizes and trains one message as ham/spam.
  void train_ham(const email::Message& msg);
  void train_spam(const email::Message& msg);

  /// Trains `copies` identical spam messages in one O(|tokens|) update.
  /// Counts are additive, so this is exactly equivalent to calling
  /// train_spam(msg) `copies` times (the dictionary attack relies on this
  /// for tractability at paper scale).
  void train_spam_copies(const email::Message& msg, std::uint32_t copies);

  /// Exactly reverses a previous training call (RONI needs this).
  void untrain_ham(const email::Message& msg);
  void untrain_spam(const email::Message& msg);

  /// Pre-tokenized string-set variants (compatibility wrappers; they intern
  /// and forward to the id path).
  void train_ham_tokens(const TokenSet& tokens, std::uint32_t copies = 1);
  void train_spam_tokens(const TokenSet& tokens, std::uint32_t copies = 1);
  void untrain_ham_tokens(const TokenSet& tokens, std::uint32_t copies = 1);
  void untrain_spam_tokens(const TokenSet& tokens, std::uint32_t copies = 1);

  /// Pre-interned variants — the hot paths in the experiment harness, which
  /// tokenizes each corpus message once and reuses the id sets.
  void train_ham_ids(const TokenIdSet& ids, std::uint32_t copies = 1);
  void train_spam_ids(const TokenIdSet& ids, std::uint32_t copies = 1);
  void untrain_ham_ids(const TokenIdSet& ids, std::uint32_t copies = 1);
  void untrain_spam_ids(const TokenIdSet& ids, std::uint32_t copies = 1);

  /// Scores and labels a message.
  ScoreResult classify(const email::Message& msg) const;

  /// Scores a pre-tokenized message.
  ScoreResult classify_tokens(const TokenSet& tokens) const;

  /// Scores a pre-interned message — bit-identical score/verdict to the
  /// string path, with no per-token hashing. Routed through the calling
  /// thread's ScoreEngine (see score_engine.h): per-token probabilities
  /// and Fisher log-terms are memoized per database generation, so
  /// repeated classification against an unchanged database skips the
  /// libm transcendentals entirely. Safe to call on a shared const Filter
  /// from any number of threads (one engine per thread).
  ScoreIdResult classify_ids(const TokenIdSet& ids) const;

  /// Zero-allocation batch classify: scores ids_of(i) for i in
  /// [0, count) against this filter's database and calls
  /// sink(i, const BatchScore&) for each. Evidence/candidate buffers are
  /// reused across the whole batch and the per-message BatchScore.evidence
  /// view is only valid inside the sink call. Bit-identical to calling
  /// classify_ids per message. The database must not be mutated from the
  /// sink (the engine throws on a mid-batch generation change).
  template <typename GetIds, typename Sink>
  void classify_batch(std::size_t count, GetIds&& ids_of, Sink&& sink) const {
    ScoreEngine::for_current_thread(opts_.classifier)
        .score_batch(db_, count, std::forward<GetIds>(ids_of),
                     std::forward<Sink>(sink));
  }

  /// Tokenize-and-deduplicate helper matching what train/classify do.
  TokenSet message_tokens(const email::Message& msg) const;

  /// Interned counterpart of message_tokens() (one tokenizer pass, no
  /// per-token strings).
  TokenIdSet message_token_ids(const email::Message& msg) const;

  const TokenDatabase& database() const { return db_; }
  TokenDatabase& mutable_database() { return db_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const Classifier& classifier() const { return classifier_; }
  const FilterOptions& options() const { return opts_; }

  /// Replaces the classification cutoffs (dynamic-threshold defense).
  void set_cutoffs(double ham_cutoff, double spam_cutoff);

 private:
  FilterOptions opts_;
  Tokenizer tokenizer_;
  Classifier classifier_;
  TokenDatabase db_;
};

}  // namespace sbx::spambayes
