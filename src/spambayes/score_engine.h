// sbx/spambayes/score_engine.h
//
// Generation-cached batch scoring engine. Classifier::score_ids recomputes
// Eq. 1-2 and the per-discriminator log(f)/log1p(-f) pair for every token
// of every message, yet the underlying TokenDatabase only changes at
// discrete training events — across an experiment's classify loops the
// same libm transcendentals are evaluated thousands of times on identical
// inputs. ScoreEngine memoizes them once per (token, database generation):
// a flat vector indexed by TokenId holds each token's smoothed probability
// f, its precomputed log(f) and log1p(-f), its distance from 0.5 and a
// passes-minimum_prob_strength flag. The memoized values are the *same*
// libm calls Classifier would make, evaluated once instead of once per
// occurrence per message, and the Fisher combination consumes them in the
// exact candidate order Classifier uses — so every score, evidence entry
// and verdict is bit-identical to Classifier::score_ids by construction
// (tests/spambayes/score_engine_test.cpp holds this to EXPECT_EQ on
// doubles).
//
// Invalidation contract: TokenDatabase::generation() values are process-
// globally unique per mutation, so `generation() == cached` proves the
// cached per-token values are still exact; any train/untrain/merge/load
// moves the database to a never-before-seen generation and the engine
// lazily refills on the next score call. Stale reuse after a mutation is
// therefore impossible by construction, and score_batch() additionally
// *throws* if the database is mutated mid-batch (one batch = one
// snapshot).
//
// Thread ownership: a ScoreEngine is mutable scratch — one engine per
// thread, never shared. for_current_thread() hands out a thread_local
// engine (rebinding it to the requested options), which is what lets a
// *const* Filter be classified from many threads at once: each thread
// memoizes into its own engine and all of them produce identical bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spambayes/classifier.h"
#include "spambayes/interner.h"
#include "spambayes/options.h"
#include "spambayes/token_db.h"

namespace sbx::spambayes {

/// One scored message as seen by a batch sink: the aggregate fields of
/// ScoreIdResult plus an evidence view. `evidence` aliases the engine's
/// reused scratch buffer — valid only for the duration of the sink call
/// (copy it if you need it afterwards). This is what makes the batch path
/// allocation-free per message.
struct BatchScore {
  double score = 0.5;
  double spam_evidence = 0.0;
  double ham_evidence = 0.0;
  std::size_t tokens_used = 0;
  Verdict verdict = Verdict::unsure;
  std::span<const TokenIdEvidence> evidence;  // in input-id order
};

/// Memoizing scorer. Bit-identical to Classifier::score_ids for any
/// database/options; owns per-token memo + per-message scratch buffers.
class ScoreEngine {
 public:
  explicit ScoreEngine(ClassifierOptions opts = {});

  /// Scores one deduplicated id set; drop-in for Classifier::score_ids
  /// (same result type, same bits, same evidence order).
  ScoreIdResult score_ids(const TokenDatabase& db, const TokenIdList& ids);

  /// Zero-allocation batch path: scores ids_of(i) for i in [0, count) and
  /// calls sink(i, const BatchScore&) for each. ids_of must return a
  /// reference to a TokenIdList (deduplicated ids, any order). The
  /// database is one snapshot for the whole batch: mutating it from the
  /// sink throws sbx::InvalidArgument on the next message (generation
  /// mismatch).
  template <typename GetIds, typename Sink>
  void score_batch(const TokenDatabase& db, std::size_t count,
                   GetIds&& ids_of, Sink&& sink) {
    bind(db);
    const std::uint64_t bound = generation_;
    BatchScore out;
    for (std::size_t i = 0; i < count; ++i) {
      check_generation(db, bound);
      score_into(db, ids_of(i), out);
      sink(i, static_cast<const BatchScore&>(out));
    }
  }

  /// Convenience overload over a contiguous array of id lists.
  template <typename Sink>
  void score_ids_batch(const TokenDatabase& db,
                       std::span<const TokenIdList> messages, Sink&& sink) {
    score_batch(
        db, messages.size(),
        [&](std::size_t i) -> const TokenIdList& { return messages[i]; },
        std::forward<Sink>(sink));
  }

  /// Swaps the classifier options. Invalidates the memo only when a
  /// memo-relevant parameter (s, x, minimum_prob_strength) actually
  /// changed; cutoffs and max_discriminators apply at combine time and
  /// cost nothing to swap.
  void rebind_options(const ClassifierOptions& opts);

  const ClassifierOptions& options() const { return opts_; }

  /// Generation of the last database this engine scored against (0 =
  /// none yet). Exposed for tests of the invalidation contract.
  std::uint64_t cached_generation() const { return generation_; }

  /// The calling thread's engine, rebound to `opts`. Filter::classify_ids
  /// and Filter::classify_batch route through this, which keeps a shared
  /// const Filter safely classifiable from any number of threads.
  static ScoreEngine& for_current_thread(const ClassifierOptions& opts);

 private:
  /// Memoized per-token values, exact for the bound (generation, options)
  /// pair iff epoch == engine epoch. log_f/log_1mf are only meaningful
  /// when strong (weak tokens are never selected into delta(E));
  /// spell_prefix is the spelling's first 8 bytes as a big-endian integer,
  /// so the tie-break comparator resolves almost every spelling
  /// comparison with one integer compare (equal prefixes fall back to the
  /// full string, preserving the exact (distance desc, spelling asc)
  /// total order the Classifier uses).
  struct TokenMemo {
    double f = 0.5;
    double log_f = 0.0;
    double log_1mf = 0.0;
    double distance = 0.0;
    std::uint64_t spell_prefix = 0;
    std::uint64_t epoch = 0;  // 0 never matches (engine epochs start at 1)
    bool strong = false;
  };

  /// Sort key packing (distance desc, spelling-prefix asc) into one
  /// 128-bit integer: the high lane is the bitwise complement of the
  /// distance's IEEE-754 bits (distance >= 0, so raw bits order doubles
  /// numerically and the complement flips the direction), the low lane
  /// the big-endian 8-byte spelling prefix. Ascending key order is then
  /// exactly the Classifier's (distance desc, spelling asc) total order,
  /// except for prefix collisions, which the comparator resolves with a
  /// full spelling comparison.
  // GCC/Clang extension; __extension__ silences -Wpedantic (the build has
  // no 128-bit-free fallback need on the supported toolchains).
  __extension__ typedef unsigned __int128 SortKey;

  struct Candidate {
    SortKey key;
    std::uint32_t index;  // into evidence_
  };

  /// Re-syncs to db's generation, invalidating the memo when it moved.
  void bind(const TokenDatabase& db);

  /// Throws when db no longer matches the generation a batch bound.
  void check_generation(const TokenDatabase& db, std::uint64_t bound) const;

  /// The memo entry for `id`, filled on first use this epoch.
  const TokenMemo& memo_for(const TokenDatabase& db, TokenId id);

  /// Scores one message into `out` using the memo + scratch buffers.
  void score_into(const TokenDatabase& db, const TokenIdList& ids,
                  BatchScore& out);

  ClassifierOptions opts_;
  std::vector<TokenMemo> memo_;  // indexed by TokenId
  std::uint64_t epoch_ = 1;      // bumped on every invalidation
  std::uint64_t generation_ = 0;  // db generation the memo is exact for
  double ns_ = 0.0;               // db.spam_count() as double, cached
  double nh_ = 0.0;
  // Per-message scratch, reused across the whole batch:
  std::vector<TokenIdEvidence> evidence_;
  std::vector<Candidate> candidates_;
};

}  // namespace sbx::spambayes
