#include "core/informed_attack.h"

#include <algorithm>

#include "util/error.h"

namespace sbx::core {

DictionaryAttack make_informed_attack(
    std::vector<corpus::TrecLikeGenerator::WordProbability> distribution,
    std::size_t budget) {
  if (budget == 0 || budget > distribution.size()) {
    throw InvalidArgument("make_informed_attack: budget out of range");
  }
  std::sort(distribution.begin(), distribution.end(),
            [](const auto& a, const auto& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.word < b.word;
            });
  std::vector<std::string> words;
  words.reserve(budget);
  for (std::size_t i = 0; i < budget; ++i) {
    words.push_back(std::move(distribution[i].word));
  }
  return DictionaryAttack("informed-" + std::to_string(budget),
                          std::move(words));
}

}  // namespace sbx::core
