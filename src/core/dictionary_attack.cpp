#include "core/dictionary_attack.h"

#include "email/builder.h"
#include "util/error.h"

namespace sbx::core {

DictionaryAttack::DictionaryAttack(std::string name,
                                   std::vector<std::string> dictionary)
    : name_(std::move(name)), dictionary_size_(dictionary.size()) {
  if (dictionary.empty()) {
    throw InvalidArgument("DictionaryAttack: empty dictionary");
  }
  // Empty header block per the contamination assumption: attackers control
  // bodies, not headers (§2.2); §4.1 implements this as an empty header.
  message_ = email::MessageBuilder().body_from_words(dictionary).build();
}

DictionaryAttack DictionaryAttack::aspell(const corpus::Lexicons& lexicons) {
  return DictionaryAttack("aspell", lexicons.aspell());
}

DictionaryAttack DictionaryAttack::usenet(const corpus::Lexicons& lexicons,
                                          std::size_t top_n) {
  const auto& ranked = lexicons.usenet();
  if (top_n == 0 || top_n > ranked.size()) {
    throw InvalidArgument("DictionaryAttack::usenet: top_n out of range");
  }
  std::vector<std::string> words(ranked.begin(),
                                 ranked.begin() +
                                     static_cast<std::ptrdiff_t>(top_n));
  return DictionaryAttack("usenet-" + std::to_string(top_n),
                          std::move(words));
}

DictionaryAttack DictionaryAttack::aspell_truncated(
    const corpus::Lexicons& lexicons, std::size_t top_n) {
  const auto& words = lexicons.aspell();
  if (top_n == 0 || top_n > words.size()) {
    throw InvalidArgument(
        "DictionaryAttack::aspell_truncated: top_n out of range");
  }
  std::vector<std::string> prefix(words.begin(),
                                  words.begin() +
                                      static_cast<std::ptrdiff_t>(top_n));
  return DictionaryAttack("aspell-" + std::to_string(top_n),
                          std::move(prefix));
}

DictionaryAttack DictionaryAttack::optimal(
    const corpus::TrecLikeGenerator& generator) {
  return DictionaryAttack("optimal", generator.full_vocabulary());
}

}  // namespace sbx::core
