#include "core/attack_math.h"

#include <cmath>

#include "util/error.h"

namespace sbx::core {

std::size_t attack_message_count(std::size_t clean_messages,
                                 double attack_fraction) {
  if (attack_fraction < 0.0 || attack_fraction >= 1.0) {
    throw InvalidArgument("attack_message_count: fraction must be in [0,1)");
  }
  double a = static_cast<double>(clean_messages) * attack_fraction /
             (1.0 - attack_fraction);
  return static_cast<std::size_t>(std::llround(a));
}

double score_under_attack(const spambayes::Classifier& classifier,
                          const spambayes::TokenDatabase& db,
                          const spambayes::TokenSet& message_tokens,
                          const spambayes::TokenSet& attack_tokens,
                          std::uint32_t copies) {
  return score_under_attack(classifier, db,
                            spambayes::intern_tokens(message_tokens),
                            spambayes::intern_tokens(attack_tokens), copies);
}

double score_under_attack(const spambayes::Classifier& classifier,
                          const spambayes::TokenDatabase& db,
                          const spambayes::TokenIdSet& message_ids,
                          const spambayes::TokenIdSet& attack_ids,
                          std::uint32_t copies) {
  spambayes::TokenDatabase copy = db;
  if (copies > 0 && !attack_ids.empty()) {
    copy.train_spam_ids(attack_ids, copies);
  }
  return classifier.score_ids(copy, message_ids).score;
}

}  // namespace sbx::core
