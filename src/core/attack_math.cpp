#include "core/attack_math.h"

#include <cmath>

#include "util/error.h"

namespace sbx::core {

std::size_t attack_message_count(std::size_t clean_messages,
                                 double attack_fraction) {
  if (attack_fraction < 0.0 || attack_fraction >= 1.0) {
    throw InvalidArgument("attack_message_count: fraction must be in [0,1)");
  }
  double a = static_cast<double>(clean_messages) * attack_fraction /
             (1.0 - attack_fraction);
  return static_cast<std::size_t>(std::llround(a));
}

double score_under_attack(const spambayes::Classifier& classifier,
                          const spambayes::TokenDatabase& db,
                          const spambayes::TokenSet& message_tokens,
                          const spambayes::TokenSet& attack_tokens,
                          std::uint32_t copies) {
  spambayes::TokenDatabase copy = db;
  if (copies > 0 && !attack_tokens.empty()) {
    copy.train_spam(attack_tokens, copies);
  }
  return classifier.score(copy, message_tokens).score;
}

}  // namespace sbx::core
