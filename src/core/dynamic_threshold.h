// sbx/core/dynamic_threshold.h
//
// Dynamic threshold defense (§5.2). Distribution-shifting attacks raise the
// scores of ham and spam alike; rankings are more robust than absolute
// scores, so the defense re-derives the theta0/theta1 cutoffs from data
// instead of SpamBayes' static 0.15/0.9:
//
//   1. split the (possibly poisoned) training set in half;
//   2. train a filter F on one half;
//   3. score the other half (the validation set V) with F;
//   4. with g(t) = NS<(t) / (NS<(t) + NH>(t)) — NS<(t) spam scored below t,
//      NH>(t) ham scored above t — pick theta0 with g(theta0) ~ ham_target
//      and theta1 with g(theta1) ~ spam_target. The paper evaluates
//      (0.05, 0.95) ("Threshold-.05") and (0.10, 0.90) ("Threshold-.10").
//
// The resulting thresholds are applied to the production filter trained on
// the full training set (the paper leaves this final step unspecified; see
// DESIGN.md §5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "corpus/dataset.h"
#include "spambayes/filter.h"
#include "util/random.h"

namespace sbx::core {

/// Selected cutoff pair.
struct ThresholdPair {
  double theta0 = 0.15;
  double theta1 = 0.9;
};

/// Defense parameters. `ham_target`/`spam_target` are the g(t) levels for
/// theta0/theta1; the paper's two variants are (0.05, 0.95) and (0.10,
/// 0.90).
struct DynamicThresholdConfig {
  double ham_target = 0.05;
  double spam_target = 0.95;
};

/// Scored validation email: the classifier score plus ground truth.
struct ScoredExample {
  double score = 0.5;
  corpus::TrueLabel label = corpus::TrueLabel::ham;
};

/// Computes g(t) for one threshold over a scored validation set.
double threshold_utility(const std::vector<ScoredExample>& scored, double t);

/// Picks (theta0, theta1) from a scored validation set per the rule above.
/// theta0 is the largest candidate threshold with g <= ham_target; theta1
/// the smallest with g >= spam_target; candidates are midpoints between
/// adjacent distinct scores plus the extremes {0, 1}. Guarantees
/// theta0 <= theta1.
ThresholdPair select_thresholds(const std::vector<ScoredExample>& scored,
                                const DynamicThresholdConfig& config);

/// End-to-end defense over a tokenized training set (which may already
/// contain attack messages): half/half split with `rng`, train on one half,
/// score the other, select thresholds. `extra_spam_batches` lets the
/// experiment harness inject batched attack copies into both halves the
/// way they would arrive in a real poisoned inbox (split evenly).
struct SpamBatch {
  spambayes::TokenIdSet ids;
  std::uint32_t copies = 1;

  SpamBatch() = default;
  SpamBatch(spambayes::TokenIdSet ids_in, std::uint32_t copies_in)
      : ids(std::move(ids_in)), copies(copies_in) {}
  /// String-set convenience: interns and forwards.
  SpamBatch(const spambayes::TokenSet& tokens, std::uint32_t copies_in)
      : ids(spambayes::intern_tokens(tokens)), copies(copies_in) {}
};

ThresholdPair compute_dynamic_thresholds(
    const corpus::TokenizedDataset& training,
    const std::vector<std::size_t>& training_indices,
    const std::vector<SpamBatch>& extra_spam_batches,
    const spambayes::FilterOptions& filter_options,
    const DynamicThresholdConfig& config, util::Rng& rng);

}  // namespace sbx::core
