#include "core/taxonomy.h"

namespace sbx::core {

std::string_view to_string(Influence v) {
  return v == Influence::causative ? "Causative" : "Exploratory";
}

std::string_view to_string(Violation v) {
  return v == Violation::integrity ? "Integrity" : "Availability";
}

std::string_view to_string(Specificity v) {
  return v == Specificity::targeted ? "Targeted" : "Indiscriminate";
}

std::string AttackProperties::description() const {
  std::string out;
  out += to_string(influence);
  out += ' ';
  out += to_string(violation);
  out += ' ';
  out += to_string(specificity);
  return out;
}

}  // namespace sbx::core
