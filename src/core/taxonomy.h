// sbx/core/taxonomy.h
//
// The Barreno-Nelson attack taxonomy (§3.1): three axes classifying attacks
// against machine-learning systems. Attack classes in this library carry
// their taxonomy coordinates so experiment output can label them the way
// the paper does.
#pragma once

#include <string>
#include <string_view>

namespace sbx::core {

/// Whether the attacker influences training (Causative) or only probes a
/// fixed classifier (Exploratory).
enum class Influence { causative, exploratory };

/// Whether the attack creates false negatives (Integrity: spam gets
/// through) or false positives (Availability: ham gets filtered).
enum class Violation { integrity, availability };

/// Whether the attack aims at a particular email type (Targeted) or at
/// broad classes of email (Indiscriminate).
enum class Specificity { targeted, indiscriminate };

std::string_view to_string(Influence v);
std::string_view to_string(Violation v);
std::string_view to_string(Specificity v);

/// Taxonomy coordinates of one attack.
struct AttackProperties {
  Influence influence = Influence::causative;
  Violation violation = Violation::availability;
  Specificity specificity = Specificity::indiscriminate;

  /// e.g. "Causative Availability Indiscriminate".
  std::string description() const;
};

}  // namespace sbx::core
