// sbx/core/ham_labeled_attack.h
//
// The extension the paper flags in §2.2: "using ham-labeled attack emails
// could enable more powerful attacks that place spam in a user's inbox."
// This is a Causative *Integrity* attack — the mirror image of the
// dictionary attack. The attacker arranges for emails carrying its future
// spam vocabulary to be trained as ham (e.g. by sending innocuous-looking
// mail the victim's pipeline auto-labels, or abusing a
// train-on-everything policy), driving the spam scores of those tokens
// down so that later spam carrying them slips into the inbox.
//
// The attack takes a word list — typically the attacker's own campaign
// vocabulary — and produces one canonical attack email, trained as ham in
// `copies`. Evaluated by bench_ext_ham_labeled.
#pragma once

#include <string>
#include <vector>

#include "core/taxonomy.h"
#include "email/message.h"

namespace sbx::core {

/// Ham-labeled poisoning: whitewash the attacker's vocabulary.
class HamLabeledAttack {
 public:
  /// `payload_words` is the vocabulary the attacker wants whitened —
  /// usually the word list its future spam will draw from. The email body
  /// carries exactly these words; headers imitate ordinary ham by cloning
  /// the given header block (the attack's premise is that the message
  /// passes as legitimate, so unlike the spam-labeled attacks it ships
  /// believable headers).
  HamLabeledAttack(std::vector<std::string> payload_words,
                   std::vector<email::HeaderField> ham_like_headers);

  const email::Message& attack_message() const { return message_; }
  std::size_t payload_size() const { return payload_size_; }

  /// Causative / Integrity / Indiscriminate (it whitens a whole campaign
  /// vocabulary, not one message).
  static AttackProperties properties() {
    return {Influence::causative, Violation::integrity,
            Specificity::indiscriminate};
  }

 private:
  std::size_t payload_size_;
  email::Message message_;
};

}  // namespace sbx::core
