// sbx/core/attack.h
//
// The unified attack API. The paper's whole framing (§3.1) is that
// dictionary, focused, good-word, ham-labeled and informed attacks are
// *points in one attack space* — the Barreno-Nelson taxonomy — yet until
// this interface each was an unrelated class with its own constructor
// shape and hand-written experiment plumbing. core::Attack makes the
// attack a first-class, registry-resolvable axis:
//
//  * name() / properties() / schema(): registry key, taxonomy coordinates
//    and a typed parameter schema (util::ConfigSchema — the same machinery
//    the experiment registry uses), so `sbx_experiments attacks
//    list/describe` and the sweep CLI can treat attacks like experiments;
//  * craft_poison(): the Causative half — produce attack emails the
//    victim will (mis)train on (dictionary / focused / ham-labeled /
//    informed / backdoor);
//  * evade(): the Exploratory half — transform one message until a fixed
//    filter stops catching it (good-word padding, character obfuscation).
//
// Existing attack classes stay as the implementation; registry entries
// are thin adapters that construct them from a validated util::Config
// (attack_registry.h). Experiments resolve `attack=<registry-name>`
// through the registry instead of hard-coding a class, which is what lets
// one sweep cross attacks against training sizes/thresholds/defenses with
// zero new driver code.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/taxonomy.h"
#include "corpus/dataset.h"
#include "corpus/generator.h"
#include "email/message.h"
#include "spambayes/filter.h"
#include "spambayes/tokenizer.h"
#include "util/config.h"
#include "util/random.h"

namespace sbx::core {

/// Inputs to the Causative hook. `params` is a Config over the attack's
/// own schema (attack_registry.h resolves it); `rng` feeds every random
/// choice the attack makes — crafting is deterministic in (params, rng
/// state, context). Targeted attacks additionally receive the target
/// message, its attacker-guessable body words, and the pool of real spam
/// whose headers attack emails clone (§4.1); indiscriminate attacks
/// ignore those fields.
struct CraftContext {
  const corpus::TrecLikeGenerator& generator;
  const util::Config& params;
  util::Rng& rng;
  /// How many attack emails to craft.
  std::size_t count = 1;

  // --- Targeted (focused-style) attacks only ---
  const email::Message* target = nullptr;
  const spambayes::TokenSet* target_tokens = nullptr;
  const std::vector<const email::Message*>* spam_header_pool = nullptr;
};

/// Inputs to the Exploratory hook: the fixed victim filter the attacker
/// can query (Lowd-Meek membership-query model), the verdict it wants at
/// most (`goal`), and a per-message modification budget.
struct EvadeContext {
  const corpus::TrecLikeGenerator& generator;
  const util::Config& params;
  const spambayes::Filter& filter;
  std::size_t max_words = 1000;  // words added/mangled at most
  spambayes::Verdict goal = spambayes::Verdict::unsure;
};

/// Outcome of one evasion attempt.
struct EvadeResult {
  email::Message message;    // the (possibly modified) spam
  std::size_t words_added = 0;  // words appended or mangled
  std::size_t queries = 0;      // filter queries spent
  double score_before = 1.0;
  double score_after = 1.0;
  bool evaded = false;  // reached the goal verdict
};

/// A Causative attack whose poison is `count` identical copies of ONE
/// canonical message (the dictionary family, ham-labeled, backdoor).
/// Experiments exploit this: tokenize once, train copies — the batching
/// the drivers have always used for dictionary attacks.
struct CanonicalPoison {
  email::Message message;
  /// The label the attacker gets its poison trained under: spam for the
  /// §2.2 contamination model (attack mail lands in the spam folder),
  /// ham for the inbox-poisoning extensions (ham-labeled, backdoor).
  corpus::TrueLabel train_as = corpus::TrueLabel::spam;
  /// Display name for experiment tables, e.g. "usenet-90000".
  std::string display_name;
  /// Payload words carried (the "dict words" table column).
  std::size_t payload_size = 0;
};

/// One registry-resolvable attack.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Registry key, e.g. "backdoor-trigger" (lowercase, '-'-separated).
  virtual std::string name() const = 0;

  /// One-line summary for `sbx_experiments attacks list`.
  virtual std::string description() const = 0;

  /// Paper section (or related-work citation) this attack realizes.
  virtual std::string paper_ref() const = 0;

  /// Barreno-Nelson taxonomy coordinates (§3.1).
  virtual AttackProperties properties() const = 0;

  /// The attack's parameter schema (defaults = the paper's evaluated
  /// configuration). Experiments forward same-named config keys into it.
  virtual const util::ConfigSchema& schema() const = 0;

  /// True when this attack implements the Causative hook. Defaults to the
  /// taxonomy's Influence axis — the contract test enforces coherence.
  virtual bool crafts_poison() const {
    return properties().influence == Influence::causative;
  }

  /// True when this attack implements the Exploratory hook.
  virtual bool evades() const {
    return properties().influence == Influence::exploratory;
  }

  /// Causative hook: crafts `ctx.count` poison emails. The default
  /// implementation replicates canonical_poison() (identical-copy
  /// attacks); attacks whose emails differ (focused) override it. Throws
  /// sbx::InvalidArgument when the attack is Exploratory-only.
  virtual std::vector<email::Message> craft_poison(CraftContext& ctx) const;

  /// The canonical single-message form for identical-copy Causative
  /// attacks; nullopt when each poison email differs (focused) or the
  /// attack crafts none (good-word, obfuscation). `rng` feeds attacks
  /// whose canonical message has random parts (ham-labeled clones a
  /// random ham header block); the dictionary family never touches it.
  virtual std::optional<CanonicalPoison> canonical_poison(
      const corpus::TrecLikeGenerator& generator, const util::Config& params,
      util::Rng& rng) const;

  /// The label craft_poison() output should be trained under (see
  /// CanonicalPoison::train_as). Identical-copy attacks default to their
  /// canonical form's label via the base implementation in attack.cpp.
  virtual corpus::TrueLabel poison_label() const {
    return corpus::TrueLabel::spam;
  }

  /// Tokens the attacker stamps onto its own post-poison mail (the
  /// BadNets trigger): after the Causative phase succeeds, the attacker
  /// sends spam carrying these tokens, and experiments measure how much
  /// of it leaks past the filter. Empty for attacks whose future mail is
  /// unmodified.
  virtual std::vector<std::string> trigger_tokens(
      const util::Config& params) const {
    (void)params;
    return {};
  }

  /// Exploratory hook: modifies `message` until ctx.goal is reached or
  /// the budget runs out. Throws sbx::InvalidArgument when the attack is
  /// Causative-only.
  virtual EvadeResult evade(EvadeContext& ctx,
                            const email::Message& message) const;

  /// A config holding this attack's schema defaults.
  util::Config default_params() const { return util::Config(&schema()); }
};

}  // namespace sbx::core
