#include "core/ham_labeled_attack.h"

#include "email/builder.h"
#include "util/error.h"

namespace sbx::core {

HamLabeledAttack::HamLabeledAttack(
    std::vector<std::string> payload_words,
    std::vector<email::HeaderField> ham_like_headers)
    : payload_size_(payload_words.size()) {
  if (payload_words.empty()) {
    throw InvalidArgument("HamLabeledAttack: empty payload");
  }
  message_ = email::MessageBuilder().body_from_words(payload_words).build();
  message_.set_headers(std::move(ham_like_headers));
}

}  // namespace sbx::core
